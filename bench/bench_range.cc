// Range queries (paper Section 4.2 — discussed but not plotted).
//
// A range query finds its start with a point lookup and then scans
// sequentially, so at low selectivity the index dominates cost and at high
// selectivity the scan does. This bench sweeps selectivity and compares
// FITing-Tree against the full index, binary search and (for count-only
// queries) the static variant's O(log) rank subtraction.

#include <iostream>
#include <string>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

int main() {
  using fitree::BinarySearchIndex;
  using fitree::FitingTree;
  using fitree::FitingTreeConfig;
  using fitree::StaticFitingTree;
  using fitree::TablePrinter;
  using fitree::bench::MeasurePerOpNs;

  const size_t n = fitree::bench::ScaledN(4000000);
  const auto keys = fitree::datasets::Weblogs(n, 1);

  FitingTreeConfig config;
  config.error = 256.0;
  config.buffer_size = 0;
  auto fiting = FitingTree<int64_t>::Create(keys, config);
  auto fixed = StaticFitingTree<int64_t>::Create(keys, 256.0);
  BinarySearchIndex<int64_t> binary{std::span<const int64_t>(keys)};

  fitree::bench::PrintHeader(
      "Range queries on Weblogs (n=" + std::to_string(n) + ", error=256)");
  TablePrinter table({"selectivity", "FITing_scan_ns", "Binary_scan_ns",
                      "Static_count_ns"});

  for (double selectivity : {0.00001, 0.0001, 0.001, 0.01}) {
    const auto queries = fitree::workloads::MakeRangeQueries<int64_t>(
        keys, 2000, selectivity, 7);

    const double fiting_ns = MeasurePerOpNs(queries.size(), [&](size_t i) {
      size_t count = 0;
      fiting->ScanRange(queries[i].lo, queries[i].hi,
                        [&count](int64_t) { ++count; });
      return count;
    });
    const double binary_ns = MeasurePerOpNs(queries.size(), [&](size_t i) {
      size_t count = 0;
      binary.ScanRange(queries[i].lo, queries[i].hi,
                       [&count](int64_t) { ++count; });
      return count;
    });
    // Count-only ranges collapse to two rank lookups on the static variant.
    const double static_ns = MeasurePerOpNs(queries.size(), [&](size_t i) {
      return fixed->RangeCount(queries[i].lo, queries[i].hi);
    });

    table.AddRow({TablePrinter::Fmt(selectivity, 5),
                  TablePrinter::Fmt(fiting_ns, 0),
                  TablePrinter::Fmt(binary_ns, 0),
                  TablePrinter::Fmt(static_ns, 0)});
  }
  table.Print(std::cout);
  return 0;
}
