// fitree_bench: the unified benchmark driver.
//
// Every former per-figure binary is a registered experiment (see
// bench/experiments/); this driver lists, filters, and runs them with a
// shared repetition/statistics engine and writes one machine-readable
// BENCH_results.json next to the paper-style tables.
//
//   fitree_bench --list                 # names + titles
//   fitree_bench --filter=fig6,range    # substring match, comma = OR
//   fitree_bench --reps=3 --json=BENCH_results.json
//
// Exit codes: 0 success, 1 usage error, 2 oracle-validation failure
// (experiments abort through fitree::bench::Die).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"

namespace {

struct Options {
  bool list = false;
  bool help = false;
  std::string filter;
  int reps = 3;
  std::string json_path;
  std::string baseline_path;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: fitree_bench [--list] [--filter=NAMES] [--reps=N] "
               "[--json=PATH]\n"
               "\n"
               "  --list          print registered experiments and exit\n"
               "  --filter=NAMES  run experiments whose name contains any\n"
               "                  comma-separated NAMES substring\n"
               "  --reps=N        timed repetitions per measured cell\n"
               "                  (default 3; one extra warmup rep runs\n"
               "                  when N > 1)\n"
               "  --json=PATH     write all result records + environment\n"
               "                  metadata as JSON (schema: EXPERIMENTS.md)\n"
               "  --baseline=PATH write the slim committed-baseline JSON:\n"
               "                  only the fields tools/bench_diff.py\n"
               "                  compares (experiment, params, ns_per_op)\n"
               "\n"
               "Scale and knobs come from FITREE_BENCH_* environment\n"
               "variables (see EXPERIMENTS.md).\n");
}

bool ParseArgs(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> const char* {
      const size_t len = std::strlen(flag);
      if (arg.rfind(flag, 0) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (const char* v = value_of("--filter")) {
      options.filter = v;
    } else if (const char* v = value_of("--json")) {
      options.json_path = v;
    } else if (const char* v = value_of("--baseline")) {
      options.baseline_path = v;
    } else if (const char* v = value_of("--reps")) {
      options.reps = std::atoi(v);
      if (options.reps < 1) {
        std::fprintf(stderr, "fitree_bench: --reps must be >= 1\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "fitree_bench: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using fitree::bench::Registry;
  using fitree::bench::ResultRecord;
  using fitree::bench::Runner;

  Options options;
  if (!ParseArgs(argc, argv, options)) {
    PrintUsage(stderr);
    return 1;
  }
  if (options.help) {
    PrintUsage(stdout);
    return 0;
  }
  if (options.list) {
    for (const auto* e : Registry::Instance().All()) {
      std::printf("%-24s %s\n", e->name.c_str(), e->title.c_str());
    }
    return 0;
  }

  const auto matched = Registry::Instance().Match(options.filter);
  if (matched.empty()) {
    std::fprintf(stderr, "fitree_bench: no experiment matches '%s'\n",
                 options.filter.c_str());
    return 1;
  }

  // Open the JSON sink before running anything: an unwritable path must
  // fail in milliseconds, not after a multi-minute suite.
  std::ofstream json_out;
  if (!options.json_path.empty()) {
    json_out.open(options.json_path);
    if (!json_out) {
      std::fprintf(stderr, "fitree_bench: cannot write %s\n",
                   options.json_path.c_str());
      return 1;
    }
  }
  std::ofstream baseline_out;
  if (!options.baseline_path.empty()) {
    baseline_out.open(options.baseline_path);
    if (!baseline_out) {
      std::fprintf(stderr, "fitree_bench: cannot write %s\n",
                   options.baseline_path.c_str());
      return 1;
    }
  }

  std::vector<ResultRecord> all_records;
  for (const auto* e : matched) {
    std::printf("\n=== %s: %s (reps=%d) ===\n", e->name.c_str(),
                e->title.c_str(), options.reps);
    std::fflush(stdout);
    Runner runner(e->name, options.reps);
    e->fn(runner);
    runner.RenderTable(std::cout);
    all_records.insert(all_records.end(), runner.records().begin(),
                       runner.records().end());
  }

  std::printf("\n%zu experiment(s), %zu result record(s)\n", matched.size(),
              all_records.size());

  if (json_out.is_open()) {
    const auto doc = fitree::bench::MakeResultsDocument(
        fitree::bench::CaptureEnvironment(), options.reps, all_records);
    json_out << doc.Dump(2);
    if (!json_out) {
      std::fprintf(stderr, "fitree_bench: failed writing %s\n",
                   options.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  if (baseline_out.is_open()) {
    const auto doc = fitree::bench::MakeBaselineDocument(
        fitree::bench::CaptureEnvironment(), options.reps, all_records);
    baseline_out << doc.Dump(2);
    if (!baseline_out) {
      std::fprintf(stderr, "fitree_bench: failed writing %s\n",
                   options.baseline_path.c_str());
      return 1;
    }
    std::printf("wrote %s (baseline)\n", options.baseline_path.c_str());
  }
  return 0;
}
