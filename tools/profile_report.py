#!/usr/bin/env python3
"""Render the profiling view of a fitree_bench BENCH_results.json.

Three sections, all fed by the same document (schema in EXPERIMENTS.md,
"Profiling"):

  1. The per-(engine, phase) span grid from telemetry.phases — sampled
     span counts and self-time latency percentiles (children excluded, so
     one op's phases sum to roughly its inclusive latency).
  2. The PMU table: every result record's "perf" block — status plus the
     derived per-op rates (IPC, cycles/op, LLC-misses/op, ...). Records
     whose counters were unavailable print their status verbatim; that is
     the expected rendering on CI containers without perf access.
  3. The micro_phase_breakdown decomposition: per-engine lookup ns/op by
     phase, with the off/sampled/full overhead A/B alongside.

--folded FILE additionally writes collapsed stacks ("engine;op;phase N",
one per line, N = summed ns) for flamegraph tooling
(https://github.com/brendangregg/FlameGraph: flamegraph.pl FILE). Stacks
come from the trace ring dump when the run had FITREE_TRACE=1, else from
the phase grid (two-frame stacks, sample-weighted mean self time).

Exit status: 0 on success (including telemetry-disabled documents, which
still carry PMU blocks), 2 on malformed input — missing file, invalid
JSON, wrong schema_version, or a document without results/telemetry — so
CI can use this parser as a schema smoke check.

Typical use:

  tools/profile_report.py BENCH_results.json
  tools/profile_report.py BENCH_results.json --folded stacks.folded
"""

import argparse
import json
import sys


def die(message):
    print(f"profile_report: {message}", file=sys.stderr)
    sys.exit(2)


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: top-level JSON value is not an object")
    if doc.get("schema_version") != 1:
        die(f"{path}: unsupported schema_version "
            f"{doc.get('schema_version')!r} (this tool understands 1)")
    if not isinstance(doc.get("results"), list):
        die(f"{path}: no results array")
    if not isinstance(doc.get("telemetry"), dict):
        die(f"{path}: no telemetry section")
    return doc


def render_table(rows, header):
    """Column-aligned plain-text table (same style as stats_dump.py)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def fmt_params(params):
    if not isinstance(params, dict) or not params:
        return "-"
    return ",".join(f"{k}={v}" for k, v in params.items())


def print_phase_grid(telemetry):
    print("== per-(engine, phase) span grid (self time, sampled) ==")
    phases = telemetry.get("phases", [])
    if not isinstance(phases, list):
        die('"phases" is not an array')
    if not phases:
        print("(no phase spans recorded)")
        return
    rows = []
    for cell in phases:
        if not isinstance(cell, dict):
            die('"phases" entry is not an object')
        for key in ("engine", "phase", "samples"):
            if key not in cell:
                die(f'"phases" entry missing "{key}"')
        timed = "mean_ns" in cell
        rows.append([
            str(cell["engine"]),
            str(cell["phase"]),
            f"{cell['samples']:,}",
            f"{cell['p50_ns']:,}" if timed else "-",
            f"{cell['p95_ns']:,}" if timed else "-",
            f"{cell['p99_ns']:,}" if timed else "-",
            f"{cell['max_ns']:,}" if timed else "-",
            f"{cell['mean_ns']:.1f}" if timed else "-",
        ])
    print(render_table(rows, ["engine", "phase", "samples", "p50_ns",
                              "p95_ns", "p99_ns", "max_ns", "mean_ns"]))


def print_pmu(results):
    print("\n== hardware counters per result record ==")
    rows = []
    statuses = {}
    for record in results:
        if not isinstance(record, dict):
            die("results entry is not an object")
        perf = record.get("perf")
        if not isinstance(perf, dict):
            die(f"record {record.get('experiment', '?')} has no perf block")
        status = str(perf.get("status", "?"))
        statuses[status] = statuses.get(status, 0) + 1
        derived = perf.get("derived", {})
        if not derived:
            continue  # nothing counted; summarized by status below

        def rate(key):
            value = derived.get(key)
            return f"{value:,.2f}" if isinstance(value, (int, float)) else "-"

        rows.append([
            str(record.get("experiment", "?")),
            fmt_params(record.get("params")),
            rate("ipc"),
            rate("cycles_per_op"),
            rate("instructions_per_op"),
            rate("llc_load_misses_per_op"),
            rate("branch_misses_per_op"),
            rate("dtlb_load_misses_per_op"),
        ])
    for status, n in sorted(statuses.items()):
        print(f"{n} record(s) with status: {status}")
    if rows:
        print(render_table(rows, ["experiment", "params", "ipc", "cyc/op",
                                  "ins/op", "llc/op", "br/op", "dtlb/op"]))
    else:
        print("(no counter data in any record — see statuses above)")


def print_breakdown(results):
    records = [r for r in results
               if r.get("experiment") == "micro_phase_breakdown"]
    if not records:
        return
    print("\n== micro_phase_breakdown: lookup ns/op by phase ==")
    rows = []
    for record in records:
        params = record.get("params", {})
        stats = record.get("ns_per_op", {})
        ns_op = stats.get("p50")
        metrics = record.get("metrics", {})
        shares = ", ".join(
            f"{key[:-len('_pct')]} {value:.1f}%"
            for key, value in metrics.items() if key.endswith("_pct"))
        rows.append([
            str(params.get("engine", "?")),
            str(params.get("mode", "?")),
            f"{ns_op:,.1f}" if isinstance(ns_op, (int, float)) else "-",
            shares if shares else "-",
        ])
    print(render_table(rows, ["engine", "mode", "ns_op_p50", "phase shares"]))


def write_folded(doc, path):
    """Collapsed stacks: trace records when available, else the grid."""
    stacks = {}
    trace = doc["telemetry"].get("trace", {})
    records = trace.get("records", []) if trace.get("enabled") else []
    if records:
        for record in records:
            frames = [str(record.get("engine", "?")),
                      str(record.get("op", "?"))]
            if "phase" in record:
                frames.append(str(record["phase"]))
            key = ";".join(frames)
            stacks[key] = stacks.get(key, 0) + int(record.get("arg_ns", 0))
        # An op-level record's arg_ns is inclusive of its phase children;
        # folded-stack values must be self time or the flamegraph double
        # counts, so subtract each stack's children from it.
        for key in list(stacks):
            children = sum(v for k, v in stacks.items()
                           if k.startswith(key + ";"))
            if children:
                stacks[key] = max(0, stacks[key] - children)
        source = f"{len(records)} trace records"
    else:
        for cell in doc["telemetry"].get("phases", []):
            key = f"{cell.get('engine', '?')};{cell.get('phase', '?')}"
            total = cell.get("mean_ns", 0) * cell.get("samples", 0)
            stacks[key] = stacks.get(key, 0) + int(total)
        source = "phase grid (run with FITREE_TRACE=1 for per-op stacks)"
    try:
        with open(path, "w", encoding="utf-8") as f:
            for key in sorted(stacks):
                f.write(f"{key} {stacks[key]}\n")
    except OSError as e:
        die(f"cannot write {path}: {e}")
    print(f"\nwrote {len(stacks)} folded stack(s) to {path} from {source}")


def main():
    parser = argparse.ArgumentParser(
        description="render phase spans + PMU counters from "
                    "BENCH_results.json")
    parser.add_argument("results", help="path to BENCH_results.json")
    parser.add_argument("--folded", metavar="FILE",
                        help="also write collapsed stacks for flamegraph "
                             "tooling")
    args = parser.parse_args()

    doc = load_doc(args.results)
    telemetry = doc["telemetry"]
    if telemetry.get("enabled"):
        print_phase_grid(telemetry)
    else:
        print("telemetry disabled (built with -DFITREE_NO_TELEMETRY=ON); "
              "no phase grid — PMU blocks below are still live")
    print_pmu(doc["results"])
    print_breakdown(doc["results"])
    if args.folded:
        write_folded(doc, args.folded)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)
