// Coarse-grained baseline for bench_concurrent and the stress tests: the
// single-threaded FitingTree behind one std::mutex. Every operation —
// including pure lookups — serializes on the global lock, so its aggregate
// throughput is flat (or worse, with contention) as threads are added.
// That is the yardstick the epoch/latch design in
// concurrent_fiting_tree.h has to beat.

#ifndef FITREE_CONCURRENCY_MUTEX_FITING_TREE_H_
#define FITREE_CONCURRENCY_MUTEX_FITING_TREE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/fiting_tree.h"
#include "telemetry/structural.h"

namespace fitree {

template <typename K, typename V = uint64_t>
class MutexFitingTree {
 public:
  using Key = K;
  using Payload = V;
  using Tree = FitingTree<K, 16, 16, V>;

  static std::unique_ptr<MutexFitingTree<K, V>> Create(
      const std::vector<K>& keys, const FitingTreeConfig& config) {
    return Create(keys, {}, config);
  }

  static std::unique_ptr<MutexFitingTree<K, V>> Create(
      const std::vector<K>& keys, const std::vector<V>& values,
      const FitingTreeConfig& config) {
    auto wrapper = std::make_unique<MutexFitingTree<K, V>>();
    wrapper->tree_ = Tree::Create(keys, values, config);
    return wrapper;
  }

  bool Contains(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Contains(key);
  }

  std::optional<V> Lookup(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Lookup(key);
  }

  std::optional<K> Find(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Find(key);
  }

  bool Insert(const K& key, const V& value = V{}) {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Insert(key, value);
  }

  bool Update(const K& key, const V& value) {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Update(key, value);
  }

  bool Delete(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Delete(key);
  }

  template <typename Fn>
  size_t ScanRange(const K& lo, const K& hi, Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->ScanRange(lo, hi, fn);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->size();
  }

  size_t SegmentCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->SegmentCount();
  }

  // Delegates to the wrapped tree; this baseline's registry traffic lands
  // under the buffered engine for the same reason.
  telemetry::StructuralStats Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Stats();
  }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<Tree> tree_;
};

}  // namespace fitree

#endif  // FITREE_CONCURRENCY_MUTEX_FITING_TREE_H_
