// FITing-Tree with per-segment insert buffers (paper Sec 4.2), grown into a
// full key-value store: each linear segment owns its sorted key page with a
// parallel payload array, plus a small sorted delta buffer of
// {key, payload, tombstone} entries for incoming mutations. Inserts of new
// keys land in the buffer; deletes of paged keys leave a tombstone there;
// updates of paged keys rewrite the payload in place (the page's keys are
// what the models predict, payloads are free to change). When a buffer
// exceeds its budget the segment merges buffer and page — dropping
// tombstoned keys — and re-runs the shrinking cone over the surviving keys,
// replacing itself with however many segments the data now needs. This is
// the data-aware split that distinguishes FITing-Tree from fixed paging; a
// merge that deletes every key retires the segment outright.
//
// The segment directory is a B+ tree keyed by each segment's first key; its
// node width is a template parameter so bench_ablations can sweep fanout.
// Read operations are const and safe for concurrent readers.
//
// Buffer invariants (checked by tests/oracle.h's differential driver):
//   - at most one buffer entry per key;
//   - a live entry's key is absent from the page (pure pending insert);
//   - a tombstone's key is present in the page (pending delete).

#ifndef FITREE_CORE_FITING_TREE_H_
#define FITREE_CORE_FITING_TREE_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "btree/btree_map.h"
#include "common/options.h"
#include "common/prefetch.h"
#include "common/timer.h"
#include "core/flat_directory.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "telemetry/structural.h"

namespace fitree {

struct FitingTreeConfig {
  // Sentinel: size the buffer as max(1, error/2), the paper's default ratio
  // (Sec 7.1.3).
  static constexpr size_t kAutoBufferSize = static_cast<size_t>(-1);

  double error = 64.0;
  // Per-segment delta-buffer capacity (pending inserts + tombstones). 0
  // means merge on every mutation (write-pessimal, read-optimal);
  // kAutoBufferSize means error/2.
  size_t buffer_size = kAutoBufferSize;
  // In-window search + directory descent strategy for the read path;
  // defaults follow the FITREE_SEARCH_POLICY / FITREE_DIRECTORY env knobs
  // (simd + flat unless overridden).
  SearchPolicy search_policy = DefaultSearchPolicy();
  DirectoryMode directory = DefaultDirectoryMode();
  Feasibility feasibility = Feasibility::kEndpointLine;
};

struct FitingTreeStats {
  uint64_t inserts = 0;          // Insert calls, including rejected dups
  uint64_t updates = 0;          // successful Update calls
  uint64_t deletes = 0;          // successful Delete calls
  uint64_t segment_merges = 0;   // buffer merge-and-resegment events
  uint64_t segments_created = 0; // segments produced by those merges
  uint64_t segments_retired = 0; // segments whose merge left zero keys
  uint64_t tombstones_cleared = 0;  // deleted keys resolved by merges
};

namespace detail {

// Invokes a scan callback that accepts either (key) or (key, value), so
// key-only consumers (the paper benches) and payload-aware consumers (the
// CRUD suites) share one ScanRange.
template <typename Fn, typename K, typename V>
inline void EmitEntry(Fn& fn, const K& key, const V& value) {
  if constexpr (std::is_invocable_v<Fn&, const K&, const V&>) {
    fn(key, value);
  } else {
    fn(key);
  }
}

// One pending mutation in a segment's delta buffer, shared by the
// single-threaded and concurrent engines (their buffer invariants differ —
// see each class comment — but the record and its ordering do not).
template <typename K, typename V>
struct BufferEntry {
  K key{};
  V value{};
  bool tombstone = false;
};

// Heterogeneous key comparator for lower_bound over a sorted buffer.
struct BufferKeyLess {
  template <typename K, typename V>
  bool operator()(const BufferEntry<K, V>& e, const K& k) const {
    return e.key < k;
  }
};

}  // namespace detail

template <typename K, int kInnerSlots = 16, int kLeafSlots = kInnerSlots,
          typename V = uint64_t>
class FitingTree {
 public:
  using Key = K;
  using Payload = V;

  static std::unique_ptr<FitingTree> Create(const std::vector<K>& keys,
                                            const FitingTreeConfig& config) {
    return Create(keys, {}, config);
  }

  // Bulk-loads `keys` with parallel `values` (empty = value-initialized
  // payloads). Keys must be sorted and duplicate-free.
  static std::unique_ptr<FitingTree> Create(const std::vector<K>& keys,
                                            const std::vector<V>& values,
                                            const FitingTreeConfig& config) {
    assert(values.empty() || values.size() == keys.size());
    auto tree = std::make_unique<FitingTree>();
    tree->config_ = config;
    tree->effective_buffer_ =
        config.buffer_size == FitingTreeConfig::kAutoBufferSize
            ? std::max<size_t>(1, static_cast<size_t>(config.error / 2.0))
            : config.buffer_size;
    tree->BulkLoad(std::span<const K>(keys), std::span<const V>(values));
    return tree;
  }

  size_t size() const { return size_; }

  bool Contains(const K& key) const { return Lookup(key).has_value(); }

  // Payload stored for `key`, or nullopt when absent. Buffer entries
  // override the page: a tombstone hides the paged key until the next merge
  // physically drops it.
  std::optional<V> Lookup(const K& key) const {
    telemetry::ScopedOp telem(telemetry::Engine::kBuffered,
                              telemetry::Op::kLookup);
    const SegmentData* seg = LocateSegment(key);
    if (seg == nullptr) return std::nullopt;
    // Start the page lines travelling while the buffer probe runs.
    PrefetchPredicted(*seg, key);
    if (const BufferEntry* entry = FindBuffer(*seg, key)) {
      if (entry->tombstone) return std::nullopt;
      return entry->value;
    }
    const size_t i = SearchSegment(*seg, key);
    if (i == kNotFound) return std::nullopt;
    return seg->values[i];
  }

  // Returns the stored key equal to `key` when present.
  std::optional<K> Find(const K& key) const {
    return Contains(key) ? std::optional<K>(key) : std::nullopt;
  }

  // Contains() that also accrues the time spent descending the directory
  // vs. searching the segment page/buffer (Figure 13's breakdown).
  bool ContainsWithBreakdown(const K& key, int64_t* tree_ns,
                             int64_t* page_ns) const {
    // Count-only: this path already times itself at finer grain, and a
    // sampled ScopedOp timer would perturb the breakdown it measures.
    telemetry::CountOp(telemetry::Engine::kBuffered, telemetry::Op::kLookup);
    Timer timer;
    const SegmentData* seg = LocateSegment(key);
    if (seg != nullptr) PrefetchPredicted(*seg, key);
    *tree_ns += timer.ElapsedNs();
    timer.Reset();
    bool found = false;
    if (seg != nullptr) {
      if (const BufferEntry* entry = FindBuffer(*seg, key)) {
        found = !entry->tombstone;
      } else {
        found = SearchSegment(*seg, key) != kNotFound;
      }
    }
    *page_ns += timer.ElapsedNs();
    return found;
  }

  // Inserts `key` -> `value`. Returns true iff the key was new (set
  // semantics: inserting a present key is a no-op returning false). The key
  // lands in its floor segment's buffer; a full buffer triggers
  // merge-and-resegment.
  bool Insert(const K& key, const V& value = V{}) {
    telemetry::ScopedOp telem(telemetry::Engine::kBuffered,
                              telemetry::Op::kInsert);
    ++stats_.inserts;
    SegmentData* seg = LocateSegmentMutable(key);
    if (seg == nullptr) {
      // First key of an empty tree.
      auto data = std::make_unique<SegmentData>();
      data->first_key = key;
      data->slope = 0.0;
      data->intercept = 0.0;
      data->keys.push_back(key);
      data->values.push_back(value);
      directory_.Insert(key, data.get());
      {
        const K first_key = key;
        SegmentData* ptr = data.get();
        flat_dir_.Splice(0, 0, std::span<const K>(&first_key, 1),
                         std::span<SegmentData* const>(&ptr, 1));
      }
      segments_.push_back(std::move(data));
      ++live_segments_;
      ++size_;
      return true;
    }
    auto pos = BufferPos(*seg, key);
    if (pos != seg->buffer.end() && pos->key == key) {
      if (!pos->tombstone) return false;  // live duplicate
      // Delete-then-reinsert: the key still sits in the page; drop the
      // tombstone and refresh the paged payload in place.
      const size_t i = SearchSegment(*seg, key);
      assert(i != kNotFound);
      seg->values[i] = value;
      seg->buffer.erase(pos);
      ++size_;
      return true;
    }
    if (SearchSegment(*seg, key) != kNotFound) return false;
    seg->buffer.insert(pos, BufferEntry{key, value, false});
    ++size_;
    if (seg->buffer.size() > effective_buffer_) MergeSegment(seg);
    return true;
  }

  // Replaces the payload of a present key. Returns false when absent.
  bool Update(const K& key, const V& value) {
    telemetry::ScopedOp telem(telemetry::Engine::kBuffered,
                              telemetry::Op::kUpdate);
    SegmentData* seg = LocateSegmentMutable(key);
    if (seg == nullptr) return false;
    auto pos = BufferPos(*seg, key);
    if (pos != seg->buffer.end() && pos->key == key) {
      if (pos->tombstone) return false;
      pos->value = value;
      ++stats_.updates;
      return true;
    }
    const size_t i = SearchSegment(*seg, key);
    if (i == kNotFound) return false;
    seg->values[i] = value;
    ++stats_.updates;
    return true;
  }

  // Removes `key`. Returns false when absent. A paged key gets a tombstone
  // in the buffer (resolved by the next merge); a buffered key is dropped
  // outright. Tombstones count against the buffer budget, so delete-heavy
  // traffic triggers merges just like insert-heavy traffic.
  bool Delete(const K& key) {
    telemetry::ScopedOp telem(telemetry::Engine::kBuffered,
                              telemetry::Op::kDelete);
    SegmentData* seg = LocateSegmentMutable(key);
    if (seg == nullptr) return false;
    auto pos = BufferPos(*seg, key);
    if (pos != seg->buffer.end() && pos->key == key) {
      if (pos->tombstone) return false;
      seg->buffer.erase(pos);
      --size_;
      ++stats_.deletes;
      return true;
    }
    if (SearchSegment(*seg, key) == kNotFound) return false;
    seg->buffer.insert(pos, BufferEntry{key, V{}, true});
    --size_;
    ++stats_.deletes;
    if (seg->buffer.size() > effective_buffer_) MergeSegment(seg);
    return true;
  }

  // Calls fn(key) or fn(key, value) for every live entry in [lo, hi] in
  // ascending order, merging each segment's page with its buffer on the fly
  // (tombstoned keys are skipped). Returns the number of entries emitted
  // (IndexApi contract, core/index_api.h).
  template <typename Fn>
  size_t ScanRange(const K& lo, const K& hi, Fn fn) const {
    telemetry::ScopedOp telem(telemetry::Engine::kBuffered,
                              telemetry::Op::kScan);
    if (live_segments_ == 0 || hi < lo) return 0;
    K start_key{};
    if (directory_.FindFloor(lo, &start_key) == nullptr) {
      directory_.First(&start_key);
    }
    size_t emitted = 0;
    directory_.ScanFrom(start_key, [&](const K& first_key, SegmentData* seg) {
      if (first_key > hi) return false;
      emitted += EmitRange(*seg, lo, hi, fn);
      return true;
    });
    return emitted;
  }

  // Starts the cache lines a Lookup(key) would touch travelling: descend
  // the directory, then prefetch the predicted in-page position. The
  // server's batched dispatch (server/sharded_index.h) calls this across a
  // whole batch before resolving any probe, overlapping the page misses.
  void PrefetchLookup(const K& key) const {
    const SegmentData* seg = LocateSegment(key);
    if (seg != nullptr) PrefetchPredicted(*seg, key);
  }

  // Directory nodes plus per-segment model metadata (the key pages and
  // buffers are the data, not the index). Charges whichever directory the
  // read path actually descends.
  size_t IndexSizeBytes() const {
    const size_t dir = config_.directory == DirectoryMode::kFlat
                           ? flat_dir_.MemoryBytes()
                           : directory_.MemoryBytes();
    return dir + live_segments_ * kSegmentMetaBytes;
  }

  size_t SegmentCount() const { return live_segments_; }
  int TreeHeight() const { return directory_.Height(); }
  const FitingTreeStats& stats() const { return stats_; }
  const FitingTreeConfig& config() const { return config_; }

  // Structural snapshot (telemetry tentpole): segment shape plus pending
  // delta-buffer occupancy against the per-segment budget, and the
  // lifetime merge counters this instance has accrued.
  telemetry::StructuralStats Stats() const {
    telemetry::StructuralStats st;
    st.engine = telemetry::EngineName(telemetry::Engine::kBuffered);
    st.Add("keys", static_cast<double>(size_));
    st.Add("segments", static_cast<double>(live_segments_));
    st.Add("error", config_.error);
    st.Add("buffer_capacity", static_cast<double>(effective_buffer_));
    size_t buffered = 0, max_buffer = 0;
    for (const auto& seg : segments_) {
      buffered += seg->buffer.size();
      max_buffer = std::max(max_buffer, seg->buffer.size());
    }
    st.Add("buffered_entries", static_cast<double>(buffered));
    st.Add("buffer_max", static_cast<double>(max_buffer));
    st.Add("buffer_occupancy",
           live_segments_ == 0 || effective_buffer_ == 0
               ? 0.0
               : static_cast<double>(buffered) /
                     (static_cast<double>(live_segments_) *
                      static_cast<double>(effective_buffer_)));
    st.Add("merges", static_cast<double>(stats_.segment_merges));
    st.Add("segments_created", static_cast<double>(stats_.segments_created));
    st.Add("segments_retired", static_cast<double>(stats_.segments_retired));
    st.Add("index_bytes", static_cast<double>(IndexSizeBytes()));
    return st;
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  using BufferEntry = detail::BufferEntry<K, V>;

  struct SegmentData {
    K first_key{};
    double slope = 0.0;
    double intercept = 0.0;  // predicted index into `keys` at first_key
    std::vector<K> keys;     // sorted page
    std::vector<V> values;   // payloads, parallel to `keys`
    std::vector<BufferEntry> buffer;  // sorted delta buffer

    double Predict(const K& key) const {
      return intercept + slope * (static_cast<double>(key) -
                                  static_cast<double>(first_key));
    }
  };

  static constexpr size_t kSegmentMetaBytes =
      sizeof(K) + 2 * sizeof(double) + sizeof(void*);

  using Directory = btree::BTreeMap<K, SegmentData*, kLeafSlots, kInnerSlots>;
  using FlatDir = FlatDirectory<K, SegmentData*>;

  void BulkLoad(std::span<const K> keys, std::span<const V> values) {
    size_ = keys.size();
    if (keys.empty()) return;
    const auto models =
        SegmentShrinkingCone<K>(keys, config_.error, config_.feasibility);
    std::vector<std::pair<K, SegmentData*>> entries;
    entries.reserve(models.size());
    segments_.reserve(models.size());
    for (const Segment<K>& m : models) {
      auto data = std::make_unique<SegmentData>();
      data->first_key = m.first_key;
      data->slope = m.slope;
      data->intercept = m.intercept - static_cast<double>(m.start);
      data->keys.assign(keys.begin() + m.start,
                        keys.begin() + m.start + m.length);
      if (values.empty()) {
        data->values.assign(m.length, V{});
      } else {
        data->values.assign(values.begin() + m.start,
                            values.begin() + m.start + m.length);
      }
      entries.emplace_back(m.first_key, data.get());
      segments_.push_back(std::move(data));
    }
    // The flat mirror carries the same entries as the btree directory and
    // is kept in sync by every mutation (bootstrap insert, merge splice),
    // so the FITREE_DIRECTORY knob only selects the descent, not the state.
    std::vector<K> flat_keys;
    std::vector<SegmentData*> flat_ptrs;
    flat_keys.reserve(entries.size());
    flat_ptrs.reserve(entries.size());
    for (const auto& [first_key, ptr] : entries) {
      flat_keys.push_back(first_key);
      flat_ptrs.push_back(ptr);
    }
    flat_dir_.BulkLoad(std::move(flat_keys), std::move(flat_ptrs));
    directory_.BulkLoad(std::move(entries));
    live_segments_ = segments_.size();
  }

  const SegmentData* LocateSegment(const K& key) const {
    telemetry::ScopedPhase phase(telemetry::Engine::kBuffered,
                                 telemetry::Phase::kDirectoryDescent);
    if (config_.directory == DirectoryMode::kFlat) {
      if (flat_dir_.empty()) return nullptr;
      const size_t i = flat_dir_.FloorIndex(key);
      // Below-leftmost keys fall to the first segment, matching the btree
      // path's FindFloor-else-First rule.
      return flat_dir_.value_at(i == FlatDir::kNone ? 0 : i);
    }
    SegmentData* const* seg = directory_.FindFloor(key);
    if (seg == nullptr) seg = directory_.First();
    return seg == nullptr ? nullptr : *seg;
  }

  // Prefetch the predicted in-page position (keys and payloads) so the
  // lines arrive while the buffer probe between descent and page search is
  // still executing.
  void PrefetchPredicted(const SegmentData& seg, const K& key) const {
    const size_t n = seg.keys.size();
    if (n == 0) return;
    const double pred = seg.Predict(key);
    const size_t hint =
        pred <= 0.0 ? 0 : std::min(n - 1, static_cast<size_t>(pred));
    PrefetchRead(seg.keys.data() + hint);
    PrefetchRead(seg.values.data() + hint);
  }

  SegmentData* LocateSegmentMutable(const K& key) {
    return const_cast<SegmentData*>(LocateSegment(key));
  }

  // Error-bounded search of the segment page for an exact match, through
  // the same ErrorWindow as the disk-resident and concurrent lookup paths.
  // Returns the in-page index of `key`, or kNotFound.
  size_t SearchSegment(const SegmentData& seg, const K& key) const {
    telemetry::ScopedPhase phase(telemetry::Engine::kBuffered,
                                 telemetry::Phase::kWindowSearch);
    const size_t n = seg.keys.size();
    if (n == 0) return kNotFound;
    const double pred = seg.Predict(key);
    // A key below the leftmost segment (floor fallback) predicts far
    // negative; a present key always predicts a window overlapping [0, n).
    if (pred + config_.error + 2.0 < 0.0) return kNotFound;
    const auto [begin, end] = ErrorWindow(pred, config_.error, 0, n);
    const size_t hint = static_cast<size_t>(std::max(0.0, pred));
    const size_t i = detail::BoundedLowerBound(
        seg.keys.data(), begin, end, hint, key, config_.search_policy);
    return i < n && seg.keys[i] == key ? i : kNotFound;
  }

  typename std::vector<BufferEntry>::iterator BufferPos(SegmentData& seg,
                                                        const K& key) const {
    return std::lower_bound(seg.buffer.begin(), seg.buffer.end(), key,
                            detail::BufferKeyLess{});
  }

  const BufferEntry* FindBuffer(const SegmentData& seg, const K& key) const {
    telemetry::ScopedPhase phase(telemetry::Engine::kBuffered,
                                 telemetry::Phase::kBufferProbe);
    auto pos = std::lower_bound(seg.buffer.begin(), seg.buffer.end(), key,
                                detail::BufferKeyLess{});
    if (pos == seg.buffer.end() || pos->key != key) return nullptr;
    return &*pos;
  }

  // Returns the number of entries emitted from this segment.
  template <typename Fn>
  size_t EmitRange(const SegmentData& seg, const K& lo, const K& hi,
                   Fn& fn) const {
    size_t emitted = 0;
    auto k = std::lower_bound(seg.keys.begin(), seg.keys.end(), lo);
    auto b = std::lower_bound(seg.buffer.begin(), seg.buffer.end(), lo,
                              detail::BufferKeyLess{});
    while (k != seg.keys.end() || b != seg.buffer.end()) {
      const bool page_first =
          b == seg.buffer.end() || (k != seg.keys.end() && *k < b->key);
      if (page_first) {
        if (*k > hi) return emitted;
        detail::EmitEntry(fn, *k,
                          seg.values[static_cast<size_t>(k - seg.keys.begin())]);
        ++emitted;
        ++k;
        continue;
      }
      if (b->key > hi) return emitted;
      if (k != seg.keys.end() && *k == b->key) {
        // Equal keys: the buffer entry shadows the page. By the buffer
        // invariants this is a tombstone (live entries are never paged).
        assert(b->tombstone);
        ++k;
        ++b;
        continue;
      }
      if (!b->tombstone) {
        detail::EmitEntry(fn, b->key, b->value);
        ++emitted;
      }
      ++b;
    }
    return emitted;
  }

  // Merges `seg`'s buffer into its page — applying pending inserts and
  // dropping tombstoned keys — and re-segments the surviving keys with the
  // shrinking cone, replacing one directory entry with possibly several
  // (paper Sec 4.2.2). A merge that leaves no keys retires the segment.
  void MergeSegment(SegmentData* seg) {
    // Merges are rare and long: always timed (no sampling), so the merge
    // histogram sees every event.
    telemetry::ScopedDuration telem(telemetry::Engine::kBuffered,
                                    telemetry::Op::kMerge);
    telemetry::ScopedPhase phase(telemetry::Engine::kBuffered,
                                 telemetry::Phase::kMergeResegment);
    ++stats_.segment_merges;
    std::vector<K> merged;
    std::vector<V> merged_values;
    merged.reserve(seg->keys.size() + seg->buffer.size());
    merged_values.reserve(merged.capacity());
    {
      size_t k = 0;
      size_t b = 0;
      while (k < seg->keys.size() || b < seg->buffer.size()) {
        const bool page_first =
            b == seg->buffer.size() ||
            (k < seg->keys.size() && seg->keys[k] < seg->buffer[b].key);
        if (page_first) {
          merged.push_back(seg->keys[k]);
          merged_values.push_back(seg->values[k]);
          ++k;
        } else if (k < seg->keys.size() && seg->keys[k] == seg->buffer[b].key) {
          assert(seg->buffer[b].tombstone);
          ++stats_.tombstones_cleared;
          ++k;
          ++b;
        } else {
          assert(!seg->buffer[b].tombstone);
          merged.push_back(seg->buffer[b].key);
          merged_values.push_back(seg->buffer[b].value);
          ++b;
        }
      }
    }

    // Exact-match floor: the merged segment's slot in the flat mirror,
    // spliced below once the replacement set is known.
    const size_t fpos = flat_dir_.FloorIndex(seg->first_key);
    assert(fpos != FlatDir::kNone && flat_dir_.key_at(fpos) == seg->first_key);
    directory_.Erase(seg->first_key);
    if (merged.empty()) {
      // Every key of this segment was deleted: retire and free it. Its key
      // range is absorbed by the floor rule (lookups fall to the left
      // neighbor). Swap-and-pop keeps sustained delete/reinsert churn from
      // growing segments_ without bound.
      auto it = std::find_if(
          segments_.begin(), segments_.end(),
          [seg](const std::unique_ptr<SegmentData>& p) {
            return p.get() == seg;
          });
      assert(it != segments_.end());
      std::swap(*it, segments_.back());
      segments_.pop_back();
      flat_dir_.Splice(fpos, 1, {}, {});
      --live_segments_;
      ++stats_.segments_retired;
      return;
    }

    const auto models = SegmentShrinkingCone<K>(
        std::span<const K>(merged), config_.error, config_.feasibility);
    stats_.segments_created += models.size();

    // Reuse the merged segment's slot for the first replacement model and
    // append the rest.
    std::vector<K> new_keys;
    std::vector<SegmentData*> new_ptrs;
    new_keys.reserve(models.size());
    new_ptrs.reserve(models.size());
    for (size_t m = 0; m < models.size(); ++m) {
      SegmentData* target;
      if (m == 0) {
        target = seg;
      } else {
        segments_.push_back(std::make_unique<SegmentData>());
        target = segments_.back().get();
        ++live_segments_;
      }
      const Segment<K>& model = models[m];
      target->first_key = model.first_key;
      target->slope = model.slope;
      target->intercept = model.intercept - static_cast<double>(model.start);
      target->keys.assign(merged.begin() + model.start,
                          merged.begin() + model.start + model.length);
      target->values.assign(merged_values.begin() + model.start,
                            merged_values.begin() + model.start + model.length);
      target->buffer.clear();
      target->buffer.shrink_to_fit();
      directory_.Insert(model.first_key, target);
      new_keys.push_back(model.first_key);
      new_ptrs.push_back(target);
    }
    // The replacement models span the same key range in order, so the
    // splice is positional; the common one-for-one case is an in-place
    // overwrite with no tail move.
    flat_dir_.Splice(fpos, 1, new_keys, new_ptrs);
  }

  FitingTreeConfig config_;
  size_t effective_buffer_ = 0;
  std::vector<std::unique_ptr<SegmentData>> segments_;
  Directory directory_;
  FlatDir flat_dir_;  // read-path mirror of directory_ (see BulkLoad)
  size_t live_segments_ = 0;
  size_t size_ = 0;
  FitingTreeStats stats_;
};

}  // namespace fitree

#endif  // FITREE_CORE_FITING_TREE_H_
