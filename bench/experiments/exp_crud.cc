// CRUD benchmark: YCSB-style update/delete mixes driven through all three
// engines — the buffered in-memory FitingTree ("single"), the
// ConcurrentFitingTree ("concurrent", 1 thread: what the CRUD path costs
// with its latches and epoch guards on), the mutex baseline ("mutex"), and
// the writable DiskFitingTree ("disk", every base probe through the buffer
// pool, mutations into the delta overlay).
//
// Sweep: mix (U 50r/50u, M 60r/15i/15u/10d, C 20r/40i/40d) × access skew
// (uniform, Zipfian theta=0.99). Every repetition rebuilds the structure,
// replays the identical op stream, and is validated against a std::map
// oracle replayed from the same stream — size, exact full-scan contents
// (keys AND payloads), and sampled absent probes. A mismatch aborts the
// bench (Die): a benchmark that measures wrong answers measures nothing.
//
// Disk cells additionally report pages-read/op, hit rate, the overlay size
// at the end of the run, and the cost of the explicit Compact() that folds
// the overlay back into the file (validated again afterwards).
//
// Env knobs (see EXPERIMENTS.md): FITREE_BENCH_SCALE scales sizes,
// FITREE_BENCH_N / FITREE_BENCH_OPS absolute overrides,
// FITREE_BENCH_PAGE_BYTES / FITREE_BENCH_CACHE_PAGES /
// FITREE_BENCH_DISK_PATH for the disk engine.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/io_stats.h"
#include "concurrency/concurrent_fiting_tree.h"
#include "concurrency/mutex_fiting_tree.h"
#include "core/fiting_tree.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "workloads/workloads.h"

namespace fitree::bench {
namespace {

using workloads::Access;
using workloads::Op;
using workloads::OpMix;
using workloads::OpType;

using Key = int64_t;
using Oracle = std::map<Key, uint64_t>;

constexpr uint64_t kBaseSeed = 0xC4DD5EEDull;
constexpr double kScanSelectivity = 0.0001;
constexpr double kError = 128.0;

// Payload convention for the bulk load: scrambled rank, so an update to
// any key observably changes the stored value.
uint64_t LoadValue(size_t rank) {
  return 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(rank + 1);
}

// Replays the op stream over the initial load, yielding the exact expected
// final contents (single-threaded streams make this schedule-free).
Oracle ReplayOracle(const std::vector<Key>& keys,
                    const std::vector<Op<Key>>& ops) {
  Oracle oracle;
  for (size_t i = 0; i < keys.size(); ++i) oracle[keys[i]] = LoadValue(i);
  for (const Op<Key>& op : ops) {
    switch (op.type) {
      case OpType::kInsert:
        oracle.emplace(op.key, op.value);
        break;
      case OpType::kUpdate: {
        const auto it = oracle.find(op.key);
        if (it != oracle.end()) it->second = op.value;
        break;
      }
      case OpType::kDelete:
        oracle.erase(op.key);
        break;
      case OpType::kRead:
      case OpType::kScan:
        break;
    }
  }
  return oracle;
}

// One timed pass of the op stream. Returns ns/op.
template <typename Index>
double DriveOps(Index& index, const std::vector<Op<Key>>& ops) {
  uint64_t sink = 0;
  Timer timer;
  for (const Op<Key>& op : ops) {
    switch (op.type) {
      case OpType::kRead:
        sink += index.Lookup(op.key).value_or(0);
        break;
      case OpType::kInsert:
        sink += index.Insert(op.key, op.value) ? 1 : 0;
        break;
      case OpType::kUpdate:
        sink += index.Update(op.key, op.value) ? 1 : 0;
        break;
      case OpType::kDelete:
        sink += index.Delete(op.key) ? 1 : 0;
        break;
      case OpType::kScan: {
        uint64_t acc = 0;
        index.ScanRange(op.key, op.hi,
                        [&](Key, uint64_t v) { acc += v; });
        sink += acc;
        break;
      }
    }
  }
  const double ns = static_cast<double>(timer.ElapsedNs());
  SinkValue(sink);
  return ops.empty() ? 0.0 : ns / static_cast<double>(ops.size());
}

// Exact post-run validation: size, full scan (keys and payloads), and
// sampled absent probes against the replayed oracle.
template <typename Index>
void ValidateCrud(Index& index, const Oracle& oracle, const char* label) {
  if (index.size() != oracle.size()) {
    Die(std::string("crud: ") + label + ": size " +
        std::to_string(index.size()) + " != oracle " +
        std::to_string(oracle.size()));
  }
  auto it = oracle.begin();
  bool ok = true;
  size_t scanned = 0;
  if (!oracle.empty()) {
    index.ScanRange(oracle.begin()->first, oracle.rbegin()->first,
                    [&](Key k, uint64_t v) {
                      ok = ok && it != oracle.end() && it->first == k &&
                           it->second == v;
                      if (it != oracle.end()) ++it;
                      ++scanned;
                    });
  }
  if (!ok || scanned != oracle.size()) {
    Die(std::string("crud: ") + label + ": full scan disagrees with oracle");
  }
  std::mt19937_64 rng(kBaseSeed ^ 0x5A5A);
  for (int i = 0; i < 2000 && !oracle.empty(); ++i) {
    const Key probe = static_cast<Key>(
        rng() % static_cast<uint64_t>(oracle.rbegin()->first + 2));
    const auto want = oracle.find(probe);
    const auto got = index.Lookup(probe);
    const bool match = want == oracle.end()
                           ? !got.has_value()
                           : (got.has_value() && *got == want->second);
    if (!match) {
      Die(std::string("crud: ") + label + ": lookup mismatch at key " +
          std::to_string(probe));
    }
  }
}

void RunCrud(Runner& runner) {
  const size_t n = static_cast<size_t>(GetEnvInt64(
      "FITREE_BENCH_N", static_cast<int64_t>(ScaledN(200'000))));
  const size_t ops_n = static_cast<size_t>(GetEnvInt64(
      "FITREE_BENCH_OPS", static_cast<int64_t>(ScaledN(100'000))));
  const size_t page_bytes = static_cast<size_t>(
      GetEnvInt64("FITREE_BENCH_PAGE_BYTES",
                  static_cast<int64_t>(storage::kDefaultPageBytes)));
  const size_t cache_override =
      static_cast<size_t>(GetEnvInt64("FITREE_BENCH_CACHE_PAGES", 0));
  const char* path_env = std::getenv("FITREE_BENCH_DISK_PATH");
  const std::string path = (path_env != nullptr && *path_env != '\0')
                               ? std::string(path_env) + ".crud"
                               : "bench_crud_index.fit";

  const auto keys = MemoKeys("real/Weblogs/" + std::to_string(n) + "/11",
                             [&] { return datasets::Weblogs(n, 11); });
  std::vector<uint64_t> values(keys->size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = LoadValue(i);

  const size_t leaf_cap = storage::LeafCapacity<Key>(page_bytes);
  const uint64_t leaf_pages = (keys->size() + leaf_cap - 1) / leaf_cap;
  const size_t cache_pages =
      cache_override > 0
          ? cache_override
          : std::max<size_t>(16, static_cast<size_t>(leaf_pages / 10));
  std::printf("crud: %zu keys, %zu ops, error=%.0f, cache_pages=%zu\n",
              keys->size(), ops_n, kError, cache_pages);

  const struct {
    const char* name;
    OpMix mix;
  } mixes[] = {
      {"U(50r/50u)", {.read = 0.5, .update = 0.5}},
      {"M(60r/15i/15u/10d)",
       {.read = 0.6, .insert = 0.15, .update = 0.15, .del = 0.10}},
      {"C(20r/40i/40d)", {.read = 0.2, .insert = 0.4, .del = 0.4}},
  };
  const Access accesses[] = {Access::kUniform, Access::kZipfian};

  for (const auto& mix : mixes) {
    for (const Access access : accesses) {
      const auto ops = workloads::MakeOpStream<Key>(
          *keys, ops_n, mix.mix, access, kScanSelectivity, kBaseSeed);
      const Oracle oracle = ReplayOracle(*keys, ops);
      const char* access_name =
          access == Access::kUniform ? "uniform" : "zipfian";

      const auto report = [&](const char* structure, const Stats& stats,
                              std::vector<std::pair<std::string, double>>
                                  metrics) {
        metrics.insert(metrics.begin(),
                       {"Mops", MopsFromNsPerOp(stats.p50)});
        runner.Report({{"mix", mix.name},
                       {"access", access_name},
                       {"structure", structure}},
                      stats, std::move(metrics));
      };

      {
        double merges = 0.0, segments = 0.0;
        const Stats stats = runner.CollectReps([&] {
          FitingTreeConfig config;
          config.error = kError;
          auto tree = FitingTree<Key>::Create(*keys, values, config);
          const double ns = DriveOps(*tree, ops);
          ValidateCrud(*tree, oracle, "single");
          merges = static_cast<double>(tree->stats().segment_merges);
          segments = static_cast<double>(tree->SegmentCount());
          return ns;
        }, /*warmup=*/false);
        report("single", stats, {{"segments", segments}, {"merges", merges}});
      }

      {
        double merges = 0.0, segments = 0.0;
        const Stats stats = runner.CollectReps([&] {
          ConcurrentFitingTreeConfig config;
          config.error = kError;
          auto tree = ConcurrentFitingTree<Key>::Create(*keys, values, config);
          const double ns = DriveOps(*tree, ops);
          tree->QuiesceMerges();
          ValidateCrud(*tree, oracle, "concurrent");
          merges = static_cast<double>(tree->stats().segment_merges);
          segments = static_cast<double>(tree->SegmentCount());
          return ns;
        }, /*warmup=*/false);
        report("concurrent", stats,
               {{"segments", segments}, {"merges", merges}});
      }

      {
        const Stats stats = runner.CollectReps([&] {
          FitingTreeConfig config;
          config.error = kError;
          auto tree = MutexFitingTree<Key>::Create(*keys, values, config);
          const double ns = DriveOps(*tree, ops);
          ValidateCrud(*tree, oracle, "mutex");
          return ns;
        }, /*warmup=*/false);
        report("mutex", stats, {});
      }

      {
        // Disk: serialize once per rep (fresh overlay), mutate through the
        // delta, validate, then compact and validate again.
        double pages_per_op = 0.0, hit_rate = 0.0, delta_entries = 0.0;
        double compact_ms = 0.0, compact_pages = 0.0;
        const Stats stats = runner.CollectReps([&] {
          const auto base =
              StaticFitingTree<Key>::Create(*keys, values, kError);
          if (!storage::WriteIndexFile(path, *base,
                                       storage::SegmentFileOptions{
                                           page_bytes})) {
            Die("crud: failed to write " + path);
          }
          typename storage::DiskFitingTree<Key>::Options options;
          options.cache_pages = cache_pages;
          auto disk = storage::DiskFitingTree<Key>::Open(path, options);
          if (disk == nullptr) Die("crud: cannot open " + path);
          disk->ResetIoStats();
          const double ns = DriveOps(*disk, ops);
          const IoStats io = disk->io();
          pages_per_op = static_cast<double>(io.pages_read) /
                         static_cast<double>(ops.size());
          hit_rate = io.HitRate();
          delta_entries = static_cast<double>(disk->DeltaEntries());
          ValidateCrud(*disk, oracle, "disk");
          Timer compact_timer;
          if (!disk->Compact()) Die("crud: Compact() failed");
          compact_ms =
              static_cast<double>(compact_timer.ElapsedNs()) / 1e6;
          compact_pages = static_cast<double>(disk->CompactPagesRewritten());
          if (disk->DeltaEntries() != 0) {
            Die("crud: overlay not empty after Compact()");
          }
          ValidateCrud(*disk, oracle, "disk+compact");
          if (disk->io_error()) Die("crud: disk I/O error");
          return ns;
        }, /*warmup=*/false);
        report("disk", stats,
               {{"pages_read_per_op", pages_per_op},
                {"hit_rate", hit_rate},
                {"delta_entries", delta_entries},
                {"compact_ms", compact_ms},
                {"compact_pages", compact_pages}});
      }
    }
  }
  std::remove(path.c_str());
}

FITREE_REGISTER_EXPERIMENT(
    "crud",
    "CRUD mixes (update/delete) on single/concurrent/mutex/disk (validated)",
    RunCrud);

}  // namespace
}  // namespace fitree::bench
