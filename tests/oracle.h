// Shared randomized differential-test driver: replays one seeded stream of
// insert/update/delete/lookup/scan operations against an engine under test
// AND a std::map oracle, asserting after every operation that the engine's
// bool/optional/scan results match the oracle exactly. The core,
// concurrent, and disk suites all reuse this driver (the ISSUE-5 "one
// harness, three engines" rule) instead of growing per-suite stress loops.
//
// Engine contract (duck-typed):
//   bool Insert(int64_t key, uint64_t value);   // true iff key was new
//   bool Update(int64_t key, uint64_t value);   // true iff key was present
//   bool Delete(int64_t key);                   // true iff key was present
//   std::optional<uint64_t> Lookup(int64_t key);
//   void/size_t ScanRange(lo, hi, fn(key, value));  // live entries, sorted
//   size_t size();
//
// Every assertion is wrapped in a SCOPED_TRACE carrying the seed, so a
// failing run prints the seed to replay it; call sites must wrap the
// driver in ASSERT_NO_FATAL_FAILURE so a mid-stream mismatch aborts the
// whole test. FITREE_PROPERTY_OPS overrides the op count — the CI
// sanitizer jobs crank it up via the `property` ctest label.

#ifndef FITREE_TESTS_ORACLE_H_
#define FITREE_TESTS_ORACLE_H_

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace fitree::testing {

// Op-type weights; normalized internally, so {3, 1, 1, 4, 1} reads as
// ratios, not probabilities.
struct CrudMix {
  double insert = 0.25;
  double update = 0.15;
  double del = 0.15;
  double lookup = 0.35;
  double scan = 0.10;
};

struct CrudOptions {
  uint64_t seed = 1;
  size_t ops = 20000;
  CrudMix mix;
  // Keys are key_min + u * key_stride for u uniform in [0, key_space): a
  // bounded universe, so inserts collide with earlier inserts, deletes hit
  // live keys, and delete-then-reinsert happens organically. stride > 1
  // leaves gaps so absent probes exist between live keys.
  int64_t key_min = 0;
  size_t key_space = 20000;
  int64_t key_stride = 3;
  size_t scan_span = 64;  // max scan width, in universe slots
  // Invoked every checkpoint_every ops (and once at the end) — suites hook
  // engine-specific maintenance here (disk Compact, concurrent quiesce).
  size_t checkpoint_every = 4096;
  std::function<void()> checkpoint;
};

// Op count for the property suites: FITREE_PROPERTY_OPS when set (>0),
// else `fallback`.
inline size_t PropertyOps(size_t fallback) {
  const char* env = std::getenv("FITREE_PROPERTY_OPS");
  if (env == nullptr || *env == '\0') return fallback;
  const long long parsed = std::atoll(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

// Deterministic initial load for a bounded-universe run: every
// `load_every`-th universe slot, payload derived from the key. Feed the
// result to the engine's bulk Create AND to `oracle`.
inline void MakeInitialLoad(const CrudOptions& opt, size_t load_every,
                            std::vector<int64_t>* keys,
                            std::vector<uint64_t>* values,
                            std::map<int64_t, uint64_t>* oracle) {
  keys->clear();
  values->clear();
  for (size_t u = 0; u < opt.key_space; u += load_every) {
    const int64_t key =
        opt.key_min + static_cast<int64_t>(u) * opt.key_stride;
    const uint64_t value = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(u);
    keys->push_back(key);
    values->push_back(value);
    if (oracle != nullptr) (*oracle)[key] = value;
  }
}

// Single-threaded differential run: `index` must already agree with
// `oracle` (e.g. both empty, or both seeded via MakeInitialLoad). Wrap the
// call in ASSERT_NO_FATAL_FAILURE.
template <typename Index>
void RunCrudDifferential(Index& index, std::map<int64_t, uint64_t>& oracle,
                         const CrudOptions& opt) {
  SCOPED_TRACE("differential stream: seed=" + std::to_string(opt.seed) +
               " ops=" + std::to_string(opt.ops));
  std::mt19937_64 rng(opt.seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double total =
      opt.mix.insert + opt.mix.update + opt.mix.del + opt.mix.lookup +
      opt.mix.scan;
  ASSERT_GT(total, 0.0);
  const double c_insert = opt.mix.insert / total;
  const double c_update = c_insert + opt.mix.update / total;
  const double c_del = c_update + opt.mix.del / total;
  const double c_lookup = c_del + opt.mix.lookup / total;

  const auto random_key = [&] {
    return opt.key_min +
           static_cast<int64_t>(rng() % opt.key_space) * opt.key_stride;
  };

  using Entry = std::pair<int64_t, uint64_t>;
  std::vector<Entry> got;
  std::vector<Entry> want;
  for (size_t i = 0; i < opt.ops; ++i) {
    const double draw = unif(rng);
    if (draw < c_insert) {
      const int64_t k = random_key();
      const uint64_t v = rng();
      const bool expect = oracle.emplace(k, v).second;
      ASSERT_EQ(index.Insert(k, v), expect) << "op " << i << ": Insert(" << k
                                            << ")";
    } else if (draw < c_update) {
      const int64_t k = random_key();
      const uint64_t v = rng();
      const auto it = oracle.find(k);
      const bool expect = it != oracle.end();
      if (expect) it->second = v;
      ASSERT_EQ(index.Update(k, v), expect) << "op " << i << ": Update(" << k
                                            << ")";
    } else if (draw < c_del) {
      const int64_t k = random_key();
      const bool expect = oracle.erase(k) > 0;
      ASSERT_EQ(index.Delete(k), expect) << "op " << i << ": Delete(" << k
                                         << ")";
    } else if (draw < c_lookup) {
      const int64_t k = random_key();
      const auto it = oracle.find(k);
      const std::optional<uint64_t> expect =
          it == oracle.end() ? std::nullopt
                             : std::optional<uint64_t>(it->second);
      ASSERT_EQ(index.Lookup(k), expect) << "op " << i << ": Lookup(" << k
                                         << ")";
    } else {
      const int64_t lo = random_key();
      const int64_t hi =
          lo + static_cast<int64_t>(rng() % (opt.scan_span + 1)) *
                   opt.key_stride;
      got.clear();
      index.ScanRange(lo, hi,
                      [&](int64_t k, uint64_t v) { got.emplace_back(k, v); });
      want.assign(oracle.lower_bound(lo), oracle.upper_bound(hi));
      ASSERT_EQ(got, want) << "op " << i << ": ScanRange(" << lo << ", " << hi
                           << ")";
    }
    if (opt.checkpoint_every > 0 && (i + 1) % opt.checkpoint_every == 0) {
      if (opt.checkpoint) opt.checkpoint();
      ASSERT_EQ(index.size(), oracle.size()) << "after op " << i;
    }
  }

  if (opt.checkpoint) opt.checkpoint();
  ASSERT_EQ(index.size(), oracle.size());
  got.clear();
  index.ScanRange(opt.key_min,
                  opt.key_min + static_cast<int64_t>(opt.key_space) *
                                    opt.key_stride,
                  [&](int64_t k, uint64_t v) { got.emplace_back(k, v); });
  want.assign(oracle.begin(), oracle.end());
  ASSERT_EQ(got, want) << "final full scan";
}

// ---- Partitioned multi-threaded differential run ------------------------
//
// Thread t owns the keys key_min + (u * threads + t) * key_stride: the
// partitions interleave slot-by-slot, so every segment holds keys from
// every thread (real latch/merge contention), yet no thread ever touches
// another's keys. That makes each thread's std::map oracle EXACT — every
// Insert/Update/Delete/Lookup return value is asserted inline, mid-run,
// under full concurrency, not just at a quiesced end state. Scans verify
// global sortedness plus exact agreement on the scanning thread's own
// slice. Results are collected per thread (first failure wins) rather than
// asserted from worker threads.

struct PartitionedCrudResult {
  bool failed = false;
  std::string message;
  std::map<int64_t, uint64_t> oracle;  // the thread's final key->value map
};

// Initial bulk load for a partitioned run: every `load_every`-th universe
// slot of every thread's partition, seeded into `oracles[t]`.
inline void MakePartitionedLoad(const CrudOptions& opt, int threads,
                                size_t load_every, std::vector<int64_t>* keys,
                                std::vector<uint64_t>* values,
                                std::vector<std::map<int64_t, uint64_t>>*
                                    oracles) {
  keys->clear();
  values->clear();
  oracles->assign(static_cast<size_t>(threads), {});
  for (size_t u = 0; u < opt.key_space; u += load_every) {
    for (int t = 0; t < threads; ++t) {
      const int64_t key =
          opt.key_min +
          (static_cast<int64_t>(u) * threads + t) * opt.key_stride;
      const uint64_t value =
          0x9E3779B97F4A7C15ull * static_cast<uint64_t>(u * threads + t);
      keys->push_back(key);
      values->push_back(value);
      (*oracles)[static_cast<size_t>(t)][key] = value;
    }
  }
}

template <typename Index>
void RunPartitionedCrudThread(Index& index, const CrudOptions& opt,
                              int threads, int t,
                              std::atomic<bool>& stop,
                              PartitionedCrudResult* result) {
  std::mt19937_64 rng(opt.seed + 0x9E3779B97F4A7C15ull *
                                     static_cast<uint64_t>(t + 1));
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double total = opt.mix.insert + opt.mix.update + opt.mix.del +
                       opt.mix.lookup + opt.mix.scan;
  const double c_insert = opt.mix.insert / total;
  const double c_update = c_insert + opt.mix.update / total;
  const double c_del = c_update + opt.mix.del / total;
  const double c_lookup = c_del + opt.mix.lookup / total;
  std::map<int64_t, uint64_t>& oracle = result->oracle;

  const auto own_key = [&] {
    const int64_t u = static_cast<int64_t>(rng() % opt.key_space);
    return opt.key_min + (u * threads + t) * opt.key_stride;
  };
  const auto fail = [&](size_t i, const std::string& what) {
    std::ostringstream os;
    os << "thread " << t << " op " << i << " (seed " << opt.seed
       << "): " << what;
    result->failed = true;
    result->message = os.str();
    stop.store(true, std::memory_order_relaxed);
  };

  std::vector<std::pair<int64_t, uint64_t>> scanned;
  for (size_t i = 0; i < opt.ops && !stop.load(std::memory_order_relaxed);
       ++i) {
    const double draw = unif(rng);
    if (draw < c_insert) {
      const int64_t k = own_key();
      const uint64_t v = rng();
      const bool expect = oracle.emplace(k, v).second;
      if (index.Insert(k, v) != expect) {
        return fail(i, "Insert(" + std::to_string(k) + ") != " +
                           std::to_string(expect));
      }
    } else if (draw < c_update) {
      const int64_t k = own_key();
      const uint64_t v = rng();
      const auto it = oracle.find(k);
      const bool expect = it != oracle.end();
      if (expect) it->second = v;
      if (index.Update(k, v) != expect) {
        return fail(i, "Update(" + std::to_string(k) + ") != " +
                           std::to_string(expect));
      }
    } else if (draw < c_del) {
      const int64_t k = own_key();
      const bool expect = oracle.erase(k) > 0;
      if (index.Delete(k) != expect) {
        return fail(i, "Delete(" + std::to_string(k) + ") != " +
                           std::to_string(expect));
      }
    } else if (draw < c_lookup) {
      const int64_t k = own_key();
      const auto it = oracle.find(k);
      const bool expect_present = it != oracle.end();
      // Compared field-wise rather than optional-vs-optional: gcc's
      // -Wmaybe-uninitialized misfires on the disengaged-payload read
      // inside optional::operator!= at high inlining depth.
      const std::optional<uint64_t> got = index.Lookup(k);
      if (got.has_value() != expect_present ||
          (expect_present && *got != it->second)) {
        return fail(i, "Lookup(" + std::to_string(k) + ") mismatch");
      }
    } else {
      const int64_t lo = own_key();
      const int64_t hi = lo + static_cast<int64_t>(rng() % (opt.scan_span + 1)) *
                                  opt.key_stride * threads;
      scanned.clear();
      index.ScanRange(lo, hi, [&](int64_t k, uint64_t v) {
        scanned.emplace_back(k, v);
      });
      // Global sortedness (strict: no duplicates within one snapshot).
      for (size_t s = 1; s < scanned.size(); ++s) {
        if (scanned[s - 1].first >= scanned[s].first) {
          return fail(i, "scan not strictly sorted");
        }
      }
      // Exactness on the scanning thread's own slice: nobody else mutates
      // these keys, and this thread is sequential, so the snapshot must
      // agree with the oracle exactly.
      auto it = oracle.lower_bound(lo);
      for (const auto& [k, v] : scanned) {
        if ((k - opt.key_min) / opt.key_stride % threads != t) continue;
        if (it == oracle.end() || it->first != k || it->second != v) {
          return fail(i, "scan slice mismatch at key " + std::to_string(k));
        }
        ++it;
      }
      if (it != oracle.end() && it->first <= hi) {
        return fail(i, "scan missed own key " + std::to_string(it->first));
      }
    }
  }
}

// Drives `threads` workers over disjoint interleaved partitions of the key
// universe. After the run (and `quiesce`, e.g. ConcurrentFitingTree::
// QuiesceMerges), the merged per-thread oracles must equal the index's
// size and full-scan contents. Wrap in ASSERT_NO_FATAL_FAILURE.
template <typename Index>
void RunPartitionedCrud(Index& index, int threads, const CrudOptions& opt,
                        std::vector<std::map<int64_t, uint64_t>> oracles,
                        const std::function<void()>& quiesce = {}) {
  SCOPED_TRACE("partitioned stream: seed=" + std::to_string(opt.seed) +
               " threads=" + std::to_string(threads) +
               " ops/thread=" + std::to_string(opt.ops));
  ASSERT_EQ(oracles.size(), static_cast<size_t>(threads));
  std::vector<PartitionedCrudResult> results(
      static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    results[static_cast<size_t>(t)].oracle =
        std::move(oracles[static_cast<size_t>(t)]);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      RunPartitionedCrudThread(index, opt, threads, t, stop,
                               &results[static_cast<size_t>(t)]);
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& r : results) {
    ASSERT_FALSE(r.failed) << r.message;
  }
  if (quiesce) quiesce();

  std::map<int64_t, uint64_t> merged;
  for (auto& r : results) merged.insert(r.oracle.begin(), r.oracle.end());
  ASSERT_EQ(index.size(), merged.size());
  std::vector<std::pair<int64_t, uint64_t>> got;
  index.ScanRange(
      opt.key_min,
      opt.key_min +
          static_cast<int64_t>(opt.key_space) * opt.key_stride * threads,
      [&](int64_t k, uint64_t v) { got.emplace_back(k, v); });
  const std::vector<std::pair<int64_t, uint64_t>> want(merged.begin(),
                                                       merged.end());
  ASSERT_EQ(got, want) << "final full scan after quiesce";
}

}  // namespace fitree::testing

#endif  // FITREE_TESTS_ORACLE_H_
