// Fixed-size page format for the disk-resident FITing-Tree (paper Sec 5's
// page-granular cost model made literal): every on-disk page carries a
// 16-byte typed header whose CRC32 covers the rest of the page, so torn
// writes and bit rot are detected at read time rather than silently served.

#ifndef FITREE_STORAGE_PAGE_H_
#define FITREE_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fitree::storage {

inline constexpr size_t kDefaultPageBytes = 4096;
// Small enough that tests can force multi-page files from tiny datasets,
// large enough that every page type fits its header plus one record.
inline constexpr size_t kMinPageBytes = 128;
inline constexpr uint16_t kPageFormatVersion = 1;

enum class PageType : uint16_t {
  kMeta = 1,          // page 0: file-wide metadata (SegmentFileMeta)
  kSegmentTable = 2,  // packed segment records
  kLeaf = 3,          // sorted key/payload entries
};

struct PageHeader {
  uint32_t checksum;  // CRC32 of bytes [4, page_bytes)
  uint16_t type;      // PageType
  uint16_t version;   // kPageFormatVersion
  uint32_t page_id;   // file-global page number, guards misdirected reads
  uint32_t count;     // records stored in this page
};
static_assert(sizeof(PageHeader) == 16);
inline constexpr size_t kPageHeaderBytes = sizeof(PageHeader);

namespace detail {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace detail

inline uint32_t Crc32(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32Table[(crc ^ p[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// Unaligned-safe record access inside raw page buffers.
template <typename T>
T LoadAs(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void StoreAs(std::byte* p, const T& v) {
  std::memcpy(p, &v, sizeof(T));
}

// Stamps the header and checksum onto a fully-populated page buffer. The
// caller must have zero-initialized the buffer before filling it so struct
// padding and the unused tail hash deterministically.
inline void SealPage(std::byte* page, size_t page_bytes, PageType type,
                     uint32_t page_id, uint32_t count) {
  PageHeader h{};
  h.checksum = 0;
  h.type = static_cast<uint16_t>(type);
  h.version = kPageFormatVersion;
  h.page_id = page_id;
  h.count = count;
  StoreAs(page, h);
  StoreAs(page, Crc32(page + sizeof(uint32_t), page_bytes - sizeof(uint32_t)));
}

// Returns false when the checksum, version, type, or page id disagree with
// what the caller expected to read.
inline bool VerifyPage(const std::byte* page, size_t page_bytes,
                       PageType expected_type, uint32_t expected_id,
                       PageHeader* out = nullptr) {
  const PageHeader h = LoadAs<PageHeader>(page);
  if (h.checksum !=
      Crc32(page + sizeof(uint32_t), page_bytes - sizeof(uint32_t))) {
    return false;
  }
  if (h.version != kPageFormatVersion) return false;
  if (h.type != static_cast<uint16_t>(expected_type)) return false;
  if (h.page_id != expected_id) return false;
  if (out != nullptr) *out = h;
  return true;
}

// Source of verified page reads for the buffer pool: implemented by
// SegmentFileReader (pread + VerifyPage) and by in-memory fakes in tests.
class PageSource {
 public:
  virtual ~PageSource() = default;

  // Fills `out` (page_bytes() long) with page `page_id`. Returns false on
  // I/O failure or page verification failure; `out` is then unspecified.
  virtual bool ReadPageInto(uint32_t page_id, std::byte* out) = 0;
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_PAGE_H_
