// Tests for the concurrency/ subsystem: epoch reclamation, the
// sequence-validated segment latch, the background merge worker, and the
// ConcurrentFitingTree itself — sequential CRUD correctness against the
// shared differential driver (tests/oracle.h), multi-threaded partitioned
// CRUD stress with exact per-thread oracles, and a no-leak shutdown
// assertion for the epoch retire list.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "concurrency/concurrent_fiting_tree.h"
#include "concurrency/epoch.h"
#include "concurrency/merge_worker.h"
#include "concurrency/mutex_fiting_tree.h"
#include "concurrency/seg_latch.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "tests/oracle.h"
#include "workloads/workloads.h"

namespace {

using fitree::ConcurrentFitingTree;
using fitree::ConcurrentFitingTreeConfig;
using fitree::EpochGuard;
using fitree::EpochManager;
using fitree::MergeWorker;
using fitree::MutexFitingTree;
using fitree::SegLatch;
using fitree::testing::CrudOptions;
using fitree::testing::MakeInitialLoad;
using fitree::testing::MakePartitionedLoad;
using fitree::testing::PropertyOps;
using fitree::testing::RunCrudDifferential;
using fitree::testing::RunPartitionedCrud;
using fitree::workloads::Access;

int StressThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(2u, std::min(4u, hw == 0 ? 2u : hw)));
}

// ---- EpochManager ----

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : alive(&counter) {
    alive->fetch_add(1);
  }
  ~Tracked() { alive->fetch_sub(1); }
  std::atomic<int>* alive;
};

TEST(EpochManager, RetireFreesAfterQuiesce) {
  std::atomic<int> alive{0};
  EpochManager epoch;
  for (int i = 0; i < 100; ++i) epoch.Retire(new Tracked(alive));
  EXPECT_TRUE(epoch.DrainAll());
  EXPECT_EQ(epoch.PendingCount(), 0u);
  EXPECT_EQ(alive.load(), 0);
  EXPECT_EQ(epoch.retired_count(), 100u);
  EXPECT_EQ(epoch.freed_count(), 100u);
}

TEST(EpochManager, ActiveGuardBlocksReclamation) {
  std::atomic<int> alive{0};
  EpochManager epoch;
  {
    EpochGuard guard(epoch);
    epoch.Retire(new Tracked(alive));
    // The guard was active when the object was retired, so no number of
    // reclaim passes may free it.
    for (int i = 0; i < 10; ++i) epoch.TryReclaim();
    EXPECT_EQ(alive.load(), 1);
    EXPECT_EQ(epoch.PendingCount(), 1u);
  }
  EXPECT_TRUE(epoch.DrainAll());
  EXPECT_EQ(alive.load(), 0);
}

TEST(EpochManager, NoRetireListLeakAtShutdown) {
  std::atomic<int> alive{0};
  {
    EpochManager epoch;
    std::vector<std::thread> threads;
    for (int t = 0; t < StressThreads(); ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          EpochGuard guard(epoch);
          epoch.Retire(new Tracked(alive));
        }
      });
    }
    for (auto& th : threads) th.join();
    // Destructor drains whatever reclaim passes left pending.
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(EpochManager, GuardsFromManyThreads) {
  EpochManager epoch;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        EpochGuard guard(epoch);
        sum.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sum.load(), 8000);
  EXPECT_EQ(epoch.ActiveGuards(), 0u);
}

// ---- SegLatch ----

TEST(SegLatch, MutualExclusion) {
  SegLatch latch;
  int64_t counter = 0;  // plain int: races would corrupt it (and trip TSan)
  std::vector<std::thread> threads;
  constexpr int kPerThread = 20000;
  for (int t = 0; t < StressThreads(); ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        SegLatch::Scoped lock(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kPerThread) * StressThreads());
}

TEST(SegLatch, SequenceDetectsWriters) {
  SegLatch latch;
  const uint32_t before = latch.ReadSeq();
  EXPECT_TRUE(latch.Validate(before));
  latch.Lock();
  latch.Unlock();
  // A completed critical section must invalidate the earlier sequence.
  EXPECT_FALSE(latch.Validate(before));
  const uint32_t after = latch.ReadSeq();
  EXPECT_EQ(after, before + 2);
}

TEST(SegLatch, TryLock) {
  SegLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

// ---- MergeWorker ----

TEST(MergeWorker, ProcessesAllItemsBeforeStop) {
  MergeWorker worker;
  std::atomic<int> handled{0};
  worker.Start([&](void*) { handled.fetch_add(1); });
  for (int i = 0; i < 100; ++i) worker.Enqueue(nullptr);
  worker.Stop();
  EXPECT_EQ(handled.load(), 100);
  EXPECT_EQ(worker.processed(), 100u);
}

TEST(MergeWorker, WaitIdleDrains) {
  MergeWorker worker;
  std::atomic<int> handled{0};
  worker.Start([&](void*) { handled.fetch_add(1); });
  for (int i = 0; i < 50; ++i) worker.Enqueue(nullptr);
  worker.WaitIdle();
  EXPECT_EQ(handled.load(), 50);
  worker.Stop();
}

// ---- ConcurrentFitingTree: sequential correctness ----

TEST(ConcurrentFitingTree, SequentialMatchesOracle) {
  const auto keys = fitree::datasets::Iot(20000, 7);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  ConcurrentFitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 8;  // tiny: force frequent merge-and-resegment
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, config);
  EXPECT_EQ(tree->size(), keys.size());

  const auto inserts =
      fitree::workloads::MakeInserts<int64_t>(keys, 5000, 21);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 5000, Access::kUniform, 0.3, 22);
  for (size_t i = 0; i < inserts.size(); ++i) {
    tree->Insert(inserts[i]);
    oracle.insert(inserts[i]);
    const int64_t probe = probes[i % probes.size()];
    ASSERT_EQ(tree->Contains(probe), oracle.count(probe) > 0)
        << "after insert " << i;
    ASSERT_TRUE(tree->Contains(inserts[i]));
  }
  EXPECT_EQ(tree->size(), oracle.size());
  EXPECT_GT(tree->stats().segment_merges, 0u);

  // Full-range scan returns exactly the oracle, in order.
  std::vector<int64_t> scanned;
  tree->ScanRange(*oracle.begin(), *oracle.rbegin(),
                  [&](int64_t k) { scanned.push_back(k); });
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), oracle.begin(),
                         oracle.end()));
}

TEST(ConcurrentFitingTree, EmptyTreeBootstrap) {
  ConcurrentFitingTreeConfig config;
  config.error = 16.0;
  auto tree = ConcurrentFitingTree<int64_t>::Create({}, config);
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_FALSE(tree->Contains(42));
  for (int64_t k = 100; k > 0; k -= 3) tree->Insert(k);
  for (int64_t k = 100; k > 0; k -= 3) EXPECT_TRUE(tree->Contains(k));
  EXPECT_FALSE(tree->Contains(99));
  EXPECT_EQ(tree->size(), 34u);
}

// ---- ConcurrentFitingTree: multi-threaded stress ----

// Shared harness (tests/oracle.h): `threads` workers drive full CRUD over
// disjoint interleaved key partitions, so every worker checks each
// Insert/Update/Delete/Lookup return inline against its own exact
// std::map oracle while merges churn shared segments underneath. The
// quiesced end state must equal the merged oracles, and the epoch retire
// list must drain clean.
void RunStress(bool background_merge) {
  const int threads = StressThreads();
  CrudOptions opt;
  opt.seed = 0x57E55;
  opt.ops = PropertyOps(20000);
  opt.key_space = 8000;
  opt.mix = {.insert = 0.3, .update = 0.15, .del = 0.15, .lookup = 0.3,
             .scan = 0.1};

  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  std::vector<std::map<int64_t, uint64_t>> oracles;
  MakePartitionedLoad(opt, threads, /*load_every=*/2, &keys, &values,
                      &oracles);

  ConcurrentFitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 8;  // merge-heavy on purpose
  config.background_merge = background_merge;
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, values, config);

  ASSERT_NO_FATAL_FAILURE(RunPartitionedCrud(
      *tree, threads, opt, std::move(oracles),
      [&] { tree->QuiesceMerges(); }));

  // Epoch hygiene: after a quiesced drain the retire list is empty and
  // everything ever retired has been freed — no leak at shutdown.
  EXPECT_TRUE(tree->epoch().DrainAll());
  EXPECT_EQ(tree->epoch().PendingCount(), 0u);
  EXPECT_EQ(tree->epoch().retired_count(), tree->epoch().freed_count());
  EXPECT_GT(tree->stats().segment_merges, 0u);
  EXPECT_GT(tree->stats().deletes, 0u);
}

TEST(ConcurrentCrudProperty, PartitionedStressInlineMerge) {
  RunStress(false);
}

TEST(ConcurrentCrudProperty, PartitionedStressBackgroundMerge) {
  RunStress(true);
}

// The single-threaded differential stream, same driver as the core and
// disk suites: exact op-by-op agreement with std::map, merges included.
TEST(ConcurrentCrudProperty, DifferentialVsMapOracle) {
  CrudOptions opt;
  opt.seed = 0xD1FF;
  opt.ops = PropertyOps(40000);
  std::map<int64_t, uint64_t> oracle;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  MakeInitialLoad(opt, /*load_every=*/2, &keys, &values, &oracle);
  ConcurrentFitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 8;
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, values, config);
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
  EXPECT_GT(tree->stats().segment_merges, 0u);
}

// The mutex-wrapped baseline answers the same stream identically (it wraps
// the core tree, so this differentially ties the two engines together).
TEST(ConcurrentCrudProperty, MutexTreeDifferentialVsMapOracle) {
  CrudOptions opt;
  opt.seed = 0xD1FF;
  opt.ops = PropertyOps(30000);
  std::map<int64_t, uint64_t> oracle;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  MakeInitialLoad(opt, /*load_every=*/2, &keys, &values, &oracle);
  fitree::FitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 8;
  auto tree = MutexFitingTree<int64_t>::Create(keys, values, config);
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
}

// ---- ConcurrentFitingTree: directed CRUD edges ----

TEST(ConcurrentFitingTree, DeleteThenReinsertAndBufferOnlyUpdate) {
  const std::vector<int64_t> keys{10, 20, 30, 40, 50};
  ConcurrentFitingTreeConfig config;
  config.error = 4.0;
  config.buffer_size = 16;  // keep the buffer resident, no merge
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, config);
  EXPECT_TRUE(tree->Delete(30));
  EXPECT_FALSE(tree->Delete(30));
  EXPECT_EQ(tree->Lookup(30), std::nullopt);
  EXPECT_TRUE(tree->Insert(30, 77));  // tombstone flips to live override
  EXPECT_EQ(tree->Lookup(30), std::optional<uint64_t>(77));
  EXPECT_EQ(tree->size(), 5u);
  // Update of a key living only in the delta buffer.
  ASSERT_TRUE(tree->Insert(25, 1));
  EXPECT_TRUE(tree->Update(25, 2));
  EXPECT_EQ(tree->Lookup(25), std::optional<uint64_t>(2));
  // Update of a paged key writes a live override (page is immutable).
  EXPECT_TRUE(tree->Update(20, 9));
  EXPECT_EQ(tree->Lookup(20), std::optional<uint64_t>(9));
  EXPECT_FALSE(tree->Update(99, 1));
  std::vector<std::pair<int64_t, uint64_t>> got;
  tree->ScanRange(0, 100, [&](int64_t k, uint64_t v) {
    got.emplace_back(k, v);
  });
  const std::vector<std::pair<int64_t, uint64_t>> want{
      {10, 0}, {20, 9}, {25, 2}, {30, 77}, {40, 0}, {50, 0}};
  EXPECT_EQ(got, want);
}

TEST(ConcurrentFitingTree, TombstoneHeavyBufferMergesAndCanEmptySegments) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 2000; ++i) keys.push_back(i * 5);
  ConcurrentFitingTreeConfig config;
  config.error = 16.0;
  config.buffer_size = 4;
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, config);
  // Delete everything, first key included: merges must clear tombstones,
  // retire emptied segments, and eventually empty the whole directory.
  for (const int64_t k : keys) ASSERT_TRUE(tree->Delete(k));
  EXPECT_EQ(tree->size(), 0u);
  for (int64_t i = 0; i < 2000; i += 97) EXPECT_FALSE(tree->Contains(i * 5));
  std::vector<int64_t> scanned;
  tree->ScanRange(-10, 20000, [&](int64_t k) { scanned.push_back(k); });
  EXPECT_TRUE(scanned.empty());
  EXPECT_GT(tree->stats().segment_merges, 0u);
  // A fully deleted tree bootstraps again.
  EXPECT_TRUE(tree->Insert(42, 6));
  EXPECT_EQ(tree->Lookup(42), std::optional<uint64_t>(6));
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_TRUE(tree->epoch().DrainAll());
}

TEST(ConcurrentFitingTree, ConcurrentInsertsIntoEmptyTree) {
  ConcurrentFitingTreeConfig config;
  config.error = 32.0;
  auto tree = ConcurrentFitingTree<int64_t>::Create({}, config);
  const int threads = StressThreads();
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Disjoint per-thread key ranges: every insert is unique.
        tree->Insert(static_cast<int64_t>(t) * 1000000 + i * 3);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree->size(),
            static_cast<size_t>(threads) * static_cast<size_t>(kPerThread));
  for (int t = 0; t < threads; ++t) {
    for (int i = 0; i < kPerThread; i += 97) {
      ASSERT_TRUE(
          tree->Contains(static_cast<int64_t>(t) * 1000000 + i * 3));
    }
  }
}

TEST(ConcurrentFitingTree, ConcurrentDuplicateInsertsKeepSetSemantics) {
  const auto keys = fitree::datasets::Step(5000, 100);
  ConcurrentFitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 4;
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, config);
  // All threads insert the *same* stream of keys: the final size must count
  // each distinct key once no matter how buffers and merges interleave.
  // (On staircase data AbsentKey can fall back to existing keys, so the
  // expectation is the union, not keys + distinct inserts.)
  const auto inserts = fitree::workloads::MakeInserts<int64_t>(keys, 3000, 5);
  std::set<int64_t> expected(keys.begin(), keys.end());
  expected.insert(inserts.begin(), inserts.end());
  std::vector<std::thread> workers;
  for (int t = 0; t < StressThreads(); ++t) {
    workers.emplace_back([&] {
      for (const int64_t k : inserts) tree->Insert(k);
    });
  }
  for (auto& w : workers) w.join();
  tree->QuiesceMerges();
  EXPECT_EQ(tree->size(), expected.size());
}

}  // namespace
