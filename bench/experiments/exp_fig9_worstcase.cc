// Figure 9: worst-case (step-function) data.
//
// 9b is the index size as a function of the error threshold; the timed
// body is the FITing-Tree build (segmentation + bulk load), reported as
// ns per key. Expected shape: below the step size FITing-Tree matches the
// fixed-paging size (one segment per step, i.e. per `error` keys) while
// staying below the full index; once the error passes the step size the
// whole dataset collapses into a single segment and the index size drops
// by orders of magnitude.

#include <memory>
#include <span>
#include <string>

#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

void RunFig9(Runner& runner) {
  const size_t n = ScaledN(1000000);
  const size_t step = 100;
  const auto keys =
      MemoKeys("step/" + std::to_string(n) + '/' + std::to_string(step),
               [&] { return datasets::Step(n, step); });

  FullIndex<int64_t> full{std::span<const int64_t>(*keys)};
  const double full_mb = static_cast<double>(full.IndexSizeBytes()) / kMB;

  for (double error = 10.0; error <= 1e6; error *= 10.0) {
    std::unique_ptr<FitingTree<int64_t>> fiting;
    const Stats stats = runner.CollectReps([&] {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = 0;
      Timer timer;
      fiting = FitingTree<int64_t>::Create(*keys, config);
      return static_cast<double>(timer.ElapsedNs()) /
             static_cast<double>(keys->size());
    }, /*warmup=*/false);

    PagedIndexConfig pconfig;
    pconfig.page_size = static_cast<size_t>(error);
    auto paged = PagedIndex<int64_t>::Create(*keys, pconfig);

    runner.Report(
        {{"error", TablePrinter::Fmt(error, 0)}}, stats,
        {{"FITing_MB", static_cast<double>(fiting->IndexSizeBytes()) / kMB},
         {"FITing_segments", static_cast<double>(fiting->SegmentCount())},
         {"Fixed_MB", static_cast<double>(paged->IndexSizeBytes()) / kMB},
         {"Full_MB", full_mb}});
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig9_worstcase",
    "Fig 9b: worst-case step data, index size vs error (build ns/key)",
    RunFig9);

}  // namespace
}  // namespace fitree::bench
