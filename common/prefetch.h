// Software prefetch helpers for the lookup hot path: once the directory
// has resolved a segment, the model's predicted rank names the cache line
// the bounded search will touch first, so the engines ask for it while the
// intervening work (buffer/delta probes) is still executing. Prefetches
// are hints — issuing one for a stale or evicted address is always safe.

#ifndef FITREE_COMMON_PREFETCH_H_
#define FITREE_COMMON_PREFETCH_H_

#include <cstddef>

namespace fitree {

inline constexpr size_t kCacheLineBytes = 64;

// Read-prefetch the cache line containing `p` into all cache levels.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// Read-prefetch every cache line in [p, p + bytes).
inline void PrefetchReadRange(const void* p, size_t bytes) {
  const auto* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += kCacheLineBytes) {
    PrefetchRead(c + off);
  }
  if (bytes > 0) PrefetchRead(c + bytes - 1);
}

}  // namespace fitree

#endif  // FITREE_COMMON_PREFETCH_H_
