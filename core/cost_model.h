// Cost model for FITing-Tree lookups and index size (paper Sec 5/6).
//
// The latency model charges one full random-access cost `c` per B+ tree
// level and per binary-search step over the error window, so it upper-bounds
// the measured latency (real descents mostly hit cache); the size model
// assumes half-full tree nodes, so it over-estimates a bulk-loaded tree.
// LearnSegmentCurve + PickErrorFor{Latency,Space} implement the two
// DBA-facing selectors: the largest error meeting a latency SLA (min space)
// and the smallest error fitting a space budget (min latency).

#ifndef FITREE_CORE_COST_MODEL_H_
#define FITREE_CORE_COST_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "core/shrinking_cone.h"

namespace fitree {

struct CostModelParams {
  double cache_miss_ns = 50.0;  // calibrated random-access cost `c`
  double fanout = 16.0;         // B+ tree node fanout
  double fill = 0.5;            // assumed node fill factor
  double buffer_size = 0.0;     // per-segment insert-buffer entries
};

// Predicted lookup latency for a tree over `segments` segments built with
// error threshold `error`.
inline double EstimateLookupLatencyNs(double error, double segments,
                                      const CostModelParams& params) {
  const double effective_fanout = std::max(2.0, params.fanout * params.fill);
  const double levels = std::max(
      1.0, std::ceil(std::log(std::max(2.0, segments)) /
                     std::log(effective_fanout)));
  // Final search spans the 2*error window plus the buffer.
  const double window = 2.0 * error + params.buffer_size + 2.0;
  return params.cache_miss_ns * (levels + std::log2(window));
}

// Predicted index size: directory entries at the assumed fill factor, the
// inner levels above them, and the per-segment model metadata.
inline double EstimateIndexSizeBytes(double segments,
                                     const CostModelParams& params) {
  constexpr double kEntryBytes = 16.0;     // key + pointer
  constexpr double kSegmentMetaBytes = 32.0;  // key + slope + intercept + ptr
  const double fill = std::max(0.1, params.fill);
  const double effective_fanout = std::max(2.0, params.fanout * fill);
  const double leaf_bytes = segments * kEntryBytes / fill;
  const double inner_bytes = leaf_bytes / (effective_fanout - 1.0);
  return leaf_bytes + inner_bytes + segments * kSegmentMetaBytes;
}

struct SegmentCurvePoint {
  double error = 0.0;
  double segments = 0.0;
};

// segments(error) sampled at the given thresholds; the data-dependent input
// to both selectors.
using SegmentCurve = std::vector<SegmentCurvePoint>;

template <typename K>
SegmentCurve LearnSegmentCurve(const std::vector<K>& keys,
                               const std::vector<double>& errors) {
  SegmentCurve curve;
  curve.reserve(errors.size());
  for (const double error : errors) {
    const auto segments =
        SegmentShrinkingCone<K>(std::span<const K>(keys), error);
    curve.push_back({error, static_cast<double>(segments.size())});
  }
  return curve;
}

struct ErrorPick {
  double error = 0.0;
  double est_latency_ns = 0.0;
  double est_size_bytes = 0.0;
};

namespace detail {

inline std::optional<double> CurveSegmentsAt(const SegmentCurve& curve,
                                             double error) {
  for (const auto& point : curve) {
    if (point.error == error) return point.segments;
  }
  return std::nullopt;
}

}  // namespace detail

// Largest candidate error whose estimated latency meets `max_latency_ns`
// (larger error => fewer segments => smaller index). Paper Eq. 6.1.
inline std::optional<ErrorPick> PickErrorForLatency(
    const SegmentCurve& curve, const CostModelParams& params,
    double max_latency_ns, const std::vector<double>& candidates) {
  std::optional<ErrorPick> best;
  for (const double error : candidates) {
    const auto segments = detail::CurveSegmentsAt(curve, error);
    if (!segments.has_value()) continue;
    const double latency = EstimateLookupLatencyNs(error, *segments, params);
    if (latency > max_latency_ns) continue;
    const double size = EstimateIndexSizeBytes(*segments, params);
    if (!best.has_value() || size < best->est_size_bytes) {
      best = ErrorPick{error, latency, size};
    }
  }
  return best;
}

// Fastest candidate error whose estimated index size fits
// `max_size_bytes`. Paper Eq. 6.2.
inline std::optional<ErrorPick> PickErrorForSpace(
    const SegmentCurve& curve, const CostModelParams& params,
    double max_size_bytes, const std::vector<double>& candidates) {
  std::optional<ErrorPick> best;
  for (const double error : candidates) {
    const auto segments = detail::CurveSegmentsAt(curve, error);
    if (!segments.has_value()) continue;
    const double size = EstimateIndexSizeBytes(*segments, params);
    if (size > max_size_bytes) continue;
    const double latency = EstimateLookupLatencyNs(error, *segments, params);
    if (!best.has_value() || latency < best->est_latency_ns) {
      best = ErrorPick{error, latency, size};
    }
  }
  return best;
}

}  // namespace fitree

#endif  // FITREE_CORE_COST_MODEL_H_
