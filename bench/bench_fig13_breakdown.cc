// Figure 13 (appendix): lookup time breakdown — tree descent vs. in-page
// search — for FITing-Tree and the fixed-paging baseline across error /
// page-size scales.
//
// Expected shape: at small errors the B+ tree dominates both methods, but
// FITing-Tree's tree is much smaller (fewer entries), so its tree share
// shrinks faster; at huge errors nearly all time goes to the in-segment
// search for both.

#include <iostream>
#include <string>

#include "baselines/paged_index.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

int main() {
  using fitree::FitingTree;
  using fitree::FitingTreeConfig;
  using fitree::PagedIndex;
  using fitree::PagedIndexConfig;
  using fitree::TablePrinter;

  const size_t n = fitree::bench::ScaledN(1000000);
  const size_t probes_n = fitree::bench::ScaledN(100000);
  const auto keys = fitree::datasets::Weblogs(n, 1);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, probes_n, fitree::workloads::Access::kUniform, 0.0, 2);

  fitree::bench::PrintHeader(
      "Figure 13: lookup breakdown, tree% vs page% (Weblogs, n=" +
      std::to_string(n) + ")");
  TablePrinter table({"error/page", "FITing_tree%", "FITing_page%",
                      "Fixed_tree%", "Fixed_page%"});

  for (double scale : {10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    FitingTreeConfig fconfig;
    fconfig.error = scale;
    fconfig.buffer_size = 0;
    auto fiting = FitingTree<int64_t>::Create(keys, fconfig);
    int64_t f_tree_ns = 0, f_page_ns = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      fiting->ContainsWithBreakdown(probes[i], &f_tree_ns, &f_page_ns);
    }

    PagedIndexConfig pconfig;
    pconfig.page_size = static_cast<size_t>(scale);
    pconfig.buffer_size = 0;
    auto paged = PagedIndex<int64_t>::Create(keys, pconfig);
    int64_t p_tree_ns = 0, p_page_ns = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      paged->ContainsWithBreakdown(probes[i], &p_tree_ns, &p_page_ns);
    }

    const double f_total = static_cast<double>(f_tree_ns + f_page_ns);
    const double p_total = static_cast<double>(p_tree_ns + p_page_ns);
    table.AddRow(
        {TablePrinter::Fmt(scale, 0),
         TablePrinter::Fmt(100.0 * static_cast<double>(f_tree_ns) / f_total,
                           1),
         TablePrinter::Fmt(100.0 * static_cast<double>(f_page_ns) / f_total,
                           1),
         TablePrinter::Fmt(100.0 * static_cast<double>(p_tree_ns) / p_total,
                           1),
         TablePrinter::Fmt(100.0 * static_cast<double>(p_page_ns) / p_total,
                           1)});
  }
  table.Print(std::cout);
  return 0;
}
