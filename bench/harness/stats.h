// Outlier-robust summary statistics over benchmark repetitions.
//
// Every registered experiment reports each measured cell as a Stats record
// computed from `reps` independent repetition samples (ns/op per rep). The
// percentiles use the nearest-rank method, so on small rep counts they are
// actual observed samples rather than interpolated values: with 3 reps the
// p50 is the median rep and the p99 is the slowest rep. `min` is the
// noise-floor estimate (the least-disturbed rep) and is what bench_diff.py
// compares by default at smoke scale.

#ifndef FITREE_BENCH_HARNESS_STATS_H_
#define FITREE_BENCH_HARNESS_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace fitree::bench {

struct Stats {
  int reps = 0;  // 0 means "no samples": the record carries metrics only
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double stddev = 0.0;

  bool valid() const { return reps > 0; }

  // Nearest-rank percentile of `sorted` (ascending), q in [0, 1].
  static double Percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const size_t index =
        rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    return sorted[std::min(index, sorted.size() - 1)];
  }

  static Stats From(std::vector<double> samples) {
    Stats s;
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    s.reps = static_cast<int>(samples.size());
    s.min = samples.front();
    s.max = samples.back();
    double sum = 0.0;
    for (const double v : samples) sum += v;
    s.mean = sum / static_cast<double>(samples.size());
    s.p50 = Percentile(samples, 0.5);
    s.p99 = Percentile(samples, 0.99);
    double sq = 0.0;
    for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = samples.size() > 1
                   ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                   : 0.0;
    return s;
  }
};

}  // namespace fitree::bench

#endif  // FITREE_BENCH_HARNESS_STATS_H_
