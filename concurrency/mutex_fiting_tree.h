// Coarse-grained baseline for bench_concurrent and the stress tests: the
// single-threaded FitingTree behind one std::mutex. Every operation —
// including pure lookups — serializes on the global lock, so its aggregate
// throughput is flat (or worse, with contention) as threads are added.
// That is the yardstick the epoch/latch design in
// concurrent_fiting_tree.h has to beat.

#ifndef FITREE_CONCURRENCY_MUTEX_FITING_TREE_H_
#define FITREE_CONCURRENCY_MUTEX_FITING_TREE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/fiting_tree.h"

namespace fitree {

template <typename K>
class MutexFitingTree {
 public:
  static std::unique_ptr<MutexFitingTree<K>> Create(
      const std::vector<K>& keys, const FitingTreeConfig& config) {
    auto wrapper = std::make_unique<MutexFitingTree<K>>();
    wrapper->tree_ = FitingTree<K>::Create(keys, config);
    return wrapper;
  }

  bool Contains(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Contains(key);
  }

  std::optional<K> Find(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->Find(key);
  }

  void Insert(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    tree_->Insert(key);
  }

  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    tree_->ScanRange(lo, hi, fn);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->size();
  }

  size_t SegmentCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->SegmentCount();
  }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<FitingTree<K>> tree_;
};

}  // namespace fitree

#endif  // FITREE_CONCURRENCY_MUTEX_FITING_TREE_H_
