// Calibrates the random-access (cache miss) cost `c` used by the cost model
// (paper Sec 5 measured c = 50ns on its hardware). A Sattolo-cycle pointer
// chase defeats both the prefetcher and out-of-order overlap, so each hop
// pays the full dependent-load latency of the given working-set size.

#ifndef FITREE_COMMON_MEMORY_COST_H_
#define FITREE_COMMON_MEMORY_COST_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/timer.h"

namespace fitree {

// Average latency in ns of a dependent random read over a working set of
// `working_set_bytes`. Small working sets report cache latency; sets larger
// than LLC report DRAM latency.
inline double MeasureRandomAccessNs(uint64_t working_set_bytes) {
  const size_t slots =
      static_cast<size_t>(working_set_bytes / sizeof(uint32_t));
  if (slots < 2) return 1.0;

  // next[i] holds the next index of a single random cycle through all slots
  // (Sattolo's algorithm), so the chase touches every slot exactly once per
  // lap in unpredictable order.
  std::vector<uint32_t> next(slots);
  for (size_t i = 0; i < slots; ++i) next[i] = static_cast<uint32_t>(i);
  std::mt19937_64 rng(0x5eedc0de);
  for (size_t i = slots - 1; i > 0; --i) {
    const size_t j = rng() % i;  // j in [0, i): Sattolo, not Fisher-Yates.
    std::swap(next[i], next[j]);
  }

  constexpr size_t kWarmupHops = 1 << 16;
  const size_t hops = slots < (1u << 21) ? (1u << 22) : (1u << 21);
  uint32_t cursor = 0;
  for (size_t i = 0; i < kWarmupHops; ++i) cursor = next[cursor];

  Timer timer;
  for (size_t i = 0; i < hops; ++i) cursor = next[cursor];
  const double ns = static_cast<double>(timer.ElapsedNs());

  // Publish the cursor so the chase cannot be optimized away.
  static volatile uint32_t g_sink = 0;
  g_sink = g_sink + cursor;
  return ns / static_cast<double>(hops);
}

}  // namespace fitree

#endif  // FITREE_COMMON_MEMORY_COST_H_
