// Tests for the benchmark harness (bench/harness/): registry
// registration/filtering, repetition collection, stats aggregation on
// known samples, JSON round-trips of result records, the shared sink, the
// dataset memo cache, and tools/bench_diff.py's threshold logic driven
// through real fixture files.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness/json_writer.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "bench/harness/stats.h"
#include "common/sink.h"

namespace fitree::bench {
namespace {

// --- registry -------------------------------------------------------------

void DummyA(Runner&) {}
void DummyB(Runner&) {}

TEST(Registry, RegistersFiltersAndSorts) {
  Registry registry;  // a private instance: the singleton belongs to fitree_bench
  registry.Register({"zeta_lookup", "z", &DummyA});
  registry.Register({"alpha_insert", "a", &DummyB});
  registry.Register({"alpha_lookup", "a2", &DummyA});

  const auto all = registry.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "alpha_insert");
  EXPECT_EQ(all[1]->name, "alpha_lookup");
  EXPECT_EQ(all[2]->name, "zeta_lookup");

  EXPECT_EQ(registry.Match("").size(), 3u);           // empty matches all
  EXPECT_EQ(registry.Match("lookup").size(), 2u);     // substring
  EXPECT_EQ(registry.Match("alpha").size(), 2u);
  EXPECT_EQ(registry.Match("zeta,insert").size(), 2u);  // comma = OR
  EXPECT_TRUE(registry.Match("nomatch").empty());

  const auto matched = registry.Match("lookup");
  EXPECT_EQ(matched[0]->name, "alpha_lookup");  // matches stay sorted
  EXPECT_EQ(matched[1]->name, "zeta_lookup");
}

TEST(Registry, GlobalMacroRegistration) {
  // The production experiments register into the singleton at static-init
  // time; this test binary links none of them, so the singleton only holds
  // what tests put there. Register one and find it.
  const bool registered =
      Registry::Instance().Register({"test_probe", "probe", &DummyA});
  EXPECT_TRUE(registered);
  EXPECT_FALSE(Registry::Instance().Match("test_probe").empty());
}

// --- runner repetitions ---------------------------------------------------

TEST(Runner, CollectsRepsWithWarmup) {
  Runner runner("exp", 3);
  int calls = 0;
  const Stats stats = runner.CollectReps([&] {
    ++calls;
    return static_cast<double>(calls);
  });
  EXPECT_EQ(calls, 4);  // 1 warmup + 3 measured
  EXPECT_EQ(stats.reps, 3);
  EXPECT_EQ(stats.min, 2.0);  // warmup sample (1.0) is discarded
  EXPECT_EQ(stats.max, 4.0);
}

TEST(Runner, NoWarmupWhenSingleRepOrDisabled) {
  Runner smoke("exp", 1);
  int calls = 0;
  (void)smoke.CollectReps([&] { ++calls; return 1.0; });
  EXPECT_EQ(calls, 1);  // --reps=1: no warmup, fast CI smoke

  Runner mutating("exp", 2);
  calls = 0;
  (void)mutating.CollectReps([&] { ++calls; return 1.0; }, /*warmup=*/false);
  EXPECT_EQ(calls, 2);
}

TEST(Runner, ReportAccumulatesRecords) {
  Runner runner("exp", 1);
  runner.Report({{"k", "v"}}, Stats::From({1.0}), {{"m", 2.0}});
  runner.Report({{"k", "w"}}, Stats{});
  ASSERT_EQ(runner.records().size(), 2u);
  EXPECT_EQ(runner.records()[0].experiment, "exp");
  EXPECT_TRUE(runner.records()[0].ns_per_op.valid());
  EXPECT_FALSE(runner.records()[1].ns_per_op.valid());
}

// --- stats ----------------------------------------------------------------

TEST(Stats, KnownSamples) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(i);  // unsorted on purpose
  const Stats s = Stats::From(samples);
  EXPECT_EQ(s.reps, 100);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);  // nearest rank: ceil(0.5*100) = 50th
  EXPECT_DOUBLE_EQ(s.p99, 99.0);  // ceil(0.99*100) = 99th
  EXPECT_NEAR(s.stddev, 29.011, 0.01);
}

TEST(Stats, SmallRepCounts) {
  const Stats s3 = Stats::From({30.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(s3.p50, 20.0);  // the median rep
  EXPECT_DOUBLE_EQ(s3.p99, 30.0);  // the slowest rep
  const Stats s1 = Stats::From({42.0});
  EXPECT_DOUBLE_EQ(s1.p50, 42.0);
  EXPECT_DOUBLE_EQ(s1.stddev, 0.0);
  const Stats empty = Stats::From({});
  EXPECT_FALSE(empty.valid());
}

// --- JSON -----------------------------------------------------------------

TEST(Json, ParsePrimitivesAndStructure) {
  auto v = Json::Parse(R"({"a": [1, 2.5, -3e2], "b": "x\ny", "c": true,
                           "d": null})");
  ASSERT_TRUE(v.has_value());
  const Json* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsNumber(), 2.5);
  EXPECT_DOUBLE_EQ(a->AsArray()[2].AsNumber(), -300.0);
  EXPECT_EQ(v->Find("b")->AsString(), "x\ny");
  EXPECT_TRUE(v->Find("c")->AsBool());
  EXPECT_TRUE(v->Find("d")->is_null());

  EXPECT_FALSE(Json::Parse("{").has_value());
  EXPECT_FALSE(Json::Parse("[1,]").has_value());
  EXPECT_FALSE(Json::Parse("1 trailing").has_value());
}

TEST(Json, DumpParsesBackIncludingAwkwardDoubles) {
  Json obj = Json::Object();
  obj.Set("tiny", Json(1.0 / 3.0));
  obj.Set("big", Json(1.23456789e18));
  obj.Set("text", Json(std::string("quote\" slash\\ tab\t")));
  const auto parsed = Json::Parse(obj.Dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("tiny")->AsNumber(), 1.0 / 3.0);  // bit-exact
  EXPECT_EQ(parsed->Find("big")->AsNumber(), 1.23456789e18);
  EXPECT_EQ(parsed->Find("text")->AsString(), "quote\" slash\\ tab\t");
}

TEST(Json, ResultRecordRoundTrip) {
  ResultRecord record;
  record.experiment = "fig6_lookup";
  record.params = {{"dataset", "Weblogs"}, {"method", "FITing-Tree"},
                   {"param", "e=16"}};
  record.ns_per_op = Stats::From({181.25, 179.5, 190.75});
  record.metrics = {{"index_size_MB", 12.3456}, {"segments", 42.0}};

  const std::string text = ResultRecordToJson(record).Dump(2);
  const auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto back = ResultRecordFromJson(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, record);
}

TEST(Json, MetricsOnlyRecordRoundTrip) {
  ResultRecord record;
  record.experiment = "disk";
  record.params = {{"op", "file"}};
  record.metrics = {{"file_MB", 3.25}};
  const auto parsed = Json::Parse(ResultRecordToJson(record).Dump(0));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("ns_per_op"), nullptr);  // omitted when invalid
  const auto back = ResultRecordFromJson(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, record);
}

// --- shared sink ----------------------------------------------------------

TEST(Sink, SingleSharedDefinition) {
  const uint64_t before = SinkTotal();
  SinkValue(7);
  SinkValue(5);
  EXPECT_EQ(SinkTotal(), before + 12);  // one accumulator, not one per TU
}

// --- memo cache -----------------------------------------------------------

TEST(Memo, ReturnsSameVectorForSameKey) {
  int builds = 0;
  const auto make = [&] {
    ++builds;
    return std::vector<int64_t>{1, 2, 3};
  };
  const auto a = MemoKeys("test/memo/a", make);
  const auto b = MemoKeys("test/memo/a", make);
  const auto c = MemoKeys("test/memo/b", make);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(builds, 2);
}

// --- bench_diff.py --------------------------------------------------------

class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("python3 --version > /dev/null 2>&1") != 0) {
      GTEST_SKIP() << "python3 not available";
    }
  }

  // Writes a results document with one record at `ns` ns/op.
  std::string WriteDoc(const std::string& name, double ns) {
    ResultRecord record;
    record.experiment = "exp";
    record.params = {{"k", "v"}};
    record.ns_per_op = Stats::From({ns, ns * 1.01, ns * 1.02});
    Json env = Json::Object();
    env.Set("git_sha", Json("test"));
    const Json doc = MakeResultsDocument(env, 3, {record});
    const std::string path =
        ::testing::TempDir() + "fitree_bench_diff_" + name + ".json";
    std::ofstream out(path);
    out << doc.Dump(2);
    return path;
  }

  // Runs bench_diff.py and returns its exit status.
  int RunDiff(const std::string& baseline, const std::string& current,
              const std::string& extra_flags) {
    const std::string cmd = "python3 '" FITREE_SOURCE_DIR
                            "/tools/bench_diff.py' '" +
                            baseline + "' '" + current + "' " + extra_flags +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

TEST_F(BenchDiffTest, PassesWithinThreshold) {
  const auto baseline = WriteDoc("base1", 100.0);
  const auto current = WriteDoc("cur1", 120.0);  // 1.2x < 1.5x
  EXPECT_EQ(RunDiff(baseline, current, "--threshold 1.5"), 0);
}

TEST_F(BenchDiffTest, FailsPastThreshold) {
  const auto baseline = WriteDoc("base2", 100.0);
  const auto current = WriteDoc("cur2", 200.0);  // 2.0x > 1.5x
  EXPECT_EQ(RunDiff(baseline, current, "--threshold 1.5"), 1);
}

TEST_F(BenchDiffTest, ImprovementNeverFails) {
  const auto baseline = WriteDoc("base3", 200.0);
  const auto current = WriteDoc("cur3", 50.0);  // 4x faster
  EXPECT_EQ(RunDiff(baseline, current, "--threshold 1.5"), 0);
}

TEST_F(BenchDiffTest, WarnOnlySwallowsRegression) {
  const auto baseline = WriteDoc("base4", 100.0);
  const auto current = WriteDoc("cur4", 500.0);
  EXPECT_EQ(RunDiff(baseline, current, "--threshold 1.5 --warn-only"), 0);
}

TEST_F(BenchDiffTest, ComparesChosenMetric) {
  // p99 regresses 3x while min stays flat: the default (min) passes, the
  // p99 gate fails.
  ResultRecord base_record, cur_record;
  base_record.experiment = cur_record.experiment = "exp";
  base_record.params = cur_record.params = {{"k", "v"}};
  base_record.ns_per_op = Stats::From({100.0, 101.0, 102.0});
  cur_record.ns_per_op = Stats::From({100.0, 101.0, 306.0});
  Json env = Json::Object();
  const std::string base_path = ::testing::TempDir() + "fitree_diff_m_a.json";
  const std::string cur_path = ::testing::TempDir() + "fitree_diff_m_b.json";
  std::ofstream(base_path) << MakeResultsDocument(env, 3, {base_record}).Dump(2);
  std::ofstream(cur_path) << MakeResultsDocument(env, 3, {cur_record}).Dump(2);
  EXPECT_EQ(RunDiff(base_path, cur_path, "--threshold 1.5 --metric min"), 0);
  EXPECT_EQ(RunDiff(base_path, cur_path, "--threshold 1.5 --metric p99"), 1);
}

TEST_F(BenchDiffTest, MalformedInputExitsTwo) {
  const std::string path = ::testing::TempDir() + "fitree_diff_bad.json";
  std::ofstream(path) << "not json";
  const auto good = WriteDoc("base5", 100.0);
  EXPECT_EQ(RunDiff(path, good, ""), 2);
}

TEST_F(BenchDiffTest, UnknownRecordFieldsDoNotBreakPairing) {
  // A current file whose record carries exporter additions bench_diff has
  // never heard of (perf block, unknown arrays). If pairing ignored the
  // extras the 4x regression is detected (exit 1); if the extras leaked
  // into the pairing key the records would not match and the gate would
  // silently pass.
  const auto baseline = WriteDoc("base6", 100.0);
  const std::string current =
      ::testing::TempDir() + "fitree_diff_extra.json";
  std::ofstream(current) << R"({
    "schema_version": 1,
    "results": [{
      "experiment": "exp",
      "params": {"k": "v"},
      "ns_per_op": {"reps": 3, "min": 400.0, "max": 408.0, "mean": 404.0,
                    "p50": 404.0, "p99": 408.0, "stddev": 4.0},
      "metrics": {},
      "perf": {"status": "ok", "counters": {"cycles": 1e9},
               "derived": {"ipc": 1.5}},
      "future_unknown_field": [1, 2, 3]
    }]
  })";
  EXPECT_EQ(RunDiff(baseline, current, "--threshold 1.5"), 1);
}

// --- perf capture through Runner ------------------------------------------

TEST(Runner, PerfSampleAttachesToNextReportOnly) {
  Runner runner("exp", 1);
  const Stats stats = runner.CollectReps([] { return 10.0; });
  runner.Report({{"k", "v"}}, stats);
  runner.Report({{"k", "analytic"}}, Stats{});  // no measurement ran
  ASSERT_EQ(runner.records().size(), 2u);
  // Whatever the kernel allowed, the measured record carries the capture's
  // status and an ops estimate (wall / ns-per-op is always > 0 here); the
  // analytic record keeps the default "not measured" sample.
  EXPECT_NE(runner.records()[0].perf.status, "not measured");
  EXPECT_FALSE(runner.records()[0].perf.status.empty());
  EXPECT_GT(runner.records()[0].perf_ops, 0.0);
  EXPECT_EQ(runner.records()[1].perf.status, "not measured");
  EXPECT_EQ(runner.records()[1].perf_ops, 0.0);
}

TEST(Json, EveryRecordExportsAPerfBlockWithStatus) {
  ResultRecord record;
  record.experiment = "exp";
  const Json j = ResultRecordToJson(record);
  const Json* perf = j.Find("perf");
  ASSERT_NE(perf, nullptr);
  const Json* status = perf->Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->AsString(), "not measured");

  // A live sample exports counters and derived rates; fields that never
  // counted (negative) stay absent rather than exporting as zero.
  record.perf.ok = true;
  record.perf.status = "ok";
  record.perf.cycles = 3e9;
  record.perf.instructions = 6e9;
  record.perf.llc_misses = -1.0;  // never scheduled
  record.perf_ops = 1e6;
  const Json live = ResultRecordToJson(record);
  const Json* live_perf = live.Find("perf");
  ASSERT_NE(live_perf, nullptr);
  const Json* counters = live_perf->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Find("cycles"), nullptr);
  EXPECT_EQ(counters->Find("llc_load_misses"), nullptr);
  const Json* derived = live_perf->Find("derived");
  ASSERT_NE(derived, nullptr);
  ASSERT_NE(derived->Find("ipc"), nullptr);
  EXPECT_DOUBLE_EQ(derived->Find("ipc")->AsNumber(), 2.0);
  ASSERT_NE(derived->Find("cycles_per_op"), nullptr);
  EXPECT_DOUBLE_EQ(derived->Find("cycles_per_op")->AsNumber(), 3000.0);
  EXPECT_EQ(derived->Find("llc_load_misses_per_op"), nullptr);

  // And the round-trip importer ignores the block entirely: perf is
  // telemetry, not identity (bench_diff pairing must stay stable).
  const auto parsed = ResultRecordFromJson(live);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->perf.status, "not measured");
}

// --- profile_report.py / stats_dump.py ------------------------------------

class ProfileReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("python3 --version > /dev/null 2>&1") != 0) {
      GTEST_SKIP() << "python3 not available";
    }
  }

  // Full results document as fitree_bench writes it (schema_version,
  // telemetry section included).
  std::string WriteDoc(const std::string& name) {
    ResultRecord record;
    record.experiment = "micro_phase_breakdown";
    record.params = {{"engine", "static"}, {"mode", "full"}};
    record.ns_per_op = Stats::From({100.0, 101.0, 102.0});
    record.metrics = {{"window_search_ns_op", 60.0},
                      {"window_search_pct", 100.0}};
    Json env = Json::Object();
    const Json doc = MakeResultsDocument(env, 3, {record});
    const std::string path =
        ::testing::TempDir() + "fitree_profile_" + name + ".json";
    std::ofstream(path) << doc.Dump(2);
    return path;
  }

  int RunTool(const std::string& tool, const std::string& args) {
    const std::string cmd = "python3 '" FITREE_SOURCE_DIR "/tools/" + tool +
                            "' " + args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

TEST_F(ProfileReportTest, RendersARealDocument) {
  const auto doc = WriteDoc("ok");
  EXPECT_EQ(RunTool("profile_report.py", "'" + doc + "'"), 0);
}

TEST_F(ProfileReportTest, WritesFoldedStacks) {
  const auto doc = WriteDoc("folded");
  const std::string folded = ::testing::TempDir() + "fitree_stacks.folded";
  ASSERT_EQ(RunTool("profile_report.py",
                    "'" + doc + "' --folded '" + folded + "'"),
            0);
  std::ifstream in(folded);
  EXPECT_TRUE(in.good());
}

TEST_F(ProfileReportTest, SchemaMismatchExitsTwo) {
  const std::string wrong =
      ::testing::TempDir() + "fitree_profile_wrong_schema.json";
  std::ofstream(wrong) << R"({"schema_version": 99, "results": [],
                             "telemetry": {"enabled": false}})";
  EXPECT_EQ(RunTool("profile_report.py", "'" + wrong + "'"), 2);

  const std::string bad = ::testing::TempDir() + "fitree_profile_bad.json";
  std::ofstream(bad) << "not json";
  EXPECT_EQ(RunTool("profile_report.py", "'" + bad + "'"), 2);

  const std::string no_telem =
      ::testing::TempDir() + "fitree_profile_no_telem.json";
  std::ofstream(no_telem) << R"({"schema_version": 1, "results": []})";
  EXPECT_EQ(RunTool("profile_report.py", "'" + no_telem + "'"), 2);
}

TEST_F(ProfileReportTest, StatsDumpDeltaMode) {
  const auto before = WriteDoc("delta_a");
  const auto after = WriteDoc("delta_b");
  EXPECT_EQ(RunTool("stats_dump.py",
                    "--delta '" + before + "' '" + after + "'"),
            0);
  // Malformed inputs keep the schema-error contract in delta mode too.
  const std::string bad = ::testing::TempDir() + "fitree_delta_bad.json";
  std::ofstream(bad) << "{}";
  EXPECT_EQ(RunTool("stats_dump.py", "--delta '" + bad + "' '" + after + "'"),
            2);
}

}  // namespace
}  // namespace fitree::bench
