#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "tests/oracle.h"
#include "workloads/workloads.h"

namespace {

using fitree::Feasibility;
using fitree::FitingTree;
using fitree::FitingTreeConfig;
using fitree::SearchPolicy;
using fitree::testing::CrudOptions;
using fitree::testing::MakeInitialLoad;
using fitree::testing::PropertyOps;
using fitree::testing::RunCrudDifferential;

TEST(FitingTree, LookupMatchesOracleReadOnly) {
  const auto keys = fitree::datasets::Weblogs(30000, 1);
  const std::set<int64_t> oracle(keys.begin(), keys.end());
  for (const double error : {16.0, 256.0, 16384.0}) {
    FitingTreeConfig config;
    config.error = error;
    config.buffer_size = 0;
    auto tree = FitingTree<int64_t>::Create(keys, config);
    EXPECT_EQ(tree->size(), keys.size());
    const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
        keys, 3000, fitree::workloads::Access::kUniform, 0.4, 5);
    for (const int64_t probe : probes) {
      ASSERT_EQ(tree->Contains(probe), oracle.count(probe) > 0)
          << "probe " << probe << " error " << error;
    }
  }
}

// The ISSUE's headline dynamic test: interleaved inserts with a tiny buffer
// force merge-and-resegment splits, and every lookup must stay correct.
TEST(FitingTree, InsertWithBufferSplitsMatchesOracle) {
  const auto keys = fitree::datasets::Iot(8000, 3);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  FitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 4;  // tiny: every few inserts merges a segment
  auto tree = FitingTree<int64_t>::Create(keys, config);

  const auto inserts = fitree::workloads::MakeInserts<int64_t>(keys, 4000, 4);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 4000, fitree::workloads::Access::kUniform, 0.3, 6);
  for (size_t i = 0; i < inserts.size(); ++i) {
    tree->Insert(inserts[i]);
    oracle.insert(inserts[i]);
    // Interleave lookups with the insert stream.
    const int64_t probe = probes[i % probes.size()];
    ASSERT_EQ(tree->Contains(probe), oracle.count(probe) > 0)
        << "after insert " << i;
    ASSERT_TRUE(tree->Contains(inserts[i]));
    ASSERT_EQ(tree->Find(inserts[i]).value(), inserts[i]);
  }
  EXPECT_EQ(tree->size(), oracle.size());
  EXPECT_GT(tree->stats().segment_merges, 0u);
  // Re-check the whole key set after the dust settles.
  for (const int64_t key : oracle) {
    ASSERT_TRUE(tree->Contains(key)) << "key " << key;
  }
}

TEST(FitingTree, ZeroBufferMergesEveryInsert) {
  const auto keys = fitree::datasets::Weblogs(2000, 7);
  FitingTreeConfig config;
  config.error = 128.0;
  config.buffer_size = 0;
  auto tree = FitingTree<int64_t>::Create(keys, config);
  const auto inserts = fitree::workloads::MakeInserts<int64_t>(keys, 50, 8);
  uint64_t merges = 0;
  for (const int64_t key : inserts) {
    tree->Insert(key);
    ASSERT_TRUE(tree->Contains(key));
    ASSERT_GT(tree->stats().segment_merges, merges);
    merges = tree->stats().segment_merges;
  }
}

TEST(FitingTree, DuplicateInsertsAreIgnored) {
  const auto keys = fitree::datasets::Maps(5000, 9);
  FitingTreeConfig config;
  config.error = 64.0;
  auto tree = FitingTree<int64_t>::Create(keys, config);
  const size_t before = tree->size();
  tree->Insert(keys[123]);
  tree->Insert(keys[4567]);
  EXPECT_EQ(tree->size(), before);
  const int64_t fresh = keys[0] - 10;
  tree->Insert(fresh);
  tree->Insert(fresh);
  EXPECT_EQ(tree->size(), before + 1);
  EXPECT_TRUE(tree->Contains(fresh));
}

TEST(FitingTree, ScanRangeMergesBuffersInOrder) {
  const auto keys = fitree::datasets::Weblogs(10000, 11);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  FitingTreeConfig config;
  config.error = 256.0;
  config.buffer_size = 64;  // keep keys sitting in buffers during the scan
  auto tree = FitingTree<int64_t>::Create(keys, config);
  for (const int64_t key :
       fitree::workloads::MakeInserts<int64_t>(keys, 2000, 12)) {
    tree->Insert(key);
    oracle.insert(key);
  }
  const auto queries =
      fitree::workloads::MakeRangeQueries<int64_t>(keys, 200, 0.02, 13);
  for (const auto& q : queries) {
    std::vector<int64_t> expected;
    for (auto it = oracle.lower_bound(q.lo);
         it != oracle.end() && *it <= q.hi; ++it) {
      expected.push_back(*it);
    }
    std::vector<int64_t> scanned;
    tree->ScanRange(q.lo, q.hi, [&](int64_t key) { scanned.push_back(key); });
    ASSERT_EQ(scanned, expected) << "range [" << q.lo << ", " << q.hi << "]";
  }
}

TEST(FitingTree, SearchPoliciesAgree) {
  const auto keys = fitree::datasets::Iot(20000, 15);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 2000, fitree::workloads::Access::kUniform, 0.5, 16);
  std::vector<bool> expected;
  for (const auto policy :
       {SearchPolicy::kBinary, SearchPolicy::kLinear,
        SearchPolicy::kExponential, SearchPolicy::kSimd}) {
    FitingTreeConfig config;
    config.error = 512.0;
    config.buffer_size = 0;
    config.search_policy = policy;
    auto tree = FitingTree<int64_t>::Create(keys, config);
    if (expected.empty()) {
      for (const int64_t probe : probes) {
        expected.push_back(tree->Contains(probe));
      }
    } else {
      for (size_t i = 0; i < probes.size(); ++i) {
        ASSERT_EQ(tree->Contains(probes[i]), expected[i]) << "probe " << i;
      }
    }
  }
}

TEST(FitingTree, ConeFeasibilityNeedsNoMoreSegments) {
  const auto keys = fitree::datasets::Weblogs(20000, 17);
  FitingTreeConfig endpoint;
  endpoint.error = 64.0;
  endpoint.buffer_size = 0;
  FitingTreeConfig cone = endpoint;
  cone.feasibility = Feasibility::kCone;
  auto a = FitingTree<int64_t>::Create(keys, endpoint);
  auto b = FitingTree<int64_t>::Create(keys, cone);
  EXPECT_LE(b->SegmentCount(), a->SegmentCount());
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 1000, fitree::workloads::Access::kUniform, 0.3, 18);
  for (const int64_t probe : probes) {
    ASSERT_EQ(a->Contains(probe), b->Contains(probe));
  }
}

TEST(FitingTree, TemplateFanoutsWork) {
  const auto keys = fitree::datasets::Weblogs(20000, 19);
  FitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 0;
  auto narrow = FitingTree<int64_t, 8, 8>::Create(keys, config);
  auto wide = FitingTree<int64_t, 128, 128>::Create(keys, config);
  EXPECT_EQ(narrow->SegmentCount(), wide->SegmentCount());
  EXPECT_GE(narrow->TreeHeight(), wide->TreeHeight());
  for (size_t i = 0; i < keys.size(); i += 97) {
    ASSERT_TRUE(narrow->Contains(keys[i]));
    ASSERT_TRUE(wide->Contains(keys[i]));
  }
}

TEST(FitingTree, BreakdownCountsAllProbes) {
  const auto keys = fitree::datasets::Weblogs(5000, 21);
  FitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 0;
  auto tree = FitingTree<int64_t>::Create(keys, config);
  int64_t tree_ns = 0, page_ns = 0;
  for (size_t i = 0; i < keys.size(); i += 10) {
    ASSERT_TRUE(tree->ContainsWithBreakdown(keys[i], &tree_ns, &page_ns));
  }
  EXPECT_GT(tree_ns, 0);
  EXPECT_GT(page_ns, 0);
}

TEST(FitingTree, ProbesFarOutsideKeyRange) {
  // A key far below the leftmost segment routes there via the floor
  // fallback and predicts a hugely negative position; the window clamp
  // must not wrap (regression: negative double -> size_t cast).
  const auto keys = fitree::datasets::Weblogs(5000, 23);
  FitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 0;
  auto tree = FitingTree<int64_t>::Create(keys, config);
  EXPECT_FALSE(tree->Contains(keys.front() - 1'000'000));
  EXPECT_FALSE(tree->Contains(-1'000'000'000));
  EXPECT_FALSE(tree->Contains(keys.back() + 1'000'000));
  tree->Insert(keys.front() - 1'000'000);
  EXPECT_TRUE(tree->Contains(keys.front() - 1'000'000));
}

// ---- CRUD: payloads, updates, deletes ----

TEST(FitingTree, InsertReturnsWhetherKeyWasNew) {
  const auto keys = fitree::datasets::Maps(5000, 9);
  FitingTreeConfig config;
  config.error = 64.0;
  auto tree = FitingTree<int64_t>::Create(keys, config);
  EXPECT_FALSE(tree->Insert(keys[123], 7));   // already paged
  const int64_t fresh = keys[0] - 10;
  EXPECT_TRUE(tree->Insert(fresh, 1));
  EXPECT_FALSE(tree->Insert(fresh, 2));       // already buffered
  EXPECT_EQ(tree->Lookup(fresh), std::optional<uint64_t>(1));  // first wins
}

TEST(FitingTree, LookupAndUpdatePayloads) {
  const std::vector<int64_t> keys{10, 20, 30, 40, 50};
  const std::vector<uint64_t> values{100, 200, 300, 400, 500};
  FitingTreeConfig config;
  config.error = 4.0;
  auto tree = FitingTree<int64_t>::Create(keys, values, config);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(tree->Lookup(keys[i]), std::optional<uint64_t>(values[i]));
  }
  EXPECT_EQ(tree->Lookup(25), std::nullopt);
  EXPECT_TRUE(tree->Update(30, 999));   // paged key: in-place
  EXPECT_EQ(tree->Lookup(30), std::optional<uint64_t>(999));
  EXPECT_FALSE(tree->Update(25, 1));    // absent
  ASSERT_TRUE(tree->Insert(25, 7));
  EXPECT_TRUE(tree->Update(25, 8));     // key living only in the buffer
  EXPECT_EQ(tree->Lookup(25), std::optional<uint64_t>(8));
  EXPECT_EQ(tree->stats().updates, 2u);
}

TEST(FitingTree, DeleteThenReinsert) {
  const std::vector<int64_t> keys{10, 20, 30, 40, 50};
  FitingTreeConfig config;
  config.error = 4.0;
  config.buffer_size = 16;  // keep tombstones resident, no merge
  auto tree = FitingTree<int64_t>::Create(keys, config);
  EXPECT_TRUE(tree->Delete(30));
  EXPECT_FALSE(tree->Delete(30));  // already tombstoned
  EXPECT_FALSE(tree->Contains(30));
  EXPECT_EQ(tree->size(), 4u);
  std::vector<int64_t> scanned;
  tree->ScanRange(0, 100, [&](int64_t k) { scanned.push_back(k); });
  EXPECT_EQ(scanned, (std::vector<int64_t>{10, 20, 40, 50}));
  // Reinsert flips the tombstone and carries the new payload.
  EXPECT_TRUE(tree->Insert(30, 77));
  EXPECT_EQ(tree->Lookup(30), std::optional<uint64_t>(77));
  EXPECT_EQ(tree->size(), 5u);
  // Buffered (never paged) keys are dropped outright on delete.
  ASSERT_TRUE(tree->Insert(35, 1));
  EXPECT_TRUE(tree->Delete(35));
  EXPECT_FALSE(tree->Contains(35));
  EXPECT_EQ(tree->size(), 5u);
}

TEST(FitingTree, TombstoneHeavyBufferTriggersMergeAndDropsKeys) {
  const auto keys = fitree::datasets::Iot(4000, 3);
  FitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 4;  // tiny: a burst of deletes overflows the buffer
  auto tree = FitingTree<int64_t>::Create(keys, config);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  std::mt19937_64 rng(17);
  const uint64_t merges_before = tree->stats().segment_merges;
  for (int i = 0; i < 1000; ++i) {
    const int64_t victim = keys[rng() % keys.size()];
    ASSERT_EQ(tree->Delete(victim), oracle.erase(victim) > 0);
  }
  EXPECT_GT(tree->stats().segment_merges, merges_before);
  EXPECT_GT(tree->stats().tombstones_cleared, 0u);
  EXPECT_EQ(tree->size(), oracle.size());
  std::vector<int64_t> scanned;
  tree->ScanRange(keys.front(), keys.back(),
                  [&](int64_t k) { scanned.push_back(k); });
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), oracle.begin(),
                         oracle.end()));
}

TEST(FitingTree, DeleteSegmentFirstKeySurvivesMerge) {
  const auto keys = fitree::datasets::Weblogs(6000, 13);
  FitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 2;
  auto tree = FitingTree<int64_t>::Create(keys, config);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  // The global first key is also the first segment's first_key: deleting it
  // exercises the directory-erase + resegment path at the left edge.
  ASSERT_TRUE(tree->Delete(keys.front()));
  oracle.erase(keys.front());
  // Force merges around the tombstone by churning nearby inserts.
  for (int64_t d = 1; d <= 8; ++d) {
    const int64_t k = keys.front() + d;
    if (oracle.insert(k).second) {
      ASSERT_TRUE(tree->Insert(k, static_cast<uint64_t>(d)));
    }
  }
  EXPECT_FALSE(tree->Contains(keys.front()));
  EXPECT_EQ(tree->size(), oracle.size());
  for (const int64_t k : oracle) ASSERT_TRUE(tree->Contains(k)) << k;
}

TEST(FitingTree, DeleteEverythingThenBootstrapFromEmpty) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 300; ++i) keys.push_back(i * 7);
  FitingTreeConfig config;
  config.error = 16.0;
  config.buffer_size = 3;
  auto tree = FitingTree<int64_t>::Create(keys, config);
  for (const int64_t k : keys) ASSERT_TRUE(tree->Delete(k));
  EXPECT_EQ(tree->size(), 0u);
  for (const int64_t k : keys) EXPECT_FALSE(tree->Contains(k));
  std::vector<int64_t> scanned;
  tree->ScanRange(-100, 10000, [&](int64_t k) { scanned.push_back(k); });
  EXPECT_TRUE(scanned.empty());
  // A fully deleted tree bootstraps again like a fresh empty one.
  EXPECT_TRUE(tree->Insert(42, 6));
  EXPECT_EQ(tree->Lookup(42), std::optional<uint64_t>(6));
  EXPECT_EQ(tree->size(), 1u);
}

// The shared randomized differential driver (tests/oracle.h), seeded from
// a bulk load. FITREE_PROPERTY_OPS cranks the op count in CI's sanitizer
// jobs (ctest -L property).
TEST(FitingTreeCrudProperty, DifferentialVsMapOracle) {
  CrudOptions opt;
  opt.seed = 0xC0FFEE;
  opt.ops = PropertyOps(60000);
  std::map<int64_t, uint64_t> oracle;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  MakeInitialLoad(opt, /*load_every=*/2, &keys, &values, &oracle);
  FitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 8;  // merge-heavy
  auto tree = FitingTree<int64_t>::Create(keys, values, config);
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
  EXPECT_GT(tree->stats().segment_merges, 0u);
}

// Same differential churn with the btree directory descent selected, so
// both forms of LocateSegment stay covered (the flat mirror is maintained
// either way; only the read path differs).
TEST(FitingTreeCrudProperty, DifferentialBTreeDirectory) {
  CrudOptions opt;
  opt.seed = 0xD1CE;
  opt.ops = PropertyOps(30000);
  std::map<int64_t, uint64_t> oracle;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  MakeInitialLoad(opt, /*load_every=*/2, &keys, &values, &oracle);
  FitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 8;
  config.directory = fitree::DirectoryMode::kBTree;
  auto tree = FitingTree<int64_t>::Create(keys, values, config);
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
}

TEST(FitingTreeCrudProperty, DifferentialFromEmptyTree) {
  CrudOptions opt;
  opt.seed = 0xBEEF;
  opt.ops = PropertyOps(30000);
  opt.key_space = 5000;
  std::map<int64_t, uint64_t> oracle;
  FitingTreeConfig config;
  config.error = 16.0;
  config.buffer_size = 4;
  auto tree = FitingTree<int64_t>::Create({}, config);
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
}

TEST(FitingTree, EmptyAndSingleton) {
  const std::vector<int64_t> empty;
  FitingTreeConfig config;
  config.error = 16.0;
  auto tree = FitingTree<int64_t>::Create(empty, config);
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_FALSE(tree->Contains(5));
  tree->Insert(5);
  EXPECT_TRUE(tree->Contains(5));
  EXPECT_EQ(tree->size(), 1u);
  tree->Insert(3);  // smaller than every existing key
  tree->Insert(9);
  EXPECT_TRUE(tree->Contains(3));
  EXPECT_TRUE(tree->Contains(9));
  std::vector<int64_t> scanned;
  tree->ScanRange(0, 100, [&](int64_t key) { scanned.push_back(key); });
  EXPECT_EQ(scanned, (std::vector<int64_t>{3, 5, 9}));
}

}  // namespace
