// Synthetic stand-ins for the paper's datasets, shaped to reproduce the
// qualitative behaviors the figures depend on:
//  - Weblogs: request timestamps with diurnal + weekly load cycles, bursts
//    and lulls => several overlapping non-linearity bumps (Fig 8).
//  - IoT: device timestamps with a hard daily on/off cycle => one strong
//    periodic bump.
//  - Maps / OsmLongitude: longitudes as fixed-point ints, Gaussian POI
//    clusters over a uniform background => near-linear until fine scales.
//  - TaxiPickupTime / TaxiDropLat / TaxiDropLon: NYC-taxi-like timestamps
//    (rush hours) and tight coordinate clusters (Table 1 rows).
//  - Step: the worst-case staircase of Figure 9.
//  - AdversarialCone: Appendix A.3's construction where the greedy cone is
//    arbitrarily worse than optimal.
//
// All integer generators return strictly increasing int64 keys bounded well
// below 2^53 so double-based linear models stay exact.

#ifndef FITREE_DATASETS_DATASETS_H_
#define FITREE_DATASETS_DATASETS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace fitree::datasets {

enum class RealWorld { kWeblogs, kIot, kMaps };

namespace detail {

// Sorts and de-duplicates by nudging equal neighbors up one unit, keeping
// the vector strictly increasing without changing its size.
inline std::vector<int64_t> SortUnique(std::vector<int64_t> values) {
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] <= values[i - 1]) values[i] = values[i - 1] + 1;
  }
  return values;
}

// Strictly increasing cumulative sum of `gap(t, rng)` (clamped to >= 1),
// where `t` is the current clock value so generators can modulate the rate
// by the very timestamps they emit.
template <typename GapFn>
std::vector<int64_t> CumulativeGaps(size_t n, uint64_t seed, GapFn gap) {
  std::vector<int64_t> keys;
  keys.reserve(n);
  std::mt19937_64 rng(seed);
  int64_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += std::max<int64_t>(1, gap(t, rng));
    keys.push_back(t);
  }
  return keys;
}

}  // namespace detail

// Web server request timestamps (milliseconds): Poisson-like arrivals whose
// rate swings with the time of day and the day of week, with heavy-tailed
// lulls. The interacting periods give several overlapping segment-count
// bumps across error scales.
inline std::vector<int64_t> Weblogs(size_t n, uint64_t seed) {
  std::exponential_distribution<double> exp_dist(1.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  constexpr double kDayMs = 86'400'000.0;
  return detail::CumulativeGaps(n, seed ^ 0x77eb106500000000ull,
                                [&](int64_t t, std::mt19937_64& rng) {
    const double now = static_cast<double>(t);
    const double day_frac = std::fmod(now, kDayMs) / kDayMs;
    const double week_frac = std::fmod(now, 7.0 * kDayMs) / (7.0 * kDayMs);
    // Rate peaks mid-day and mid-week; never drops to zero.
    const double day_load = 0.15 + std::pow(std::sin(3.14159265 * day_frac), 2.0);
    const double week_load = 0.6 + 0.4 * std::sin(6.2831853 * week_frac);
    double gap = 40.0 * exp_dist(rng) / (day_load * week_load);
    if (unif(rng) < 0.001) gap += 40'000.0 * exp_dist(rng);  // outage lull
    return static_cast<int64_t>(gap);
  });
}

// IoT device report timestamps (seconds): near-regular reports while
// installations are powered, an 8-hour silent window every night. The
// single dominant period yields Figure 8's one strong bump.
inline std::vector<int64_t> Iot(size_t n, uint64_t seed) {
  std::normal_distribution<double> jitter(0.0, 4.0);
  constexpr int64_t kDay = 86'400;
  constexpr int64_t kNight = 8 * 3'600;
  return detail::CumulativeGaps(n, seed ^ 0x10700000ull,
                                [&](int64_t t, std::mt19937_64& rng) {
    int64_t gap = std::max<int64_t>(1, 30 + static_cast<int64_t>(jitter(rng)));
    if ((t % kDay) + gap >= kDay - kNight) gap += kNight;  // lights out
    return gap;
  });
}

// Longitudes of map features as fixed-point 1e-7 degrees: Gaussian city
// clusters over a uniform background.
inline std::vector<int64_t> Maps(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x3a9500000ull);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 1.0);
  constexpr int kClusters = 40;
  std::vector<double> centers(kClusters);
  std::vector<double> sigmas(kClusters);
  for (int c = 0; c < kClusters; ++c) {
    centers[c] = lon(rng);
    sigmas[c] = 0.2 + 2.0 * unif(rng);
  }
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v;
    if (unif(rng) < 0.85) {
      const int c = static_cast<int>(rng() % kClusters);
      v = std::clamp(centers[c] + sigmas[c] * noise(rng), -180.0, 180.0);
    } else {
      v = lon(rng);
    }
    values.push_back(static_cast<int64_t>(v * 1e7));
  }
  return detail::SortUnique(std::move(values));
}

// OpenStreetMap longitudes: like Maps but many fine-grained clusters, so
// non-linearity shows up only at small error scales.
inline std::vector<int64_t> OsmLongitude(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x05e00000ull);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 1.0);
  constexpr int kClusters = 250;
  std::vector<double> centers(kClusters);
  for (int c = 0; c < kClusters; ++c) centers[c] = lon(rng);
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v;
    if (unif(rng) < 0.7) {
      const int c = static_cast<int>(rng() % kClusters);
      v = std::clamp(centers[c] + 0.3 * noise(rng), -180.0, 180.0);
    } else {
      v = lon(rng);
    }
    values.push_back(static_cast<int64_t>(v * 1e7));
  }
  return detail::SortUnique(std::move(values));
}

// Taxi pickup timestamps (seconds over ~a month): morning and evening rush
// bumps on top of a base rate, quieter weekends.
inline std::vector<int64_t> TaxiPickupTime(size_t n, uint64_t seed) {
  std::exponential_distribution<double> exp_dist(1.0);
  constexpr double kDay = 86'400.0;
  return detail::CumulativeGaps(n, seed ^ 0x7a8100000ull,
                                [&](int64_t t, std::mt19937_64& rng) {
    const double now = static_cast<double>(t);
    const double hour = std::fmod(now, kDay) / 3600.0;
    const double day = std::fmod(now / kDay, 7.0);
    const double rush = std::exp(-0.5 * std::pow((hour - 8.5) / 1.5, 2.0)) +
                        std::exp(-0.5 * std::pow((hour - 18.0) / 2.0, 2.0));
    const double weekend = day >= 5.0 ? 0.6 : 1.0;
    const double rate = weekend * (0.2 + 1.5 * rush);
    const double gap = 2.0 * exp_dist(rng) / rate;
    return static_cast<int64_t>(gap);
  });
}

// Taxi drop-off latitudes as fixed-point 1e-6 degrees: a tight metro blob
// with satellite clusters.
inline std::vector<int64_t> TaxiDropLat(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x7a8d1a700000ull);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v = 40.75 + 0.045 * noise(rng);          // Manhattan blob
    if (unif(rng) < 0.12) v = 40.65 + 0.02 * noise(rng);   // JFK
    if (unif(rng) < 0.05) v = 40.77 + 0.008 * noise(rng);  // LGA
    values.push_back(static_cast<int64_t>(v * 1e6));
  }
  return detail::SortUnique(std::move(values));
}

// Taxi drop-off longitudes as fixed-point 1e-6 degrees.
inline std::vector<int64_t> TaxiDropLon(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x7a8d10900000ull);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v = -73.98 + 0.035 * noise(rng);
    if (unif(rng) < 0.12) v = -73.78 + 0.015 * noise(rng);
    values.push_back(static_cast<int64_t>(v * 1e6));
  }
  return detail::SortUnique(std::move(values));
}

// Figure 9's worst case: runs of `step` consecutive integers separated by
// jumps three orders of magnitude wider. Below the step size every run
// needs its own segments; above it the whole staircase is one line.
inline std::vector<int64_t> Step(size_t n, size_t step) {
  if (step == 0) step = 1;
  const int64_t jump = static_cast<int64_t>(step) * 1024;
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<int64_t>(i / step) * jump +
                   static_cast<int64_t>(i % step));
  }
  return keys;
}

struct AdversarialData {
  std::vector<double> keys;
};

// Appendix A.3: N unit-spaced clusters of 2*error+1 keys separated by huge
// gaps. One free line threads every cluster within +/- error (optimal stays
// O(1) segments), but a line pinned to a cluster's first point — the greedy
// cone's apex — drifts out of bounds within a cluster or two, so the greedy
// count grows linearly with N.
inline AdversarialData AdversarialCone(double error, size_t n_patterns) {
  const size_t cluster = 2 * static_cast<size_t>(std::max(1.0, error)) + 1;
  const double width = static_cast<double>(cluster) * 1e6;
  AdversarialData data;
  data.keys.reserve(cluster * n_patterns);
  for (size_t p = 0; p < n_patterns; ++p) {
    const double base = static_cast<double>(p) * width;
    for (size_t k = 0; k < cluster; ++k) {
      data.keys.push_back(base + static_cast<double>(k));
    }
  }
  return data;
}

inline std::string Name(RealWorld which) {
  switch (which) {
    case RealWorld::kWeblogs:
      return "Weblogs";
    case RealWorld::kIot:
      return "IoT";
    case RealWorld::kMaps:
      return "Maps";
  }
  return "unknown";
}

inline std::vector<int64_t> Generate(RealWorld which, size_t n,
                                     uint64_t seed) {
  switch (which) {
    case RealWorld::kWeblogs:
      return Weblogs(n, seed);
    case RealWorld::kIot:
      return Iot(n, seed);
    case RealWorld::kMaps:
      return Maps(n, seed);
  }
  return {};
}

}  // namespace fitree::datasets

#endif  // FITREE_DATASETS_DATASETS_H_
