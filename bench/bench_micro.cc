// Micro-benchmarks of the core operations under google-benchmark: point
// lookups for every index structure, inserts, segmentation throughput and
// B+ tree primitives. Complements the per-figure series binaries with
// statistically managed single-operation numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "btree/btree_map.h"
#include "core/fiting_tree.h"
#include "core/optimal_segmentation.h"
#include "core/shrinking_cone.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

constexpr size_t kN = 1000000;
constexpr size_t kProbes = 1 << 16;

const std::vector<int64_t>& Keys() {
  static const std::vector<int64_t>* keys =
      new std::vector<int64_t>(fitree::datasets::Weblogs(kN, 1));
  return *keys;
}

const std::vector<int64_t>& Probes() {
  static const std::vector<int64_t>* probes =
      new std::vector<int64_t>(fitree::workloads::MakeLookupProbes<int64_t>(
          Keys(), kProbes, fitree::workloads::Access::kUniform, 0.0, 2));
  return *probes;
}

void BM_FitingTreeLookup(benchmark::State& state) {
  fitree::FitingTreeConfig config;
  config.error = static_cast<double>(state.range(0));
  config.buffer_size = 0;
  auto tree = fitree::FitingTree<int64_t>::Create(Keys(), config);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Contains(Probes()[i++ & (kProbes - 1)]));
  }
  state.counters["segments"] =
      static_cast<double>(tree->SegmentCount());
  state.counters["index_bytes"] =
      static_cast<double>(tree->IndexSizeBytes());
}
BENCHMARK(BM_FitingTreeLookup)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_PagedIndexLookup(benchmark::State& state) {
  fitree::PagedIndexConfig config;
  config.page_size = static_cast<size_t>(state.range(0));
  config.buffer_size = 0;
  auto index = fitree::PagedIndex<int64_t>::Create(Keys(), config);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Contains(Probes()[i++ & (kProbes - 1)]));
  }
  state.counters["index_bytes"] =
      static_cast<double>(index->IndexSizeBytes());
}
BENCHMARK(BM_PagedIndexLookup)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FullIndexLookup(benchmark::State& state) {
  fitree::FullIndex<int64_t> index{std::span<const int64_t>(Keys())};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Contains(Probes()[i++ & (kProbes - 1)]));
  }
  state.counters["index_bytes"] =
      static_cast<double>(index.IndexSizeBytes());
}
BENCHMARK(BM_FullIndexLookup);

void BM_BinarySearchLookup(benchmark::State& state) {
  fitree::BinarySearchIndex<int64_t> index{std::span<const int64_t>(Keys())};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Contains(Probes()[i++ & (kProbes - 1)]));
  }
}
BENCHMARK(BM_BinarySearchLookup);

void BM_FitingTreeInsert(benchmark::State& state) {
  const auto inserts = fitree::workloads::MakeInserts<int64_t>(
      Keys(), 1 << 20, 3);
  fitree::FitingTreeConfig config;
  config.error = static_cast<double>(state.range(0));
  auto tree = fitree::FitingTree<int64_t>::Create(Keys(), config);
  size_t i = 0;
  for (auto _ : state) {
    tree->Insert(inserts[i++ & ((1 << 20) - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FitingTreeInsert)->Arg(64)->Arg(1024);

void BM_ShrinkingCone(benchmark::State& state) {
  const auto& keys = Keys();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fitree::SegmentShrinkingCone<int64_t>(keys, 100.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_ShrinkingCone);

void BM_OptimalSegmentation(benchmark::State& state) {
  const std::vector<int64_t> sample(Keys().begin(),
                                    Keys().begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fitree::OptimalSegmentCount<int64_t>(sample, 100.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OptimalSegmentation)->Arg(10000)->Arg(50000);

void BM_BTreeMapInsert(benchmark::State& state) {
  fitree::btree::BTreeMap<int64_t, int64_t> tree;
  int64_t i = 0;
  for (auto _ : state) {
    tree.Insert(i, i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeMapInsert);

void BM_BTreeMapFind(benchmark::State& state) {
  fitree::btree::BTreeMap<int64_t, int64_t> tree;
  std::vector<std::pair<int64_t, int64_t>> items;
  for (int64_t i = 0; i < 1000000; ++i) items.emplace_back(i * 7, i);
  tree.BulkLoad(std::move(items));
  size_t i = 0;
  for (auto _ : state) {
    const auto probe = static_cast<int64_t>(i * 977 % 1000000) * 7;
    ++i;
    benchmark::DoNotOptimize(tree.Find(probe));
  }
}
BENCHMARK(BM_BTreeMapFind);

}  // namespace

BENCHMARK_MAIN();
