// Minimal JSON document model for the benchmark harness.
//
// BENCH_results.json is written through this value type, and the unit tests
// parse it back to prove the round trip, so the serialization has no
// external dependency and numbers are emitted in shortest-round-trip form
// (std::to_chars), i.e. Parse(Dump(v)) reproduces v bit-for-bit for every
// finite double.
//
// Supported: null, bool, finite numbers, strings (with \uXXXX escapes for
// control characters; input escapes including surrogate-free \uXXXX are
// decoded to UTF-8), arrays, and objects with preserved key order. This is
// intentionally a subset — enough for result records, not a general JSON
// library.

#ifndef FITREE_BENCH_HARNESS_JSON_WRITER_H_
#define FITREE_BENCH_HARNESS_JSON_WRITER_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fitree::bench {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT(runtime/explicit)
  Json(double d) : type_(Type::kNumber), number_(d) {}    // NOLINT(runtime/explicit)
  Json(int v) : Json(static_cast<double>(v)) {}           // NOLINT(runtime/explicit)
  Json(int64_t v) : Json(static_cast<double>(v)) {}       // NOLINT(runtime/explicit)
  Json(uint64_t v) : Json(static_cast<double>(v)) {}      // NOLINT(runtime/explicit)
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}           // NOLINT(runtime/explicit)

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Json>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& AsObject() const {
    return members_;
  }

  void Push(Json v) { array_.push_back(std::move(v)); }
  void Set(std::string key, Json v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  // First member named `key`, or nullptr.
  const Json* Find(std::string_view key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::string Dump(int indent = 0) const {
    std::string out;
    DumpTo(out, indent, 0);
    if (indent > 0) out.push_back('\n');
    return out;
  }

  static std::optional<Json> Parse(std::string_view text) {
    Parser p{text, 0};
    p.SkipWs();
    auto v = p.Value();
    if (!v.has_value()) return std::nullopt;
    p.SkipWs();
    if (p.pos != text.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  struct Parser {
    std::string_view text;
    size_t pos;

    bool AtEnd() const { return pos >= text.size(); }
    char Peek() const { return text[pos]; }
    void SkipWs() {
      while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                          Peek() == '\r')) {
        ++pos;
      }
    }
    bool Consume(char c) {
      if (AtEnd() || Peek() != c) return false;
      ++pos;
      return true;
    }
    bool ConsumeWord(std::string_view w) {
      if (text.substr(pos, w.size()) != w) return false;
      pos += w.size();
      return true;
    }

    std::optional<Json> Value() {
      SkipWs();
      if (AtEnd()) return std::nullopt;
      switch (Peek()) {
        case '{':
          return ObjectValue();
        case '[':
          return ArrayValue();
        case '"': {
          auto s = StringValue();
          if (!s.has_value()) return std::nullopt;
          return Json(*std::move(s));
        }
        case 't':
          return ConsumeWord("true") ? std::optional<Json>(Json(true))
                                     : std::nullopt;
        case 'f':
          return ConsumeWord("false") ? std::optional<Json>(Json(false))
                                      : std::nullopt;
        case 'n':
          return ConsumeWord("null") ? std::optional<Json>(Json())
                                     : std::nullopt;
        default:
          return NumberValue();
      }
    }

    std::optional<Json> ObjectValue() {
      if (!Consume('{')) return std::nullopt;
      Json obj = Json::Object();
      SkipWs();
      if (Consume('}')) return obj;
      while (true) {
        SkipWs();
        auto key = StringValue();
        if (!key.has_value()) return std::nullopt;
        SkipWs();
        if (!Consume(':')) return std::nullopt;
        auto val = Value();
        if (!val.has_value()) return std::nullopt;
        obj.Set(*std::move(key), *std::move(val));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return obj;
        return std::nullopt;
      }
    }

    std::optional<Json> ArrayValue() {
      if (!Consume('[')) return std::nullopt;
      Json arr = Json::Array();
      SkipWs();
      if (Consume(']')) return arr;
      while (true) {
        auto val = Value();
        if (!val.has_value()) return std::nullopt;
        arr.Push(*std::move(val));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return arr;
        return std::nullopt;
      }
    }

    std::optional<std::string> StringValue() {
      if (!Consume('"')) return std::nullopt;
      std::string out;
      while (!AtEnd()) {
        const char c = text[pos++];
        if (c == '"') return out;
        if (c != '\\') {
          out.push_back(c);
          continue;
        }
        if (AtEnd()) return std::nullopt;
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            return std::nullopt;
        }
      }
      return std::nullopt;  // unterminated
    }

    std::optional<Json> NumberValue() {
      const size_t start = pos;
      if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos;
      while (!AtEnd() && ((Peek() >= '0' && Peek() <= '9') || Peek() == '.' ||
                          Peek() == 'e' || Peek() == 'E' || Peek() == '-' ||
                          Peek() == '+')) {
        ++pos;
      }
      double value = 0.0;
      const auto [end, ec] =
          std::from_chars(text.data() + start, text.data() + pos, value);
      if (ec != std::errc() || end != text.data() + pos || pos == start) {
        return std::nullopt;
      }
      return Json(value);
    }

    static void AppendUtf8(std::string& out, unsigned code) {
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    }
  };

  void DumpTo(std::string& out, int indent, int depth) const {
    switch (type_) {
      case Type::kNull:
        out += "null";
        return;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        return;
      case Type::kNumber: {
        if (!std::isfinite(number_)) {
          out += "null";  // JSON has no inf/nan
          return;
        }
        char buf[32];
        const auto [end, ec] =
            std::to_chars(buf, buf + sizeof(buf), number_);
        out.append(buf, ec == std::errc() ? end : buf);
        return;
      }
      case Type::kString:
        AppendEscaped(out, string_);
        return;
      case Type::kArray: {
        if (array_.empty()) {
          out += "[]";
          return;
        }
        out.push_back('[');
        for (size_t i = 0; i < array_.size(); ++i) {
          if (i > 0) out.push_back(',');
          NewlineIndent(out, indent, depth + 1);
          array_[i].DumpTo(out, indent, depth + 1);
        }
        NewlineIndent(out, indent, depth);
        out.push_back(']');
        return;
      }
      case Type::kObject: {
        if (members_.empty()) {
          out += "{}";
          return;
        }
        out.push_back('{');
        for (size_t i = 0; i < members_.size(); ++i) {
          if (i > 0) out.push_back(',');
          NewlineIndent(out, indent, depth + 1);
          AppendEscaped(out, members_[i].first);
          out.push_back(':');
          if (indent > 0) out.push_back(' ');
          members_[i].second.DumpTo(out, indent, depth + 1);
        }
        NewlineIndent(out, indent, depth);
        out.push_back('}');
        return;
      }
    }
  }

  static void NewlineIndent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<size_t>(indent * depth), ' ');
  }

  static void AppendEscaped(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
  }

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace fitree::bench

#endif  // FITREE_BENCH_HARNESS_JSON_WRITER_H_
