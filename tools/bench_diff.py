#!/usr/bin/env python3
"""Compare two fitree_bench BENCH_results.json files and flag regressions.

Records are matched by (experiment, params); for each match the ratio
current/baseline of the chosen ns/op statistic is computed. A record
regresses when its ratio exceeds --threshold, improves when it drops below
1/threshold. Exit status is 1 when any record regresses (0 under
--warn-only), 2 on malformed input; records present on only one side are
reported but never fail the gate (experiments come and go across PRs).
Pairing keys on (experiment, string-valued params) only — fields the
exporter grows later (perf blocks, telemetry annotations) are ignored, so
schema additions cannot break an existing baseline comparison.

Typical use:

  tools/bench_diff.py baseline.json current.json --threshold 1.10
  tools/bench_diff.py bench/baseline/BENCH_smoke_baseline.json \
      "$RUNNER_TEMP/BENCH_smoke.json" --threshold 3.0   # CI smoke gate

The default statistic is `min` (the least-disturbed repetition — the most
noise-robust point of comparison on shared runners); --metric switches to
p50/mean/p99.
"""

import argparse
import json
import sys


def die(message):
    """Malformed input / usage error: exit 2 (1 is reserved for regressions)."""
    print(f"bench_diff: {message}", file=sys.stderr)
    sys.exit(2)


def load_results(path):
    """Returns {(experiment, params-tuple): record} for one results file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict) or "results" not in doc:
        die(f"{path} is not a BENCH_results.json document")
    records = {}
    for record in doc["results"]:
        if not isinstance(record, dict):
            continue  # tolerate foreign entries rather than fail the gate
        params = record.get("params")
        if not isinstance(params, dict):
            params = {}
        # Pair on string-valued params only: exporter additions (perf
        # blocks, numeric annotations, nested objects) land in records as
        # new non-string fields over time, and an unknown field must never
        # change how existing records pair or sort.
        key = (
            str(record.get("experiment", "?")),
            tuple(sorted((k, v) for k, v in params.items()
                         if isinstance(v, str))),
        )
        records[key] = record
    return records


def fmt_key(key):
    experiment, params = key
    if not params:
        return experiment
    return experiment + "[" + ",".join(f"{k}={v}" for k, v in params) + "]"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two fitree_bench JSON result files."
    )
    parser.add_argument("baseline", help="baseline BENCH_results.json")
    parser.add_argument("current", help="current BENCH_results.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.10,
        help="fail when current/baseline exceeds this ratio (default 1.10; "
        "CI smoke uses 3.0 to absorb runner noise)",
    )
    parser.add_argument(
        "--metric",
        choices=["min", "p50", "mean", "p99"],
        default="min",
        help="ns/op statistic to compare (default min)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args()
    if args.threshold <= 1.0:
        die("--threshold must be > 1.0")

    baseline = load_results(args.baseline)
    current = load_results(args.current)

    # One pass computes every (base, cur, ratio); the regression list and
    # the per-experiment summary both derive from it, so they cannot
    # disagree about what was compared.
    regressions = []
    improvements = []
    per_experiment = {}
    compared = 0
    skipped = []
    for key in sorted(set(baseline) & set(current), key=fmt_key):
        base_stats = baseline[key].get("ns_per_op")
        cur_stats = current[key].get("ns_per_op")
        base = (base_stats or {}).get(args.metric, 0.0)
        cur = (cur_stats or {}).get(args.metric, 0.0)
        if base <= 0.0 or cur <= 0.0:
            skipped.append(key)  # metrics-only records (e.g. file shapes)
            continue
        compared += 1
        ratio = cur / base
        experiment = key[0]
        if ratio > per_experiment.get(experiment, 0.0):
            per_experiment[experiment] = ratio
        line = (key, base, cur, ratio)
        if ratio > args.threshold:
            regressions.append(line)
        elif ratio < 1.0 / args.threshold:
            improvements.append(line)

    only_baseline = sorted(set(baseline) - set(current), key=fmt_key)
    only_current = sorted(set(current) - set(baseline), key=fmt_key)

    print(
        f"bench_diff: {compared} records compared "
        f"(metric={args.metric}, threshold={args.threshold:g}x)"
    )
    if per_experiment:
        print("\nworst current/baseline ratio per experiment:")
        width = max(len(e) for e in per_experiment)
        for experiment in sorted(per_experiment):
            ratio = per_experiment[experiment]
            flag = " <-- REGRESSION" if ratio > args.threshold else ""
            print(f"  {experiment:<{width}}  {ratio:6.3f}x{flag}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) past {args.threshold:g}x:")
        for key, base, cur, ratio in regressions:
            print(
                f"  {fmt_key(key)}: {base:.1f} -> {cur:.1f} ns/op "
                f"({ratio:.2f}x)"
            )
    if improvements:
        print(f"\n{len(improvements)} improvement(s) past {args.threshold:g}x:")
        for key, base, cur, ratio in improvements:
            print(
                f"  {fmt_key(key)}: {base:.1f} -> {cur:.1f} ns/op "
                f"({ratio:.2f}x)"
            )
    if skipped:
        print(f"\n{len(skipped)} record(s) without comparable timing skipped")
    if only_baseline:
        print(f"\n{len(only_baseline)} record(s) only in baseline, e.g. "
              f"{fmt_key(only_baseline[0])}")
    if only_current:
        print(f"\n{len(only_current)} record(s) only in current, e.g. "
              f"{fmt_key(only_current[0])}")

    if regressions and not args.warn_only:
        print("\nbench_diff: FAIL")
        return 1
    print("\nbench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
