// Optimal error-bounded segmentation, the Table 1 reference point.
//
// A set of consecutive keys is coverable by one segment iff some line stays
// within +/- error of every (key, rank) point, and that feasibility is
// closed under taking prefixes. Greedily extending each segment as far as
// exact feasibility allows therefore minimizes the segment count — this is
// the classic interval-greedy argument, and it is what the kCone mode of
// SegmentShrinkingCone computes with its convex-hull fitter. The paper's
// O(n^2)-memory DP needed >= 1TB at 1e6 elements; this reference runs in
// O(n) memory and near-linear time.

#ifndef FITREE_CORE_OPTIMAL_SEGMENTATION_H_
#define FITREE_CORE_OPTIMAL_SEGMENTATION_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>

#include "core/shrinking_cone.h"

namespace fitree {

// Minimum number of error-bounded segments covering `keys`.
template <typename K>
size_t OptimalSegmentCount(std::span<const K> keys, double error) {
  if (keys.empty()) return 0;
  detail::ExactLineFitter fitter(error);
  size_t count = 1;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (fitter.TryAdd(static_cast<double>(keys[i]),
                      static_cast<double>(i))) {
      continue;
    }
    ++count;
    fitter.Reset();
    fitter.TryAdd(static_cast<double>(keys[i]), static_cast<double>(i));
  }
  return count;
}

// Exact O(w^2) feasibility oracle for keys[start, start+length): does any
// line keep every point within +/- error? The feasible slope interval is
//   [ max over i<j of ((y_j - e) - (y_i + e)) / (x_j - x_i),
//     min over i<j of ((y_j + e) - (y_i - e)) / (x_j - x_i) ]
// (pairwise intercept-elimination). Used by the tests to cross-check the
// incremental hull fitter; too slow for production segmentation.
template <typename K>
bool Feasibility2DBruteForce(std::span<const K> keys, size_t start,
                             size_t length, double error) {
  double slope_lo = -std::numeric_limits<double>::infinity();
  double slope_hi = std::numeric_limits<double>::infinity();
  for (size_t j = 1; j < length; ++j) {
    for (size_t i = 0; i < j; ++i) {
      const double dx = static_cast<double>(keys[start + j]) -
                        static_cast<double>(keys[start + i]);
      const double dy = static_cast<double>(j) - static_cast<double>(i);
      slope_lo = std::max(slope_lo, (dy - 2.0 * error) / dx);
      slope_hi = std::min(slope_hi, (dy + 2.0 * error) / dx);
    }
  }
  return slope_lo <= slope_hi;
}

}  // namespace fitree

#endif  // FITREE_CORE_OPTIMAL_SEGMENTATION_H_
