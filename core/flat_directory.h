// Flattened two-level segment directory (ROADMAP "hot-path
// microarchitecture pass"; DILI and FB+-tree in PAPERS.md motivate the
// shape): instead of descending a B+-tree over segment first-keys, the
// read path searches one contiguous sorted array — an interpolation guess
// from a cached linear model of the key range, a geometric expansion to
// bracket the answer, a conditional-move binary narrowing, and a final
// SIMD count — no pointer chasing and no data-dependent branches until the
// last few cache lines. Mutation paths keep using the engines' btree_map;
// the flat array is rebuilt (bulk) or spliced (single-segment merges)
// whenever the segment set changes, and is immutable between publishes,
// which is what lets the concurrent tree's COW republish hand it to
// lock-free readers.

#ifndef FITREE_CORE_FLAT_DIRECTORY_H_
#define FITREE_CORE_FLAT_DIRECTORY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "core/search_policy.h"

namespace fitree {

enum class DirectoryMode {
  kBTree,  // descend the engines' btree_map on reads (PR 5 behavior)
  kFlat,   // interpolation + SIMD floor over the flat first-key array
};

inline const char* DirectoryModeName(DirectoryMode mode) {
  return mode == DirectoryMode::kFlat ? "flat" : "btree";
}

inline std::optional<DirectoryMode> ParseDirectoryMode(
    const std::string& name) {
  if (name == "btree") return DirectoryMode::kBTree;
  if (name == "flat") return DirectoryMode::kFlat;
  return std::nullopt;
}

// The process-wide default (FITREE_DIRECTORY) lives in common/options.h:
// DefaultDirectoryMode() is a view over GlobalOptions().

// Sorted, duplicate-free key array answering floor queries ("index of the
// last key <= probe"). For the engines whose directory payload is the
// segment's index in an equally-ordered table (static + disk trees), the
// floor index IS the payload, so this keys-only form suffices.
template <typename K>
class FlatKeyIndex {
 public:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  FlatKeyIndex() = default;
  explicit FlatKeyIndex(std::vector<K> keys) { Reset(std::move(keys)); }

  void Reset(std::vector<K> keys) {
    keys_ = std::move(keys);
    Recalibrate();
  }

  void Clear() {
    keys_.clear();
    Recalibrate();
  }

  // Replaces keys_[pos, pos + erase_count) with `add`. The common merge
  // case (one segment resegmented into one) overwrites a slot in place
  // with no tail move.
  void Splice(size_t pos, size_t erase_count, std::span<const K> add) {
    if (add.size() == erase_count) {
      std::copy(add.begin(), add.end(), keys_.begin() + pos);
    } else {
      const auto at = keys_.erase(keys_.begin() + pos,
                                  keys_.begin() + pos + erase_count);
      keys_.insert(at, add.begin(), add.end());
    }
    Recalibrate();
  }

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  const K& key_at(size_t i) const { return keys_[i]; }
  const std::vector<K>& keys() const { return keys_; }
  size_t MemoryBytes() const { return keys_.capacity() * sizeof(K); }

  // Index of the last key <= `key`, or kNone when `key` sorts before every
  // key. Branchless except for the bracketing probes.
  size_t FloorIndex(const K& key) const {
    const size_t n = keys_.size();
    if (n == 0 || key < keys_[0]) return kNone;
    if (!(key < keys_[n - 1])) return n - 1;
    // Invariant from here: keys_[0] <= key < keys_[n-1], so n >= 2 and the
    // answer lies in [0, n-2].
    const size_t pos = Interpolate(key, n);
    // Geometric expansion around the guess until keys_[lo] <= key <
    // keys_[hi]; a good model makes this one or two probes.
    size_t lo, hi;
    size_t step = kProbeStep;
    if (!(key < keys_[pos])) {
      lo = pos;
      hi = pos + step;
      while (hi < n && !(key < keys_[hi])) {
        lo = hi;
        step <<= 1;
        hi = pos + step;
      }
      if (hi > n - 1) hi = n - 1;
    } else {
      hi = pos;
      lo = pos > step ? pos - step : 0;
      while (lo > 0 && key < keys_[lo]) {
        hi = lo;
        step <<= 1;
        lo = pos > step ? pos - step : 0;
      }
    }
    // The first index whose key is > `key` (the floor's successor) lies in
    // (lo, hi]; narrow branchlessly, then count keys <= `key` with the
    // vector kernel. Note the predicate is <= here, hence the mirrored
    // narrowing instead of detail::BranchlessNarrow.
    size_t b = lo + 1;
    size_t m = hi - lo;
    while (m > simd::kSimdWindowKeys) {
      const size_t half = m / 2;
      b = !(key < keys_[b + half - 1]) ? b + half : b;
      m -= half;
    }
    return b + simd::CountLessEq(keys_.data() + b, m, key) - 1;
  }

 private:
  static constexpr size_t kProbeStep = 8;

  void Recalibrate() {
    const size_t n = keys_.size();
    if (n >= 2 && keys_.front() < keys_.back()) {
      front_ = static_cast<double>(keys_.front());
      scale_ = static_cast<double>(n - 1) /
               (static_cast<double>(keys_.back()) - front_);
    } else {
      front_ = 0.0;
      scale_ = 0.0;
    }
  }

  size_t Interpolate(const K& key, size_t n) const {
    const double est = (static_cast<double>(key) - front_) * scale_;
    if (!(est > 0.0)) return 0;
    const size_t pos = static_cast<size_t>(est);
    return pos > n - 1 ? n - 1 : pos;
  }

  std::vector<K> keys_;
  double front_ = 0.0;  // cached interpolation model: rank ~ (key-front)*scale
  double scale_ = 0.0;
};

// FlatKeyIndex plus a parallel payload array, for engines whose directory
// maps first-keys to out-of-order payloads (segment pointers).
template <typename K, typename V>
class FlatDirectory {
 public:
  static constexpr size_t kNone = FlatKeyIndex<K>::kNone;

  void BulkLoad(std::vector<K> keys, std::vector<V> values) {
    index_.Reset(std::move(keys));
    values_ = std::move(values);
  }

  void Clear() {
    index_.Clear();
    values_.clear();
  }

  void Splice(size_t pos, size_t erase_count, std::span<const K> keys,
              std::span<const V> values) {
    index_.Splice(pos, erase_count, keys);
    if (values.size() == erase_count) {
      std::copy(values.begin(), values.end(), values_.begin() + pos);
    } else {
      const auto at = values_.erase(values_.begin() + pos,
                                    values_.begin() + pos + erase_count);
      values_.insert(at, values.begin(), values.end());
    }
  }

  size_t FloorIndex(const K& key) const { return index_.FloorIndex(key); }

  // Payload of the last entry whose key is <= `key`, or nullptr when `key`
  // sorts before every entry (same contract as BTreeMap::FindFloor).
  const V* FindFloor(const K& key) const {
    const size_t i = index_.FloorIndex(key);
    return i == kNone ? nullptr : &values_[i];
  }

  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  const K& key_at(size_t i) const { return index_.key_at(i); }
  const V& value_at(size_t i) const { return values_[i]; }
  size_t MemoryBytes() const {
    return index_.MemoryBytes() + values_.capacity() * sizeof(V);
  }

 private:
  FlatKeyIndex<K> index_;
  std::vector<V> values_;
};

}  // namespace fitree

#endif  // FITREE_CORE_FLAT_DIRECTORY_H_
