// Read-only FITing-Tree (paper Sec 4.1): a bulk-loaded array of
// error-bounded linear segments with a B+ tree over the segment boundary
// keys. Lookups descend the directory, evaluate the segment's line and
// finish with a bounded search in the +/- error window. Because the data
// stays in one flat sorted array, ranks are exact, which gives O(log)
// RangeCount via rank subtraction (used by bench_range).

#ifndef FITREE_CORE_STATIC_FITING_TREE_H_
#define FITREE_CORE_STATIC_FITING_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "btree/btree_map.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"

namespace fitree {

template <typename K>
class StaticFitingTree {
 public:
  static std::unique_ptr<StaticFitingTree<K>> Create(
      const std::vector<K>& keys, double error,
      SearchPolicy policy = SearchPolicy::kBinary,
      Feasibility feasibility = Feasibility::kEndpointLine) {
    auto tree = std::make_unique<StaticFitingTree<K>>();
    tree->policy_ = policy;
    tree->feasibility_ = feasibility;
    tree->BulkLoad(std::span<const K>(keys), error);
    return tree;
  }

  // Replaces the contents with `keys` (sorted, duplicate-free).
  void BulkLoad(std::span<const K> keys, double error) {
    error_ = error;
    data_.assign(keys.begin(), keys.end());
    segments_ = SegmentShrinkingCone<K>(data_, error, feasibility_);
    std::vector<std::pair<K, uint32_t>> entries;
    entries.reserve(segments_.size());
    for (size_t i = 0; i < segments_.size(); ++i) {
      entries.emplace_back(segments_[i].first_key, static_cast<uint32_t>(i));
    }
    directory_.BulkLoad(std::move(entries));
  }

  size_t size() const { return data_.size(); }

  // Rank of the first key >= `key` (i.e. `key`'s insertion point).
  size_t LowerBound(const K& key) const { return Bound(key, /*upper=*/false); }

  // Rank of the first key > `key`.
  size_t UpperBound(const K& key) const { return Bound(key, /*upper=*/true); }

  // The rank of `key` when present.
  std::optional<size_t> Find(const K& key) const {
    const size_t i = LowerBound(key);
    if (i < data_.size() && data_[i] == key) return i;
    return std::nullopt;
  }

  bool Contains(const K& key) const { return Find(key).has_value(); }

  // Number of keys in [lo, hi]: two rank lookups, no scan.
  size_t RangeCount(const K& lo, const K& hi) const {
    if (hi < lo) return 0;
    return UpperBound(hi) - LowerBound(lo);
  }

  // Calls fn(key) for every key in [lo, hi] in ascending order.
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn fn) const {
    for (size_t i = LowerBound(lo); i < data_.size() && data_[i] <= hi; ++i) {
      fn(data_[i]);
    }
  }

  // Directory plus per-segment model metadata; the data array itself is the
  // indexed table, not the index (paper's accounting in Fig 6/9).
  size_t IndexSizeBytes() const {
    return directory_.MemoryBytes() + segments_.size() * kSegmentMetaBytes;
  }

  // The segment table in the fixed-width form the storage/ serializer
  // writes (see storage/segment_file.h).
  std::vector<PackedSegment<K>> ExportSegmentTable() const {
    std::vector<PackedSegment<K>> packed;
    packed.reserve(segments_.size());
    for (const auto& s : segments_) packed.push_back(s.Pack());
    return packed;
  }

  size_t SegmentCount() const { return segments_.size(); }
  int TreeHeight() const { return directory_.Height(); }
  double error() const { return error_; }
  const std::vector<K>& data() const { return data_; }
  const std::vector<Segment<K>>& segments() const { return segments_; }

 private:
  static constexpr size_t kSegmentMetaBytes =
      sizeof(K) + 2 * sizeof(double) + sizeof(void*);

  size_t Bound(const K& key, bool upper) const {
    if (data_.empty()) return 0;
    const uint32_t* id = directory_.FindFloor(key);
    if (id == nullptr) return 0;  // key sorts before every indexed key
    const Segment<K>& seg = segments_[*id];
    const size_t seg_end = seg.start + seg.length;
    const double pred = seg.Predict(key);
    const auto [begin, end] = ErrorWindow(pred, error_, seg.start, seg_end);
    const size_t hint = static_cast<size_t>(std::max(0.0, pred));
    size_t i = detail::BoundedLowerBound(data_.data(), begin, end, hint, key,
                                         policy_);
    if (upper) {
      while (i < data_.size() && data_[i] == key) ++i;
    }
    return i;
  }

  double error_ = 0.0;
  SearchPolicy policy_ = SearchPolicy::kBinary;
  Feasibility feasibility_ = Feasibility::kEndpointLine;
  std::vector<K> data_;
  std::vector<Segment<K>> segments_;
  btree::BTreeMap<K, uint32_t, 16, 16> directory_;
};

}  // namespace fitree

#endif  // FITREE_CORE_STATIC_FITING_TREE_H_
