// Benchmark runner: repetitions, warmup, result records, table rendering,
// dataset/workload memoization, and environment capture.
//
// An experiment body (see registry.h) receives a Runner and, for every
// parameter point it measures, calls CollectReps() with a closure that runs
// ONE timed repetition and returns its ns/op; the runner handles warmup and
// repetition, turns the per-rep samples into outlier-robust Stats
// (stats.h), and Report() appends a ResultRecord carrying the full
// parameter point plus any extra metrics (index sizes, hit rates, ...).
// main.cc renders each experiment's records as the paper-style table and
// serializes all of them — with captured environment metadata — into one
// machine-readable BENCH_results.json (schema in EXPERIMENTS.md).

#ifndef FITREE_BENCH_HARNESS_RUNNER_H_
#define FITREE_BENCH_HARNESS_RUNNER_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness/json_writer.h"
#include "bench/harness/stats.h"
#include "common/env.h"
#include "common/sink.h"
#include "common/timer.h"
#include "telemetry/perf_counters.h"
#include "workloads/workloads.h"

namespace fitree::bench {

// One measured (or analytic) cell: the experiment it belongs to, the full
// parameter point, ns/op statistics across repetitions, and extra metrics.
// `perf` carries the hardware-counter deltas captured around the timed
// repetitions (status "not measured" for analytic records) and `perf_ops`
// the estimated operation count inside that window, for per-op rates.
// Neither participates in operator== — equality is the bench_diff pairing
// notion, and PMU readings are never reproducible across runs.
struct ResultRecord {
  std::string experiment;
  std::vector<std::pair<std::string, std::string>> params;
  Stats ns_per_op;
  std::vector<std::pair<std::string, double>> metrics;
  telemetry::PerfSample perf;
  double perf_ops = 0.0;

  bool operator==(const ResultRecord& other) const;
};

// Process-wide PerfRegion shared by every Runner: opened once (fd setup is
// not free), started/stopped around each CollectReps measurement window.
// Defined in runner.cc.
void PerfCaptureStart();
telemetry::PerfSample PerfCaptureStop();

class Runner {
 public:
  Runner(std::string experiment, int reps)
      : experiment_(std::move(experiment)), reps_(reps < 1 ? 1 : reps) {}

  const std::string& experiment() const { return experiment_; }
  int reps() const { return reps_; }

  // Runs `rep_fn` (one full timed repetition returning its ns/op) reps()
  // times and aggregates the samples. When `warmup` is true and reps > 1,
  // one extra untimed repetition runs first and is discarded — read-mostly
  // experiments use it to populate caches; mutating experiments that
  // rebuild their structure every rep pass warmup=false (a discarded
  // rebuild would only add runtime, not fidelity).
  Stats CollectReps(const std::function<double()>& rep_fn,
                    bool warmup = true) {
    if (warmup && reps_ > 1) (void)rep_fn();
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(reps_));
    // PMU counters bracket the timed repetitions (warmup excluded). The
    // operation count inside the window is reconstructed from each rep's
    // wall time divided by its reported ns/op — rep_fn only returns the
    // ratio, but wall/ratio recovers ops well enough for per-op rates.
    double est_ops = 0.0;
    PerfCaptureStart();
    for (int r = 0; r < reps_; ++r) {
      Timer rep_timer;
      const double ns_op = rep_fn();
      const double wall_ns = static_cast<double>(rep_timer.ElapsedNs());
      if (ns_op > 0.0) est_ops += wall_ns / ns_op;
      samples.push_back(ns_op);
    }
    pending_perf_ = PerfCaptureStop();
    pending_perf_ops_ = est_ops;
    has_pending_perf_ = true;
    return Stats::From(samples);
  }

  // Appends one result record for this experiment. The most recent
  // CollectReps PMU capture (if any, not yet consumed) rides along;
  // analytic records reported without a measurement keep the default
  // "not measured" sample.
  void Report(std::vector<std::pair<std::string, std::string>> params,
              Stats stats,
              std::vector<std::pair<std::string, double>> metrics = {}) {
    ResultRecord record{experiment_, std::move(params), stats,
                        std::move(metrics), {}, 0.0};
    if (has_pending_perf_) {
      record.perf = pending_perf_;
      record.perf_ops = pending_perf_ops_;
      has_pending_perf_ = false;
    }
    records_.push_back(std::move(record));
  }

  const std::vector<ResultRecord>& records() const { return records_; }

  // Renders this experiment's records as one column-aligned table: the
  // union of parameter keys, the ns/op statistics, then the union of
  // metric keys — the paper-figure tables re-expressed as views over the
  // same records that go to JSON.
  void RenderTable(std::ostream& os) const;

 private:
  std::string experiment_;
  int reps_;
  std::vector<ResultRecord> records_;
  telemetry::PerfSample pending_perf_;
  double pending_perf_ops_ = 0.0;
  bool has_pending_perf_ = false;
};

// --- measurement loops ----------------------------------------------------

// Average latency of `body(i)` over `ops` calls, in ns/op. `body` must
// return a value, which is accumulated into the process-wide sink
// (common/sink.h) to defeat dead-code elimination.
template <typename Body>
double TimedLoopNsPerOp(size_t ops, Body body) {
  uint64_t sink = 0;
  Timer timer;
  for (size_t i = 0; i < ops; ++i) {
    sink += static_cast<uint64_t>(body(i));
  }
  const double ns = static_cast<double>(timer.ElapsedNs());
  SinkValue(sink);
  return ops > 0 ? ns / static_cast<double>(ops) : 0.0;
}

// Per-thread average latency when `threads` workers issue `ops` operations
// in total against shared read-only state (the paper's Figure 6 reports
// "latency per thread"). Falls back to the single-threaded loop for
// threads <= 1.
double TimedLoopNsPerOpParallel(size_t ops, int threads,
                                const std::function<uint64_t(size_t)>& body);

// Million operations per second, derived from ns/op.
inline double MopsFromNsPerOp(double ns_per_op) {
  return ns_per_op > 0.0 ? 1e3 / ns_per_op : 0.0;
}

// --- sizing and failure ---------------------------------------------------

// Base element count scaled by the FITREE_BENCH_SCALE environment variable
// (values below 1 clamp to 1).
inline size_t ScaledN(size_t base) {
  const int64_t scale = GetEnvInt64("FITREE_BENCH_SCALE", 1);
  return base * static_cast<size_t>(scale < 1 ? 1 : scale);
}

// Aborts the whole bench run: a benchmark that measures wrong answers
// measures nothing, so oracle-validation failures are fatal.
[[noreturn]] inline void Die(const std::string& message) {
  std::fprintf(stderr, "fitree_bench: %s\n", message.c_str());
  std::exit(2);
}

// Compact human/table formatting for metric values, e.g. "12.35", "3e+06".
std::string FmtMetric(double value);

// --- dataset / workload memoization ---------------------------------------

// Returns the vector built by `make`, cached process-wide under `key` so
// experiments sharing a dataset or probe set (same generator, n, seed)
// build it once. The cache is bounded by FITREE_BENCH_MEMO_BYTES (default
// 1 GiB), evicting least-recently-inserted entries; shared_ptr ownership
// keeps a caller's vector alive across eviction.
std::shared_ptr<const std::vector<int64_t>> MemoKeys(
    const std::string& key, const std::function<std::vector<int64_t>()>& make);

// Memoized workloads::MakeLookupProbes over a memoized dataset.
// `dataset_key` is the key the dataset was memoized under (it namespaces
// the probe cache entry).
std::shared_ptr<const std::vector<int64_t>> MemoProbes(
    const std::string& dataset_key, const std::vector<int64_t>& keys,
    size_t count, workloads::Access access, double absent_fraction,
    uint64_t seed);

// Memoized workloads::MakeInserts over a memoized dataset.
std::shared_ptr<const std::vector<int64_t>> MemoInserts(
    const std::string& dataset_key, const std::vector<int64_t>& keys,
    size_t count, uint64_t seed);

// --- JSON schema ----------------------------------------------------------

Json StatsToJson(const Stats& stats);
Json ResultRecordToJson(const ResultRecord& record);
std::optional<ResultRecord> ResultRecordFromJson(const Json& json);

// Captures the run environment: git SHA (+dirty flag), compiler, flags,
// build type, CPU model, hardware threads, UTC timestamp, and every
// FITREE_* environment knob that is set.
Json CaptureEnvironment();

// Snapshot of the process-wide telemetry registry as one JSON object (the
// "telemetry" member of BENCH_results.json; schema in EXPERIMENTS.md):
// per-(engine, op) counts + sampled latency percentiles, the named
// counters and gauges, and — when FITREE_TRACE is on — the merged trace
// ring dump. {"enabled": false} under -DFITREE_NO_TELEMETRY.
Json TelemetryToJson();

// Assembles the top-level BENCH_results.json document.
Json MakeResultsDocument(const Json& environment, int reps,
                         const std::vector<ResultRecord>& records);

// Assembles the slim committed-baseline document: only what the
// tools/bench_diff.py gate pairs and compares — experiment, params, and
// the ns_per_op statistics — plus the environment header for provenance.
// No metrics, no perf block, no telemetry snapshot: those made the
// committed baseline balloon by three orders of magnitude (a full trace
// dump alone is tens of MB) while never participating in the diff.
Json MakeBaselineDocument(const Json& environment, int reps,
                          const std::vector<ResultRecord>& records);

}  // namespace fitree::bench

#endif  // FITREE_BENCH_HARNESS_RUNNER_H_
