// Figure 12 (appendix): insert throughput as a function of the per-segment
// buffer size, on Weblogs with error = 20000.
//
// Each repetition rebuilds the tree and replays the same insert stream
// (fresh state per rep, so no warmup rep); the post-insert lookup latency
// and merge count ride along as metrics from the last repetition.
//
// Expected shape: throughput rises with the buffer size (fewer
// merge-and-resegment events), approaching a plateau — the DBA's
// read-vs-write-optimized dial (paper Appendix A.2).

#include <memory>
#include <string>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

void RunFig12(Runner& runner) {
  const size_t n = ScaledN(1000000);
  // Small buffers at error=20000 merge ~hundred-thousand-key segments
  // every few inserts (that is the point of the figure); keep the insert
  // count modest so the worst cell finishes in seconds.
  const size_t inserts_n = ScaledN(60000);
  const double error = 20000.0;
  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/1";
  const auto keys =
      MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 1); });
  const auto inserts = MemoInserts(dataset_key, *keys, inserts_n, 2);
  const auto probes = MemoProbes(dataset_key, *keys, 100000,
                                 workloads::Access::kUniform, 0.0, 3);

  for (size_t buffer : {10u, 100u, 1000u, 10000u}) {
    std::unique_ptr<FitingTree<int64_t>> tree;
    const Stats stats = runner.CollectReps([&] {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = buffer;
      tree = FitingTree<int64_t>::Create(*keys, config);
      return TimedLoopNsPerOp(inserts->size(), [&](size_t i) {
        tree->Insert((*inserts)[i]);
        return uint64_t{1};
      });
    }, /*warmup=*/false);

    // Larger buffers trade read latency for write throughput; report both.
    const double lookup_ns = TimedLoopNsPerOp(probes->size(), [&](size_t i) {
      return tree->Contains((*probes)[i]) ? uint64_t{1} : uint64_t{0};
    });
    runner.Report(
        {{"buffer_size", std::to_string(buffer)}}, stats,
        {{"insert_Mops", MopsFromNsPerOp(stats.p50)},
         {"segment_merges", static_cast<double>(tree->stats().segment_merges)},
         {"lookup_ns", lookup_ns}});
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig12_buffer",
    "Fig 12: insert throughput vs per-segment buffer size (Weblogs)",
    RunFig12);

}  // namespace
}  // namespace fitree::bench
