// Single-file on-disk layout for a bulk-loaded FITing-Tree, format v2:
//
//   page 0                      meta slot A (SegmentFileMeta)
//   page 1                      meta slot B (ping-pong twin of slot A)
//   pages T .. T+S-1            segment table (SegmentRecord<K>)
//   leaf pages                  sorted LeafEntry<K>, page-aligned PER
//                               SEGMENT: segment i's leaves start at its
//                               own first_leaf_page, so local rank r maps
//                               to page first_leaf_page + r / leaf_capacity
//                               at slot r % leaf_capacity
//
// v1 packed leaves rank-contiguously across the whole file; v2 trades a
// half-page of padding per segment for per-segment addressing, which is
// what makes *incremental* compaction possible: a single segment's merged
// leaves can be appended at EOF and the segment table + meta republished,
// leaving every other segment's pages untouched.
//
// Crash safety (append-and-republish): new pages are appended and fsynced
// BEFORE the meta republish; the meta lands in the slot the new generation
// hashes to (generation % 2) and is fsynced last. A crash at any point
// leaves the other slot's meta valid and pointing exclusively at pages
// that existed when it was written — the reader picks the highest-numbered
// slot that passes its CRC, so an interrupted republish simply falls back
// one generation. Trailing bytes beyond the live meta's total_pages are
// interrupted appends and are legal.
//
// Bulk writes stream sealed (checksummed) pages through a PageSink; the
// file sink fsyncs on Finish and checks close(), so ENOSPC can't silently
// produce a torn index (ISSUE 10 satellite). The reader serves pages back
// with pread — batched through storage/async_io.h when asked — and
// verifies every page before exposing it.

#ifndef FITREE_STORAGE_SEGMENT_FILE_H_
#define FITREE_STORAGE_SEGMENT_FILE_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/options.h"
#include "core/shrinking_cone.h"
#include "core/static_fiting_tree.h"
#include "storage/async_io.h"
#include "storage/page.h"

namespace fitree::storage {

inline constexpr uint64_t kSegmentFileMagic = 0x0031454552544946ull;  // "FITREE1"

// Ping-pong meta: generation g lives in slot g % 2, so a torn republish
// never destroys the previous generation's meta.
inline constexpr uint64_t kNumMetaSlots = 2;

inline constexpr uint64_t PagesForRecords(uint64_t records,
                                          uint64_t capacity) {
  return (records + capacity - 1) / capacity;
}

// One leaf record: the key plus an opaque 64-bit payload (a row id / rank
// in the benches). Kept standard-layout so pages round-trip by memcpy.
template <typename K>
struct LeafEntry {
  K key;
  uint64_t value;
};

// One segment-table record: the model plus the file-global page where this
// segment's leaves start (v2's per-segment addressing).
template <typename K>
struct SegmentRecord {
  PackedSegment<K> seg;
  uint64_t first_leaf_page = 0;
};

struct SegmentFileMeta {
  uint64_t magic = 0;
  uint32_t format_version = 0;
  uint32_t page_bytes = 0;
  uint64_t generation = 0;            // republish sequence; highest wins
  uint64_t key_count = 0;             // live keys across all segments
  uint64_t segment_count = 0;
  uint64_t seg_table_first_page = 0;  // current segment-table extent
  uint64_t segment_page_count = 0;
  uint64_t leaf_first_page = 0;       // first leaf page of the bulk layout
  uint64_t leaf_page_count = 0;       // live leaf pages (sum over segments)
  uint64_t total_pages = 0;           // pages addressable this generation
  uint32_t key_bytes = 0;
  uint32_t leaf_entry_bytes = 0;
  uint32_t leaf_capacity = 0;     // LeafEntry records per leaf page
  uint32_t segment_capacity = 0;  // SegmentRecord records per segment page
  double error = 0.0;             // lookup window half-width the models obey
};

template <typename K>
constexpr size_t LeafCapacity(size_t page_bytes) {
  return (page_bytes - kPageHeaderBytes) / sizeof(LeafEntry<K>);
}

template <typename K>
constexpr size_t SegmentCapacity(size_t page_bytes) {
  return (page_bytes - kPageHeaderBytes) / sizeof(SegmentRecord<K>);
}

// Destination for the writer's sealed-page stream. The file sink below is
// the real one; tests wrap it to inject write/Finish faults (ENOSPC, kill
// points) without touching the writer.
class PageSink {
 public:
  virtual ~PageSink() = default;

  // Appends one sealed page. Returns false on write failure.
  virtual bool WritePage(const std::byte* page, size_t page_bytes) = 0;

  // Flushes to durable media and releases the destination. Returns false
  // when the flush, fsync, or close fails — a sink whose Finish was never
  // called (or returned false) has NOT produced a durable file.
  virtual bool Finish() = 0;
};

// fd-backed sink: write() per page, fsync-then-checked-close on Finish.
class FilePageSink final : public PageSink {
 public:
  explicit FilePageSink(const std::string& path) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
  }
  ~FilePageSink() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool is_open() const { return fd_ >= 0; }

  bool WritePage(const std::byte* page, size_t page_bytes) override {
    if (fd_ < 0) return false;
    size_t done = 0;
    while (done < page_bytes) {
      const ssize_t n = ::write(fd_, page + done, page_bytes - done);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      done += static_cast<size_t>(n);
    }
    return true;
  }

  bool Finish() override {
    if (fd_ < 0) return false;
    bool ok = ::fsync(fd_) == 0;
    ok = ::close(fd_) == 0 && ok;
    fd_ = -1;
    return ok;
  }

 private:
  int fd_ = -1;
};

// Durability of a rename: the new directory entry must itself be fsynced
// or a crash can forget the rename while keeping the file contents.
inline bool SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

struct SegmentFileOptions {
  size_t page_bytes = kDefaultPageBytes;
  // Test hook: when set, the writer streams through this sink instead of
  // its own FilePageSink (fault injection / crash points). The caller owns
  // Finish-on-success semantics either way.
  PageSink* sink = nullptr;
};

// Fixed-size paging layout expressed in segment-table form (the paper's
// "Fixed" baseline, Sec 7.1): one zero-slope segment per run of
// `segment_length` keys, predicting every key at the run's start. Serialize
// it with error = segment_length so the lookup window spans the whole
// segment and the in-page search degenerates to binary search of the page —
// structurally the same read path as FITing-Tree, boundaries data-blind.
template <typename K>
std::vector<PackedSegment<K>> MakeFixedSegments(std::span<const K> keys,
                                                size_t segment_length) {
  std::vector<PackedSegment<K>> segments;
  if (segment_length == 0) segment_length = 1;
  for (size_t begin = 0; begin < keys.size(); begin += segment_length) {
    const size_t length = std::min(segment_length, keys.size() - begin);
    segments.push_back({keys[begin], 0.0, static_cast<double>(begin),
                        static_cast<uint64_t>(begin),
                        static_cast<uint64_t>(length)});
  }
  return segments;
}

// Writes keys + payloads + segment table as one index file through `sink`.
// `values` maps rank -> payload and may be empty, in which case the
// payload is the rank itself. `segments` must partition [0, keys.size())
// in order, and every key's predicted rank must be within `error` of its
// true rank (true by construction for SegmentShrinkingCone output and
// MakeFixedSegments with error >= segment_length - 1).
template <typename K>
bool WriteSegmentFilePages(PageSink& sink, std::span<const K> keys,
                           std::span<const uint64_t> values,
                           std::span<const PackedSegment<K>> segments,
                           double error, size_t page_bytes) {
  if (page_bytes < kMinPageBytes) return false;
  const size_t leaf_cap = LeafCapacity<K>(page_bytes);
  const size_t seg_cap = SegmentCapacity<K>(page_bytes);
  if (leaf_cap == 0 || seg_cap == 0) return false;
  if (!values.empty() && values.size() != keys.size()) return false;
  uint64_t covered = 0;
  for (const auto& s : segments) {
    if (s.start != covered) return false;
    covered += s.length;
  }
  if (covered != keys.size()) return false;

  const uint64_t seg_pages = PagesForRecords(segments.size(), seg_cap);
  const uint64_t leaf_first = kNumMetaSlots + seg_pages;

  // Per-segment leaf placement: each segment starts on a fresh page.
  std::vector<SegmentRecord<K>> records;
  records.reserve(segments.size());
  uint64_t next_leaf_page = leaf_first;
  for (const auto& s : segments) {
    records.push_back({s, next_leaf_page});
    next_leaf_page += PagesForRecords(s.length, leaf_cap);
  }
  const uint64_t leaf_pages = next_leaf_page - leaf_first;

  std::vector<std::byte> page(page_bytes, std::byte{0});
  bool ok = true;
  const auto emit = [&](PageType type, uint32_t page_id, uint32_t count) {
    SealPage(page.data(), page_bytes, type, page_id, count);
    ok = ok && sink.WritePage(page.data(), page_bytes);
    std::fill(page.begin(), page.end(), std::byte{0});
  };

  SegmentFileMeta meta;
  meta.magic = kSegmentFileMagic;
  meta.format_version = kPageFormatVersion;
  meta.page_bytes = static_cast<uint32_t>(page_bytes);
  meta.generation = 1;
  meta.key_count = keys.size();
  meta.segment_count = segments.size();
  meta.seg_table_first_page = kNumMetaSlots;
  meta.segment_page_count = seg_pages;
  meta.leaf_first_page = leaf_first;
  meta.leaf_page_count = leaf_pages;
  meta.total_pages = leaf_first + leaf_pages;
  meta.key_bytes = sizeof(K);
  meta.leaf_entry_bytes = sizeof(LeafEntry<K>);
  meta.leaf_capacity = static_cast<uint32_t>(leaf_cap);
  meta.segment_capacity = static_cast<uint32_t>(seg_cap);
  meta.error = error;
  // Both slots carry generation 1 at creation, so slot parity holds from
  // the first republish onward and a fresh file never has a garbage slot.
  for (uint32_t slot = 0; slot < kNumMetaSlots; ++slot) {
    StoreAs(page.data() + kPageHeaderBytes, meta);
    emit(PageType::kMeta, slot, 1);
  }

  uint32_t page_id = kNumMetaSlots;
  for (uint64_t p = 0; p < seg_pages; ++p, ++page_id) {
    const size_t begin = p * seg_cap;
    const size_t end = std::min(records.size(), begin + seg_cap);
    for (size_t i = begin; i < end; ++i) {
      StoreAs(page.data() + kPageHeaderBytes +
                  (i - begin) * sizeof(SegmentRecord<K>),
              records[i]);
    }
    emit(PageType::kSegmentTable, page_id, static_cast<uint32_t>(end - begin));
  }

  for (const auto& rec : records) {
    const size_t seg_begin = static_cast<size_t>(rec.seg.start);
    const size_t seg_len = static_cast<size_t>(rec.seg.length);
    const uint64_t pages = PagesForRecords(seg_len, leaf_cap);
    for (uint64_t p = 0; p < pages; ++p, ++page_id) {
      const size_t begin = seg_begin + p * leaf_cap;
      const size_t end = std::min(seg_begin + seg_len, begin + leaf_cap);
      for (size_t r = begin; r < end; ++r) {
        const LeafEntry<K> entry{keys[r], values.empty()
                                              ? static_cast<uint64_t>(r)
                                              : values[r]};
        StoreAs(page.data() + kPageHeaderBytes +
                    (r - begin) * sizeof(LeafEntry<K>),
                entry);
      }
      emit(PageType::kLeaf, page_id, static_cast<uint32_t>(end - begin));
    }
  }
  return ok;
}

// Path-based form: streams through a FilePageSink (or opts.sink when a
// test injects one) and makes the result durable — Finish() fsyncs and
// checks close, and the parent directory is fsynced so the new entry
// itself survives a crash.
template <typename K>
bool WriteSegmentFile(const std::string& path, std::span<const K> keys,
                      std::span<const uint64_t> values,
                      std::span<const PackedSegment<K>> segments, double error,
                      const SegmentFileOptions& opts = {}) {
  if (opts.sink != nullptr) {
    return WriteSegmentFilePages<K>(*opts.sink, keys, values, segments, error,
                                    opts.page_bytes) &&
           opts.sink->Finish();
  }
  FilePageSink sink(path);
  if (!sink.is_open()) return false;
  const bool ok = WriteSegmentFilePages<K>(sink, keys, values, segments,
                                           error, opts.page_bytes) &&
                  sink.Finish();
  return ok && SyncParentDir(path);
}

// Serializes a built in-memory tree using its exported segment table and
// stored error bound. The tree's explicit payloads are written when
// present; otherwise the payload is the rank (the shared convention).
template <typename K>
bool WriteIndexFile(const std::string& path, const StaticFitingTree<K>& tree,
                    const SegmentFileOptions& opts = {}) {
  const auto segments = tree.ExportSegmentTable();
  return WriteSegmentFile<K>(path, std::span<const K>(tree.data()),
                             std::span<const uint64_t>(tree.values()),
                             std::span<const PackedSegment<K>>(segments),
                             tree.error(), opts);
}

// pread-based reader. Open() picks the newest valid meta slot and
// validates it; every subsequent page read re-verifies checksum, type, and
// id, so a corrupted or misdirected page is rejected instead of served.
// Batched reads go through a storage/async_io.h engine (io_uring or pread
// threads per FITREE_IO_BACKEND), created lazily on the first real batch.
template <typename K>
class SegmentFileReader final : public PageSource {
 public:
  struct IoOptions {
    IoBackend backend = GlobalOptions().io_backend;
    size_t depth = GlobalOptions().io_depth;
    // Attempt O_DIRECT (only when page_bytes is a kDirectIoAlignment
    // multiple; falls back to buffered reads when the filesystem refuses).
    // With direct reads in effect every destination buffer must be
    // kDirectIoAlignment-aligned — BufferPool frames and the reader's own
    // scratch are; hand-rolled callers must use AlignedBytes.
    bool direct = GlobalOptions().io_direct;
  };

  SegmentFileReader() = default;
  ~SegmentFileReader() override { Close(); }
  SegmentFileReader(const SegmentFileReader&) = delete;
  SegmentFileReader& operator=(const SegmentFileReader&) = delete;

  bool Open(const std::string& path) { return Open(path, IoOptions{}); }

  bool Open(const std::string& path, const IoOptions& io) {
    Close();
    io_options_ = io;
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) return Fail("open() failed");

    // Bootstrap: page_bytes is only known from a meta slot, and slot B's
    // offset depends on it. Peek slot A; when it is torn, probe common
    // page sizes for a plausible slot B before giving up.
    uint32_t page_bytes = 0;
    std::byte peek[kPageHeaderBytes + sizeof(SegmentFileMeta)];
    if (::pread(fd_, peek, sizeof(peek), 0) !=
        static_cast<ssize_t>(sizeof(peek))) {
      return Fail("file too short for a meta page");
    }
    const auto meta_a = LoadAs<SegmentFileMeta>(peek + kPageHeaderBytes);
    if (PlausibleMeta(meta_a)) {
      page_bytes = meta_a.page_bytes;
    } else {
      for (const size_t probe : {size_t{128}, size_t{256}, size_t{512},
                                 size_t{1024}, size_t{2048}, size_t{4096},
                                 size_t{8192}, size_t{16384}, size_t{32768},
                                 size_t{65536}}) {
        if (::pread(fd_, peek, sizeof(peek), static_cast<off_t>(probe)) !=
            static_cast<ssize_t>(sizeof(peek))) {
          continue;
        }
        const auto meta_b = LoadAs<SegmentFileMeta>(peek + kPageHeaderBytes);
        if (PlausibleMeta(meta_b) && meta_b.page_bytes == probe) {
          page_bytes = meta_b.page_bytes;
          break;
        }
      }
      if (page_bytes == 0) return Fail("bad magic");
    }

    // Newest slot whose page passes full verification wins.
    bool found = false;
    SegmentFileMeta best{};
    std::vector<std::byte> page(page_bytes);
    for (uint32_t slot = 0; slot < kNumMetaSlots; ++slot) {
      if (::pread(fd_, page.data(), page.size(),
                  static_cast<off_t>(slot) * page_bytes) !=
          static_cast<ssize_t>(page.size())) {
        continue;
      }
      if (!VerifyPage(page.data(), page.size(), PageType::kMeta, slot)) {
        continue;
      }
      const auto m = LoadAs<SegmentFileMeta>(page.data() + kPageHeaderBytes);
      if (!PlausibleMeta(m) || m.page_bytes != page_bytes) continue;
      if (!found || m.generation > best.generation) {
        best = m;
        found = true;
      }
    }
    if (!found) return Fail("no valid meta slot (checksum mismatch)");

    if (best.key_bytes != sizeof(K) ||
        best.leaf_entry_bytes != sizeof(LeafEntry<K>)) {
      return Fail("key type mismatch");
    }
    if (best.leaf_capacity != LeafCapacity<K>(best.page_bytes) ||
        best.segment_capacity != SegmentCapacity<K>(best.page_bytes)) {
      return Fail("capacity mismatch");
    }
    // The record counts must agree with the page counts: a CRC only proves
    // integrity, not that the header fields are in range, and everything
    // downstream (reserve sizes, per-page loops) trusts these bounds.
    if (PagesForRecords(best.segment_count, best.segment_capacity) !=
        best.segment_page_count) {
      return Fail("record counts disagree with page counts");
    }
    if (best.seg_table_first_page < kNumMetaSlots ||
        best.seg_table_first_page + best.segment_page_count >
            best.total_pages ||
        best.leaf_first_page < kNumMetaSlots ||
        best.leaf_first_page > best.total_pages) {
      return Fail("meta page ranges out of bounds");
    }
    meta_ = best;

    struct stat st {};
    if (::fstat(fd_, &st) != 0) return Fail("fstat() failed");
    // >= not ==: bytes past total_pages are interrupted appends from a
    // crashed republish — legal, unreferenced by this generation.
    if (static_cast<uint64_t>(st.st_size) <
        meta_.total_pages * meta_.page_bytes) {
      return Fail("file size disagrees with meta page counts");
    }

    if (io.direct && page_bytes % kDirectIoAlignment == 0) {
      const int dfd = ::open(path.c_str(), O_RDONLY | O_DIRECT | O_CLOEXEC);
      if (dfd >= 0) {
        ::close(fd_);
        fd_ = dfd;
        direct_ = true;
      }
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    meta_ = SegmentFileMeta{};
    engine_.reset();
    direct_ = false;
  }

  bool is_open() const { return fd_ >= 0; }
  const SegmentFileMeta& meta() const { return meta_; }
  const std::string& error_message() const { return error_; }
  size_t page_bytes() const { return meta_.page_bytes; }
  uint64_t page_count() const { return meta_.total_pages; }
  bool direct_io() const { return direct_; }

  // Backend actually in effect for batched reads ("none" until the first
  // real batch instantiates the engine).
  const char* io_backend_name() const {
    return engine_ == nullptr ? "none" : engine_->name();
  }

  // File-global page id of the `leaf_index`-th leaf page OF THE BULK
  // LAYOUT (fresh files; after incremental republishes leaves scatter and
  // per-segment first_leaf_page is authoritative).
  uint32_t LeafPageId(uint64_t leaf_index) const {
    return static_cast<uint32_t>(meta_.leaf_first_page + leaf_index);
  }

  // Republish support (DiskFitingTree incremental compaction): adopt the
  // new generation's meta after append + meta write without a reopen.
  void set_meta(const SegmentFileMeta& m) { meta_ = m; }

  bool ReadPageInto(uint32_t page_id, std::byte* out) override {
    if (fd_ < 0 || page_id >= page_count()) return false;
    const ssize_t n = ::pread(fd_, out, meta_.page_bytes,
                              static_cast<off_t>(page_id) *
                                  static_cast<off_t>(meta_.page_bytes));
    if (n != static_cast<ssize_t>(meta_.page_bytes)) return false;
    return VerifyPage(out, meta_.page_bytes, ExpectedType(page_id), page_id);
  }

  // Batched reads: submit every page before waiting on any (async_io.h),
  // then verify each completed page exactly as the serial path does.
  void ReadPagesInto(PageReadRequest* reqs, size_t n) override {
    if (fd_ < 0) {
      for (size_t i = 0; i < n; ++i) reqs[i].ok = false;
      return;
    }
    if (n <= 1 || io_options_.backend == IoBackend::kSync) {
      for (size_t i = 0; i < n; ++i) {
        reqs[i].ok = ReadPageInto(reqs[i].page_id, reqs[i].out);
      }
      return;
    }
    bool bounded = true;
    for (size_t i = 0; i < n; ++i) {
      if (reqs[i].page_id >= page_count()) {
        reqs[i].ok = false;
        bounded = false;
      }
    }
    if (engine_ == nullptr) {
      engine_ = MakeBatchReadEngine(io_options_.backend, io_options_.depth);
    }
    if (!bounded) {
      // Mixed batch: serve the in-range subset serially (rare error path).
      for (size_t i = 0; i < n; ++i) {
        if (reqs[i].page_id < page_count()) {
          reqs[i].ok = ReadPageInto(reqs[i].page_id, reqs[i].out);
        }
      }
      return;
    }
    engine_->ReadBatch(fd_, meta_.page_bytes, reqs, n);
    for (size_t i = 0; i < n; ++i) {
      if (!reqs[i].ok) continue;
      reqs[i].ok = VerifyPage(reqs[i].out, meta_.page_bytes,
                              ExpectedType(reqs[i].page_id), reqs[i].page_id);
    }
  }

  // Reads and validates the whole segment table (it lives in memory in the
  // paper's design; only leaves stay disk-resident). Validation here is
  // what downstream trusts: starts are contiguous from 0 and sum to
  // key_count, and every segment's leaf extent is inside total_pages.
  bool ReadSegmentTable(std::vector<SegmentRecord<K>>* out) {
    out->clear();
    out->reserve(meta_.segment_count);
    AlignedBytes page(meta_.page_bytes);
    for (uint64_t p = 0; p < meta_.segment_page_count; ++p) {
      const uint32_t page_id =
          static_cast<uint32_t>(meta_.seg_table_first_page + p);
      if (!ReadPageInto(page_id, page.data())) return false;
      const PageHeader h = LoadAs<PageHeader>(page.data());
      // count is attacker-controlled until checked: reading past
      // segment_capacity records would run off the page buffer.
      if (h.count > meta_.segment_capacity) return false;
      for (uint32_t i = 0; i < h.count; ++i) {
        out->push_back(LoadAs<SegmentRecord<K>>(
            page.data() + kPageHeaderBytes + i * sizeof(SegmentRecord<K>)));
      }
    }
    if (out->size() != meta_.segment_count) return false;
    uint64_t covered = 0;
    uint64_t leaf_pages = 0;
    for (const auto& rec : *out) {
      if (rec.seg.start != covered) return false;
      covered += rec.seg.length;
      const uint64_t pages =
          PagesForRecords(rec.seg.length, meta_.leaf_capacity);
      if (rec.first_leaf_page < kNumMetaSlots ||
          rec.first_leaf_page + pages > meta_.total_pages) {
        return false;
      }
      leaf_pages += pages;
    }
    return covered == meta_.key_count && leaf_pages == meta_.leaf_page_count;
  }

 private:
  // Fields a meta must satisfy before anything else is believed (the CRC
  // runs after this, at full-page granularity).
  static bool PlausibleMeta(const SegmentFileMeta& m) {
    return m.magic == kSegmentFileMagic &&
           m.format_version == kPageFormatVersion &&
           m.page_bytes >= kMinPageBytes && m.page_bytes <= (1u << 26);
  }

  PageType ExpectedType(uint32_t page_id) const {
    if (page_id < kNumMetaSlots) return PageType::kMeta;
    if (page_id >= meta_.seg_table_first_page &&
        page_id < meta_.seg_table_first_page + meta_.segment_page_count) {
      return PageType::kSegmentTable;
    }
    return PageType::kLeaf;
  }

  bool Fail(const char* why) {
    error_ = why;
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    return false;
  }

  int fd_ = -1;
  SegmentFileMeta meta_{};
  IoOptions io_options_{};
  std::unique_ptr<BatchReadEngine> engine_;
  bool direct_ = false;
  std::string error_;
};

// Write-side companion for append-and-republish: positioned page writes
// into an existing index file (appends at EOF, then the meta slot), with
// explicit fsync barriers between the append and the republish.
class SegmentFileUpdater {
 public:
  SegmentFileUpdater() = default;
  ~SegmentFileUpdater() { Close(); }
  SegmentFileUpdater(const SegmentFileUpdater&) = delete;
  SegmentFileUpdater& operator=(const SegmentFileUpdater&) = delete;

  bool Open(const std::string& path) {
    Close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    return fd_ >= 0;
  }

  bool is_open() const { return fd_ >= 0; }

  bool WritePageAt(uint64_t page_id, const std::byte* page,
                   size_t page_bytes) {
    if (fd_ < 0) return false;
    size_t done = 0;
    while (done < page_bytes) {
      const ssize_t n = ::pwrite(
          fd_, page + done, page_bytes - done,
          static_cast<off_t>(page_id) * static_cast<off_t>(page_bytes) +
              static_cast<off_t>(done));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      done += static_cast<size_t>(n);
    }
    return true;
  }

  bool Sync() { return fd_ >= 0 && ::fsync(fd_) == 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_SEGMENT_FILE_H_
