// Fixed-capacity buffer-pool page cache over a PageSource: pin/unpin,
// CLOCK (second-chance) eviction, and hit/miss/read counters. This is the
// knob the disk benches sweep — frames * page_bytes is the fraction of the
// file allowed to stay resident, and IoStats turns that into pages-read/op.
//
// Single-threaded by design (matches the per-thread index instances the
// bench layer uses); no dirty pages because the index file is immutable
// after bulk load.

#ifndef FITREE_STORAGE_BUFFER_POOL_H_
#define FITREE_STORAGE_BUFFER_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/io_stats.h"
#include "storage/page.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"

namespace fitree::storage {

class BufferPool {
 public:
  BufferPool(PageSource* source, size_t page_bytes, size_t frames)
      : source_(source),
        page_bytes_(page_bytes),
        arena_(page_bytes * (frames == 0 ? 1 : frames)),
        frames_(frames == 0 ? 1 : frames) {
    map_.reserve(frames_.size());
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t page_bytes() const { return page_bytes_; }
  size_t frame_count() const { return frames_.size(); }
  size_t CapacityBytes() const { return arena_.size(); }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  // True when `page_id` is currently resident (test/diagnostic hook; does
  // not touch pins, the clock hand, or the counters).
  bool Contains(uint32_t page_id) const {
    return map_.find(page_id) != map_.end();
  }

  // Resident frame data for `page_id` without pinning or counting, or
  // nullptr on a miss. For prefetch hints only: the frame may be evicted
  // at any later point, so callers must not dereference the pointer —
  // issuing a software prefetch for it is always safe.
  const std::byte* Peek(uint32_t page_id) const {
    const auto it = map_.find(page_id);
    if (it == map_.end()) return nullptr;
    return arena_.data() + it->second * page_bytes_;
  }

  // Returns the resident page, pinned (caller must Unpin), or nullptr when
  // the read fails verification or every frame is pinned.
  const std::byte* Fetch(uint32_t page_id) {
    if (const auto it = map_.find(page_id); it != map_.end()) {
      Frame& f = frames_[it->second];
      ++f.pins;
      f.referenced = true;
      ++stats_.cache_hits;
      telemetry::CounterAdd(telemetry::CounterId::kIoCacheHits);
      return FrameData(it->second);
    }
    ++stats_.cache_misses;
    telemetry::CounterAdd(telemetry::CounterId::kIoCacheMisses);
    // Attributed to the disk engine: it is the only BufferPool client, and
    // the phase grid wants page faults separated from the compute phases
    // (window search self time stays pure compute this way).
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kPageIo);
    const size_t victim = PickVictim();
    if (victim == kNoFrame) return nullptr;
    Frame& f = frames_[victim];
    if (f.valid) {
      map_.erase(f.page_id);
      f.valid = false;
    }
    if (!source_->ReadPageInto(page_id, FrameData(victim))) return nullptr;
    ++stats_.pages_read;
    stats_.bytes_read += page_bytes_;
    telemetry::CounterAdd(telemetry::CounterId::kIoPagesRead);
    telemetry::CounterAdd(telemetry::CounterId::kIoBytesRead, page_bytes_);
    f.page_id = page_id;
    f.pins = 1;
    f.referenced = true;
    f.valid = true;
    map_.emplace(page_id, victim);
    return FrameData(victim);
  }

  void Unpin(uint32_t page_id) {
    const auto it = map_.find(page_id);
    assert(it != map_.end() && "Unpin of a non-resident page");
    if (it == map_.end()) return;
    Frame& f = frames_[it->second];
    assert(f.pins > 0 && "Unpin without a matching Fetch");
    if (f.pins > 0) --f.pins;
  }

 private:
  struct Frame {
    uint32_t page_id = 0;
    uint32_t pins = 0;
    bool referenced = false;
    bool valid = false;
  };

  static constexpr size_t kNoFrame = static_cast<size_t>(-1);

  std::byte* FrameData(size_t frame) {
    return arena_.data() + frame * page_bytes_;
  }

  // CLOCK sweep: invalid frames are taken immediately, pinned frames are
  // skipped, referenced frames get a second chance. Two full laps clear
  // every reference bit, so only an all-pinned pool returns kNoFrame.
  size_t PickVictim() {
    for (size_t step = 0; step < 2 * frames_.size(); ++step) {
      const size_t i = hand_;
      hand_ = (hand_ + 1) % frames_.size();
      Frame& f = frames_[i];
      if (!f.valid) return i;
      if (f.pins > 0) continue;
      if (f.referenced) {
        f.referenced = false;
        continue;
      }
      return i;
    }
    return kNoFrame;
  }

  PageSource* source_;
  size_t page_bytes_;
  std::vector<std::byte> arena_;
  std::vector<Frame> frames_;
  std::unordered_map<uint32_t, size_t> map_;
  size_t hand_ = 0;
  IoStats stats_;
};

// RAII pin: fetches on construction, unpins on destruction. Falsy when the
// fetch failed.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(BufferPool* pool, uint32_t page_id)
      : pool_(pool), page_id_(page_id), data_(pool->Fetch(page_id)) {}
  ~PinnedPage() { Release(); }

  PinnedPage(PinnedPage&& o) noexcept
      : pool_(o.pool_), page_id_(o.page_id_), data_(o.data_) {
    o.data_ = nullptr;
  }
  PinnedPage& operator=(PinnedPage&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      page_id_ = o.page_id_;
      data_ = o.data_;
      o.data_ = nullptr;
    }
    return *this;
  }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  explicit operator bool() const { return data_ != nullptr; }
  const std::byte* data() const { return data_; }

 private:
  void Release() {
    if (data_ != nullptr) pool_->Unpin(page_id_);
    data_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  uint32_t page_id_ = 0;
  const std::byte* data_ = nullptr;
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_BUFFER_POOL_H_
