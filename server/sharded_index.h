// ShardedIndex<Engine>: a batched, range-partitioned index server over any
// engine modeling MutableIndexApi (core/index_api.h).
//
// Architecture (ISSUE 9 tentpole):
//
//   client threads                 shard workers (one thread per shard)
//   --------------                 -----------------------------------
//   route key -> shard             loop:
//     (ShardRouter floor over        PopBatch(up to `batch` requests)
//      the boundary array)           prefetch pass: PrefetchLookup for
//   enqueue Request on the             every point op in the batch
//     shard's MPSC OpQueue           resolve pass: execute each op,
//   wait on ResponseSlot               Publish() its slot
//
// Each shard owns a contiguous key range and a private engine instance —
// shards never share index state, so the engines need no cross-shard
// synchronization and even the single-threaded FitingTree becomes safely
// multi-client behind its worker. The batch drain is where the design
// earns its throughput: one wakeup, one batch of queue loads, and one
// telemetry update cover up to `batch` requests, and the *group prefetch*
// pass issues the predicted-leaf prefetch (each engine's PrefetchLookup
// hook, paired with common/prefetch.h) for every request in the batch
// before resolving any of them — by the time the resolve pass reaches
// request i, its directory/leaf lines have had the whole preceding batch's
// work as memory-latency cover. That is software pipelining across
// independent probes, the same trick the engines play *inside* one lookup,
// lifted across requests.
//
// Memory model notes:
//   - ResponseSlot's release-Publish/acquire-Wait edge is the only
//     client<->worker synchronization; everything the worker wrote before
//     publishing (including its relaxed size_ bookkeeping) is visible to
//     the client after Wait().
//   - shard_engine() exposes the underlying engines for validation, legal
//     only once the caller's own requests have completed and no other
//     client is submitting (post-quiescence): the slot edges above make
//     the worker's writes visible, and quiescence removes the races.
//
// Telemetry: requests count exactly (server rows in the [engine][op]
// grid measure the request path — submit to publish — on top of whatever
// engine the shards run); latencies are sampled via the same
// 1-in-FITREE_TELEM_SAMPLE countdown the engines use, and sampled
// requests decompose into the kShardRoute / kShardQueueWait / kShardExec
// phases. Those spans cross threads (route on the client, wait/exec on
// the worker), so they are recorded straight into the phase grid rather
// than through the thread-local ScopedPhase machinery.

#ifndef FITREE_SERVER_SHARDED_INDEX_H_
#define FITREE_SERVER_SHARDED_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/options.h"
#include "core/index_api.h"
#include "server/op_queue.h"
#include "server/request.h"
#include "server/shard_router.h"
#include "telemetry/metrics.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "telemetry/structural.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace fitree::server {

namespace detail {

inline telemetry::Op OpFor(ReqOp op) {
  switch (op) {
    case ReqOp::kLookup: return telemetry::Op::kLookup;
    case ReqOp::kInsert: return telemetry::Op::kInsert;
    case ReqOp::kUpdate: return telemetry::Op::kUpdate;
    case ReqOp::kDelete: return telemetry::Op::kDelete;
    case ReqOp::kScan: return telemetry::Op::kScan;
  }
  return telemetry::Op::kLookup;
}

// Cross-thread phase record for sampled requests: one count + one latency
// sample in the server's phase grid. Bypasses ScopedPhase (whose nesting
// state is thread-local) because route/wait/exec spans live on different
// threads. Compiles away with the rest of the instrumentation.
inline void RecordServerPhase(telemetry::Phase phase, uint64_t ns) {
  if (!telemetry::kEnabled) return;
  auto& reg = telemetry::Registry::Get();
  reg.phase_count(telemetry::Engine::kServer, phase).Add();
  reg.phase_latency(telemetry::Engine::kServer, phase).Record(ns);
}

}  // namespace detail

template <typename Engine>
class ShardedIndex {
  static_assert(MutableIndexApi<Engine>,
                "ShardedIndex requires an engine modeling MutableIndexApi "
                "(core/index_api.h)");

 public:
  using Key = typename Engine::Key;
  using Payload = typename Engine::Payload;
  using Req = Request<Key, Payload>;
  using Slot = ResponseSlot<Key, Payload>;

  // Builds one engine instance from its shard's slice of the initial load.
  using Factory = std::function<std::unique_ptr<Engine>(
      const std::vector<Key>&, const std::vector<Payload>&)>;

  struct Config {
    size_t shards = GlobalOptions().shards;  // FITREE_SHARDS
    size_t batch = GlobalOptions().batch;    // FITREE_BATCH (>= 1)
    size_t queue_capacity = 4096;            // per-shard ring, rounded to 2^k
    bool pin_threads = false;                // pthread affinity, Linux only
  };

  // `keys` sorted ascending; `values` parallel to `keys` or empty (engines
  // default-fill). The initial load is sliced by the router's *kept*
  // boundaries: shard 0 starts at keys.begin(), shard i>0 at the first key
  // >= boundary(i) — the same floor rule ShardOf applies at runtime. Slicing
  // by position (i*n/shards) would disagree with routing whenever duplicate
  // keys collapse boundaries and fewer shards materialize than requested.
  static std::unique_ptr<ShardedIndex> Create(const std::vector<Key>& keys,
                                              const std::vector<Payload>& values,
                                              Factory factory,
                                              Config config = {}) {
    if (config.shards == 0) config.shards = 1;
    if (config.batch == 0) config.batch = 1;
    auto server = std::unique_ptr<ShardedIndex>(new ShardedIndex());
    server->config_ = config;
    server->router_ =
        ShardRouter<Key>::Create(ShardRouter<Key>::Partition(keys, config.shards));
    const size_t shards = server->router_.shard_count();

    server->shards_ = std::make_unique<Shard[]>(shards);
    server->shard_count_ = shards;
    const size_t n = keys.size();
    std::vector<size_t> cuts(shards + 1);
    cuts[0] = 0;
    cuts[shards] = n;
    for (size_t i = 1; i < shards; ++i) {
      cuts[i] = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(),
                           server->router_.boundary(i)) -
          keys.begin());
    }
    for (size_t i = 0; i < shards; ++i) {
      const size_t lo = cuts[i];
      const size_t hi = cuts[i + 1];
      std::vector<Key> shard_keys(keys.begin() + lo, keys.begin() + hi);
      std::vector<Payload> shard_values;
      if (!values.empty()) {
        shard_values.assign(values.begin() + lo, values.begin() + hi);
      }
      Shard& shard = server->shards_[i];
      shard.queue = std::make_unique<OpQueue<Req>>(config.queue_capacity);
      shard.engine = factory(shard_keys, shard_values);
      if (shard.engine == nullptr) return nullptr;
    }
    server->size_.store(n, std::memory_order_relaxed);

    for (size_t i = 0; i < shards; ++i) {
      Shard& shard = server->shards_[i];
      shard.worker = std::thread([srv = server.get(), &shard, i] {
        srv->WorkerLoop(shard, i);
      });
    }
    return server;
  }

  // Must tolerate the Create error path: if a factory returned nullptr,
  // later shards' queues were never constructed and no workers started.
  ~ShardedIndex() {
    stop_.store(true, std::memory_order_release);
    for (size_t i = 0; i < shard_count_; ++i) {
      if (shards_[i].queue) shards_[i].queue->WakeAll();
    }
    for (size_t i = 0; i < shard_count_; ++i) {
      if (shards_[i].worker.joinable()) shards_[i].worker.join();
    }
  }

  // --- synchronous client API (IndexApi-shaped, thread-safe) ------------

  std::optional<Payload> Lookup(const Key& key) const {
    Slot slot;
    Req req;
    req.op = ReqOp::kLookup;
    req.key = key;
    req.slot = &slot;
    Submit(req);
    slot.Wait();
    if (!slot.found) return std::nullopt;
    return slot.value;
  }

  bool Contains(const Key& key) const {
    Slot slot;
    Req req;
    req.op = ReqOp::kLookup;
    req.key = key;
    req.slot = &slot;
    Submit(req);
    slot.Wait();
    return slot.found;
  }

  bool Insert(const Key& key, const Payload& value) {
    return RunMutation(ReqOp::kInsert, key, value);
  }

  bool Update(const Key& key, const Payload& value) {
    return RunMutation(ReqOp::kUpdate, key, value);
  }

  bool Delete(const Key& key) { return RunMutation(ReqOp::kDelete, key, {}); }

  // Ordered range scan across shards. The interval [lo, hi] is split into
  // one sub-scan per touched shard; shards own disjoint, ordered ranges,
  // so emitting shard results in shard order yields globally sorted
  // output. Returns the total entries emitted. (The server.scan op row
  // counts per-shard sub-scans, not client calls — documented in
  // EXPERIMENTS.md.)
  template <typename Fn>
  size_t ScanRange(const Key& lo, const Key& hi, Fn fn) const {
    if (hi < lo) return 0;
    const size_t first = router_.ShardOf(lo);
    const size_t last = router_.ShardOf(hi);
    const size_t count = last - first + 1;
    std::vector<Slot> slots(count);
    std::vector<std::vector<std::pair<Key, Payload>>> outs(count);
    for (size_t i = 0; i < count; ++i) {
      Req req;
      req.op = ReqOp::kScan;
      req.key = lo;
      req.hi = hi;
      req.slot = &slots[i];
      slots[i].scan_out = &outs[i];
      SubmitTo(first + i, req);
    }
    size_t total = 0;
    for (size_t i = 0; i < count; ++i) {
      slots[i].Wait();
      for (const auto& [k, v] : outs[i]) fn(k, v);
      total += slots[i].count;
    }
    return total;
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  // --- asynchronous client API (pipelined load generators) --------------

  // Fire-and-collect: route + enqueue without waiting. The caller owns the
  // slot (and any scan_out vector) and must keep both alive until Ready().
  void SubmitAsync(Req req) const { Submit(req); }

  // --- introspection -----------------------------------------------------

  size_t shard_count() const { return shard_count_; }
  size_t batch_limit() const { return config_.batch; }
  size_t ShardOf(const Key& key) const { return router_.ShardOf(key); }
  const ShardRouter<Key>& router() const { return router_; }

  // The engine behind one shard. Post-quiescence use only (validation /
  // stats): see the memory-model note in the file comment.
  const Engine& shard_engine(size_t shard) const {
    return *shards_[shard].engine;
  }

  // Post-quiescence use only, like shard_engine(): the per-shard
  // engine->size() reads are plain loads that race with in-flight
  // mutations, so call this only after the caller's own requests have
  // completed and no other client is submitting.
  telemetry::StructuralStats Stats() const {
    telemetry::StructuralStats stats;
    stats.engine = "server";
    uint64_t batches = 0;
    uint64_t batched_ops = 0;
    size_t min_keys = static_cast<size_t>(-1);
    size_t max_keys = 0;
    for (size_t i = 0; i < shard_count_; ++i) {
      batches += shards_[i].batches.load(std::memory_order_relaxed);
      batched_ops += shards_[i].batched_ops.load(std::memory_order_relaxed);
      const size_t keys = shards_[i].engine->size();
      if (keys < min_keys) min_keys = keys;
      if (keys > max_keys) max_keys = keys;
    }
    stats.Add("shards", static_cast<double>(shard_count_));
    stats.Add("batch_limit", static_cast<double>(config_.batch));
    stats.Add("queue_capacity",
              static_cast<double>(shards_[0].queue->capacity()));
    stats.Add("batches", static_cast<double>(batches));
    stats.Add("batched_ops", static_cast<double>(batched_ops));
    stats.Add("avg_batch", batches == 0
                               ? 0.0
                               : static_cast<double>(batched_ops) /
                                     static_cast<double>(batches));
    stats.Add("keys", static_cast<double>(size()));
    stats.Add("min_shard_keys",
              static_cast<double>(min_keys == static_cast<size_t>(-1)
                                      ? 0
                                      : min_keys));
    stats.Add("max_shard_keys", static_cast<double>(max_keys));
    return stats;
  }

 private:
  struct Shard {
    std::unique_ptr<Engine> engine;
    std::unique_ptr<OpQueue<Req>> queue;
    std::thread worker;
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> batched_ops{0};
  };

  ShardedIndex() = default;

  bool RunMutation(ReqOp op, const Key& key, const Payload& value) {
    Slot slot;
    Req req;
    req.op = op;
    req.key = key;
    req.value = value;
    req.slot = &slot;
    Submit(req);
    slot.Wait();
    return slot.ok;
  }

  // Route + enqueue. Counts the op exactly; requests that win the sampling
  // draw get an explicit route timing and an enqueue timestamp the worker
  // turns into queue-wait / whole-request latencies.
  void Submit(Req& req) const {
    telemetry::CountOp(telemetry::Engine::kServer, detail::OpFor(req.op));
    if (telemetry::kEnabled && telemetry::detail::ShouldSample()) {
      const uint64_t t0 = telemetry::NowNs();
      const size_t shard = router_.ShardOf(req.key);
      const uint64_t t1 = telemetry::NowNs();
      detail::RecordServerPhase(telemetry::Phase::kShardRoute, t1 - t0);
      req.enqueue_ns = t1;
      Enqueue(shard, req);
    } else {
      Enqueue(router_.ShardOf(req.key), req);
    }
  }

  // Route-bypassing submit for per-shard sub-scans (the caller already
  // knows the target). Still counts the op — and samples like Submit.
  void SubmitTo(size_t shard, Req& req) const {
    telemetry::CountOp(telemetry::Engine::kServer, detail::OpFor(req.op));
    if (telemetry::kEnabled && telemetry::detail::ShouldSample()) {
      req.enqueue_ns = telemetry::NowNs();
    }
    Enqueue(shard, req);
  }

  void Enqueue(size_t shard, const Req& req) const {
    const size_t stalls = shards_[shard].queue->Push(req);
    if (stalls != 0) {
      telemetry::CounterAdd(telemetry::CounterId::kServerEnqueueStalls,
                            stalls);
    }
  }

  void WorkerLoop(Shard& shard, size_t index) {
#if defined(__linux__)
    const unsigned cores = std::thread::hardware_concurrency();
    if (config_.pin_threads && cores != 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(index % cores, &set);
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
#else
    (void)index;
#endif
    Engine& engine = *shard.engine;
    std::vector<Req> batch(config_.batch);
    // Scratch for the batched group prefetch (point-op keys of one drain).
    std::vector<typename Engine::Key> prefetch_keys;
    prefetch_keys.reserve(config_.batch);
    for (;;) {
      size_t n = shard.queue->PopBatch(batch.data(), config_.batch);
      if (n == 0) {
        if (stop_.load(std::memory_order_acquire) && shard.queue->Empty()) {
          return;
        }
        shard.queue->WaitNonEmpty(stop_);
        continue;
      }
      // Bounded linger (batched mode only): an under-full drain yields one
      // scheduling slot so in-flight producers can top the batch up, then
      // takes whatever arrived. This is the batching analogue of interrupt
      // coalescing — it trades at most one yield of latency for batch fill,
      // which is what amortizes the per-wake costs and gives the group
      // prefetch below a window to work with. Unbatched dispatch
      // (batch == 1) resolves immediately, by definition.
      if (config_.batch > 1 && n < config_.batch) {
        std::this_thread::yield();
        n += shard.queue->PopBatch(batch.data() + n, config_.batch - n);
      }
      shard.batches.fetch_add(1, std::memory_order_relaxed);
      shard.batched_ops.fetch_add(n, std::memory_order_relaxed);
      telemetry::CounterAdd(telemetry::CounterId::kServerBatches);
      telemetry::CounterAdd(telemetry::CounterId::kServerBatchOps, n);

      // Group prefetch: issue every point op's predicted-leaf prefetch
      // before resolving any of them, so the batch's memory latencies
      // overlap instead of serializing (pointless for a batch of one).
      // Engines with a batched form get the whole key group in one call —
      // the disk tree turns that into a single batched page read, which
      // is what lets a shard's batch overlap its page faults (ISSUE 10).
      if constexpr (BatchPrefetchableIndex<Engine>) {
        if (n > 1) {
          prefetch_keys.clear();
          for (size_t i = 0; i < n; ++i) {
            if (batch[i].op != ReqOp::kScan) {
              prefetch_keys.push_back(batch[i].key);
            }
          }
          engine.PrefetchBatch(prefetch_keys.data(), prefetch_keys.size());
        }
      } else if constexpr (PrefetchableIndex<Engine>) {
        if (n > 1) {
          for (size_t i = 0; i < n; ++i) {
            if (batch[i].op != ReqOp::kScan) {
              engine.PrefetchLookup(batch[i].key);
            }
          }
        }
      }

      for (size_t i = 0; i < n; ++i) ExecuteOne(engine, batch[i]);
    }
  }

  void ExecuteOne(Engine& engine, Req& req) {
    const bool sampled = req.enqueue_ns != 0;
    uint64_t exec_start = 0;
    if (sampled) {
      exec_start = telemetry::NowNs();
      detail::RecordServerPhase(telemetry::Phase::kShardQueueWait,
                                exec_start - req.enqueue_ns);
    }
    Slot* slot = req.slot;
    switch (req.op) {
      case ReqOp::kLookup: {
        auto result = engine.Lookup(req.key);
        slot->found = result.has_value();
        if (result) slot->value = *result;
        slot->ok = slot->found;
        break;
      }
      case ReqOp::kInsert:
        slot->ok = engine.Insert(req.key, req.value);
        if (slot->ok) size_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReqOp::kUpdate:
        slot->ok = engine.Update(req.key, req.value);
        break;
      case ReqOp::kDelete:
        slot->ok = engine.Delete(req.key);
        if (slot->ok) size_.fetch_sub(1, std::memory_order_relaxed);
        break;
      case ReqOp::kScan: {
        if (slot->scan_out != nullptr) {
          auto* out = slot->scan_out;
          slot->count = engine.ScanRange(
              req.key, req.hi,
              [out](const Key& k, const Payload& v) { out->emplace_back(k, v); });
        } else {
          slot->count = engine.ScanRange(req.key, req.hi,
                                         [](const Key&, const Payload&) {});
        }
        slot->ok = true;
        break;
      }
    }
    if (sampled) {
      const uint64_t now = telemetry::NowNs();
      detail::RecordServerPhase(telemetry::Phase::kShardExec,
                                now - exec_start);
      telemetry::RecordDuration(telemetry::Engine::kServer,
                                detail::OpFor(req.op), now - req.enqueue_ns);
    }
    slot->Publish();
  }

  Config config_;
  ShardRouter<Key> router_;
  std::unique_ptr<Shard[]> shards_;
  size_t shard_count_ = 0;
  std::atomic<size_t> size_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace fitree::server

#endif  // FITREE_SERVER_SHARDED_INDEX_H_
