// Figure 13 (appendix): lookup time breakdown — tree descent vs. in-page
// search — for FITing-Tree and the fixed-paging baseline across error /
// page-size scales.
//
// The timed body replays the probe set through ContainsWithBreakdown; the
// record's ns/op is the summed (tree + page) time per probe, and the
// tree%/page% split is reported from the last repetition.
//
// Expected shape: at small errors the B+ tree dominates both methods, but
// FITing-Tree's tree is much smaller (fewer entries), so its tree share
// shrinks faster; at huge errors nearly all time goes to the in-segment
// search for both.

#include <string>

#include "baselines/paged_index.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

void RunFig13(Runner& runner) {
  const size_t n = ScaledN(1000000);
  const size_t probes_n = ScaledN(100000);
  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/1";
  const auto keys =
      MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 1); });
  const auto probes = MemoProbes(dataset_key, *keys, probes_n,
                                 workloads::Access::kUniform, 0.0, 2);

  for (double scale : {10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    const auto measure = [&](auto& index, const char* method) {
      int64_t tree_ns = 0, page_ns = 0;
      const Stats stats = runner.CollectReps([&] {
        tree_ns = 0;
        page_ns = 0;
        for (size_t i = 0; i < probes->size(); ++i) {
          index.ContainsWithBreakdown((*probes)[i], &tree_ns, &page_ns);
        }
        return static_cast<double>(tree_ns + page_ns) /
               static_cast<double>(probes->size());
      });
      const double total = static_cast<double>(tree_ns + page_ns);
      runner.Report(
          {{"method", method},
           {"error_or_page", TablePrinter::Fmt(scale, 0)}},
          stats,
          {{"tree_pct", 100.0 * static_cast<double>(tree_ns) / total},
           {"page_pct", 100.0 * static_cast<double>(page_ns) / total}});
    };

    FitingTreeConfig fconfig;
    fconfig.error = scale;
    fconfig.buffer_size = 0;
    auto fiting = FitingTree<int64_t>::Create(*keys, fconfig);
    measure(*fiting, "FITing-Tree");

    PagedIndexConfig pconfig;
    pconfig.page_size = static_cast<size_t>(scale);
    pconfig.buffer_size = 0;
    auto paged = PagedIndex<int64_t>::Create(*keys, pconfig);
    measure(*paged, "Fixed");
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig13_breakdown",
    "Fig 13: lookup breakdown, tree descent vs in-page search", RunFig13);

}  // namespace
}  // namespace fitree::bench
