#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

using fitree::SearchPolicy;
using fitree::StaticFitingTree;

void CheckAgainstFlatOracle(const std::vector<int64_t>& keys, double error,
                            SearchPolicy policy) {
  auto tree = StaticFitingTree<int64_t>::Create(keys, error, policy);
  EXPECT_EQ(tree->size(), keys.size());
  EXPECT_GE(tree->SegmentCount(), 1u);
  EXPECT_GE(tree->TreeHeight(), 1);
  EXPECT_GT(tree->IndexSizeBytes(), 0u);

  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 3000, fitree::workloads::Access::kUniform, 0.4, 99);
  for (const int64_t probe : probes) {
    const auto expected_lb =
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin();
    ASSERT_EQ(tree->LowerBound(probe), static_cast<size_t>(expected_lb))
        << "probe " << probe;
    const bool present = static_cast<size_t>(expected_lb) < keys.size() &&
                         keys[expected_lb] == probe;
    ASSERT_EQ(tree->Contains(probe), present) << "probe " << probe;
    if (present) {
      ASSERT_EQ(tree->Find(probe).value(), static_cast<size_t>(expected_lb));
    } else {
      ASSERT_FALSE(tree->Find(probe).has_value());
    }
  }
}

TEST(StaticFitingTree, LookupMatchesOracleAllPolicies) {
  const auto keys = fitree::datasets::Weblogs(30000, 1);
  for (const auto policy :
       {SearchPolicy::kBinary, SearchPolicy::kLinear,
        SearchPolicy::kExponential, SearchPolicy::kSimd}) {
    CheckAgainstFlatOracle(keys, 64.0, policy);
  }
}

TEST(StaticFitingTree, DirectoryModesAgree) {
  const auto keys = fitree::datasets::Weblogs(30000, 4);
  for (const auto mode :
       {fitree::DirectoryMode::kBTree, fitree::DirectoryMode::kFlat}) {
    auto tree = StaticFitingTree<int64_t>::Create(
        keys, 64.0, SearchPolicy::kSimd, fitree::Feasibility::kEndpointLine,
        mode);
    const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
        keys, 3000, fitree::workloads::Access::kUniform, 0.4, 17);
    for (const int64_t probe : probes) {
      const auto expected =
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin();
      ASSERT_EQ(tree->LowerBound(probe), static_cast<size_t>(expected));
    }
    EXPECT_GT(tree->IndexSizeBytes(), 0u);
  }
}

TEST(StaticFitingTree, LookupAcrossDatasetsAndErrors) {
  for (const auto& keys :
       {fitree::datasets::Iot(20000, 2), fitree::datasets::Maps(20000, 3),
        fitree::datasets::Step(20000, 100)}) {
    for (const double error : {8.0, 256.0, 4096.0}) {
      CheckAgainstFlatOracle(keys, error, SearchPolicy::kBinary);
    }
  }
}

TEST(StaticFitingTree, RangeCountAndScan) {
  const auto keys = fitree::datasets::Iot(20000, 5);
  auto tree = StaticFitingTree<int64_t>::Create(keys, 128.0);
  const auto queries =
      fitree::workloads::MakeRangeQueries<int64_t>(keys, 300, 0.01, 11);
  for (const auto& q : queries) {
    const auto lo_it = std::lower_bound(keys.begin(), keys.end(), q.lo);
    const auto hi_it = std::upper_bound(keys.begin(), keys.end(), q.hi);
    const size_t expected = static_cast<size_t>(hi_it - lo_it);
    ASSERT_EQ(tree->RangeCount(q.lo, q.hi), expected);

    std::vector<int64_t> scanned;
    tree->ScanRange(q.lo, q.hi, [&](int64_t key) { scanned.push_back(key); });
    ASSERT_EQ(scanned.size(), expected);
    EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), lo_it));
  }
  EXPECT_EQ(tree->RangeCount(keys.back(), keys.front()), 0u);
}

TEST(StaticFitingTree, SmallerErrorMoreSegments) {
  const auto keys = fitree::datasets::Weblogs(30000, 7);
  auto fine = StaticFitingTree<int64_t>::Create(keys, 16.0);
  auto coarse = StaticFitingTree<int64_t>::Create(keys, 4096.0);
  EXPECT_GE(fine->SegmentCount(), coarse->SegmentCount());
  EXPECT_GE(fine->IndexSizeBytes(), coarse->IndexSizeBytes());
}

TEST(StaticFitingTree, BoundaryProbes) {
  const auto keys = fitree::datasets::Maps(10000, 9);
  auto tree = StaticFitingTree<int64_t>::Create(keys, 32.0);
  EXPECT_EQ(tree->LowerBound(keys.front() - 1), 0u);
  EXPECT_EQ(tree->LowerBound(keys.front()), 0u);
  EXPECT_EQ(tree->LowerBound(keys.back()), keys.size() - 1);
  EXPECT_EQ(tree->LowerBound(keys.back() + 1), keys.size());
  EXPECT_FALSE(tree->Contains(keys.front() - 100));
  EXPECT_FALSE(tree->Contains(keys.back() + 100));
}

TEST(StaticFitingTree, PayloadsDefaultToRankAndUpdateInPlace) {
  const auto keys = fitree::datasets::Iot(3000, 7);
  auto tree = StaticFitingTree<int64_t>::Create(keys, 16.0);
  // Implicit rank payloads.
  EXPECT_TRUE(tree->values().empty());
  EXPECT_EQ(tree->Lookup(keys[57]), std::optional<uint64_t>(57));
  EXPECT_EQ(tree->Lookup(keys.front() - 1), std::nullopt);
  // Update materializes ranks, then overrides one.
  EXPECT_TRUE(tree->Update(keys[57], 9999));
  EXPECT_EQ(tree->Lookup(keys[57]), std::optional<uint64_t>(9999));
  EXPECT_EQ(tree->Lookup(keys[58]), std::optional<uint64_t>(58));
  EXPECT_FALSE(tree->Update(keys.front() - 1, 1));
  EXPECT_EQ(tree->values().size(), keys.size());
}

TEST(StaticFitingTree, ExplicitPayloadsServeLookupsAndScans) {
  const std::vector<int64_t> keys{5, 10, 15, 20};
  const std::vector<uint64_t> values{50, 100, 150, 200};
  auto tree = StaticFitingTree<int64_t>::Create(keys, values, 4.0);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(tree->Lookup(keys[i]), std::optional<uint64_t>(values[i]));
  }
  std::vector<std::pair<int64_t, uint64_t>> got;
  tree->ScanRange(0, 100, [&](int64_t k, uint64_t v) {
    got.emplace_back(k, v);
  });
  const std::vector<std::pair<int64_t, uint64_t>> want{
      {5, 50}, {10, 100}, {15, 150}, {20, 200}};
  EXPECT_EQ(got, want);
}

}  // namespace
