// Figure 9: worst-case (step-function) data.
//
// 9a is the dataset itself (plot via examples/plot_mapping); 9b is the
// index size as a function of the error threshold. Expected shape: below
// the step size FITing-Tree matches the fixed-paging size (one segment per
// step, i.e. per `error` keys) while staying below the full index; once the
// error passes the step size the whole dataset collapses into a single
// segment and the index size drops by orders of magnitude.

#include <iostream>
#include <string>

#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

int main() {
  using fitree::FitingTree;
  using fitree::FitingTreeConfig;
  using fitree::FullIndex;
  using fitree::PagedIndex;
  using fitree::PagedIndexConfig;
  using fitree::TablePrinter;

  const size_t n = fitree::bench::ScaledN(1000000);
  const size_t step = 100;
  const auto keys = fitree::datasets::Step(n, step);
  fitree::bench::PrintHeader(
      "Figure 9b: worst-case step data, index size vs error (n=" +
      std::to_string(n) + ", step=" + std::to_string(step) + ")");

  FullIndex<int64_t> full{std::span<const int64_t>(keys)};
  const double kMB = 1024.0 * 1024.0;

  TablePrinter table({"error", "FITing_MB", "FITing_segments", "Fixed_MB",
                      "Full_MB"});
  for (double error = 10.0; error <= 1e6; error *= 10.0) {
    FitingTreeConfig fconfig;
    fconfig.error = error;
    fconfig.buffer_size = 0;
    auto fiting = FitingTree<int64_t>::Create(keys, fconfig);

    PagedIndexConfig pconfig;
    pconfig.page_size = static_cast<size_t>(error);
    auto paged = PagedIndex<int64_t>::Create(keys, pconfig);

    table.AddRow(
        {TablePrinter::Fmt(error, 0),
         TablePrinter::Fmt(
             static_cast<double>(fiting->IndexSizeBytes()) / kMB, 5),
         TablePrinter::Fmt(static_cast<uint64_t>(fiting->SegmentCount())),
         TablePrinter::Fmt(
             static_cast<double>(paged->IndexSizeBytes()) / kMB, 5),
         TablePrinter::Fmt(static_cast<double>(full.IndexSizeBytes()) / kMB,
                           5)});
  }
  table.Print(std::cout);
  return 0;
}
