// Failure-path coverage for the storage layer (ISSUE 10): fault-injected
// writes through the PageSink seam, torn and truncated index files against
// SegmentFileReader::Open / ReadPageInto, crash-leftover resolution for
// the full-rewrite temp file, and a fork-based kill-at-point replay that
// interrupts both compaction paths at every CompactPoint and proves the
// index reopens valid (old generation or new, never a torn one).

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/static_fiting_tree.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"

namespace {

using fitree::StaticFitingTree;
using fitree::storage::CompactPoint;
using fitree::storage::DiskFitingTree;
using fitree::storage::FilePageSink;
using fitree::storage::PageReadRequest;
using fitree::storage::PageSink;
using fitree::storage::SegmentFileOptions;
using fitree::storage::SegmentFileReader;
using fitree::storage::WriteIndexFile;
using fitree::storage::WriteSegmentFile;

constexpr size_t kPageBytes = 256;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

// Base payloads are a pure function of the key so both fork sides agree.
uint64_t BasePayload(int64_t key) { return static_cast<uint64_t>(key) * 3 + 1; }

std::vector<int64_t> BaseKeys(size_t n) {
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(static_cast<int64_t>(i) * 10);
  return keys;
}

bool WriteBaseFile(const std::string& path, size_t n, double error = 16.0) {
  const auto keys = BaseKeys(n);
  std::vector<uint64_t> values;
  values.reserve(n);
  for (int64_t k : keys) values.push_back(BasePayload(k));
  auto tree = StaticFitingTree<int64_t>::Create(keys, values, error);
  return WriteIndexFile(path, *tree, SegmentFileOptions{kPageBytes});
}

// --- fault-injecting sink --------------------------------------------------

// Wraps a delegate sink, failing WritePage after `fail_after_pages` pages
// and/or failing Finish, while recording the call sequence so tests can
// assert the durability ordering (every page streamed, then exactly one
// Finish — the fsync — before the writer reports success).
class FaultSink final : public PageSink {
 public:
  explicit FaultSink(PageSink* delegate) : delegate_(delegate) {}

  bool WritePage(const std::byte* page, size_t page_bytes) override {
    if (finish_calls_ > 0) ordered_ = false;  // a write after fsync: broken
    ++pages_written_;
    if (fail_after_pages_ >= 0 &&
        pages_written_ > static_cast<size_t>(fail_after_pages_)) {
      return false;
    }
    return delegate_ == nullptr || delegate_->WritePage(page, page_bytes);
  }

  bool Finish() override {
    ++finish_calls_;
    if (fail_finish_) return false;
    return delegate_ == nullptr || delegate_->Finish();
  }

  void FailAfterPages(int n) { fail_after_pages_ = n; }
  void FailFinish() { fail_finish_ = true; }
  size_t pages_written() const { return pages_written_; }
  size_t finish_calls() const { return finish_calls_; }
  bool ordered() const { return ordered_; }

 private:
  PageSink* delegate_;
  int fail_after_pages_ = -1;
  bool fail_finish_ = false;
  size_t pages_written_ = 0;
  size_t finish_calls_ = 0;
  bool ordered_ = true;
};

TEST(FaultSink, SuccessfulWriteStreamsAllPagesThenSyncsExactlyOnce) {
  const std::string path = TempPath("sink_ok.fit");
  FilePageSink file(path);
  ASSERT_TRUE(file.is_open());
  FaultSink sink(&file);
  const auto keys = BaseKeys(200);
  std::vector<uint64_t> values;
  for (int64_t k : keys) values.push_back(BasePayload(k));
  auto tree = StaticFitingTree<int64_t>::Create(keys, values, 16.0);
  SegmentFileOptions opts{kPageBytes};
  opts.sink = &sink;
  ASSERT_TRUE(WriteIndexFile(path, *tree, opts));
  EXPECT_TRUE(sink.ordered());
  EXPECT_EQ(sink.finish_calls(), 1u);
  EXPECT_GT(sink.pages_written(), 2u);  // meta slots + table + leaves
  // The injected sink streamed into a real file, so it must reopen.
  SegmentFileReader<int64_t> reader;
  EXPECT_TRUE(reader.Open(path)) << reader.error_message();
  EXPECT_EQ(reader.meta().key_count, 200u);
  std::remove(path.c_str());
}

TEST(FaultSink, FailedPageWriteFailsTheWriter) {
  FaultSink sink(nullptr);
  sink.FailAfterPages(2);
  const auto keys = BaseKeys(200);
  std::vector<uint64_t> values;
  for (int64_t k : keys) values.push_back(BasePayload(k));
  auto tree = StaticFitingTree<int64_t>::Create(keys, values, 16.0);
  SegmentFileOptions opts{kPageBytes};
  opts.sink = &sink;
  EXPECT_FALSE(WriteIndexFile(TempPath("unused.fit"), *tree, opts));
}

TEST(FaultSink, FailedFsyncFailsTheWriterEvenWithAllPagesWritten) {
  // The satellite-1 regression: a writer that streamed every page but
  // could not make them durable must NOT report success.
  FaultSink sink(nullptr);
  sink.FailFinish();
  const auto keys = BaseKeys(64);
  std::vector<uint64_t> values;
  for (int64_t k : keys) values.push_back(BasePayload(k));
  auto tree = StaticFitingTree<int64_t>::Create(keys, values, 16.0);
  SegmentFileOptions opts{kPageBytes};
  opts.sink = &sink;
  EXPECT_FALSE(WriteIndexFile(TempPath("unused2.fit"), *tree, opts));
  EXPECT_EQ(sink.finish_calls(), 1u);
  EXPECT_TRUE(sink.ordered());
}

// --- torn / truncated files ------------------------------------------------

class TornFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("torn.fit");
    ASSERT_TRUE(WriteBaseFile(path_, 500));
    struct stat st{};
    ASSERT_EQ(::stat(path_.c_str(), &st), 0);
    full_size_ = static_cast<size_t>(st.st_size);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void TruncateTo(size_t bytes) {
    ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(bytes)), 0);
  }

  void FlipByteAt(size_t offset) {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    ASSERT_EQ(std::fclose(f), 0);
  }

  std::string path_;
  size_t full_size_ = 0;
};

TEST_F(TornFile, ShorterThanAMetaPageFailsOpen) {
  TruncateTo(kPageBytes / 2);
  SegmentFileReader<int64_t> reader;
  EXPECT_FALSE(reader.Open(path_));
  EXPECT_FALSE(reader.error_message().empty());
}

TEST_F(TornFile, TruncatedLeafRegionFailsOpenBySizeCheck) {
  TruncateTo(full_size_ - kPageBytes);
  SegmentFileReader<int64_t> reader;
  EXPECT_FALSE(reader.Open(path_));
  EXPECT_NE(reader.error_message().find("file size"), std::string::npos)
      << reader.error_message();
}

TEST_F(TornFile, MetaOnlyPrefixFailsOpen) {
  TruncateTo(kPageBytes * 2);  // both meta slots survive, table is gone
  SegmentFileReader<int64_t> reader;
  EXPECT_FALSE(reader.Open(path_));
}

TEST_F(TornFile, BadCrcMidFileFailsThatPageOnly) {
  SegmentFileReader<int64_t> probe;
  ASSERT_TRUE(probe.Open(path_)) << probe.error_message();
  const uint32_t bad = static_cast<uint32_t>(probe.meta().leaf_first_page) + 1;
  const uint32_t good = bad + 1;
  ASSERT_LT(good, probe.meta().total_pages);
  FlipByteAt(static_cast<size_t>(bad) * kPageBytes + kPageBytes / 2);

  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path_)) << reader.error_message();  // meta is fine
  std::vector<std::byte> buf(kPageBytes * 2);
  EXPECT_FALSE(reader.ReadPageInto(bad, buf.data()));
  EXPECT_TRUE(reader.ReadPageInto(good, buf.data()));

  // A batch containing the torn page fails only that request.
  PageReadRequest reqs[2] = {{bad, buf.data(), false},
                             {good, buf.data() + kPageBytes, false}};
  reader.ReadPagesInto(reqs, 2);
  EXPECT_FALSE(reqs[0].ok);
  EXPECT_TRUE(reqs[1].ok);
}

TEST_F(TornFile, OutOfRangePageReadFails) {
  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path_)) << reader.error_message();
  std::vector<std::byte> buf(kPageBytes);
  EXPECT_FALSE(reader.ReadPageInto(
      static_cast<uint32_t>(reader.meta().total_pages), buf.data()));
}

TEST_F(TornFile, TrailingGarbageBeyondTotalPagesIsLegal) {
  // Interrupted appends leave bytes past total_pages; Open must accept
  // them (the size check is >=, not ==).
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::vector<char> junk(kPageBytes * 3, 0x5A);
  ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
  ASSERT_EQ(std::fclose(f), 0);
  SegmentFileReader<int64_t> reader;
  EXPECT_TRUE(reader.Open(path_)) << reader.error_message();
  EXPECT_EQ(reader.meta().key_count, 500u);
}

// --- crash-leftover resolution around the full Compact's rename ------------

TEST(CrashLeftovers, OrphanTmpNextToLiveTargetIsRemoved) {
  const std::string path = TempPath("leftover_both.fit");
  const std::string tmp = path + ".compact";
  ASSERT_TRUE(WriteBaseFile(path, 100));
  ASSERT_TRUE(WriteBaseFile(tmp, 300));  // a newer, bigger interrupted rewrite
  auto tree = DiskFitingTree<int64_t>::Open(path);
  ASSERT_NE(tree, nullptr);
  // The live target wins; the orphan is gone.
  EXPECT_EQ(tree->size(), 100u);
  struct stat st{};
  EXPECT_NE(::stat(tmp.c_str(), &st), 0);
  std::remove(path.c_str());
}

TEST(CrashLeftovers, CompletedTmpWithoutTargetIsAdopted) {
  const std::string path = TempPath("leftover_adopt.fit");
  const std::string tmp = path + ".compact";
  ASSERT_TRUE(WriteBaseFile(tmp, 300));
  auto tree = DiskFitingTree<int64_t>::Open(path);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->size(), 300u);
  EXPECT_EQ(tree->Lookup(290 * 10), std::optional<uint64_t>(
                                        BasePayload(290 * 10)));
  // The adoption renamed the tmp into place.
  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_NE(::stat(tmp.c_str(), &st), 0);
  std::remove(path.c_str());
}

TEST(CrashLeftovers, MissingTargetAndNoTmpFailsOpen) {
  EXPECT_EQ(DiskFitingTree<int64_t>::Open(TempPath("nothing_here.fit")),
            nullptr);
}

// --- kill-at-point replay for both compaction paths ------------------------

constexpr size_t kCrashKeys = 400;
constexpr int64_t kSentinel = 0;           // first key, lands in segment 0
constexpr uint64_t kNewPayload = 900000;   // distinct from every BasePayload

// In the child: open the index, route a few updates through the overlay
// (the sentinel included), then run the chosen compaction path with a hook
// that dies — no flush, no teardown — the moment `point` is reached.
// Never returns.
[[noreturn]] void ChildCrashingAt(const std::string& path, CompactPoint point,
                                  bool incremental) {
  typename DiskFitingTree<int64_t>::Options options;
  options.cache_pages = 64;
  options.compact_hook = [point](CompactPoint p) {
    if (p == point) _exit(0);
  };
  auto tree = DiskFitingTree<int64_t>::Open(path, options);
  if (tree == nullptr) _exit(3);
  for (int64_t k = 0; k < 5; ++k) {
    if (!tree->Update(k * 10, kNewPayload + static_cast<uint64_t>(k))) {
      _exit(4);
    }
  }
  const bool ok = incremental ? tree->CompactSegment(0) : tree->Compact();
  _exit(ok ? 1 : 2);  // hook never fired: the point wasn't on this path
}

// In the parent: the reopened index must be wholly old-generation or
// wholly new-generation — sentinel decides which — and every key must
// carry that generation's payload.
void ExpectConsistentGeneration(const std::string& path) {
  auto tree = DiskFitingTree<int64_t>::Open(path);
  ASSERT_NE(tree, nullptr) << "index failed to reopen after simulated crash";
  ASSERT_EQ(tree->size(), kCrashKeys);
  const auto sentinel = tree->Lookup(kSentinel);
  ASSERT_TRUE(sentinel.has_value());
  const bool new_gen = *sentinel >= kNewPayload;
  for (int64_t i = 0; i < static_cast<int64_t>(kCrashKeys); ++i) {
    const int64_t key = i * 10;
    const auto got = tree->Lookup(key);
    ASSERT_TRUE(got.has_value()) << "key " << key;
    const uint64_t want = (new_gen && i < 5)
                              ? kNewPayload + static_cast<uint64_t>(i)
                              : BasePayload(key);
    EXPECT_EQ(*got, want) << "key " << key << " (new_gen=" << new_gen << ")";
  }
}

void RunCrashPoint(CompactPoint point, bool incremental,
                   const std::string& name) {
  const std::string path = TempPath("crash_" + name + ".fit");
  ASSERT_TRUE(WriteBaseFile(path, kCrashKeys));
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ChildCrashingAt(path, point, incremental);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died abnormally";
  ASSERT_EQ(WEXITSTATUS(status), 0)
      << "child exit " << WEXITSTATUS(status)
      << " (1/2: hook never fired, 3: open failed, 4: update failed)";
  ExpectConsistentGeneration(path);
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
}

TEST(CrashReplay, FullCompactTmpWritten) {
  RunCrashPoint(CompactPoint::kTmpWritten, false, "tmp_written");
}
TEST(CrashReplay, FullCompactTmpSynced) {
  RunCrashPoint(CompactPoint::kTmpSynced, false, "tmp_synced");
}
TEST(CrashReplay, FullCompactRenamed) {
  RunCrashPoint(CompactPoint::kRenamed, false, "renamed");
}
TEST(CrashReplay, FullCompactDirSynced) {
  RunCrashPoint(CompactPoint::kDirSynced, false, "dir_synced");
}
TEST(CrashReplay, IncrementalAppendWritten) {
  RunCrashPoint(CompactPoint::kAppendWritten, true, "append_written");
}
TEST(CrashReplay, IncrementalAppendSynced) {
  RunCrashPoint(CompactPoint::kAppendSynced, true, "append_synced");
}
TEST(CrashReplay, IncrementalMetaWritten) {
  RunCrashPoint(CompactPoint::kMetaWritten, true, "meta_written");
}
TEST(CrashReplay, IncrementalMetaSynced) {
  RunCrashPoint(CompactPoint::kMetaSynced, true, "meta_synced");
}

// The threshold-driven path reaches the same incremental machinery from a
// plain mutation: queue a segment by routing enough overlay entries at it,
// then crash inside the drain that the NEXT mutation performs.
TEST(CrashReplay, ThresholdDrivenDrainSurvivesKillAtMetaWritten) {
  const std::string path = TempPath("crash_threshold.fit");
  ASSERT_TRUE(WriteBaseFile(path, kCrashKeys));
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    typename DiskFitingTree<int64_t>::Options options;
    options.cache_pages = 64;
    options.compact_threshold_pct = 1;  // max(8, len/100): 8 entries queue it
    options.compact_hook = [](CompactPoint p) {
      if (p == CompactPoint::kMetaWritten) _exit(0);
    };
    auto tree = DiskFitingTree<int64_t>::Open(path, options);
    if (tree == nullptr) _exit(3);
    for (int64_t k = 0; k < 64; ++k) {
      if (!tree->Update(k * 10, 1)) _exit(4);
    }
    _exit(1);  // never drained a compaction: the trigger is broken
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "child exit " << WEXITSTATUS(status);
  auto tree = DiskFitingTree<int64_t>::Open(path);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->size(), kCrashKeys);
  for (int64_t i = 0; i < static_cast<int64_t>(kCrashKeys); ++i) {
    const auto got = tree->Lookup(i * 10);
    ASSERT_TRUE(got.has_value()) << "key " << i * 10;
    EXPECT_TRUE(*got == BasePayload(i * 10) || *got == 1) << "key " << i * 10;
  }
  std::remove(path.c_str());
}

// Completed incremental compaction round-trips durably (the non-crash
// baseline for the replay above): the folded payloads survive reopen.
TEST(CrashReplay, CompletedIncrementalCompactionIsDurable) {
  const std::string path = TempPath("incr_durable.fit");
  ASSERT_TRUE(WriteBaseFile(path, kCrashKeys));
  {
    auto tree = DiskFitingTree<int64_t>::Open(path);
    ASSERT_NE(tree, nullptr);
    for (int64_t k = 0; k < 5; ++k) {
      ASSERT_TRUE(tree->Update(k * 10, kNewPayload + static_cast<uint64_t>(k)));
    }
    ASSERT_TRUE(tree->CompactSegment(0));
    EXPECT_EQ(tree->IncrementalCompactions(), 1u);
  }
  auto tree = DiskFitingTree<int64_t>::Open(path);
  ASSERT_NE(tree, nullptr);
  for (int64_t k = 0; k < 5; ++k) {
    EXPECT_EQ(tree->Lookup(k * 10),
              std::optional<uint64_t>(kNewPayload + static_cast<uint64_t>(k)));
  }
  EXPECT_EQ(tree->Lookup(100 * 10),
            std::optional<uint64_t>(BasePayload(100 * 10)));
  std::remove(path.c_str());
}

}  // namespace
