// The unified engine contract (ISSUE 9 api_redesign): one documented
// surface that every FITing-Tree engine — static, buffered, concurrent,
// disk — exposes identically, so generic layers (the sharded server in
// server/, the differential oracle in tests/oracle.h) compile against a
// concept instead of a particular tree.
//
// The read surface (IndexApi):
//   using Key / using Payload     the key and payload value types
//   Lookup(key)  const            -> std::optional<Payload>
//   Contains(key) const           -> bool
//   ScanRange(lo, hi, fn) const   -> size_t  (entries emitted, inclusive
//                                   bounds; fn sees (key, payload) in key
//                                   order)
//   size() const                  -> size_t  (live entries)
//
// The write surface (MutableIndexApi adds):
//   Insert(key, payload)          -> bool (false on duplicate key)
//   Update(key, payload)          -> bool (false when key is absent)
//   Delete(key)                   -> bool (false when key is absent)
//
// ScanRange is templated on the visitor in every engine, so the concept
// probes it with a concrete do-nothing sink (detail::ScanProbe). Engines
// may accept single-argument (key-only) visitors too; the contract only
// pins the two-argument form.
//
// StaticFitingTree models IndexApi plus Update (payload override on a
// read-only key set) but not Insert/Delete, so it deliberately fails
// MutableIndexApi — the static checks in tests/test_index_api.cc assert
// both directions.

#ifndef FITREE_CORE_INDEX_API_H_
#define FITREE_CORE_INDEX_API_H_

#include <concepts>
#include <cstddef>
#include <optional>

namespace fitree {

namespace detail {

// Concrete visitor used to instantiate an engine's templated ScanRange
// inside the concept's requires-expression.
template <typename K, typename V>
struct ScanProbe {
  void operator()(const K&, const V&) const {}
};

}  // namespace detail

template <typename T>
concept IndexApi =
    requires(const T& index, const typename T::Key& key) {
      typename T::Key;
      typename T::Payload;
      { index.Lookup(key) }
          -> std::same_as<std::optional<typename T::Payload>>;
      { index.Contains(key) } -> std::same_as<bool>;
      {
        index.ScanRange(
            key, key,
            detail::ScanProbe<typename T::Key, typename T::Payload>{})
      } -> std::same_as<size_t>;
      { index.size() } -> std::same_as<size_t>;
    };

template <typename T>
concept MutableIndexApi =
    IndexApi<T> && requires(T& index, const typename T::Key& key,
                            const typename T::Payload& payload) {
      { index.Insert(key, payload) } -> std::same_as<bool>;
      { index.Update(key, payload) } -> std::same_as<bool>;
      { index.Delete(key) } -> std::same_as<bool>;
    };

// Optional fast-path hook, not part of the core contract: engines that can
// cheaply prefetch the cache lines a Lookup(key) would touch (predicted
// leaf position, PR 6 groundwork) expose PrefetchLookup(key) const. The
// server's batched dispatch detects it with this concept and issues the
// whole batch's prefetches before resolving any probe.
template <typename T>
concept PrefetchableIndex =
    requires(const T& index, const typename T::Key& key) {
      index.PrefetchLookup(key);
    };

// Stronger batched form (ISSUE 10): engines whose prefetch can overlap
// real I/O — the disk tree stages a whole batch's candidate pages through
// one batched read — expose PrefetchBatch(keys, n) const. The server
// prefers it over per-key PrefetchLookup when draining a batch, so a
// shard's page faults overlap instead of serializing.
template <typename T>
concept BatchPrefetchableIndex =
    requires(const T& index, const typename T::Key* keys, size_t n) {
      index.PrefetchBatch(keys, n);
    };

}  // namespace fitree

#endif  // FITREE_CORE_INDEX_API_H_
