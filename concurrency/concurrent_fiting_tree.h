// Thread-safe FITing-Tree (paper Sec 4.2 index, made concurrent), with the
// full CRUD surface:
//
//  - Lookups and scans are lock-free: they run against an immutable
//    snapshot of the segment directory (a sorted first-key array published
//    through one atomic pointer) under epoch protection, and against each
//    segment's immutable key/payload page. The only mutable per-segment
//    state is the small delta buffer; readers elide its latch with a
//    sequence-validated "buffer empty" check, so a 100%-read workload
//    never executes an atomic RMW on shared data and scales linearly.
//  - Writers (insert/update/delete) take the target segment's SegLatch and
//    mutate its sorted delta buffer of {key, payload, tombstone} entries —
//    contention is spread over thousands of segments, which is the
//    concurrency payoff of the paper's design: clamped writes keep every
//    mutation local to one segment. Because pages are immutable, an update
//    of a paged key becomes a live buffer *override* and a delete becomes a
//    tombstone; both are resolved (applied / dropped) by the next merge.
//  - When a buffer overflows, the mutating thread (or the optional
//    background MergeWorker) marks the segment retired under its latch,
//    re-runs shrinking-cone segmentation over the merged page+buffer
//    off-latch, and publishes the replacement segment(s) with a
//    copy-on-write directory swap. A merge whose every key was tombstoned
//    publishes a directory *without* the segment. The old directory
//    snapshot and the old segment are handed to the EpochManager and freed
//    once all in-flight readers quiesce.
//
// Writers waiting on a retired segment retry from the freshly published
// directory; readers never retry — a snapshot stays self-consistent for as
// long as they hold their epoch guard, which is what makes scans safe
// against concurrent merges (bundledrefs' versioned-range-scan discipline,
// specialized to whole-directory snapshots since merges are rare).
//
// Buffer invariants (per segment, under its latch):
//   - at most one buffer entry per key;
//   - a live entry is either a pending insert (key absent from the page)
//     or a payload override (key present in the page);
//   - a tombstone's key is always present in the page.

#ifndef FITREE_CONCURRENCY_CONCURRENT_FITING_TREE_H_
#define FITREE_CONCURRENCY_CONCURRENT_FITING_TREE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/options.h"
#include "common/prefetch.h"
#include "concurrency/epoch.h"
#include "concurrency/merge_worker.h"
#include "concurrency/seg_latch.h"
#include "core/fiting_tree.h"
#include "core/flat_directory.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "telemetry/structural.h"

namespace fitree {

struct ConcurrentFitingTreeConfig {
  // Sentinel: size the buffer as max(1, error/2), the paper's default ratio.
  static constexpr size_t kAutoBufferSize = static_cast<size_t>(-1);

  double error = 64.0;
  // Per-segment delta-buffer budget (pending inserts + overrides +
  // tombstones). With a background worker the budget is soft: buffers keep
  // absorbing writes while their merge is queued.
  size_t buffer_size = kAutoBufferSize;
  // In-window search strategy; defaults to the FITREE_SEARCH_POLICY knob
  // (simd unless overridden). The directory here is always the flat COW
  // snapshot — it is what makes readers lock-free — so there is no
  // btree/flat choice to make.
  SearchPolicy search_policy = DefaultSearchPolicy();
  Feasibility feasibility = Feasibility::kEndpointLine;
  // Off: the mutating thread merges inline. On: overflows are queued to a
  // MergeWorker thread and writes return immediately.
  bool background_merge = false;
};

struct ConcurrentFitingTreeStats {
  uint64_t inserts = 0;  // Insert calls, including rejected duplicates
  uint64_t updates = 0;  // successful Update calls
  uint64_t deletes = 0;  // successful Delete calls
  uint64_t segment_merges = 0;
  uint64_t segments_created = 0;
  uint64_t segments_retired = 0;  // merges that deleted every key
  uint64_t insert_retries = 0;  // landed on a retired segment, rerouted
};

template <typename K, typename V = uint64_t>
class ConcurrentFitingTree {
 public:
  using Key = K;
  using Payload = V;

  static std::unique_ptr<ConcurrentFitingTree> Create(
      const std::vector<K>& keys, const ConcurrentFitingTreeConfig& config) {
    return Create(keys, {}, config);
  }

  // Bulk-loads `keys` with parallel `values` (empty = value-initialized).
  static std::unique_ptr<ConcurrentFitingTree> Create(
      const std::vector<K>& keys, const std::vector<V>& values,
      const ConcurrentFitingTreeConfig& config) {
    assert(values.empty() || values.size() == keys.size());
    auto tree = std::make_unique<ConcurrentFitingTree>();
    tree->config_ = config;
    tree->effective_buffer_ =
        config.buffer_size == ConcurrentFitingTreeConfig::kAutoBufferSize
            ? std::max<size_t>(1, static_cast<size_t>(config.error / 2.0))
            : config.buffer_size;
    tree->BulkLoad(std::span<const K>(keys), std::span<const V>(values));
    if (config.background_merge) {
      tree->worker_.Start([t = tree.get()](void* seg) {
        EpochGuard guard(t->epoch_);
        t->MergeSegment(static_cast<Segment*>(seg));
      });
    }
    return tree;
  }

  ConcurrentFitingTree() = default;
  ConcurrentFitingTree(const ConcurrentFitingTree&) = delete;
  ConcurrentFitingTree& operator=(const ConcurrentFitingTree&) = delete;

  ~ConcurrentFitingTree() {
    worker_.Stop();
    // Single-threaded from here on: free the live snapshot, then drain the
    // epoch retire list (old snapshots/segments replaced during the run).
    const Directory* dir = dir_.load(std::memory_order_acquire);
    if (dir != nullptr) {
      for (Segment* seg : dir->segments) delete seg;
      delete dir;
    }
    epoch_.DrainAll();
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  bool Contains(const K& key) const { return Lookup(key).has_value(); }

  // Payload stored for `key`, or nullopt when absent. The delta buffer
  // overrides the page: a tombstone hides the paged key, a live override
  // supersedes the paged payload.
  std::optional<V> Lookup(const K& key) const {
    telemetry::ScopedOp telem(telemetry::Engine::kConcurrent,
                              telemetry::Op::kLookup);
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    const Segment* seg = dir->Floor(key);
    if (seg == nullptr) return std::nullopt;
    // Start the predicted page lines travelling while the buffer probe
    // (sequence check or short critical section) runs.
    PrefetchPredicted(*seg, key);
    BufferEntry entry;
    if (SearchBuffer(*seg, key, &entry)) {
      if (entry.tombstone) return std::nullopt;
      return entry.value;
    }
    const size_t i = SearchPage(*seg, key);
    if (i == kNotFound) return std::nullopt;
    return seg->values[i];
  }

  std::optional<K> Find(const K& key) const {
    return Contains(key) ? std::optional<K>(key) : std::nullopt;
  }

  // Inserts `key` -> `value`. Returns true iff the key was new (set
  // semantics). Lands in the floor segment's delta buffer under that
  // segment's latch; overflow triggers merge-and-resegment, inline or via
  // the background worker.
  bool Insert(const K& key, const V& value = V{}) {
    // Counts the call (like stats_inserts_), not the success — what lets a
    // driver check its issued-op totals against the registry exactly.
    telemetry::ScopedOp telem(telemetry::Engine::kConcurrent,
                              telemetry::Op::kInsert);
    stats_inserts_.fetch_add(1, std::memory_order_relaxed);
    EpochGuard guard(epoch_);
    for (;;) {
      const Directory* dir = dir_.load(std::memory_order_seq_cst);
      Segment* seg = dir->Floor(key);
      if (seg == nullptr) {
        if (InsertIntoEmpty(key, value)) return true;
        continue;  // lost the bootstrap race; the directory now has a root
      }
      // The page is immutable while the segment is live, so the bounded
      // search can run before taking the latch; a retirement between the
      // search and the lock is caught by the retired check and retried.
      const size_t page_idx = SearchPage(*seg, key);
      seg->latch.Lock();
      if (seg->retired.load(std::memory_order_relaxed)) {
        // A merge replaced this segment after we located it; retry against
        // the new directory (published before or shortly after retirement).
        seg->latch.Unlock();
        stats_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        continue;
      }
      bool inserted = false;
      auto pos = BufferPos(seg, key);
      if (pos != seg->buffer.end() && pos->key == key) {
        if (pos->tombstone) {
          // Delete-then-reinsert of a paged key: flip the tombstone into a
          // live override carrying the fresh payload.
          pos->tombstone = false;
          pos->value = value;
          inserted = true;
        }
      } else if (page_idx == kNotFound) {
        seg->buffer.insert(pos, BufferEntry{key, value, false});
        BumpBufferCount(seg);
        inserted = true;
      }
      const bool overflow = seg->buffer.size() > effective_buffer_;
      seg->latch.Unlock();
      if (inserted) size_.fetch_add(1, std::memory_order_release);
      if (overflow) ScheduleMerge(seg);
      return inserted;
    }
  }

  // Replaces the payload of a present key. Returns false when absent.
  // Updating a paged key writes a live override entry into the buffer (the
  // page is immutable); the next merge folds it into the new page.
  bool Update(const K& key, const V& value) {
    telemetry::ScopedOp telem(telemetry::Engine::kConcurrent,
                              telemetry::Op::kUpdate);
    EpochGuard guard(epoch_);
    for (;;) {
      const Directory* dir = dir_.load(std::memory_order_seq_cst);
      Segment* seg = dir->Floor(key);
      if (seg == nullptr) return false;
      const size_t page_idx = SearchPage(*seg, key);  // pre-latch: page immutable
      seg->latch.Lock();
      if (seg->retired.load(std::memory_order_relaxed)) {
        seg->latch.Unlock();
        stats_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        continue;
      }
      bool updated = false;
      bool overflow = false;
      auto pos = BufferPos(seg, key);
      if (pos != seg->buffer.end() && pos->key == key) {
        if (!pos->tombstone) {
          pos->value = value;
          updated = true;
        }
      } else if (page_idx != kNotFound) {
        seg->buffer.insert(pos, BufferEntry{key, value, false});
        BumpBufferCount(seg);
        updated = true;
        overflow = seg->buffer.size() > effective_buffer_;
      }
      seg->latch.Unlock();
      if (updated) stats_updates_.fetch_add(1, std::memory_order_relaxed);
      if (overflow) ScheduleMerge(seg);
      return updated;
    }
  }

  // Removes `key`. Returns false when absent. A paged key gets a tombstone
  // (cleared by the next merge); a buffered pending insert is dropped
  // outright. Tombstones count against the buffer budget, so delete-heavy
  // traffic merges just like insert-heavy traffic.
  bool Delete(const K& key) {
    telemetry::ScopedOp telem(telemetry::Engine::kConcurrent,
                              telemetry::Op::kDelete);
    EpochGuard guard(epoch_);
    for (;;) {
      const Directory* dir = dir_.load(std::memory_order_seq_cst);
      Segment* seg = dir->Floor(key);
      if (seg == nullptr) return false;
      const size_t page_idx = SearchPage(*seg, key);  // pre-latch: page immutable
      seg->latch.Lock();
      if (seg->retired.load(std::memory_order_relaxed)) {
        seg->latch.Unlock();
        stats_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        continue;
      }
      bool deleted = false;
      bool overflow = false;
      auto pos = BufferPos(seg, key);
      if (pos != seg->buffer.end() && pos->key == key) {
        if (!pos->tombstone) {
          if (page_idx != kNotFound) {
            // Live override of a paged key: demote to tombstone.
            pos->tombstone = true;
            pos->value = V{};
          } else {
            // Pending insert that never reached a page: drop it.
            seg->buffer.erase(pos);
            BumpBufferCount(seg);
          }
          deleted = true;
        }
      } else if (page_idx != kNotFound) {
        seg->buffer.insert(pos, BufferEntry{key, V{}, true});
        BumpBufferCount(seg);
        deleted = true;
        overflow = seg->buffer.size() > effective_buffer_;
      }
      seg->latch.Unlock();
      if (deleted) {
        size_.fetch_sub(1, std::memory_order_release);
        stats_deletes_.fetch_add(1, std::memory_order_relaxed);
      }
      if (overflow) ScheduleMerge(seg);
      return deleted;
    }
  }

  // Calls fn(key) or fn(key, value) for every live entry in [lo, hi] in
  // ascending order over one directory snapshot: segment pages are read in
  // place, delta buffers are copied out under their latch (they hold at
  // most ~error/2 entries).
  // Returns the number of entries emitted (IndexApi contract).
  template <typename Fn>
  size_t ScanRange(const K& lo, const K& hi, Fn fn) const {
    telemetry::ScopedOp telem(telemetry::Engine::kConcurrent,
                              telemetry::Op::kScan);
    if (hi < lo) return 0;
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    if (dir->segments.empty()) return 0;
    size_t emitted = 0;
    std::vector<BufferEntry> buffer_copy;
    for (size_t i = dir->FloorIndex(lo); i < dir->segments.size(); ++i) {
      const Segment* seg = dir->segments[i];
      if (seg->first_key > hi) break;
      CopyBuffer(*seg, &buffer_copy);
      emitted += EmitRange(*seg, buffer_copy, lo, hi, fn);
    }
    return emitted;
  }

  // Prefetch the predicted page position a Lookup(key) would search, under
  // a short epoch guard (the directory pointer must stay live while it is
  // dereferenced). Server batches call this across all drained probes
  // before resolving any of them (server/sharded_index.h).
  void PrefetchLookup(const K& key) const {
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    const Segment* seg = dir->Floor(key);
    if (seg != nullptr) PrefetchPredicted(*seg, key);
  }

  size_t SegmentCount() const {
    EpochGuard guard(epoch_);
    return dir_.load(std::memory_order_seq_cst)->segments.size();
  }

  // Directory arrays plus per-segment model metadata (pages and buffers are
  // data, not index).
  size_t IndexSizeBytes() const {
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    return dir->segments.size() * (sizeof(K) + sizeof(Segment*)) +
           dir->segments.size() * kSegmentMetaBytes;
  }

  ConcurrentFitingTreeStats stats() const {
    ConcurrentFitingTreeStats s;
    s.inserts = stats_inserts_.load(std::memory_order_relaxed);
    s.updates = stats_updates_.load(std::memory_order_relaxed);
    s.deletes = stats_deletes_.load(std::memory_order_relaxed);
    s.segment_merges = stats_merges_.load(std::memory_order_relaxed);
    s.segments_created = stats_created_.load(std::memory_order_relaxed);
    s.segments_retired = stats_retired_.load(std::memory_order_relaxed);
    s.insert_retries = stats_retries_.load(std::memory_order_relaxed);
    return s;
  }

  // Structural snapshot (telemetry tentpole): reads one directory snapshot
  // under an epoch guard, so the segment walk is safe against concurrent
  // merges; buffer occupancy uses the latch-elision counters (relaxed — a
  // racing write may be off by one, the level is advisory).
  telemetry::StructuralStats Stats() const {
    telemetry::StructuralStats st;
    st.engine = telemetry::EngineName(telemetry::Engine::kConcurrent);
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    size_t buffered = 0, max_buffer = 0;
    for (const Segment* seg : dir->segments) {
      const size_t n = seg->buffer_count.load(std::memory_order_relaxed);
      buffered += n;
      max_buffer = std::max(max_buffer, n);
    }
    st.Add("keys", static_cast<double>(size()));
    st.Add("segments", static_cast<double>(dir->segments.size()));
    st.Add("error", config_.error);
    st.Add("buffer_capacity", static_cast<double>(effective_buffer_));
    st.Add("buffered_entries", static_cast<double>(buffered));
    st.Add("buffer_max", static_cast<double>(max_buffer));
    st.Add("buffer_occupancy",
           dir->segments.empty() || effective_buffer_ == 0
               ? 0.0
               : static_cast<double>(buffered) /
                     (static_cast<double>(dir->segments.size()) *
                      static_cast<double>(effective_buffer_)));
    st.Add("merges",
           static_cast<double>(stats_merges_.load(std::memory_order_relaxed)));
    st.Add("segments_created", static_cast<double>(stats_created_.load(
                                   std::memory_order_relaxed)));
    st.Add("segments_retired", static_cast<double>(stats_retired_.load(
                                   std::memory_order_relaxed)));
    st.Add("insert_retries", static_cast<double>(stats_retries_.load(
                                 std::memory_order_relaxed)));
    st.Add("epoch_pending", static_cast<double>(epoch_.PendingCount()));
    st.Add("epoch_retired", static_cast<double>(epoch_.retired_count()));
    st.Add("epoch_freed", static_cast<double>(epoch_.freed_count()));
    st.Add("merge_queue",
           static_cast<double>(worker_.enqueued() - worker_.processed()));
    st.Add("background_merge", config_.background_merge ? 1.0 : 0.0);
    return st;
  }

  const ConcurrentFitingTreeConfig& config() const { return config_; }
  EpochManager& epoch() { return epoch_; }
  MergeWorker& merge_worker() { return worker_; }

  // Blocks until queued background merges finish (no-op inline). Tests and
  // benches call this before validating final contents.
  void QuiesceMerges() {
    if (worker_.running()) worker_.WaitIdle();
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  using BufferEntry = detail::BufferEntry<K, V>;

  struct Segment {
    K first_key{};
    double slope = 0.0;
    double intercept = 0.0;      // predicted in-page rank at first_key
    std::vector<K> keys;         // immutable once published
    std::vector<V> values;       // payloads, parallel to `keys`, immutable
    mutable SegLatch latch;      // guards buffer + retired transition
    std::atomic<bool> retired{false};
    std::atomic<bool> merge_pending{false};
    std::atomic<uint32_t> buffer_count{0};
    std::vector<BufferEntry> buffer;  // sorted delta buffer, latch-protected

    double Predict(const K& key) const {
      return intercept + slope * (static_cast<double>(key) -
                                  static_cast<double>(first_key));
    }
  };

  static constexpr size_t kSegmentMetaBytes =
      sizeof(K) + 2 * sizeof(double) + sizeof(void*);

  // Immutable snapshot of the segment directory. Merges publish a fresh
  // copy; the arrays (and the flat index over the first keys) are never
  // mutated after publication, which is why the interpolation + SIMD
  // descent is safe for lock-free readers: each COW republish builds a new
  // calibrated index and swaps it in atomically with the snapshot.
  struct Directory {
    FlatKeyIndex<K> first_keys;      // sorted, interpolation + SIMD floor
    std::vector<Segment*> segments;  // parallel to first_keys

    // Index of the floor segment for `key` (clamped to 0 below the first
    // key, matching the single-threaded tree's floor-else-first rule).
    size_t FloorIndex(const K& key) const {
      const size_t i = first_keys.FloorIndex(key);
      return i == FlatKeyIndex<K>::kNone ? 0 : i;
    }

    Segment* Floor(const K& key) const {
      telemetry::ScopedPhase phase(telemetry::Engine::kConcurrent,
                                   telemetry::Phase::kDirectoryDescent);
      return segments.empty() ? nullptr : segments[FloorIndex(key)];
    }
  };

  void BulkLoad(std::span<const K> keys, std::span<const V> values) {
    auto dir = std::make_unique<Directory>();
    if (!keys.empty()) {
      const auto models =
          SegmentShrinkingCone<K>(keys, config_.error, config_.feasibility);
      std::vector<K> first_keys;
      first_keys.reserve(models.size());
      dir->segments.reserve(models.size());
      for (const fitree::Segment<K>& m : models) {
        auto* seg = new Segment();
        seg->first_key = m.first_key;
        seg->slope = m.slope;
        seg->intercept = m.intercept - static_cast<double>(m.start);
        seg->keys.assign(keys.begin() + m.start,
                         keys.begin() + m.start + m.length);
        if (values.empty()) {
          seg->values.assign(m.length, V{});
        } else {
          seg->values.assign(values.begin() + m.start,
                             values.begin() + m.start + m.length);
        }
        first_keys.push_back(m.first_key);
        dir->segments.push_back(seg);
      }
      dir->first_keys.Reset(std::move(first_keys));
    }
    size_.store(keys.size(), std::memory_order_release);
    dir_.store(dir.release(), std::memory_order_seq_cst);
  }

  // Error-bounded search of the immutable page, sharing ErrorWindow with
  // the single-threaded and disk-resident lookup paths. Returns the
  // in-page index of `key`, or kNotFound.
  size_t SearchPage(const Segment& seg, const K& key) const {
    telemetry::ScopedPhase phase(telemetry::Engine::kConcurrent,
                                 telemetry::Phase::kWindowSearch);
    const size_t n = seg.keys.size();
    if (n == 0) return kNotFound;
    const double pred = seg.Predict(key);
    // Keys below the leftmost segment (floor fallback) predict far
    // negative; bail before ErrorWindow's size_t casts.
    if (pred + config_.error + 2.0 < 0.0) return kNotFound;
    const auto [begin, end] = ErrorWindow(pred, config_.error, 0, n);
    const size_t hint = static_cast<size_t>(std::max(0.0, pred));
    const size_t i = detail::BoundedLowerBound(
        seg.keys.data(), begin, end, hint, key, config_.search_policy);
    return i < n && seg.keys[i] == key ? i : kNotFound;
  }

  // Prefetch the predicted in-page position so the lines arrive while the
  // buffer probe between descent and page search executes. Pages are
  // immutable while a segment is live, so this reads nothing racy.
  void PrefetchPredicted(const Segment& seg, const K& key) const {
    const size_t n = seg.keys.size();
    if (n == 0) return;
    const double pred = seg.Predict(key);
    const size_t hint =
        pred <= 0.0 ? 0 : std::min(n - 1, static_cast<size_t>(pred));
    PrefetchRead(seg.keys.data() + hint);
    PrefetchRead(seg.values.data() + hint);
  }

  // Latch-eliding buffer probe: a sequence-validated empty check answers
  // the common case without an atomic RMW; otherwise fall back to a short
  // critical section (the buffer holds at most ~error/2 entries). Returns
  // true and copies the entry out when `key` has one.
  bool SearchBuffer(const Segment& seg, const K& key,
                    BufferEntry* out) const {
    telemetry::ScopedPhase phase(telemetry::Engine::kConcurrent,
                                 telemetry::Phase::kBufferProbe);
    const uint32_t seq = seg.latch.ReadSeq();
    if (seg.buffer_count.load(std::memory_order_acquire) == 0 &&
        seg.latch.Validate(seq)) {
      return false;
    }
    SegLatch::Scoped lock(seg.latch);
    auto pos = std::lower_bound(seg.buffer.begin(), seg.buffer.end(), key,
                                detail::BufferKeyLess{});
    if (pos == seg.buffer.end() || pos->key != key) return false;
    *out = *pos;
    return true;
  }

  void CopyBuffer(const Segment& seg, std::vector<BufferEntry>* out) const {
    out->clear();
    const uint32_t seq = seg.latch.ReadSeq();
    if (seg.buffer_count.load(std::memory_order_acquire) == 0 &&
        seg.latch.Validate(seq)) {
      return;
    }
    SegLatch::Scoped lock(seg.latch);
    *out = seg.buffer;
  }

  // Returns the number of entries emitted from this segment.
  template <typename Fn>
  size_t EmitRange(const Segment& seg, const std::vector<BufferEntry>& buffer,
                   const K& lo, const K& hi, Fn& fn) const {
    size_t emitted = 0;
    auto k = std::lower_bound(seg.keys.begin(), seg.keys.end(), lo);
    auto b = std::lower_bound(buffer.begin(), buffer.end(), lo,
                              detail::BufferKeyLess{});
    while (k != seg.keys.end() || b != buffer.end()) {
      const bool page_first =
          b == buffer.end() || (k != seg.keys.end() && *k < b->key);
      if (page_first) {
        if (*k > hi) return emitted;
        detail::EmitEntry(fn, *k,
                          seg.values[static_cast<size_t>(k - seg.keys.begin())]);
        ++emitted;
        ++k;
        continue;
      }
      if (b->key > hi) return emitted;
      if (k != seg.keys.end() && *k == b->key) {
        // The buffer shadows the page: a tombstone hides the paged key, a
        // live override replaces its payload.
        if (!b->tombstone) {
          detail::EmitEntry(fn, b->key, b->value);
          ++emitted;
        }
        ++k;
        ++b;
        continue;
      }
      if (!b->tombstone) {
        detail::EmitEntry(fn, b->key, b->value);
        ++emitted;
      }
      ++b;
    }
    return emitted;
  }

  // Precondition: latch held. Sorted insertion point for `key`.
  typename std::vector<BufferEntry>::iterator BufferPos(Segment* seg,
                                                        const K& key) {
    return std::lower_bound(seg->buffer.begin(), seg->buffer.end(), key,
                            detail::BufferKeyLess{});
  }

  // Precondition: latch held. Republishes the elision counter after a
  // buffer size change.
  void BumpBufferCount(Segment* seg) {
    seg->buffer_count.store(static_cast<uint32_t>(seg->buffer.size()),
                            std::memory_order_release);
  }

  void ScheduleMerge(Segment* seg) {
    if (worker_.running()) {
      if (!seg->merge_pending.exchange(true, std::memory_order_acq_rel)) {
        worker_.Enqueue(seg);
      }
    } else {
      MergeSegment(seg);
    }
  }

  // First key of an empty tree: build a one-segment directory under the
  // swap mutex. Returns false when another thread won the race.
  bool InsertIntoEmpty(const K& key, const V& value) {
    std::lock_guard<std::mutex> lock(dir_mu_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    if (!dir->segments.empty()) return false;
    auto* seg = new Segment();
    seg->first_key = key;
    seg->keys.push_back(key);
    seg->values.push_back(value);
    auto next = std::make_unique<Directory>();
    next->first_keys.Reset({key});
    next->segments.push_back(seg);
    dir_.store(next.release(), std::memory_order_seq_cst);
    epoch_.Retire(const_cast<Directory*>(dir));
    size_.fetch_add(1, std::memory_order_release);
    return true;
  }

  // Merge-and-resegment (paper Sec 4.2.2), concurrent edition. The caller
  // holds an epoch guard and no latch. Steps:
  //   1. Under the segment latch: bail if already retired (another thread
  //      merged it) or the buffer drained below budget; otherwise mark the
  //      segment retired and snapshot the page+buffer merge — pending
  //      inserts applied, overrides folded in, tombstoned keys dropped.
  //   2. Off-latch: shrinking-cone resegmentation of the merged keys (the
  //      expensive part; the retired segment is frozen so no write can
  //      slip in, and readers continue against the old snapshot).
  //   3. Under the directory mutex: publish a copy-on-write directory with
  //      the retired segment's entry replaced by the new segment(s) — or
  //      removed entirely when the merge deleted every key — then retire
  //      the old directory and old segment through the epoch manager.
  void MergeSegment(Segment* seg) {
    // Always-timed (merges are rare, long, and the histogram should see
    // every one); cancelled on the early-outs below, which are not merges.
    telemetry::ScopedDuration telem(telemetry::Engine::kConcurrent,
                                    telemetry::Op::kMerge);
    telemetry::ScopedPhase phase(telemetry::Engine::kConcurrent,
                                 telemetry::Phase::kMergeResegment);
    std::vector<K> merged;
    std::vector<V> merged_values;
    {
      SegLatch::Scoped lock(seg->latch);
      if (seg->retired.load(std::memory_order_relaxed)) {
        telem.Cancel();
        return;
      }
      if (seg->buffer.empty()) {
        seg->merge_pending.store(false, std::memory_order_release);
        telem.Cancel();
        return;
      }
      seg->retired.store(true, std::memory_order_release);
      merged.reserve(seg->keys.size() + seg->buffer.size());
      merged_values.reserve(merged.capacity());
      size_t k = 0;
      size_t b = 0;
      while (k < seg->keys.size() || b < seg->buffer.size()) {
        const bool page_first =
            b == seg->buffer.size() ||
            (k < seg->keys.size() && seg->keys[k] < seg->buffer[b].key);
        if (page_first) {
          merged.push_back(seg->keys[k]);
          merged_values.push_back(seg->values[k]);
          ++k;
        } else if (k < seg->keys.size() &&
                   seg->keys[k] == seg->buffer[b].key) {
          // Buffer shadows page: override replaces the payload, tombstone
          // drops the key.
          if (!seg->buffer[b].tombstone) {
            merged.push_back(seg->buffer[b].key);
            merged_values.push_back(seg->buffer[b].value);
          }
          ++k;
          ++b;
        } else {
          assert(!seg->buffer[b].tombstone);
          merged.push_back(seg->buffer[b].key);
          merged_values.push_back(seg->buffer[b].value);
          ++b;
        }
      }
    }
    stats_merges_.fetch_add(1, std::memory_order_relaxed);

    std::vector<Segment*> replacements;
    if (!merged.empty()) {
      const auto models = SegmentShrinkingCone<K>(
          std::span<const K>(merged), config_.error, config_.feasibility);
      stats_created_.fetch_add(models.size(), std::memory_order_relaxed);
      replacements.reserve(models.size());
      for (const fitree::Segment<K>& m : models) {
        auto* out = new Segment();
        out->first_key = m.first_key;
        out->slope = m.slope;
        out->intercept = m.intercept - static_cast<double>(m.start);
        out->keys.assign(merged.begin() + m.start,
                         merged.begin() + m.start + m.length);
        out->values.assign(merged_values.begin() + m.start,
                           merged_values.begin() + m.start + m.length);
        replacements.push_back(out);
      }
    } else {
      stats_retired_.fetch_add(1, std::memory_order_relaxed);
    }

    {
      std::lock_guard<std::mutex> lock(dir_mu_);
      const Directory* dir = dir_.load(std::memory_order_seq_cst);
      // The retired segment is still in the live directory: only this
      // thread retired it, and entries leave the directory only here.
      size_t idx = dir->FloorIndex(seg->first_key);
      assert(idx < dir->segments.size() && dir->segments[idx] == seg);
      auto next = std::make_unique<Directory>();
      std::vector<K> first_keys;
      first_keys.reserve(dir->segments.size() + replacements.size());
      next->segments.reserve(first_keys.capacity());
      for (size_t i = 0; i < idx; ++i) {
        first_keys.push_back(dir->first_keys.key_at(i));
        next->segments.push_back(dir->segments[i]);
      }
      for (Segment* r : replacements) {
        first_keys.push_back(r->first_key);
        next->segments.push_back(r);
      }
      for (size_t i = idx + 1; i < dir->segments.size(); ++i) {
        first_keys.push_back(dir->first_keys.key_at(i));
        next->segments.push_back(dir->segments[i]);
      }
      // Building the flat index (and its interpolation model) here, at
      // publish time, is what keeps the descent itself read-only.
      next->first_keys.Reset(std::move(first_keys));
      dir_.store(next.release(), std::memory_order_seq_cst);
      epoch_.Retire(const_cast<Directory*>(dir));
    }
    epoch_.Retire(seg);
  }

  ConcurrentFitingTreeConfig config_;
  size_t effective_buffer_ = 0;
  std::atomic<const Directory*> dir_{nullptr};
  std::mutex dir_mu_;  // serializes directory publishes (merges are rare)
  mutable EpochManager epoch_;
  MergeWorker worker_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> stats_inserts_{0};
  std::atomic<uint64_t> stats_updates_{0};
  std::atomic<uint64_t> stats_deletes_{0};
  std::atomic<uint64_t> stats_merges_{0};
  std::atomic<uint64_t> stats_created_{0};
  std::atomic<uint64_t> stats_retired_{0};
  std::atomic<uint64_t> stats_retries_{0};
};

}  // namespace fitree

#endif  // FITREE_CONCURRENCY_CONCURRENT_FITING_TREE_H_
