// Disk-resident FITing-Tree: the paper's segment-predict-then-bounded-
// search lookup (Sec 4.1) run against an index file, with every leaf
// access going through the buffer pool, plus a write path. The directory
// (B+ tree over segment first-keys) and segment table stay in memory —
// they are the "index" the paper sizes in Fig 6 — while the sorted
// key/payload pages stay on disk and are cached page-granularly, which is
// exactly the regime the Sec 5 cost model charges in pages.
//
// Leaf addressing is per segment (format v2): segment i's leaves start at
// its own first_leaf_page, so rank r maps to page
// first_leaf_page + (r - start) / leaf_capacity. That indirection is what
// lets CompactSegment rewrite ONE segment by appending its merged leaves
// at EOF and republishing the table + meta (append-and-republish), while
// every other segment's pages stay where they are.
//
// Writes never touch the file in place. Each base segment owns a small
// in-memory delta — an ordered map of {key -> payload | tombstone} —
// overlaid on the paged file: inserts and payload updates land there as
// live entries, deletes of paged keys as tombstones. Reads consult the
// delta first (no I/O), then fall through to the paged lookup. Because a
// key's delta segment is its directory floor, the per-segment deltas
// concatenate into one globally sorted stream, which is what lets scans
// merge the overlay with the leaves page by page. Two compaction forms
// fold deltas back to disk:
//
//   Compact()         full rewrite: scan the merged view, re-segment,
//                     write a temp file, fsync it, atomically rename it
//                     over the original, fsync the directory, reopen.
//   CompactSegment(s) incremental: merge ONE segment's leaves with its
//                     overlay slot, re-segment locally, append the new
//                     leaves + a new segment table at EOF, fsync, then
//                     republish the meta (next generation, other slot)
//                     and fsync again. Crash at any point leaves the
//                     previous generation's meta valid and untouched.
//
// Incremental compactions are scheduled off the mutation path in the
// merge_worker style — mutations enqueue (deduplicated) segments whose
// overlay crossed FITREE_COMPACT_THRESHOLD percent of their length, and
// each mutation call drains at most one pending segment — except that the
// drain runs on the OWNER thread, because this engine is single-threaded
// by contract (a background thread would race every read).
//
// The lookup shares core::ErrorWindow with StaticFitingTree::Bound, so a
// serialized tree answers every query identically to its in-memory
// counterpart (tested in tests/test_disk_fiting_tree.cc).

#ifndef FITREE_STORAGE_DISK_FITING_TREE_H_
#define FITREE_STORAGE_DISK_FITING_TREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "btree/btree_map.h"
#include "common/io_stats.h"
#include "common/options.h"
#include "common/prefetch.h"
#include "core/fiting_tree.h"
#include "core/flat_directory.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"
#include "core/static_fiting_tree.h"
#include "storage/buffer_pool.h"
#include "storage/segment_file.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "telemetry/structural.h"
#include "telemetry/trace.h"

namespace fitree::storage {

// Crash-point instrumentation for the compaction paths: the hook fires
// after the named step completes, and a test that kill-9s the process at
// any point must find the index valid on reopen (the durability contract
// EXPERIMENTS.md documents; exercised in tests/test_storage_faults.cc).
enum class CompactPoint : uint8_t {
  kTmpWritten,     // full rewrite: temp file written, NOT yet durable
  kTmpSynced,      // full rewrite: temp fsynced, rename not yet issued
  kRenamed,        // full rewrite: renamed over the original
  kDirSynced,      // full rewrite: directory entry durable — complete
  kAppendWritten,  // incremental: new pages appended, NOT yet durable
  kAppendSynced,   // incremental: appended pages fsynced
  kMetaWritten,    // incremental: next-generation meta written, not synced
  kMetaSynced,     // incremental: republish durable — complete
};

template <typename K>
class DiskFitingTree {
 public:
  using Key = K;
  // Leaf payloads are serialized as 64-bit words (storage/segment_file.h),
  // so the payload type is fixed; the alias is what the IndexApi contract
  // and the Insert/Update signatures below spell it with.
  using Payload = uint64_t;

  struct Options {
    // Buffer-pool capacity in pages; 1.0 * leaf pages means the whole
    // data file fits (plus the handful of non-leaf pages never cached).
    size_t cache_pages = 64;
    // In-page bounded-search strategy and directory descent form; defaults
    // follow the FITREE_SEARCH_POLICY / FITREE_DIRECTORY knobs (simd +
    // flat unless overridden).
    SearchPolicy search_policy = DefaultSearchPolicy();
    DirectoryMode directory = DefaultDirectoryMode();
    // Speculative fetch: kWindow stages every page the error window spans
    // in one batched read before searching; kSingle faults serially
    // (FITREE_FETCH_STRATEGY; the exp_disk ablation sweeps both).
    FetchStrategy fetch_strategy = GlobalOptions().fetch_strategy;
    // Incremental compaction trigger, percent of segment length; a
    // segment whose overlay reaches max(8, length * pct / 100) entries is
    // queued and drained one-per-mutation. 0 disables the automatic path
    // (CompactSegment stays callable).
    size_t compact_threshold_pct = GlobalOptions().compact_threshold_pct;
    // Test hook, fired after each named compaction step (crash points).
    std::function<void(CompactPoint)> compact_hook;
    // Per-instance read-path overrides; default to the process-wide
    // FITREE_IO_* knobs. `io_direct` lets a single tree attempt the
    // O_DIRECT reopen (page-cache-free reads) while others stay buffered
    // — the exp_disk multiget cells need both in one process.
    IoBackend io_backend = GlobalOptions().io_backend;
    size_t io_depth = GlobalOptions().io_depth;
    bool io_direct = GlobalOptions().io_direct;
  };

  // Opens `path`, loads the meta page and segment table, and builds the
  // in-memory directory. Returns nullptr when the file fails validation.
  // Crash leftovers from a full Compact are resolved first: an orphan
  // `path.compact` next to a live target is removed; one WITHOUT a target
  // (the rewrite completed but the swap did not) is adopted by rename.
  static std::unique_ptr<DiskFitingTree<K>> Open(const std::string& path,
                                                 const Options& options = {}) {
    const std::string tmp = path + ".compact";
    struct stat st {};
    const bool have_tmp = ::stat(tmp.c_str(), &st) == 0;
    if (have_tmp) {
      if (::stat(path.c_str(), &st) == 0) {
        std::remove(tmp.c_str());
      } else if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        return nullptr;
      }
    }
    auto tree = std::unique_ptr<DiskFitingTree<K>>(new DiskFitingTree<K>());
    tree->path_ = path;
    tree->options_ = options;
    if (!tree->Load(path)) return nullptr;
    return tree;
  }

  // Live key count: base file plus pending inserts minus pending deletes.
  size_t size() const { return size_; }
  // Keys in the base file (delta overlay excluded).
  size_t base_size() const { return reader_.meta().key_count; }
  double error() const { return reader_.meta().error; }
  size_t SegmentCount() const { return segments_.size(); }
  uint64_t LeafPageCount() const { return reader_.meta().leaf_page_count; }
  uint64_t FileBytes() const {
    return reader_.page_count() * reader_.page_bytes();
  }
  int TreeHeight() const { return directory_.Height(); }
  const std::string& path() const { return path_; }

  // Pending overlay entries (live + tombstones) and completed compactions.
  size_t DeltaEntries() const { return delta_entries_; }
  uint64_t Compactions() const { return compactions_; }
  uint64_t IncrementalCompactions() const { return incremental_compactions_; }
  // Segments queued for incremental compaction but not yet drained.
  size_t CompactPending() const { return compact_pending_.size(); }

  // True once any page read has failed verification; results after that
  // point are best-effort (lookups report "absent"). Reads are const per
  // the IndexApi contract, so the flag is mutable: a failed page fault
  // inside a const Lookup/ScanRange still has to record itself.
  bool io_error() const { return io_error_; }

  // In-memory index footprint: directory plus segment table plus the delta
  // overlay (the leaf pages are data, cached separately — see
  // CacheCapacityBytes()). Overlay entries are charged at std::map node
  // cost: payload plus three tree pointers and the color word.
  size_t IndexSizeBytes() const {
    constexpr size_t kDeltaNodeBytes =
        sizeof(K) + sizeof(DeltaEntry) + 4 * sizeof(void*);
    return directory_.MemoryBytes() +
           segments_.size() * sizeof(SegmentRecord<K>) +
           delta_entries_ * kDeltaNodeBytes;
  }
  size_t CacheCapacityBytes() const { return pool_->CapacityBytes(); }

  const IoStats& io() const { return pool_->stats(); }
  void ResetIoStats() { pool_->ResetStats(); }

  // Batched-read backend actually serving this instance's page faults.
  const char* IoBackendName() const { return reader_.io_backend_name(); }
  bool DirectIo() const { return reader_.direct_io(); }

  // Rank of the first key >= `key` in the BASE FILE (insertion point over
  // the paged keys; the delta overlay has no ranks until a compaction
  // folds it in). Every candidate page is faulted through the buffer pool.
  size_t LowerBound(const K& key) const {
    return LowerBoundAt(FloorSlot(key), key);
  }

  // Payload stored for `key`, or nullopt when absent. The delta overlay
  // overrides the file: a tombstone hides the paged key, a live entry
  // supersedes (or precedes) it. One directory descent serves the delta
  // probe and the paged search.
  std::optional<uint64_t> Lookup(const K& key) const {
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kLookup);
    const size_t floor = FloorSlot(key);
    PrefetchPredictedFrame(floor, key);
    {
      telemetry::ScopedPhase probe(telemetry::Engine::kDisk,
                                   telemetry::Phase::kDeltaProbe);
      const DeltaMap& delta = deltas_[floor == kNoSlot ? 0 : floor];
      const auto it = delta.find(key);
      if (it != delta.end()) {
        if (it->second.tombstone) return std::nullopt;
        return it->second.value;
      }
    }
    return BaseLookupAt(floor, key);
  }

  bool Contains(const K& key) const { return Lookup(key).has_value(); }

  // Prefetch the delta-overlay slot's floor frame position a Lookup(key)
  // would search, when that page is already resident (a miss is the buffer
  // pool's business, not a hint's). Server batches use this for group
  // prefetch across drained probes (server/sharded_index.h).
  void PrefetchLookup(const K& key) const {
    PrefetchPredictedFrame(FloorSlot(key), key);
  }

  // Group prefetch for a drained batch: stages every key's candidate
  // pages through batched reads (chunked to half the pool) and releases
  // the pins — the pages stay resident, so the serial execution that
  // follows hits instead of faulting one page at a time.
  void PrefetchBatch(const K* keys, size_t n) const {
    if (base_size() == 0) return;
    std::vector<uint32_t> staged;
    size_t i = 0;
    while (i < n) {
      i = StageChunk(keys, i, n, &staged);
      UnpinAll(staged);
    }
  }

  // Multi-get: resolves `n` independent lookups, overlapping each chunk's
  // page faults in one batched read before the (now cache-hot) serial
  // resolution. out[i] matches Lookup(keys[i]) exactly.
  void LookupBatch(const K* keys, size_t n,
                   std::optional<uint64_t>* out) const {
    std::vector<uint32_t> staged;
    size_t i = 0;
    while (i < n) {
      const size_t j =
          base_size() == 0 ? n : StageChunk(keys, i, n, &staged);
      for (size_t k = i; k < j; ++k) out[k] = Lookup(keys[k]);
      UnpinAll(staged);
      staged.clear();
      i = j;
    }
  }

  // Inserts `key` -> `value` into the delta overlay. Returns true iff the
  // key was new (set semantics); inserting a key present in the base file
  // or overlay returns false without touching anything.
  bool Insert(const K& key, const Payload& value) {
    DrainOneCompaction();
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kInsert);
    DeltaMap& delta = DeltaFor(key);
    const auto it = delta.find(key);
    if (it != delta.end()) {
      if (!it->second.tombstone) return false;
      // Delete-then-reinsert of a paged key: resurrect as a live override.
      it->second = DeltaEntry{value, false};
      ++size_;
      return true;
    }
    if (BaseLookup(key).has_value()) return false;
    delta.emplace(key, DeltaEntry{value, false});
    ++delta_entries_;
    ++size_;
    MaybeScheduleCompaction(DeltaSlot(key));
    return true;
  }

  // Replaces the payload of a present key (a paged key gets a live
  // override in the overlay). Returns false when absent.
  bool Update(const K& key, const Payload& value) {
    DrainOneCompaction();
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kUpdate);
    DeltaMap& delta = DeltaFor(key);
    const auto it = delta.find(key);
    if (it != delta.end()) {
      if (it->second.tombstone) return false;
      it->second.value = value;
      return true;
    }
    if (!BaseLookup(key).has_value()) return false;
    delta.emplace(key, DeltaEntry{value, false});
    ++delta_entries_;
    MaybeScheduleCompaction(DeltaSlot(key));
    return true;
  }

  // Removes `key`. A paged key gets a tombstone (cleared by compaction);
  // an overlay-only key is dropped outright. Returns false when absent.
  bool Delete(const K& key) {
    DrainOneCompaction();
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kDelete);
    DeltaMap& delta = DeltaFor(key);
    const auto it = delta.find(key);
    if (it != delta.end()) {
      if (it->second.tombstone) return false;
      if (BaseLookup(key).has_value()) {
        it->second = DeltaEntry{0, true};  // hide the paged copy
      } else {
        delta.erase(it);
        --delta_entries_;
      }
      --size_;
      return true;
    }
    if (!BaseLookup(key).has_value()) return false;
    delta.emplace(key, DeltaEntry{0, true});
    ++delta_entries_;
    --size_;
    MaybeScheduleCompaction(DeltaSlot(key));
    return true;
  }

  // Calls fn(key, value) for every live entry in [lo, hi] ascending —
  // paged leaves merged with the delta overlay on the fly — and returns
  // the number emitted. One page fault per touched leaf page.
  // Counted as a disk/scan (RangeCount and Compact's full sweep therefore
  // each register one scan — they are real paged scans).
  template <typename Fn>
  size_t ScanRange(const K& lo, const K& hi, Fn fn) const {
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kScan);
    if (hi < lo) return 0;
    DeltaCursor cursor = DeltaCursorAt(lo);
    size_t emitted = 0;
    const size_t base_n = base_size();
    const size_t cap = base_n > 0 ? reader_.meta().leaf_capacity : 1;
    size_t rank = base_n > 0 ? LowerBound(lo) : base_n;
    size_t si = rank < base_n ? SegmentForRank(rank) : 0;
    while (rank < base_n) {
      while (rank >= SegEnd(segments_[si])) ++si;
      const SegmentRecord<K>& rec = segments_[si];
      const size_t local = rank - SegStart(rec);
      const uint64_t leaf = local / cap;
      PinnedPage pin(pool_.get(),
                     static_cast<uint32_t>(rec.first_leaf_page + leaf));
      if (!pin) {
        io_error_ = true;
        return emitted;
      }
      const size_t page_end =
          std::min(SegEnd(rec), SegStart(rec) + (leaf + 1) * cap);
      for (; rank < page_end; ++rank) {
        const auto entry = LoadAs<LeafEntry<K>>(
            pin.data() + kPageHeaderBytes +
            ((rank - SegStart(rec)) % cap) * sizeof(LeafEntry<K>));
        if (hi < entry.key) {
          return emitted + DrainDelta(&cursor, entry.key, hi, fn);
        }
        // Overlay entries strictly below this paged key are pure inserts;
        // an entry equal to it is a tombstone or payload override.
        emitted += DrainDelta(&cursor, entry.key, hi, fn);
        const auto shadow = PeekDelta(cursor);
        if (shadow != nullptr && shadow->first == entry.key) {
          if (!shadow->second.tombstone) {
            fn(entry.key, shadow->second.value);
            ++emitted;
          }
          AdvanceDelta(&cursor);
          continue;
        }
        fn(entry.key, entry.value);
        ++emitted;
      }
    }
    // Base exhausted: the overlay's tail (pure inserts beyond the last
    // paged key in range) is all that remains.
    return emitted + DrainDelta(&cursor, std::nullopt, hi, fn);
  }

  // Number of live keys in [lo, hi] via a counting scan.
  size_t RangeCount(const K& lo, const K& hi) const {
    return ScanRange(lo, hi, [](const K&, uint64_t) {});
  }

  // Folds the delta overlay into a freshly serialized index file: scans
  // the merged view, re-segments it with the shrinking cone at the stored
  // error bound, writes a temp file in the same page layout, fsyncs it,
  // atomically renames it over the original, fsyncs the directory entry,
  // and reopens. Returns false (leaving the original file and overlay
  // untouched) if the rewrite fails.
  bool Compact() {
    // Compaction reporting: the ScopedDuration feeds the registry's
    // disk/compact count + histogram + trace record, cancelled on the
    // failure paths so they don't register as completed compactions, and
    // arms phase spans so the rewrite is attributed under the compact
    // phase. Wall time is also hand-timed into last_compact_ns_, which
    // must stay live in both telemetry builds (NowNs never compiles out).
    telemetry::ScopedDuration telem(telemetry::Engine::kDisk,
                                    telemetry::Op::kCompact);
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kCompact);
    const uint64_t t0 = telemetry::NowNs();
    std::vector<K> keys;
    std::vector<uint64_t> values;
    keys.reserve(size_);
    values.reserve(size_);
    ScanRange(std::numeric_limits<K>::min(), std::numeric_limits<K>::max(),
              [&](const K& k, uint64_t v) {
                keys.push_back(k);
                values.push_back(v);
              });
    if (io_error_) {
      telem.Cancel();
      return false;
    }
    const double err = reader_.meta().error;
    const auto tree = StaticFitingTree<K>::Create(keys, values, err);
    const auto table = tree->ExportSegmentTable();
    const std::string tmp = path_ + ".compact";
    // Spelled out (not via WriteSegmentFile) so the written-but-not-
    // durable crash point is observable between the page stream and the
    // fsync.
    {
      FilePageSink sink(tmp);
      const bool written =
          sink.is_open() &&
          WriteSegmentFilePages<K>(
              sink, std::span<const K>(tree->data()),
              std::span<const uint64_t>(tree->values()),
              std::span<const PackedSegment<K>>(table), err,
              reader_.page_bytes());
      if (written) Hook(CompactPoint::kTmpWritten);
      if (!written || !sink.Finish()) {
        std::remove(tmp.c_str());
        telem.Cancel();
        return false;
      }
    }
    Hook(CompactPoint::kTmpSynced);
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      telem.Cancel();
      return false;
    }
    Hook(CompactPoint::kRenamed);
    // The rename itself already happened; a failed directory fsync only
    // weakens durability of the swap, it cannot un-correct the data.
    (void)SyncParentDir(path_);
    Hook(CompactPoint::kDirSynced);
    if (!Load(path_)) {
      io_error_ = true;
      telem.Cancel();
      return false;
    }
    ++compactions_;
    last_compact_ns_ = telemetry::NowNs() - t0;
    // Every page of the new file was written by the rewrite (meta +
    // segment-table + leaves), so the post-reload page count is the
    // rewritten-page figure.
    const uint64_t pages = reader_.page_count();
    compact_pages_rewritten_ += pages;
    telemetry::CounterAdd(telemetry::CounterId::kCompactPagesRewritten,
                          pages);
    return true;
  }

  // Incremental compaction of one segment (append-and-republish): merges
  // segment `slot`'s leaves with its overlay slot, re-segments the merged
  // run locally, appends the new leaf pages and a new full segment table
  // at EOF, fsyncs, then writes the next-generation meta into the other
  // ping-pong slot and fsyncs again. No page referenced by the previous
  // generation is touched, so a crash anywhere rolls back one generation.
  // Returns false — with the file and all in-memory state unchanged — on
  // any I/O failure, and also for an all-tombstone segment (that rare case
  // needs the directory surgery only the full Compact performs).
  bool CompactSegment(size_t slot) {
    if (slot >= segments_.size() || base_size() == 0) return false;
    telemetry::ScopedDuration telem(telemetry::Engine::kDisk,
                                    telemetry::Op::kCompact);
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kCompact);
    const SegmentRecord<K> rec = segments_[slot];
    const size_t start = SegStart(rec);
    const size_t len = static_cast<size_t>(rec.seg.length);
    const size_t cap = reader_.meta().leaf_capacity;
    const DeltaMap& overlay = deltas_[slot];
    const size_t consumed = overlay.size();
    compact_pending_.erase(rec.seg.first_key);

    // 1. Merged view of this one segment: its paged entries + its overlay
    // slot, tombstones dropped, overrides applied.
    std::vector<K> keys;
    std::vector<uint64_t> values;
    keys.reserve(len + consumed);
    values.reserve(len + consumed);
    auto dit = overlay.begin();
    const auto emit_overlay_below = [&](const K* bound) {
      for (; dit != overlay.end() && (bound == nullptr || dit->first < *bound);
           ++dit) {
        if (!dit->second.tombstone) {
          keys.push_back(dit->first);
          values.push_back(dit->second.value);
        }
      }
    };
    const uint64_t old_pages = PagesForRecords(len, cap);
    for (uint64_t p = 0; p < old_pages; ++p) {
      PinnedPage pin(pool_.get(),
                     static_cast<uint32_t>(rec.first_leaf_page + p));
      if (!pin) {
        io_error_ = true;
        telem.Cancel();
        return false;
      }
      const size_t begin = static_cast<size_t>(p) * cap;
      const size_t end = std::min(len, begin + cap);
      for (size_t local = begin; local < end; ++local) {
        const auto entry = LoadAs<LeafEntry<K>>(
            pin.data() + kPageHeaderBytes +
            (local - begin) * sizeof(LeafEntry<K>));
        emit_overlay_below(&entry.key);
        if (dit != overlay.end() && dit->first == entry.key) {
          if (!dit->second.tombstone) {  // payload override
            keys.push_back(entry.key);
            values.push_back(dit->second.value);
          }
          ++dit;
        } else {
          keys.push_back(entry.key);
          values.push_back(entry.value);
        }
      }
    }
    emit_overlay_below(nullptr);
    if (keys.empty()) {
      telem.Cancel();
      return false;
    }

    // 2. Local re-segmentation at the stored error bound, globalized into
    // the segment's rank range [start, start + keys.size()): both start
    // and intercept shift together because Predict() yields global ranks.
    const SegmentFileMeta meta = reader_.meta();
    const auto local_segs =
        SegmentShrinkingCone<K>(std::span<const K>(keys), meta.error);
    const int64_t d = static_cast<int64_t>(keys.size()) -
                      static_cast<int64_t>(len);
    std::vector<SegmentRecord<K>> records;
    records.reserve(segments_.size() + local_segs.size() - 1);
    for (size_t i = 0; i < slot; ++i) records.push_back(segments_[i]);
    uint64_t next_page = meta.total_pages;  // appends start past EOF
    for (const auto& ls : local_segs) {
      Segment<K> g = ls;
      g.start += start;
      g.intercept += static_cast<double>(start);
      records.push_back({g.Pack(), next_page});
      next_page += PagesForRecords(g.length, cap);
    }
    const uint64_t appended_leaves = next_page - meta.total_pages;
    for (size_t i = slot + 1; i < segments_.size(); ++i) {
      SegmentRecord<K> r = segments_[i];
      // Later ranks shift by d; their pages don't move (local addressing
      // is start-relative, invariant under the shift).
      r.seg.start = static_cast<uint64_t>(
          static_cast<int64_t>(r.seg.start) + d);
      r.seg.intercept += static_cast<double>(d);
      records.push_back(r);
    }

    // 3. Append: new leaf pages, then the new full segment table.
    SegmentFileUpdater up;
    if (!up.Open(path_)) {
      telem.Cancel();
      return false;
    }
    std::vector<std::byte> page(meta.page_bytes, std::byte{0});
    bool ok = true;
    const auto emit = [&](PageType type, uint64_t page_id, uint32_t count) {
      SealPage(page.data(), page.size(), type,
               static_cast<uint32_t>(page_id), count);
      ok = ok && up.WritePageAt(page_id, page.data(), page.size());
      std::fill(page.begin(), page.end(), std::byte{0});
    };
    for (size_t s = 0; s < local_segs.size() && ok; ++s) {
      const SegmentRecord<K>& nr = records[slot + s];
      const size_t g_start = SegStart(nr);
      const size_t g_len = static_cast<size_t>(nr.seg.length);
      for (uint64_t p = 0; p < PagesForRecords(g_len, cap) && ok; ++p) {
        const size_t begin = static_cast<size_t>(p) * cap;
        const size_t end = std::min(g_len, begin + cap);
        for (size_t l = begin; l < end; ++l) {
          const size_t m = (g_start - start) + l;  // merged-array index
          StoreAs(page.data() + kPageHeaderBytes +
                      (l - begin) * sizeof(LeafEntry<K>),
                  LeafEntry<K>{keys[m], values[m]});
        }
        emit(PageType::kLeaf, nr.first_leaf_page + p,
             static_cast<uint32_t>(end - begin));
      }
    }
    const uint64_t seg_cap = meta.segment_capacity;
    const uint64_t seg_table_first = next_page;
    const uint64_t seg_pages = PagesForRecords(records.size(), seg_cap);
    for (uint64_t p = 0; p < seg_pages && ok; ++p) {
      const size_t begin = static_cast<size_t>(p * seg_cap);
      const size_t end =
          std::min(records.size(), begin + static_cast<size_t>(seg_cap));
      for (size_t i = begin; i < end; ++i) {
        StoreAs(page.data() + kPageHeaderBytes +
                    (i - begin) * sizeof(SegmentRecord<K>),
                records[i]);
      }
      emit(PageType::kSegmentTable, seg_table_first + p,
           static_cast<uint32_t>(end - begin));
    }
    if (!ok) {
      telem.Cancel();
      return false;
    }
    Hook(CompactPoint::kAppendWritten);
    if (!up.Sync()) {
      telem.Cancel();
      return false;
    }
    Hook(CompactPoint::kAppendSynced);

    // 4. Republish: next generation into the OTHER meta slot, fsynced
    // after the appends are already durable.
    SegmentFileMeta nm = meta;
    nm.generation = meta.generation + 1;
    nm.key_count = static_cast<uint64_t>(
        static_cast<int64_t>(meta.key_count) + d);
    nm.segment_count = records.size();
    nm.seg_table_first_page = seg_table_first;
    nm.segment_page_count = seg_pages;
    nm.leaf_page_count =
        meta.leaf_page_count - old_pages + appended_leaves;
    nm.total_pages = seg_table_first + seg_pages;
    StoreAs(page.data() + kPageHeaderBytes, nm);
    emit(PageType::kMeta, nm.generation % kNumMetaSlots, 1);
    if (ok) Hook(CompactPoint::kMetaWritten);
    if (!ok || !up.Sync()) {
      telem.Cancel();
      return false;
    }
    Hook(CompactPoint::kMetaSynced);

    // 5. Adopt the new generation in memory: the reader re-points at the
    // republished meta (same fd — appends are visible to pread), the
    // consumed overlay slot disappears, and surviving slots shift around
    // the new segments.
    reader_.set_meta(nm);
    std::vector<DeltaMap> new_deltas(std::max<size_t>(1, records.size()));
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (i == slot) continue;
      new_deltas[i < slot ? i : i + local_segs.size() - 1] =
          std::move(deltas_[i]);
    }
    deltas_ = std::move(new_deltas);
    delta_entries_ -= consumed;
    segments_ = std::move(records);
    RebuildDirectory();
    ++incremental_compactions_;
    const uint64_t rewritten = appended_leaves + seg_pages + 1;
    compact_pages_rewritten_ += rewritten;
    telemetry::CounterAdd(telemetry::CounterId::kCompactPagesRewritten,
                          rewritten);
    return true;
  }

  // Duration of the most recent successful Compact() (0 before the first),
  // and the cumulative pages written by all of this instance's compactions.
  uint64_t LastCompactNs() const { return last_compact_ns_; }
  uint64_t CompactPagesRewritten() const { return compact_pages_rewritten_; }

  // Structural snapshot (telemetry tentpole): base/overlay occupancy,
  // segment shape, compaction history, and this instance's buffer-pool I/O
  // picture (hit rate included — the registry's io.* counters aggregate
  // across pools, this is the per-instance view).
  telemetry::StructuralStats Stats() const {
    telemetry::StructuralStats st;
    st.engine = telemetry::EngineName(telemetry::Engine::kDisk);
    st.Add("keys", static_cast<double>(size_));
    st.Add("base_keys", static_cast<double>(base_size()));
    st.Add("segments", static_cast<double>(segments_.size()));
    st.Add("error", error());
    st.Add("delta_entries", static_cast<double>(delta_entries_));
    st.Add("delta_fraction",
           size_ == 0 ? 0.0
                      : static_cast<double>(delta_entries_) /
                            static_cast<double>(size_));
    st.Add("leaf_pages", static_cast<double>(LeafPageCount()));
    st.Add("file_bytes", static_cast<double>(FileBytes()));
    st.Add("cache_frames", static_cast<double>(pool_->frame_count()));
    st.Add("cache_bytes", static_cast<double>(pool_->CapacityBytes()));
    const IoStats& io_stats = pool_->stats();
    st.Add("io_hits", static_cast<double>(io_stats.cache_hits));
    st.Add("io_misses", static_cast<double>(io_stats.cache_misses));
    st.Add("io_pages_read", static_cast<double>(io_stats.pages_read));
    st.Add("io_hit_rate", io_stats.HitRate());
    st.Add("compactions", static_cast<double>(compactions_));
    st.Add("incremental_compactions",
           static_cast<double>(incremental_compactions_));
    st.Add("compact_pending", static_cast<double>(compact_pending_.size()));
    st.Add("last_compact_ns", static_cast<double>(last_compact_ns_));
    st.Add("compact_pages_rewritten",
           static_cast<double>(compact_pages_rewritten_));
    st.Add("io_error", io_error_ ? 1.0 : 0.0);
    return st;
  }

 private:
  DiskFitingTree() = default;

  // "Key sorts before every segment's first key" sentinel, shared with
  // FlatKeyIndex::kNone so the flat descent needs no translation.
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  struct DeltaEntry {
    uint64_t value = 0;
    bool tombstone = false;
  };
  using DeltaMap = std::map<K, DeltaEntry>;

  static size_t SegStart(const SegmentRecord<K>& r) {
    return static_cast<size_t>(r.seg.start);
  }
  static size_t SegEnd(const SegmentRecord<K>& r) {
    return static_cast<size_t>(r.seg.start + r.seg.length);
  }

  void Hook(CompactPoint p) {
    if (options_.compact_hook) options_.compact_hook(p);
  }

  // (Re)loads reader, pool, segment table, directory, and resets the
  // overlay. Compactions_ survives; everything else derives from the file.
  bool Load(const std::string& path) {
    typename SegmentFileReader<K>::IoOptions io;
    io.backend = options_.io_backend;
    io.depth = options_.io_depth;
    io.direct = options_.io_direct;
    if (!reader_.Open(path, io)) return false;
    if (!reader_.ReadSegmentTable(&segments_)) return false;
    pool_ = std::make_unique<BufferPool>(
        &reader_, reader_.page_bytes(),
        std::max<size_t>(1, options_.cache_pages));
    RebuildDirectory();
    deltas_.assign(std::max<size_t>(1, segments_.size()), DeltaMap{});
    compact_pending_.clear();
    delta_entries_ = 0;
    size_ = reader_.meta().key_count;
    return true;
  }

  // Rebuilds both directory descent forms from segments_ (Load and every
  // incremental republish — the table is small, this is off the hot path).
  void RebuildDirectory() {
    directory_ = btree::BTreeMap<K, uint32_t, 16, 16>();
    std::vector<std::pair<K, uint32_t>> entries;
    entries.reserve(segments_.size());
    std::vector<K> first_keys;
    first_keys.reserve(segments_.size());
    for (size_t i = 0; i < segments_.size(); ++i) {
      entries.emplace_back(segments_[i].seg.first_key,
                           static_cast<uint32_t>(i));
      first_keys.push_back(segments_[i].seg.first_key);
    }
    directory_.BulkLoad(std::move(entries));
    // Segment ids are 0..n-1 in first-key order, so the flat floor index
    // is itself the id. The directory only changes on Load and on
    // republish, so the flat form can serve every descent when selected.
    flat_index_.Reset(std::move(first_keys));
  }

  // Directory floor of `key` in whichever descent form options_ selects,
  // or kNoSlot when `key` sorts before every indexed first key.
  size_t FloorSlot(const K& key) const {
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kDirectoryDescent);
    if (options_.directory == DirectoryMode::kFlat) {
      return flat_index_.FloorIndex(key);  // FlatKeyIndex::kNone == kNoSlot
    }
    const uint32_t* id = directory_.FindFloor(key);
    return id == nullptr ? kNoSlot : static_cast<size_t>(*id);
  }

  // Segment owning base rank `rank` (starts are contiguous from 0).
  size_t SegmentForRank(size_t rank) const {
    size_t lo = 0, hi = segments_.size();
    while (lo + 1 < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (SegStart(segments_[mid]) <= rank) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // File-global leaf page holding base rank `rank` (v2 addressing).
  uint32_t PageForRank(const SegmentRecord<K>& rec, size_t rank) const {
    return static_cast<uint32_t>(
        rec.first_leaf_page +
        (rank - SegStart(rec)) / reader_.meta().leaf_capacity);
  }

  // Overlay segment for `key`: its directory floor, else segment 0 (keys
  // below every first key, and the whole keyspace of an empty base file).
  size_t DeltaSlot(const K& key) const {
    const size_t floor = FloorSlot(key);
    return floor == kNoSlot ? 0 : floor;
  }
  DeltaMap& DeltaFor(const K& key) { return deltas_[DeltaSlot(key)]; }

  // Queues `slot` for incremental compaction once its overlay crosses the
  // threshold. Keyed by the segment's first key, not its index — indexes
  // shift when an earlier republish splits a segment, first keys don't.
  void MaybeScheduleCompaction(size_t slot) {
    if (options_.compact_threshold_pct == 0 || base_size() == 0) return;
    const SegmentRecord<K>& rec = segments_[slot];
    const size_t threshold = std::max<size_t>(
        8, static_cast<size_t>(rec.seg.length) *
               options_.compact_threshold_pct / 100);
    if (deltas_[slot].size() >= threshold) {
      compact_pending_.insert(rec.seg.first_key);
    }
  }

  // Drains at most ONE pending segment (merge_worker-style bounded drain,
  // on the owner thread): called at the top of every mutation, so the
  // compaction a mutation triggers runs at the start of the next one.
  void DrainOneCompaction() {
    if (compact_pending_.empty()) return;
    const K key = *compact_pending_.begin();
    compact_pending_.erase(compact_pending_.begin());
    const size_t floor = FloorSlot(key);
    (void)CompactSegment(floor == kNoSlot ? 0 : floor);
  }

  // Prefetch the predicted rank's position in its resident pool frame (if
  // cached) so the line travels while the delta probe runs. A miss is left
  // alone — faulting a page is the buffer pool's decision, not a hint's.
  void PrefetchPredictedFrame(size_t floor, const K& key) const {
    if (floor == kNoSlot || base_size() == 0) return;
    const SegmentRecord<K>& rec = segments_[floor];
    const size_t seg_start = SegStart(rec);
    const size_t seg_end = SegEnd(rec);
    const double pred = rec.seg.Predict(key);
    const size_t rank =
        pred <= static_cast<double>(seg_start)
            ? seg_start
            : std::min(seg_end - 1, static_cast<size_t>(pred));
    const size_t cap = reader_.meta().leaf_capacity;
    if (const std::byte* frame = pool_->Peek(PageForRank(rec, rank))) {
      PrefetchRead(frame + kPageHeaderBytes +
                   ((rank - seg_start) % cap) * sizeof(LeafEntry<K>));
    }
  }

  // Appends the candidate page ids a Lookup(key) would fault: the whole
  // error window under kWindow, just the clamped predicted page under
  // kSingle.
  void AppendLookupPages(const K& key, std::vector<uint32_t>* ids) const {
    const size_t floor = FloorSlot(key);
    if (floor == kNoSlot) return;
    const SegmentRecord<K>& rec = segments_[floor];
    const size_t seg_start = SegStart(rec);
    const auto [begin, end] = fitree::ErrorWindow(
        rec.seg.Predict(key), reader_.meta().error, seg_start, SegEnd(rec));
    if (begin >= end) return;
    if (options_.fetch_strategy == FetchStrategy::kWindow) {
      const uint32_t first = PageForRank(rec, begin);
      const uint32_t last = PageForRank(rec, end - 1);
      for (uint32_t id = first; id <= last; ++id) ids->push_back(id);
      return;
    }
    const double pred = rec.seg.Predict(key);
    const size_t rank = pred <= static_cast<double>(begin)
                            ? begin
                            : std::min(end - 1, static_cast<size_t>(pred));
    ids->push_back(PageForRank(rec, rank));
  }

  // Stages the candidate pages of keys [i, ...) — capped at half the pool
  // so the staged pins never starve the resolution's own fetches — in one
  // batched read. Returns the index of the first unstaged key; `staged`
  // receives the successfully pinned ids (caller unpins).
  size_t StageChunk(const K* keys, size_t i, size_t n,
                    std::vector<uint32_t>* staged) const {
    const size_t budget = std::max<size_t>(1, pool_->frame_count() / 2);
    staged->clear();
    size_t j = i;
    while (j < n && (j == i || staged->size() < budget)) {
      AppendLookupPages(keys[j], staged);
      ++j;
    }
    std::sort(staged->begin(), staged->end());
    staged->erase(std::unique(staged->begin(), staged->end()),
                  staged->end());
    if (staged->empty()) return j;
    std::vector<const std::byte*> outs(staged->size());
    pool_->FetchBatch(staged->data(), staged->size(), outs.data());
    // Keep only what actually pinned, so the unpin pass matches reality
    // (a failed read inside the batch must not turn into pin underflow).
    size_t kept = 0;
    for (size_t k = 0; k < staged->size(); ++k) {
      if (outs[k] != nullptr) (*staged)[kept++] = (*staged)[k];
    }
    staged->resize(kept);
    return j;
  }

  void UnpinAll(const std::vector<uint32_t>& ids) const {
    for (const uint32_t id : ids) (void)pool_->Unpin(id);
  }

  // Cursor over the concatenation of per-segment deltas — globally sorted
  // because each key's slot is its directory floor.
  struct DeltaCursor {
    size_t slot = 0;
    typename DeltaMap::const_iterator it;
  };

  DeltaCursor DeltaCursorAt(const K& lo) const {
    DeltaCursor c;
    c.slot = DeltaSlot(lo);
    c.it = deltas_[c.slot].lower_bound(lo);
    SkipEmptySlots(&c);
    return c;
  }

  void SkipEmptySlots(DeltaCursor* c) const {
    while (c->it == deltas_[c->slot].end() && c->slot + 1 < deltas_.size()) {
      ++c->slot;
      c->it = deltas_[c->slot].begin();
    }
  }

  const std::pair<const K, DeltaEntry>* PeekDelta(const DeltaCursor& c) const {
    return c.it == deltas_[c.slot].end() ? nullptr : &*c.it;
  }

  void AdvanceDelta(DeltaCursor* c) const {
    ++c->it;
    SkipEmptySlots(c);
  }

  // Emits the cursor's live entries with key <= `hi` and key < `before`
  // (no bound when nullopt), skipping tombstones; returns the emit count.
  template <typename Fn>
  size_t DrainDelta(DeltaCursor* c, std::optional<K> before, const K& hi,
                    Fn& fn) const {
    size_t emitted = 0;
    for (const auto* e = PeekDelta(*c);
         e != nullptr && e->first <= hi &&
         (!before.has_value() || e->first < *before);
         e = PeekDelta(*c)) {
      if (!e->second.tombstone) {
        fn(e->first, e->second.value);
        ++emitted;
      }
      AdvanceDelta(c);
    }
    return emitted;
  }

  // Lower bound of `key` over the base file, descending from an
  // already-resolved directory floor.
  size_t LowerBoundAt(size_t floor, const K& key) const {
    if (base_size() == 0) return 0;
    if (floor == kNoSlot) return 0;  // key sorts before every indexed key
    const SegmentRecord<K>& rec = segments_[floor];
    const auto [begin, end] =
        fitree::ErrorWindow(rec.seg.Predict(key), reader_.meta().error,
                            SegStart(rec), SegEnd(rec));
    StageWindow(rec, begin, end);
    return WindowLowerBound(rec, begin, end, key);
  }

  // Speculative multi-page fetch (kWindow): when the error window
  // straddles page boundaries, stage every page it spans in one batched
  // read before the search, so the straddle costs one overlapped batch
  // instead of serial faults. Pins are dropped immediately — the pages
  // stay resident for WindowLowerBound's own (now hitting) fetches.
  void StageWindow(const SegmentRecord<K>& rec, size_t begin,
                   size_t end) const {
    if (options_.fetch_strategy != FetchStrategy::kWindow || begin >= end) {
      return;
    }
    const uint32_t first = PageForRank(rec, begin);
    const uint32_t last = PageForRank(rec, end - 1);
    if (first == last) return;  // no straddle, the serial fault is one read
    std::vector<uint32_t> ids;
    ids.reserve(last - first + 1);
    for (uint32_t id = first; id <= last; ++id) ids.push_back(id);
    std::vector<const std::byte*> outs(ids.size());
    pool_->FetchBatch(ids.data(), ids.size(), outs.data());
    for (size_t i = 0; i < ids.size(); ++i) {
      if (outs[i] != nullptr) (void)pool_->Unpin(ids[i]);
    }
  }

  // Paged lookup, delta overlay excluded.
  std::optional<uint64_t> BaseLookup(const K& key) const {
    return BaseLookupAt(FloorSlot(key), key);
  }

  std::optional<uint64_t> BaseLookupAt(size_t floor, const K& key) const {
    if (base_size() == 0) return std::nullopt;
    const size_t rank = LowerBoundAt(floor, key);
    if (rank >= base_size()) return std::nullopt;
    const auto entry = EntryAt(rank);
    if (!entry.has_value() || entry->key != key) return std::nullopt;
    return entry->value;
  }

  std::optional<LeafEntry<K>> EntryAt(size_t rank) const {
    const SegmentRecord<K>& rec = segments_[SegmentForRank(rank)];
    const size_t cap = reader_.meta().leaf_capacity;
    PinnedPage pin(pool_.get(), PageForRank(rec, rank));
    if (!pin) {
      io_error_ = true;
      return std::nullopt;
    }
    return LoadAs<LeafEntry<K>>(
        pin.data() + kPageHeaderBytes +
        ((rank - SegStart(rec)) % cap) * sizeof(LeafEntry<K>));
  }

  // Lower bound of `key` over ranks [begin, end) — always within one
  // segment, because ErrorWindow clamps to the segment — searching page by
  // page: a window of w ranks touches at most w / leaf_capacity + 1 pages,
  // and pages before the answer are dismissed by one key comparison each.
  size_t WindowLowerBound(const SegmentRecord<K>& rec, size_t begin,
                          size_t end, const K& key) const {
    // Self time here is pure compute: the page faults this search triggers
    // are nested page_io spans (buffer_pool.h) and subtract out.
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kWindowSearch);
    if (begin >= end) return begin;
    const size_t cap = reader_.meta().leaf_capacity;
    const size_t seg_start = SegStart(rec);
    for (uint64_t leaf = (begin - seg_start) / cap;
         leaf <= (end - 1 - seg_start) / cap; ++leaf) {
      const size_t slice_begin =
          std::max(begin, seg_start + static_cast<size_t>(leaf) * cap);
      const size_t slice_end =
          std::min(end, seg_start + (static_cast<size_t>(leaf) + 1) * cap);
      PinnedPage pin(pool_.get(),
                     static_cast<uint32_t>(rec.first_leaf_page + leaf));
      if (!pin) {
        io_error_ = true;
        return end;
      }
      const auto key_at = [&](size_t rank) {
        return LoadAs<K>(pin.data() + kPageHeaderBytes +
                         ((rank - seg_start) % cap) * sizeof(LeafEntry<K>));
      };
      if (key_at(slice_end - 1) < key) continue;  // answer is further right
      if (options_.search_policy == SearchPolicy::kSimd) {
        // Branchless narrow over in-page ranks, then a strided vector
        // count over the packed {key, payload} records. The slice never
        // crosses the page, so the offset of b plus m entries stays within
        // the pinned frame.
        size_t b = slice_begin;
        size_t m = slice_end - slice_begin;
        while (m > simd::kSimdWindowKeys) {
          const size_t half = m / 2;
          b = key_at(b + half - 1) < key ? b + half : b;
          m -= half;
        }
        const std::byte* base =
            pin.data() + kPageHeaderBytes +
            ((b - seg_start) % cap) * sizeof(LeafEntry<K>);
        return b + simd::CountLessStrided(base, sizeof(LeafEntry<K>), m, key);
      }
      size_t lo = slice_begin, hi = slice_end;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (key_at(mid) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
    return end;
  }

  std::string path_;
  Options options_;
  SegmentFileReader<K> reader_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<SegmentRecord<K>> segments_;
  btree::BTreeMap<K, uint32_t, 16, 16> directory_;
  FlatKeyIndex<K> flat_index_;  // same entries, read-path descent form
  std::vector<DeltaMap> deltas_;  // parallel to segments_ (>= 1 slot)
  std::set<K> compact_pending_;   // first keys of queued segments (dedup)
  size_t delta_entries_ = 0;      // live + tombstone entries across slots
  size_t size_ = 0;               // live keys: base + inserts - deletes
  uint64_t compactions_ = 0;
  uint64_t incremental_compactions_ = 0;
  uint64_t last_compact_ns_ = 0;          // most recent Compact() duration
  uint64_t compact_pages_rewritten_ = 0;  // cumulative across compactions
  mutable bool io_error_ = false;  // set by const reads on failed faults
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_DISK_FITING_TREE_H_
