// Read-only FITing-Tree (paper Sec 4.1): a bulk-loaded array of
// error-bounded linear segments with a B+ tree over the segment boundary
// keys. Lookups descend the directory, evaluate the segment's line and
// finish with a bounded search in the +/- error window. Because the data
// stays in one flat sorted array, ranks are exact, which gives O(log)
// RangeCount via rank subtraction (used by bench_range).
//
// The key set is immutable, but each key can carry a 64-bit payload
// (values()); payloads default to the key's rank — the convention the
// storage/ serializer shares — and are updatable in place, which is what
// DiskFitingTree::Compact() rebuilds through.

#ifndef FITREE_CORE_STATIC_FITING_TREE_H_
#define FITREE_CORE_STATIC_FITING_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "btree/btree_map.h"
#include "common/options.h"
#include "common/prefetch.h"
#include "core/flat_directory.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "telemetry/structural.h"

namespace fitree {

template <typename K>
class StaticFitingTree {
 public:
  using Key = K;
  using Payload = uint64_t;

  // Policy/directory defaults come from the FITREE_SEARCH_POLICY /
  // FITREE_DIRECTORY knobs (simd + flat unless overridden), so benches and
  // differential suites exercise the fast path by default.
  static std::unique_ptr<StaticFitingTree<K>> Create(
      const std::vector<K>& keys, double error,
      SearchPolicy policy = DefaultSearchPolicy(),
      Feasibility feasibility = Feasibility::kEndpointLine,
      DirectoryMode directory = DefaultDirectoryMode()) {
    return Create(keys, {}, error, policy, feasibility, directory);
  }

  // Bulk-loads `keys` with explicit rank->payload values (empty = payload
  // is the rank itself, the serializer's default).
  static std::unique_ptr<StaticFitingTree<K>> Create(
      const std::vector<K>& keys, const std::vector<uint64_t>& values,
      double error, SearchPolicy policy = DefaultSearchPolicy(),
      Feasibility feasibility = Feasibility::kEndpointLine,
      DirectoryMode directory = DefaultDirectoryMode()) {
    auto tree = std::make_unique<StaticFitingTree<K>>();
    tree->policy_ = policy;
    tree->directory_mode_ = directory;
    tree->feasibility_ = feasibility;
    tree->BulkLoad(std::span<const K>(keys), std::span<const uint64_t>(values),
                   error);
    return tree;
  }

  void BulkLoad(std::span<const K> keys, double error) {
    BulkLoad(keys, {}, error);
  }

  // Replaces the contents with `keys` (sorted, duplicate-free) and their
  // payloads (`values` empty keeps the rank convention).
  void BulkLoad(std::span<const K> keys, std::span<const uint64_t> values,
                double error) {
    error_ = error;
    data_.assign(keys.begin(), keys.end());
    values_.assign(values.begin(), values.end());
    segments_ = SegmentShrinkingCone<K>(data_, error, feasibility_);
    std::vector<std::pair<K, uint32_t>> entries;
    entries.reserve(segments_.size());
    std::vector<K> first_keys;
    first_keys.reserve(segments_.size());
    for (size_t i = 0; i < segments_.size(); ++i) {
      entries.emplace_back(segments_[i].first_key, static_cast<uint32_t>(i));
      first_keys.push_back(segments_[i].first_key);
    }
    directory_.BulkLoad(std::move(entries));
    // Segment ids are 0..n-1 in first-key order, so the flat floor index is
    // itself the id; both directories are kept loaded so the
    // FITREE_DIRECTORY knob can ablate descent cost on the same tree.
    flat_index_.Reset(std::move(first_keys));
  }

  size_t size() const { return data_.size(); }

  // Rank of the first key >= `key` (i.e. `key`'s insertion point).
  size_t LowerBound(const K& key) const { return Bound(key, /*upper=*/false); }

  // Rank of the first key > `key`.
  size_t UpperBound(const K& key) const { return Bound(key, /*upper=*/true); }

  // The rank of `key` when present.
  std::optional<size_t> Find(const K& key) const {
    const size_t i = LowerBound(key);
    if (i < data_.size() && data_[i] == key) return i;
    return std::nullopt;
  }

  bool Contains(const K& key) const { return Find(key).has_value(); }

  // Payload stored for `key` (its rank when no explicit values were
  // loaded), or nullopt when absent.
  std::optional<uint64_t> Lookup(const K& key) const {
    const auto rank = Find(key);
    if (!rank.has_value()) return std::nullopt;
    return values_.empty() ? static_cast<uint64_t>(*rank) : values_[*rank];
  }

  // Replaces the payload of a present key in place (the key set itself is
  // immutable). Returns false when absent. Named Update to match the
  // engine-wide contract (core/index_api.h); the read-only key set still
  // rules out Insert/Delete, so this engine models IndexApi but not
  // MutableIndexApi.
  bool Update(const K& key, uint64_t value) {
    const auto rank = Find(key);
    if (!rank.has_value()) return false;
    if (values_.empty()) {
      // Materialize the implicit rank payloads before the first override.
      values_.resize(data_.size());
      for (size_t i = 0; i < values_.size(); ++i) {
        values_[i] = static_cast<uint64_t>(i);
      }
    }
    values_[*rank] = value;
    return true;
  }

  // Number of keys in [lo, hi]: two rank lookups, no scan.
  size_t RangeCount(const K& lo, const K& hi) const {
    if (hi < lo) return 0;
    return UpperBound(hi) - LowerBound(lo);
  }

  // Calls fn(key) or fn(key, value) for every key in [lo, hi] ascending.
  // Counts one static/scan (plus the static/lookup its descent performs).
  // Returns the number of entries emitted (IndexApi contract).
  template <typename Fn>
  size_t ScanRange(const K& lo, const K& hi, Fn fn) const {
    telemetry::ScopedOp telem(telemetry::Engine::kStatic,
                              telemetry::Op::kScan);
    size_t emitted = 0;
    for (size_t i = LowerBound(lo); i < data_.size() && data_[i] <= hi; ++i) {
      if constexpr (std::is_invocable_v<Fn&, const K&, const uint64_t&>) {
        fn(data_[i],
           values_.empty() ? static_cast<uint64_t>(i) : values_[i]);
      } else {
        fn(data_[i]);
      }
      ++emitted;
    }
    return emitted;
  }

  // Prefetch the predicted data-array position a Lookup(key) would search
  // (see core/index_api.h PrefetchableIndex; used by the server's batched
  // group-prefetch dispatch). Untimed and uncounted on purpose.
  void PrefetchLookup(const K& key) const {
    if (data_.empty()) return;
    size_t id;
    if (directory_mode_ == DirectoryMode::kFlat) {
      id = flat_index_.FloorIndex(key);
      if (id == FlatKeyIndex<K>::kNone) id = 0;
    } else {
      const uint32_t* found = directory_.FindFloor(key);
      id = found == nullptr ? 0 : *found;
    }
    const Segment<K>& seg = segments_[id];
    const double pred = seg.Predict(key);
    const size_t hint =
        pred <= 0.0 ? 0 : std::min(data_.size() - 1, static_cast<size_t>(pred));
    PrefetchRead(data_.data() + hint);
  }

  // Directory plus per-segment model metadata; the data array itself is the
  // indexed table, not the index (paper's accounting in Fig 6/9). Charges
  // whichever directory the read path actually descends.
  size_t IndexSizeBytes() const {
    const size_t dir = directory_mode_ == DirectoryMode::kFlat
                           ? flat_index_.MemoryBytes()
                           : directory_.MemoryBytes();
    return dir + segments_.size() * kSegmentMetaBytes;
  }

  // The segment table in the fixed-width form the storage/ serializer
  // writes (see storage/segment_file.h).
  std::vector<PackedSegment<K>> ExportSegmentTable() const {
    std::vector<PackedSegment<K>> packed;
    packed.reserve(segments_.size());
    for (const auto& s : segments_) packed.push_back(s.Pack());
    return packed;
  }

  // Structural snapshot (telemetry tentpole): the shape of the bulk-loaded
  // structure — segment count and length distribution, directory mode and
  // footprint — as one uniform record (see telemetry/structural.h).
  telemetry::StructuralStats Stats() const {
    telemetry::StructuralStats st;
    st.engine = telemetry::EngineName(telemetry::Engine::kStatic);
    st.Add("keys", static_cast<double>(data_.size()));
    st.Add("segments", static_cast<double>(segments_.size()));
    st.Add("error", error_);
    size_t min_len = 0, max_len = 0;
    if (!segments_.empty()) {
      min_len = max_len = segments_[0].length;
      for (const auto& s : segments_) {
        min_len = std::min(min_len, s.length);
        max_len = std::max(max_len, s.length);
      }
    }
    st.Add("segment_len_min", static_cast<double>(min_len));
    st.Add("segment_len_mean",
           segments_.empty() ? 0.0
                             : static_cast<double>(data_.size()) /
                                   static_cast<double>(segments_.size()));
    st.Add("segment_len_max", static_cast<double>(max_len));
    st.Add("index_bytes", static_cast<double>(IndexSizeBytes()));
    st.Add("directory_flat",
           directory_mode_ == DirectoryMode::kFlat ? 1.0 : 0.0);
    return st;
  }

  size_t SegmentCount() const { return segments_.size(); }
  int TreeHeight() const { return directory_.Height(); }
  double error() const { return error_; }
  const std::vector<K>& data() const { return data_; }
  // Explicit payloads; empty means the implicit rank convention.
  const std::vector<uint64_t>& values() const { return values_; }
  const std::vector<Segment<K>>& segments() const { return segments_; }

 private:
  static constexpr size_t kSegmentMetaBytes =
      sizeof(K) + 2 * sizeof(double) + sizeof(void*);

  // The single descent choke point: Contains/Find/Lookup/LowerBound all
  // funnel here, so one ScopedOp counts each descent exactly once
  // (RangeCount's two bounds count as two).
  size_t Bound(const K& key, bool upper) const {
    telemetry::ScopedOp telem(telemetry::Engine::kStatic,
                              telemetry::Op::kLookup);
    if (data_.empty()) return 0;
    size_t id;
    {
      telemetry::ScopedPhase descent(telemetry::Engine::kStatic,
                                     telemetry::Phase::kDirectoryDescent);
      if (directory_mode_ == DirectoryMode::kFlat) {
        id = flat_index_.FloorIndex(key);
        if (id == FlatKeyIndex<K>::kNone) {
          return 0;  // before every indexed key
        }
      } else {
        const uint32_t* found = directory_.FindFloor(key);
        if (found == nullptr) return 0;  // key sorts before every indexed key
        id = *found;
      }
    }
    telemetry::ScopedPhase search(telemetry::Engine::kStatic,
                                  telemetry::Phase::kWindowSearch);
    const Segment<K>& seg = segments_[id];
    const size_t seg_end = seg.start + seg.length;
    const double pred = seg.Predict(key);
    const auto [begin, end] = ErrorWindow(pred, error_, seg.start, seg_end);
    const size_t hint = static_cast<size_t>(std::max(0.0, pred));
    // Pull the predicted line in while the window bounds resolve.
    PrefetchRead(data_.data() + std::min(hint, data_.size() - 1));
    size_t i = detail::BoundedLowerBound(data_.data(), begin, end, hint, key,
                                         policy_);
    if (upper) {
      while (i < data_.size() && data_[i] == key) ++i;
    }
    return i;
  }

  double error_ = 0.0;
  SearchPolicy policy_ = SearchPolicy::kBinary;
  DirectoryMode directory_mode_ = DirectoryMode::kFlat;
  Feasibility feasibility_ = Feasibility::kEndpointLine;
  std::vector<K> data_;
  std::vector<uint64_t> values_;  // empty = payload is the rank
  std::vector<Segment<K>> segments_;
  btree::BTreeMap<K, uint32_t, 16, 16> directory_;
  FlatKeyIndex<K> flat_index_;  // same entries, read-path descent form
};

}  // namespace fitree

#endif  // FITREE_CORE_STATIC_FITING_TREE_H_
