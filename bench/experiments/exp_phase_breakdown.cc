// micro_phase_breakdown: Fig-13-style lookup decomposition, but from live
// phase spans (telemetry/phase.h) instead of the hand-threaded
// ContainsWithBreakdown plumbing — all four engines, one mechanism.
//
// Per engine, the same single-threaded lookup loop runs at three sample
// periods:
//   off     — period 65536: spans effectively never arm (the baseline;
//             bounded, not 2^62, so the thread's sample countdown recovers
//             for experiments that run after this one)
//   sampled — the configured FITREE_TELEM_SAMPLE period (production cost)
//   full    — period 1: every op sampled, every span timed
// The off/sampled/full ns/op columns are the same-process overhead A/B
// quoted in EXPERIMENTS.md; the full-mode registry delta yields the
// per-phase grid: ns/op attributed to each phase (self time, children
// excluded) plus its percentage share.
//
// The buffered/concurrent/disk trees are pre-seeded with inserts so the
// buffer_probe / delta_probe phases exercise non-empty structures, and the
// disk cache is deliberately undersized so page_io shows up.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "concurrency/concurrent_fiting_tree.h"
#include "core/fiting_tree.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "workloads/workloads.h"

namespace fitree::bench {
namespace {

#ifndef FITREE_NO_TELEMETRY

namespace tm = fitree::telemetry;

using storage::DiskFitingTree;

constexpr double kError = 128.0;

// Runs `body` (one lookup per call) through the off/sampled/full period
// sweep and reports one record per mode; the full-mode registry delta is
// decomposed into per-phase metrics for `engine`.
void MeasureEngine(Runner& runner, tm::Engine engine, size_t ops,
                   const std::function<uint64_t(size_t)>& body) {
  const char* engine_name = tm::EngineName(engine);
  const uint64_t saved_period = tm::SamplePeriod();

  const auto run_mode = [&](uint64_t period) {
    tm::SetSamplePeriodForTest(period);
    return runner.CollectReps([&] { return TimedLoopNsPerOp(ops, body); });
  };

  runner.Report({{"engine", engine_name}, {"mode", "off"}}, run_mode(65536));
  runner.Report({{"engine", engine_name}, {"mode", "sampled"}},
                run_mode(saved_period));

  // Full attribution: bracket the measurement with registry snapshots so
  // the decomposition covers exactly this mode's ops (warmup included on
  // both sides of the division).
  const tm::RegistrySnapshot before = tm::Registry::Get().Snapshot();
  const Stats full = run_mode(1);
  const tm::RegistrySnapshot delta =
      tm::Registry::Get().Snapshot().DeltaSince(before);

  const size_t e = static_cast<size_t>(engine);
  const uint64_t op_count =
      delta.ops[e][static_cast<size_t>(tm::Op::kLookup)].count;
  std::vector<std::pair<std::string, double>> metrics;
  double total_ns_op = 0.0;
  if (op_count > 0) {
    for (size_t p = 0; p < tm::kNumPhases; ++p) {
      const auto& cell = delta.phases[e][p];
      if (cell.count == 0 || cell.latency.empty()) continue;
      // Every op is sampled at period 1, so samples ~= spans over the
      // measured ops; mean self time * spans / ops is the phase's ns/op.
      const double ns_op = cell.latency.MeanNs() *
                           static_cast<double>(cell.count) /
                           static_cast<double>(op_count);
      metrics.emplace_back(
          std::string(tm::PhaseName(static_cast<tm::Phase>(p))) + "_ns_op",
          ns_op);
      total_ns_op += ns_op;
    }
    if (total_ns_op > 0.0) {
      const size_t named = metrics.size();
      for (size_t i = 0; i < named; ++i) {
        std::string key = metrics[i].first;  // "<phase>_ns_op"
        key.replace(key.size() - 6, 6, "_pct");
        metrics.emplace_back(std::move(key),
                             100.0 * metrics[i].second / total_ns_op);
      }
    }
  }
  runner.Report({{"engine", engine_name}, {"mode", "full"}}, full,
                std::move(metrics));

  tm::SetSamplePeriodForTest(saved_period);
}

void RunPhaseBreakdown(Runner& runner) {
  const size_t n = ScaledN(200'000);
  const size_t probes_n = ScaledN(100'000);
  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/7";
  const auto keys =
      MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 7); });
  const auto probes = MemoProbes(dataset_key, *keys, probes_n,
                                 workloads::Access::kUniform,
                                 /*absent_fraction=*/0.1, 8);
  // ~5 pending inserts per segment buffer: buffer_probe/delta_probe walk
  // non-empty structures without triggering wholesale merges.
  const auto inserts = MemoInserts(dataset_key, *keys, n / 40, 9);

  {
    FitingTreeConfig config;
    config.error = kError;
    config.buffer_size = 256;
    auto tree = FitingTree<int64_t>::Create(*keys, config);
    for (size_t i = 0; i < inserts->size(); ++i) {
      tree->Insert((*inserts)[i], static_cast<uint64_t>(i));
    }
    MeasureEngine(runner, tm::Engine::kBuffered, probes->size(),
                  [&](size_t i) {
                    return tree->Contains((*probes)[i]) ? uint64_t{1} : 0;
                  });
  }

  {
    auto tree = StaticFitingTree<int64_t>::Create(*keys, kError);
    MeasureEngine(runner, tm::Engine::kStatic, probes->size(),
                  [&](size_t i) {
                    return tree->Contains((*probes)[i]) ? uint64_t{1} : 0;
                  });
  }

  {
    ConcurrentFitingTreeConfig config;
    config.error = kError;
    auto tree = ConcurrentFitingTree<int64_t>::Create(*keys, config);
    for (size_t i = 0; i < inserts->size(); ++i) {
      tree->Insert((*inserts)[i], static_cast<uint64_t>(i));
    }
    MeasureEngine(runner, tm::Engine::kConcurrent, probes->size(),
                  [&](size_t i) {
                    return tree->Contains((*probes)[i]) ? uint64_t{1} : 0;
                  });
  }

  {
    const char* path_env = std::getenv("FITREE_BENCH_DISK_PATH");
    const std::string path = (path_env != nullptr && *path_env != '\0')
                                 ? std::string(path_env) + ".phases"
                                 : "bench_phase_breakdown.fit";
    const auto oracle = StaticFitingTree<int64_t>::Create(*keys, kError);
    if (!storage::WriteIndexFile(path, *oracle,
                                 storage::SegmentFileOptions{})) {
      Die("phase_breakdown: failed to write " + path);
    }
    DiskFitingTree<int64_t>::Options options;
    // Undersized cache: page_io must appear in the grid, not just the
    // compute phases.
    const size_t leaf_cap =
        storage::LeafCapacity<int64_t>(storage::kDefaultPageBytes);
    const uint64_t leaf_pages = (keys->size() + leaf_cap - 1) / leaf_cap;
    options.cache_pages = std::max<uint64_t>(4, leaf_pages / 8);
    auto disk = DiskFitingTree<int64_t>::Open(path, options);
    if (disk == nullptr) Die("phase_breakdown: cannot open " + path);
    for (size_t i = 0; i < inserts->size(); ++i) {
      disk->Insert((*inserts)[i], static_cast<uint64_t>(i));
    }
    MeasureEngine(runner, tm::Engine::kDisk, probes->size(), [&](size_t i) {
      return disk->Lookup((*probes)[i]).value_or(0);
    });
    if (disk->io_error()) Die("phase_breakdown: I/O error on " + path);
    disk.reset();
    std::remove(path.c_str());
  }
}

#else  // FITREE_NO_TELEMETRY

// Without telemetry there are no spans to decompose; the experiment
// registers (the name stays valid in --list) but reports nothing.
void RunPhaseBreakdown(Runner&) {}

#endif  // FITREE_NO_TELEMETRY

FITREE_REGISTER_EXPERIMENT(
    "micro_phase_breakdown",
    "Phase decomposition from live spans: per-engine lookup ns/op by phase",
    RunPhaseBreakdown);

}  // namespace
}  // namespace fitree::bench
