// I/O accounting for the storage/ layer, playing the role memory_cost.h
// plays for the in-memory cost model: the paper charges lookups in pages,
// so disk benches report pages-read/op next to ns/op.
//
// Compat note: the process-wide aggregate of these counters now lives in
// the telemetry registry (telemetry/metrics.h CounterId::kIo*) — every
// BufferPool mirrors its increments there, so one registry snapshot
// carries the cross-instance I/O picture. This struct remains the
// per-pool view (snapshot-and-subtract against a single instance), which
// the registry's process-global counters cannot express.

#ifndef FITREE_COMMON_IO_STATS_H_
#define FITREE_COMMON_IO_STATS_H_

#include <cstdint>

namespace fitree {

// Cumulative counters kept by the buffer pool. Snapshot-and-subtract gives
// per-phase (or per-op, after dividing) figures:
//
//   IoStats before = pool.stats();
//   ... run the measured loop ...
//   IoStats delta = pool.stats() - before;
struct IoStats {
  uint64_t cache_hits = 0;    // page requests served from the pool
  uint64_t cache_misses = 0;  // page requests that went to the source
  uint64_t pages_read = 0;    // physical page reads (<= misses: failed
                              // reads count as a miss but not a read)
  uint64_t bytes_read = 0;    // pages_read * page_bytes

  uint64_t accesses() const { return cache_hits + cache_misses; }

  double HitRate() const {
    const uint64_t total = accesses();
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  IoStats operator-(const IoStats& o) const {
    return {cache_hits - o.cache_hits, cache_misses - o.cache_misses,
            pages_read - o.pages_read, bytes_read - o.bytes_read};
  }

  IoStats& operator+=(const IoStats& o) {
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    pages_read += o.pages_read;
    bytes_read += o.bytes_read;
    return *this;
  }

  friend bool operator==(const IoStats&, const IoStats&) = default;
};

}  // namespace fitree

#endif  // FITREE_COMMON_IO_STATS_H_
