// Tests for the concurrency/ subsystem: epoch reclamation, the
// sequence-validated segment latch, the background merge worker, and the
// ConcurrentFitingTree itself — sequential correctness, multi-threaded
// stress against a mutex-protected reference, and a no-leak shutdown
// assertion for the epoch retire list.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "concurrency/concurrent_fiting_tree.h"
#include "concurrency/epoch.h"
#include "concurrency/merge_worker.h"
#include "concurrency/mutex_fiting_tree.h"
#include "concurrency/seg_latch.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

using fitree::ConcurrentFitingTree;
using fitree::ConcurrentFitingTreeConfig;
using fitree::EpochGuard;
using fitree::EpochManager;
using fitree::MergeWorker;
using fitree::MutexFitingTree;
using fitree::SegLatch;
using fitree::workloads::Access;
using fitree::workloads::Op;
using fitree::workloads::OpMix;
using fitree::workloads::OpType;

int StressThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(2u, std::min(4u, hw == 0 ? 2u : hw)));
}

// ---- EpochManager ----

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : alive(&counter) {
    alive->fetch_add(1);
  }
  ~Tracked() { alive->fetch_sub(1); }
  std::atomic<int>* alive;
};

TEST(EpochManager, RetireFreesAfterQuiesce) {
  std::atomic<int> alive{0};
  EpochManager epoch;
  for (int i = 0; i < 100; ++i) epoch.Retire(new Tracked(alive));
  EXPECT_TRUE(epoch.DrainAll());
  EXPECT_EQ(epoch.PendingCount(), 0u);
  EXPECT_EQ(alive.load(), 0);
  EXPECT_EQ(epoch.retired_count(), 100u);
  EXPECT_EQ(epoch.freed_count(), 100u);
}

TEST(EpochManager, ActiveGuardBlocksReclamation) {
  std::atomic<int> alive{0};
  EpochManager epoch;
  {
    EpochGuard guard(epoch);
    epoch.Retire(new Tracked(alive));
    // The guard was active when the object was retired, so no number of
    // reclaim passes may free it.
    for (int i = 0; i < 10; ++i) epoch.TryReclaim();
    EXPECT_EQ(alive.load(), 1);
    EXPECT_EQ(epoch.PendingCount(), 1u);
  }
  EXPECT_TRUE(epoch.DrainAll());
  EXPECT_EQ(alive.load(), 0);
}

TEST(EpochManager, NoRetireListLeakAtShutdown) {
  std::atomic<int> alive{0};
  {
    EpochManager epoch;
    std::vector<std::thread> threads;
    for (int t = 0; t < StressThreads(); ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          EpochGuard guard(epoch);
          epoch.Retire(new Tracked(alive));
        }
      });
    }
    for (auto& th : threads) th.join();
    // Destructor drains whatever reclaim passes left pending.
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(EpochManager, GuardsFromManyThreads) {
  EpochManager epoch;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        EpochGuard guard(epoch);
        sum.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sum.load(), 8000);
  EXPECT_EQ(epoch.ActiveGuards(), 0u);
}

// ---- SegLatch ----

TEST(SegLatch, MutualExclusion) {
  SegLatch latch;
  int64_t counter = 0;  // plain int: races would corrupt it (and trip TSan)
  std::vector<std::thread> threads;
  constexpr int kPerThread = 20000;
  for (int t = 0; t < StressThreads(); ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        SegLatch::Scoped lock(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kPerThread) * StressThreads());
}

TEST(SegLatch, SequenceDetectsWriters) {
  SegLatch latch;
  const uint32_t before = latch.ReadSeq();
  EXPECT_TRUE(latch.Validate(before));
  latch.Lock();
  latch.Unlock();
  // A completed critical section must invalidate the earlier sequence.
  EXPECT_FALSE(latch.Validate(before));
  const uint32_t after = latch.ReadSeq();
  EXPECT_EQ(after, before + 2);
}

TEST(SegLatch, TryLock) {
  SegLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

// ---- MergeWorker ----

TEST(MergeWorker, ProcessesAllItemsBeforeStop) {
  MergeWorker worker;
  std::atomic<int> handled{0};
  worker.Start([&](void*) { handled.fetch_add(1); });
  for (int i = 0; i < 100; ++i) worker.Enqueue(nullptr);
  worker.Stop();
  EXPECT_EQ(handled.load(), 100);
  EXPECT_EQ(worker.processed(), 100u);
}

TEST(MergeWorker, WaitIdleDrains) {
  MergeWorker worker;
  std::atomic<int> handled{0};
  worker.Start([&](void*) { handled.fetch_add(1); });
  for (int i = 0; i < 50; ++i) worker.Enqueue(nullptr);
  worker.WaitIdle();
  EXPECT_EQ(handled.load(), 50);
  worker.Stop();
}

// ---- ConcurrentFitingTree: sequential correctness ----

TEST(ConcurrentFitingTree, SequentialMatchesOracle) {
  const auto keys = fitree::datasets::Iot(20000, 7);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  ConcurrentFitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 8;  // tiny: force frequent merge-and-resegment
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, config);
  EXPECT_EQ(tree->size(), keys.size());

  const auto inserts =
      fitree::workloads::MakeInserts<int64_t>(keys, 5000, 21);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 5000, Access::kUniform, 0.3, 22);
  for (size_t i = 0; i < inserts.size(); ++i) {
    tree->Insert(inserts[i]);
    oracle.insert(inserts[i]);
    const int64_t probe = probes[i % probes.size()];
    ASSERT_EQ(tree->Contains(probe), oracle.count(probe) > 0)
        << "after insert " << i;
    ASSERT_TRUE(tree->Contains(inserts[i]));
  }
  EXPECT_EQ(tree->size(), oracle.size());
  EXPECT_GT(tree->stats().segment_merges, 0u);

  // Full-range scan returns exactly the oracle, in order.
  std::vector<int64_t> scanned;
  tree->ScanRange(*oracle.begin(), *oracle.rbegin(),
                  [&](int64_t k) { scanned.push_back(k); });
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), oracle.begin(),
                         oracle.end()));
}

TEST(ConcurrentFitingTree, EmptyTreeBootstrap) {
  ConcurrentFitingTreeConfig config;
  config.error = 16.0;
  auto tree = ConcurrentFitingTree<int64_t>::Create({}, config);
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_FALSE(tree->Contains(42));
  for (int64_t k = 100; k > 0; k -= 3) tree->Insert(k);
  for (int64_t k = 100; k > 0; k -= 3) EXPECT_TRUE(tree->Contains(k));
  EXPECT_FALSE(tree->Contains(99));
  EXPECT_EQ(tree->size(), 34u);
}

// ---- ConcurrentFitingTree: multi-threaded stress ----

// Shared harness: `threads` workers replay deterministic per-thread streams
// (ThreadSeed-seeded) of inserts, lookups and scans. During the run every
// lookup of an initially loaded key must hit (bulk-loaded keys never
// disappear, merges included) and scans must come back sorted and
// duplicate-free. Afterwards the tree must agree exactly with a std::set
// reference built from the op log, and with a MutexFitingTree replaying
// the same streams.
void RunStress(bool background_merge) {
  const auto keys = fitree::datasets::Weblogs(30000, 13);
  ConcurrentFitingTreeConfig config;
  config.error = 64.0;
  config.buffer_size = 8;  // merge-heavy on purpose
  config.background_merge = background_merge;
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, config);

  fitree::FitingTreeConfig ref_config;
  ref_config.error = 64.0;
  ref_config.buffer_size = 8;
  auto mutex_tree = MutexFitingTree<int64_t>::Create(keys, ref_config);

  const int threads = StressThreads();
  const OpMix mix{.read = 0.5, .insert = 0.4, .scan = 0.1};
  const auto streams = fitree::workloads::MakeThreadOpStreams<int64_t>(
      keys, threads, 20000, mix, Access::kUniform, 0.0005, 99);

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const auto& ops = streams[static_cast<size_t>(t)];
      for (size_t i = 0; i < ops.size() && !failed.load(); ++i) {
        const Op<int64_t>& op = ops[i];
        switch (op.type) {
          case OpType::kRead:
            tree->Contains(op.key);
            mutex_tree->Contains(op.key);
            break;
          case OpType::kInsert:
            tree->Insert(op.key);
            mutex_tree->Insert(op.key);
            if (!tree->Contains(op.key)) failed.store(true);
            break;
          case OpType::kScan: {
            int64_t prev = op.key - 1;
            bool sorted = true;
            tree->ScanRange(op.key, op.hi, [&](int64_t k) {
              sorted = sorted && k > prev;
              prev = k;
            });
            if (!sorted) failed.store(true);
            break;
          }
        }
        // Bulk-loaded keys are never lost, merges notwithstanding.
        if (i % 256 == 0 && !tree->Contains(keys[(i * 7919) % keys.size()])) {
          failed.store(true);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_FALSE(failed.load());
  tree->QuiesceMerges();

  std::set<int64_t> ref(keys.begin(), keys.end());
  for (const auto& stream : streams) {
    for (const Op<int64_t>& op : stream) {
      if (op.type == OpType::kInsert) ref.insert(op.key);
    }
  }
  ASSERT_EQ(tree->size(), ref.size());
  ASSERT_EQ(mutex_tree->size(), ref.size());
  for (const auto& stream : streams) {
    for (const Op<int64_t>& op : stream) {
      if (op.type == OpType::kInsert) {
        ASSERT_TRUE(tree->Contains(op.key)) << op.key;
      }
    }
  }
  std::vector<int64_t> scanned;
  tree->ScanRange(*ref.begin(), *ref.rbegin(),
                  [&](int64_t k) { scanned.push_back(k); });
  ASSERT_TRUE(
      std::equal(scanned.begin(), scanned.end(), ref.begin(), ref.end()));

  // Epoch hygiene: after a quiesced drain the retire list is empty and
  // everything ever retired has been freed — no leak at shutdown.
  EXPECT_TRUE(tree->epoch().DrainAll());
  EXPECT_EQ(tree->epoch().PendingCount(), 0u);
  EXPECT_EQ(tree->epoch().retired_count(), tree->epoch().freed_count());
  EXPECT_GT(tree->stats().segment_merges, 0u);
}

TEST(ConcurrentFitingTree, StressInlineMerge) { RunStress(false); }

TEST(ConcurrentFitingTree, StressBackgroundMerge) { RunStress(true); }

TEST(ConcurrentFitingTree, ConcurrentInsertsIntoEmptyTree) {
  ConcurrentFitingTreeConfig config;
  config.error = 32.0;
  auto tree = ConcurrentFitingTree<int64_t>::Create({}, config);
  const int threads = StressThreads();
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Disjoint per-thread key ranges: every insert is unique.
        tree->Insert(static_cast<int64_t>(t) * 1000000 + i * 3);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree->size(),
            static_cast<size_t>(threads) * static_cast<size_t>(kPerThread));
  for (int t = 0; t < threads; ++t) {
    for (int i = 0; i < kPerThread; i += 97) {
      ASSERT_TRUE(
          tree->Contains(static_cast<int64_t>(t) * 1000000 + i * 3));
    }
  }
}

TEST(ConcurrentFitingTree, ConcurrentDuplicateInsertsKeepSetSemantics) {
  const auto keys = fitree::datasets::Step(5000, 100);
  ConcurrentFitingTreeConfig config;
  config.error = 32.0;
  config.buffer_size = 4;
  auto tree = ConcurrentFitingTree<int64_t>::Create(keys, config);
  // All threads insert the *same* stream of keys: the final size must count
  // each distinct key once no matter how buffers and merges interleave.
  // (On staircase data AbsentKey can fall back to existing keys, so the
  // expectation is the union, not keys + distinct inserts.)
  const auto inserts = fitree::workloads::MakeInserts<int64_t>(keys, 3000, 5);
  std::set<int64_t> expected(keys.begin(), keys.end());
  expected.insert(inserts.begin(), inserts.end());
  std::vector<std::thread> workers;
  for (int t = 0; t < StressThreads(); ++t) {
    workers.emplace_back([&] {
      for (const int64_t k : inserts) tree->Insert(k);
    });
  }
  for (auto& w : workers) w.join();
  tree->QuiesceMerges();
  EXPECT_EQ(tree->size(), expected.size());
}

}  // namespace
