// Multi-threaded YCSB-style benchmark for the concurrent FITing-Tree
// (concurrency/concurrent_fiting_tree.h).
//
// Sweep: workload mix (A 50r/50i, B 95r/5i, C 100r, E 95scan/5i) ×
// access skew (uniform, Zipfian theta=0.99) × thread count (powers of two
// up to FITREE_BENCH_MAX_THREADS). Each cell runs three structures:
//   concurrent — epoch-protected reads, per-segment insert latches
//   mutex      — the same FitingTree behind one std::mutex
//   single     — plain FitingTree, 1 thread only (the no-sync floor)
// The record's ns/op is aggregate wall time per operation (Mops/s rides
// along as a metric), with sampled p50/p99 op latency from the last rep.
// Each repetition rebuilds the tree and replays the identical per-thread
// op streams, and EVERY rep is validated against a std::set reference
// built from the same logs — size, sampled membership, and exact
// range-scan contents. Any mismatch aborts the bench.
//
// Env knobs (see EXPERIMENTS.md): FITREE_BENCH_SCALE scales sizes,
// FITREE_BENCH_MAX_THREADS caps the sweep (default 8),
// FITREE_BENCH_N / FITREE_BENCH_OPS absolute overrides,
// FITREE_BENCH_BG_MERGE=1 routes merges to the background worker.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "concurrency/concurrent_fiting_tree.h"
#include "concurrency/mutex_fiting_tree.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "telemetry/registry.h"
#include "workloads/workloads.h"

namespace fitree::bench {
namespace {

using workloads::Access;
using workloads::Op;
using workloads::OpMix;
using workloads::OpType;

using Key = int64_t;
using Streams = std::vector<std::vector<Op<Key>>>;

constexpr uint64_t kBaseSeed = 0xF17EE5EEDull;
constexpr double kScanSelectivity = 0.0001;
constexpr int kLatencySampleEvery = 16;

struct RunResult {
  double ns_per_op = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

// Drives `streams[t]` on thread t against `index`, timing the whole run for
// aggregate throughput and sampling every kLatencySampleEvery-th op for the
// latency percentiles.
template <typename Index>
RunResult DriveThreads(Index& index, const Streams& streams) {
  const int threads = static_cast<int>(streams.size());
  std::vector<std::vector<int64_t>> samples(streams.size());
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(streams.size());
  Timer wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<Op<Key>>& ops = streams[static_cast<size_t>(t)];
      std::vector<int64_t>& lat = samples[static_cast<size_t>(t)];
      lat.reserve(ops.size() / kLatencySampleEvery + 1);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t sink = 0;
      Timer op_timer;
      for (size_t i = 0; i < ops.size(); ++i) {
        const Op<Key>& op = ops[i];
        // Only sampled ops pay for clock reads; a timer on every op would
        // add a fixed ~20-30 ns to sub-200 ns operations.
        const bool sampled = i % kLatencySampleEvery == 0;
        if (sampled) op_timer.Reset();
        switch (op.type) {
          case OpType::kRead:
            sink += index.Contains(op.key) ? 1 : 0;
            break;
          case OpType::kInsert:
            index.Insert(op.key, op.value);
            break;
          case OpType::kUpdate:
            sink += index.Update(op.key, op.value) ? 1 : 0;
            break;
          case OpType::kDelete:
            sink += index.Delete(op.key) ? 1 : 0;
            break;
          case OpType::kScan: {
            uint64_t acc = 0;
            index.ScanRange(op.key, op.hi, [&](Key k) {
              acc += static_cast<uint64_t>(k);
            });
            sink += acc;
            break;
          }
        }
        if (sampled) lat.push_back(op_timer.ElapsedNs());
      }
      SinkValue(sink);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  wall.Reset();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double ns = static_cast<double>(wall.ElapsedNs());

  size_t total_ops = 0;
  for (const auto& s : streams) total_ops += s.size();
  std::vector<int64_t> merged;
  for (auto& s : samples) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  std::sort(merged.begin(), merged.end());
  RunResult r;
  r.ns_per_op = total_ops > 0 ? ns / static_cast<double>(total_ops) : 0.0;
  if (!merged.empty()) {
    r.p50_ns = static_cast<double>(merged[merged.size() / 2]);
    r.p99_ns = static_cast<double>(merged[merged.size() * 99 / 100]);
  }
  return r;
}

// Issued-op totals of a set of streams, bucketed by telemetry op id.
struct IssuedOps {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
};

IssuedOps CountIssuedOps(const Streams& streams) {
  IssuedOps issued;
  for (const auto& stream : streams) {
    for (const Op<Key>& op : stream) {
      switch (op.type) {
        case OpType::kRead: ++issued.lookups; break;
        case OpType::kInsert: ++issued.inserts; break;
        case OpType::kUpdate: ++issued.updates; break;
        case OpType::kDelete: ++issued.deletes; break;
        case OpType::kScan: ++issued.scans; break;
      }
    }
  }
  return issued;
}

// Point-in-time read of the concurrent engine's registry op counters.
IssuedOps ConcurrentOpCounts() {
  namespace tel = fitree::telemetry;
  auto& reg = tel::Registry::Get();
  const auto load = [&](tel::Op op) {
    return reg.op_count(tel::Engine::kConcurrent, op).Load();
  };
  IssuedOps c;
  c.lookups = load(tel::Op::kLookup);
  c.inserts = load(tel::Op::kInsert);
  c.updates = load(tel::Op::kUpdate);
  c.deletes = load(tel::Op::kDelete);
  c.scans = load(tel::Op::kScan);
  return c;
}

// Telemetry exactness check (acceptance criterion): after the drive
// quiesces — threads joined, background merges drained — the registry's
// per-op deltas for the concurrent engine must equal the driver's issued
// totals EXACTLY (op counters count calls, so rejected duplicate inserts
// still count). Runs before Validate(), whose extra Contains/ScanRange
// probes would land on the same counters. Any mismatch aborts the bench.
void ValidateTelemetryCounts(const IssuedOps& before, const IssuedOps& after,
                             const IssuedOps& issued) {
  if (!fitree::telemetry::kEnabled) return;
  const auto check = [](const char* op, uint64_t got, uint64_t want) {
    if (got != want) {
      Die(std::string("concurrent: telemetry ") + op + " count " +
          std::to_string(got) + " != issued " + std::to_string(want));
    }
  };
  check("lookup", after.lookups - before.lookups, issued.lookups);
  check("insert", after.inserts - before.inserts, issued.inserts);
  check("update", after.updates - before.updates, issued.updates);
  check("delete", after.deletes - before.deletes, issued.deletes);
  check("scan", after.scans - before.scans, issued.scans);
}

// Reference final state: base keys plus every insert in the op log (set
// semantics make the result schedule-independent).
std::set<Key> ReferenceSet(const std::vector<Key>& keys,
                           const Streams& streams) {
  std::set<Key> ref(keys.begin(), keys.end());
  for (const auto& stream : streams) {
    for (const Op<Key>& op : stream) {
      if (op.type == OpType::kInsert) ref.insert(op.key);
    }
  }
  return ref;
}

// Post-run validation of a quiesced index against the reference set.
template <typename Index>
void Validate(Index& index, const std::set<Key>& ref, const char* label) {
  if (index.size() != ref.size()) {
    Die(std::string("concurrent: ") + label + ": size " +
        std::to_string(index.size()) + " != reference " +
        std::to_string(ref.size()));
  }
  std::mt19937_64 rng(kBaseSeed ^ 0xABCD);
  std::vector<Key> ref_keys(ref.begin(), ref.end());
  for (int i = 0; i < 2000; ++i) {
    const Key probe = i % 2 == 0
                          ? ref_keys[rng() % ref_keys.size()]
                          : static_cast<Key>(rng() % (ref_keys.back() + 2));
    if (index.Contains(probe) != (ref.count(probe) > 0)) {
      Die(std::string("concurrent: ") + label +
          ": membership mismatch at key " + std::to_string(probe));
    }
  }
  for (int i = 0; i < 10; ++i) {
    const size_t start = rng() % ref_keys.size();
    const size_t end =
        std::min(ref_keys.size() - 1, start + ref_keys.size() / 100);
    std::vector<Key> got;
    index.ScanRange(ref_keys[start], ref_keys[end],
                    [&](Key k) { got.push_back(k); });
    const auto lo = ref.lower_bound(ref_keys[start]);
    const auto hi = ref.upper_bound(ref_keys[end]);
    if (!std::equal(got.begin(), got.end(), lo, hi)) {
      Die(std::string("concurrent: ") + label +
          ": range scan mismatch at query " + std::to_string(i));
    }
  }
}

void RunConcurrent(Runner& runner) {
  // FITREE_BENCH_N / FITREE_BENCH_OPS override the scaled defaults — the
  // TSan CI smoke uses them to stay inside sanitizer time budgets.
  const size_t n = static_cast<size_t>(GetEnvInt64(
      "FITREE_BENCH_N", static_cast<int64_t>(ScaledN(400'000))));
  const size_t ops_per_thread = static_cast<size_t>(GetEnvInt64(
      "FITREE_BENCH_OPS", static_cast<int64_t>(ScaledN(120'000))));
  const int max_threads =
      std::max(1, GetEnvInt("FITREE_BENCH_MAX_THREADS", 8));
  const bool bg_merge = GetEnvInt("FITREE_BENCH_BG_MERGE", 0) != 0;
  const double error = 128.0;

  const auto keys = MemoKeys("real/Weblogs/" + std::to_string(n) + "/11",
                             [&] { return datasets::Weblogs(n, 11); });
  std::printf(
      "concurrent: %zu keys, %zu ops/thread, error=%.0f, max_threads=%d, "
      "bg_merge=%d, hw_threads=%u\n",
      keys->size(), ops_per_thread, error, max_threads,
      static_cast<int>(bg_merge), std::thread::hardware_concurrency());

  const struct {
    const char* name;
    OpMix mix;
  } mixes[] = {
      {"A(50r/50i)", {.read = 0.5, .insert = 0.5, .scan = 0.0}},
      {"B(95r/5i)", {.read = 0.95, .insert = 0.05, .scan = 0.0}},
      {"C(100r)", {.read = 1.0, .insert = 0.0, .scan = 0.0}},
      {"E(95s/5i)", {.read = 0.0, .insert = 0.05, .scan = 0.95}},
  };
  const Access accesses[] = {Access::kUniform, Access::kZipfian};

  for (const auto& mix : mixes) {
    for (const Access access : accesses) {
      for (int threads = 1; threads <= max_threads; threads *= 2) {
        const auto streams = workloads::MakeThreadOpStreams<Key>(
            *keys, threads, ops_per_thread, mix.mix, access, kScanSelectivity,
            kBaseSeed);
        const std::set<Key> ref = ReferenceSet(*keys, streams);
        const char* access_name =
            access == Access::kUniform ? "uniform" : "zipfian";

        const auto report = [&](const char* structure, const Stats& stats,
                                const RunResult& last, double segments,
                                double merges) {
          runner.Report({{"mix", mix.name},
                         {"access", access_name},
                         {"threads", std::to_string(threads)},
                         {"structure", structure}},
                        stats,
                        {{"Mops", MopsFromNsPerOp(stats.p50)},
                         {"p50_ns", last.p50_ns},
                         {"p99_ns", last.p99_ns},
                         {"segments", segments},
                         {"merges", merges}});
        };

        {
          RunResult last;
          double segments = 0.0, merges = 0.0;
          IssuedOps telem_delta;
          const IssuedOps issued = CountIssuedOps(streams);
          const Stats stats = runner.CollectReps([&] {
            ConcurrentFitingTreeConfig config;
            config.error = error;
            config.background_merge = bg_merge;
            auto tree = ConcurrentFitingTree<Key>::Create(*keys, config);
            const IssuedOps telem_before = ConcurrentOpCounts();
            last = DriveThreads(*tree, streams);
            tree->QuiesceMerges();
            const IssuedOps telem_after = ConcurrentOpCounts();
            ValidateTelemetryCounts(telem_before, telem_after, issued);
            telem_delta = {telem_after.lookups - telem_before.lookups,
                           telem_after.inserts - telem_before.inserts,
                           telem_after.updates - telem_before.updates,
                           telem_after.deletes - telem_before.deletes,
                           telem_after.scans - telem_before.scans};
            Validate(*tree, ref, "concurrent");
            segments = static_cast<double>(tree->SegmentCount());
            merges = static_cast<double>(tree->stats().segment_merges);
            return last.ns_per_op;
          }, /*warmup=*/false);
          runner.Report(
              {{"mix", mix.name},
               {"access", access_name},
               {"threads", std::to_string(threads)},
               {"structure", "concurrent"}},
              stats,
              {{"Mops", MopsFromNsPerOp(stats.p50)},
               {"p50_ns", last.p50_ns},
               {"p99_ns", last.p99_ns},
               {"segments", segments},
               {"merges", merges},
               // Registry-observed op counts for the last rep (validated
               // above to equal the issued totals exactly).
               {"telem_lookups", static_cast<double>(telem_delta.lookups)},
               {"telem_inserts", static_cast<double>(telem_delta.inserts)},
               {"telem_scans", static_cast<double>(telem_delta.scans)}});
        }

        {
          RunResult last;
          double segments = 0.0;
          const Stats stats = runner.CollectReps([&] {
            FitingTreeConfig config;
            config.error = error;
            auto tree = MutexFitingTree<Key>::Create(*keys, config);
            last = DriveThreads(*tree, streams);
            Validate(*tree, ref, "mutex");
            segments = static_cast<double>(tree->SegmentCount());
            return last.ns_per_op;
          }, /*warmup=*/false);
          report("mutex", stats, last, segments, 0.0);
        }

        if (threads == 1) {
          RunResult last;
          double segments = 0.0;
          const Stats stats = runner.CollectReps([&] {
            FitingTreeConfig config;
            config.error = error;
            auto tree = FitingTree<Key>::Create(*keys, config);
            last = DriveThreads(*tree, streams);
            Validate(*tree, ref, "single");
            segments = static_cast<double>(tree->SegmentCount());
            return last.ns_per_op;
          }, /*warmup=*/false);
          report("single", stats, last, segments, 0.0);
        }
      }
    }
  }
}

FITREE_REGISTER_EXPERIMENT(
    "concurrent",
    "YCSB A/B/C/E sweep: concurrent vs mutex vs single (validated)",
    RunConcurrent);

}  // namespace
}  // namespace fitree::bench
