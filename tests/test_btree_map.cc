#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "btree/btree_map.h"

namespace {

using fitree::btree::BTreeMap;

TEST(BTreeMap, InsertFindAgainstStdMap) {
  BTreeMap<int64_t, int64_t, 8, 8> tree;  // small nodes force deep splits
  std::map<int64_t, int64_t> oracle;
  std::mt19937_64 rng(1);
  for (int i = 0; i < 20000; ++i) {
    const int64_t key = static_cast<int64_t>(rng() % 50000);
    tree.Insert(key, key * 3);
    oracle[key] = key * 3;
  }
  EXPECT_EQ(tree.size(), oracle.size());
  for (int64_t key = 0; key < 50000; key += 17) {
    const int64_t* found = tree.Find(key);
    const auto it = oracle.find(key);
    ASSERT_EQ(found != nullptr, it != oracle.end()) << "key " << key;
    if (found != nullptr) {
      EXPECT_EQ(*found, it->second);
    }
  }
}

TEST(BTreeMap, UpsertOverwrites) {
  BTreeMap<int64_t, int64_t> tree;
  EXPECT_TRUE(tree.Insert(5, 1));
  EXPECT_FALSE(tree.Insert(5, 2));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(5), 2);
}

TEST(BTreeMap, BulkLoadMatchesInserts) {
  std::vector<std::pair<int64_t, int64_t>> items;
  for (int64_t i = 0; i < 10000; ++i) items.emplace_back(i * 7, i);
  BTreeMap<int64_t, int64_t, 16, 16> tree;
  tree.BulkLoad(std::vector<std::pair<int64_t, int64_t>>(items));
  EXPECT_EQ(tree.size(), items.size());
  EXPECT_GE(tree.Height(), 3);
  for (const auto& [key, value] : items) {
    const int64_t* found = tree.Find(key);
    ASSERT_NE(found, nullptr) << "key " << key;
    EXPECT_EQ(*found, value);
    EXPECT_EQ(tree.Find(key + 1), nullptr);
  }
}

TEST(BTreeMap, FindFloor) {
  BTreeMap<int64_t, int64_t, 8, 8> tree;
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(i * 10, i);
  int64_t key = 0;
  const int64_t* floor = tree.FindFloor(345, &key);
  ASSERT_NE(floor, nullptr);
  EXPECT_EQ(key, 340);
  EXPECT_EQ(*floor, 34);
  floor = tree.FindFloor(340, &key);
  ASSERT_NE(floor, nullptr);
  EXPECT_EQ(key, 340);
  EXPECT_EQ(tree.FindFloor(-1), nullptr);
  floor = tree.FindFloor(1 << 30, &key);
  ASSERT_NE(floor, nullptr);
  EXPECT_EQ(key, 9990);
}

TEST(BTreeMap, EraseIsLazyButCorrect) {
  BTreeMap<int64_t, int64_t, 8, 8> tree;
  std::map<int64_t, int64_t> oracle;
  std::mt19937_64 rng(2);
  for (int i = 0; i < 5000; ++i) {
    const int64_t key = static_cast<int64_t>(rng() % 8000);
    tree.Insert(key, key);
    oracle[key] = key;
  }
  for (int i = 0; i < 4000; ++i) {
    const int64_t key = static_cast<int64_t>(rng() % 8000);
    EXPECT_EQ(tree.Erase(key), oracle.erase(key) > 0) << "key " << key;
  }
  EXPECT_EQ(tree.size(), oracle.size());
  for (int64_t key = 0; key < 8000; ++key) {
    EXPECT_EQ(tree.Find(key) != nullptr, oracle.count(key) > 0)
        << "key " << key;
  }
  // Floor queries still work across lazily emptied leaves.
  for (int64_t probe = 0; probe < 8000; probe += 97) {
    int64_t got_key = -1;
    const int64_t* got = tree.FindFloor(probe, &got_key);
    const auto it = oracle.upper_bound(probe);
    if (it == oracle.begin()) {
      EXPECT_EQ(got, nullptr) << "probe " << probe;
    } else {
      ASSERT_NE(got, nullptr) << "probe " << probe;
      EXPECT_EQ(got_key, std::prev(it)->first);
    }
  }
}

TEST(BTreeMap, ScanFromInOrder) {
  BTreeMap<int64_t, int64_t, 8, 8> tree;
  for (int64_t i = 0; i < 500; ++i) tree.Insert(i * 2, i);
  std::vector<int64_t> seen;
  tree.ScanFrom(101, [&](int64_t key, int64_t) {
    if (key > 200) return false;
    seen.push_back(key);
    return true;
  });
  std::vector<int64_t> expected;
  for (int64_t key = 102; key <= 200; key += 2) expected.push_back(key);
  EXPECT_EQ(seen, expected);
}

TEST(BTreeMap, FirstAndEmpty) {
  BTreeMap<int64_t, int64_t> tree;
  EXPECT_EQ(tree.First(), nullptr);
  EXPECT_EQ(tree.FindFloor(0), nullptr);
  EXPECT_EQ(tree.Height(), 0);
  tree.Insert(42, 1);
  int64_t key = 0;
  ASSERT_NE(tree.First(&key), nullptr);
  EXPECT_EQ(key, 42);
}

}  // namespace
