// In-window search strategies for the final error-bounded search step
// (paper Sec 4.1.2: once a segment predicts a position, the key is located
// with a bounded search around it; binary, linear, exponential and SIMD
// variants are compared in ablation_search / micro_search_policy).
//
// Hint semantics: every policy receives `hint`, the model's predicted rank
// clamped into the window by the callee. kBinary ignores it (whole-window
// std::lower_bound); kLinear and kExponential anchor at it — kLinear scans
// outward from the prediction (forward while keys are smaller, else
// backward), kExponential gallops outward doubling the step. Both touch
// O(actual error) keys instead of O(max error), which is the point of
// hint-anchored search.
//
// kSimd is the branchless fast path: the window is first narrowed with a
// conditional-move binary search (no mispredicted branches), then the
// remaining <=128-key run is resolved by counting keys below the probe with
// vector compares — AVX2 on x86-64 (picked at runtime via
// __builtin_cpu_supports, so a baseline -march build still ships the fast
// kernel), NEON on aarch64, and a portable scalar count everywhere else
// (including -DFITREE_NO_SIMD / the FITREE_PORTABLE CMake option, which CI
// builds to keep the fallback compiled and tested).

#ifndef FITREE_CORE_SEARCH_POLICY_H_
#define FITREE_CORE_SEARCH_POLICY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>

#include "common/env.h"
#include "common/prefetch.h"

#if !defined(FITREE_NO_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FITREE_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(FITREE_NO_SIMD) && defined(__aarch64__) && defined(__ARM_NEON)
#define FITREE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fitree {

enum class SearchPolicy {
  kBinary,       // std::lower_bound over the whole window
  kLinear,       // scan outward from the predicted position (hint)
  kExponential,  // gallop outward from the predicted position, then binary
  kSimd,         // gallop from hint, then vector compare-and-popcount
};

inline const char* SearchPolicyName(SearchPolicy policy) {
  switch (policy) {
    case SearchPolicy::kBinary: return "binary";
    case SearchPolicy::kLinear: return "linear";
    case SearchPolicy::kExponential: return "exponential";
    case SearchPolicy::kSimd: return "simd";
  }
  return "?";
}

inline std::optional<SearchPolicy> ParseSearchPolicy(const std::string& name) {
  if (name == "binary") return SearchPolicy::kBinary;
  if (name == "linear") return SearchPolicy::kLinear;
  if (name == "exponential") return SearchPolicy::kExponential;
  if (name == "simd") return SearchPolicy::kSimd;
  return std::nullopt;
}

// The process-wide default (FITREE_SEARCH_POLICY) lives in
// common/options.h: DefaultSearchPolicy() is a view over GlobalOptions().

namespace simd {

// Keys the vector kernels eat per invocation at most: kSimd narrows the
// window down to this many keys branchlessly before counting lanes.
inline constexpr size_t kSimdWindowKeys = 128;

// Order-preserving bias into signed lane space: unsigned keys get their
// sign bit flipped so the signed vector compares sort them correctly.
template <typename K>
constexpr uint64_t Bias64() {
  return std::is_signed_v<K> ? 0ull : (1ull << 63);
}
template <typename K>
constexpr uint32_t Bias32() {
  return std::is_signed_v<K> ? 0u : (1u << 31);
}

#if defined(FITREE_SIMD_AVX2)

inline bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2") != 0;
  return have;
}

// Count of 64-bit keys `< key` among the n keys starting at `data` (8-byte
// stride). Counting is order-independent, so no early exit: one compare +
// movemask + popcount per 4 lanes, tail handled scalar (never reads past
// data + 8n — masked-lane over-reads would trip the ASan differential CI).
__attribute__((target("avx2"))) inline size_t CountLess64Avx2(
    const void* data, size_t n, uint64_t key, uint64_t bias) {
  const auto* p = static_cast<const unsigned char*>(data);
  const __m256i bv = _mm256_set1_epi64x(static_cast<long long>(bias));
  const __m256i kv =
      _mm256_set1_epi64x(static_cast<long long>(key ^ bias));
  size_t i = 0;
  size_t count = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 8));
    v = _mm256_xor_si256(v, bv);
    const __m256i lt = _mm256_cmpgt_epi64(kv, v);
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(lt)))));
  }
  for (; i < n; ++i) {
    uint64_t x;
    std::memcpy(&x, p + i * 8, 8);
    count += static_cast<int64_t>(x ^ bias) <
                     static_cast<int64_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

__attribute__((target("avx2"))) inline size_t CountGreater64Avx2(
    const void* data, size_t n, uint64_t key, uint64_t bias) {
  const auto* p = static_cast<const unsigned char*>(data);
  const __m256i bv = _mm256_set1_epi64x(static_cast<long long>(bias));
  const __m256i kv =
      _mm256_set1_epi64x(static_cast<long long>(key ^ bias));
  size_t i = 0;
  size_t count = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 8));
    v = _mm256_xor_si256(v, bv);
    const __m256i gt = _mm256_cmpgt_epi64(v, kv);
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(gt)))));
  }
  for (; i < n; ++i) {
    uint64_t x;
    std::memcpy(&x, p + i * 8, 8);
    count += static_cast<int64_t>(x ^ bias) >
                     static_cast<int64_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

// 64-bit keys interleaved with a 64-bit payload (the storage layer's
// 16-byte LeafEntry records): two loads cover 4 records, unpacklo gathers
// the 4 keys (lane order scrambled per 128-bit half, which counting does
// not care about).
__attribute__((target("avx2"))) inline size_t CountLessPairs64Avx2(
    const void* data, size_t n, uint64_t key, uint64_t bias) {
  const auto* p = static_cast<const unsigned char*>(data);
  const __m256i bv = _mm256_set1_epi64x(static_cast<long long>(bias));
  const __m256i kv =
      _mm256_set1_epi64x(static_cast<long long>(key ^ bias));
  size_t i = 0;
  size_t count = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 16));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 16 + 32));
    __m256i keys = _mm256_castpd_si256(_mm256_unpacklo_pd(
        _mm256_castsi256_pd(a), _mm256_castsi256_pd(b)));
    keys = _mm256_xor_si256(keys, bv);
    const __m256i lt = _mm256_cmpgt_epi64(kv, keys);
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(lt)))));
  }
  for (; i < n; ++i) {
    uint64_t x;
    std::memcpy(&x, p + i * 16, 8);
    count += static_cast<int64_t>(x ^ bias) <
                     static_cast<int64_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

__attribute__((target("avx2"))) inline size_t CountLess32Avx2(
    const void* data, size_t n, uint32_t key, uint32_t bias) {
  const auto* p = static_cast<const unsigned char*>(data);
  const __m256i bv = _mm256_set1_epi32(static_cast<int>(bias));
  const __m256i kv = _mm256_set1_epi32(static_cast<int>(key ^ bias));
  size_t i = 0;
  size_t count = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 4));
    v = _mm256_xor_si256(v, bv);
    const __m256i lt = _mm256_cmpgt_epi32(kv, v);
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(lt)))));
  }
  for (; i < n; ++i) {
    uint32_t x;
    std::memcpy(&x, p + i * 4, 4);
    count += static_cast<int32_t>(x ^ bias) <
                     static_cast<int32_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

__attribute__((target("avx2"))) inline size_t CountGreater32Avx2(
    const void* data, size_t n, uint32_t key, uint32_t bias) {
  const auto* p = static_cast<const unsigned char*>(data);
  const __m256i bv = _mm256_set1_epi32(static_cast<int>(bias));
  const __m256i kv = _mm256_set1_epi32(static_cast<int>(key ^ bias));
  size_t i = 0;
  size_t count = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 4));
    v = _mm256_xor_si256(v, bv);
    const __m256i gt = _mm256_cmpgt_epi32(v, kv);
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(gt)))));
  }
  for (; i < n; ++i) {
    uint32_t x;
    std::memcpy(&x, p + i * 4, 4);
    count += static_cast<int32_t>(x ^ bias) >
                     static_cast<int32_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

#elif defined(FITREE_SIMD_NEON)

// aarch64 baseline always has NEON: no runtime dispatch needed.
inline size_t CountLess64Neon(const void* data, size_t n, uint64_t key,
                              uint64_t bias) {
  const auto* p = static_cast<const unsigned char*>(data);
  const int64x2_t kv = vdupq_n_s64(static_cast<int64_t>(key ^ bias));
  const int64x2_t bv = vdupq_n_s64(static_cast<int64_t>(bias));
  int64x2_t acc = vdupq_n_s64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    int64x2_t v = vreinterpretq_s64_u8(vld1q_u8(p + i * 8));
    v = veorq_s64(v, bv);
    // The compare mask is all-ones (-1) per matching lane; subtracting it
    // accumulates the count branchlessly.
    acc = vsubq_s64(acc, vreinterpretq_s64_u64(vcltq_s64(v, kv)));
  }
  size_t count =
      static_cast<size_t>(vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1));
  for (; i < n; ++i) {
    uint64_t x;
    std::memcpy(&x, p + i * 8, 8);
    count += static_cast<int64_t>(x ^ bias) <
                     static_cast<int64_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

inline size_t CountGreater64Neon(const void* data, size_t n, uint64_t key,
                                 uint64_t bias) {
  const auto* p = static_cast<const unsigned char*>(data);
  const int64x2_t kv = vdupq_n_s64(static_cast<int64_t>(key ^ bias));
  const int64x2_t bv = vdupq_n_s64(static_cast<int64_t>(bias));
  int64x2_t acc = vdupq_n_s64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    int64x2_t v = vreinterpretq_s64_u8(vld1q_u8(p + i * 8));
    v = veorq_s64(v, bv);
    acc = vsubq_s64(acc, vreinterpretq_s64_u64(vcgtq_s64(v, kv)));
  }
  size_t count =
      static_cast<size_t>(vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1));
  for (; i < n; ++i) {
    uint64_t x;
    std::memcpy(&x, p + i * 8, 8);
    count += static_cast<int64_t>(x ^ bias) >
                     static_cast<int64_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

// {64-bit key, 64-bit payload} records: vld2q deinterleaves the stride.
inline size_t CountLessPairs64Neon(const void* data, size_t n, uint64_t key,
                                   uint64_t bias) {
  const auto* p = static_cast<const uint64_t*>(data);
  const int64x2_t kv = vdupq_n_s64(static_cast<int64_t>(key ^ bias));
  const int64x2_t bv = vdupq_n_s64(static_cast<int64_t>(bias));
  int64x2_t acc = vdupq_n_s64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2x2_t rec = vld2q_u64(p + i * 2);
    int64x2_t v = veorq_s64(vreinterpretq_s64_u64(rec.val[0]), bv);
    acc = vsubq_s64(acc, vreinterpretq_s64_u64(vcltq_s64(v, kv)));
  }
  size_t count =
      static_cast<size_t>(vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1));
  for (; i < n; ++i) {
    uint64_t x;
    std::memcpy(&x, p + i * 2, 8);
    count += static_cast<int64_t>(x ^ bias) <
                     static_cast<int64_t>(key ^ bias)
                 ? 1
                 : 0;
  }
  return count;
}

#endif  // FITREE_SIMD_AVX2 / FITREE_SIMD_NEON

// The instruction set the vector kernels actually run with on this machine
// (captured in bench metadata so ablation numbers are attributable).
inline const char* IsaName() {
#if defined(FITREE_SIMD_AVX2)
  return HaveAvx2() ? "avx2" : "scalar";
#elif defined(FITREE_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// Count of keys `< key` over sorted data[0, n). For a sorted run this IS
// the lower-bound offset. Dispatches to the widest kernel the build and the
// CPU support; the scalar loop compiles to a branchless compare-accumulate
// (and auto-vectorizes where the baseline ISA allows).
template <typename K>
inline size_t CountLess(const K* data, size_t n, const K& key) {
  if constexpr (std::is_integral_v<K> && sizeof(K) == 8) {
#if defined(FITREE_SIMD_AVX2)
    if (HaveAvx2()) {
      return CountLess64Avx2(data, n, static_cast<uint64_t>(key), Bias64<K>());
    }
#elif defined(FITREE_SIMD_NEON)
    return CountLess64Neon(data, n, static_cast<uint64_t>(key), Bias64<K>());
#endif
  } else if constexpr (std::is_integral_v<K> && sizeof(K) == 4) {
#if defined(FITREE_SIMD_AVX2)
    if (HaveAvx2()) {
      return CountLess32Avx2(data, n, static_cast<uint32_t>(key), Bias32<K>());
    }
#endif
  }
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += data[i] < key ? 1 : 0;
  return count;
}

// Count of keys `<= key` over sorted data[0, n) — the upper-bound offset —
// computed as n minus the strictly-greater count so the kernels stay two.
template <typename K>
inline size_t CountLessEq(const K* data, size_t n, const K& key) {
  if constexpr (std::is_integral_v<K> && sizeof(K) == 8) {
#if defined(FITREE_SIMD_AVX2)
    if (HaveAvx2()) {
      return n - CountGreater64Avx2(data, n, static_cast<uint64_t>(key),
                                    Bias64<K>());
    }
#elif defined(FITREE_SIMD_NEON)
    return n - CountGreater64Neon(data, n, static_cast<uint64_t>(key),
                                  Bias64<K>());
#endif
  } else if constexpr (std::is_integral_v<K> && sizeof(K) == 4) {
#if defined(FITREE_SIMD_AVX2)
    if (HaveAvx2()) {
      return n - CountGreater32Avx2(data, n, static_cast<uint32_t>(key),
                                    Bias32<K>());
    }
#endif
  }
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += key < data[i] ? 0 : 1;
  return count;
}

// Count of keys `< key` over n sorted keys laid out at `stride_bytes`
// intervals starting at `base` (the storage layer's interleaved
// {key, payload} leaf records). The vector path covers the 16-byte-record /
// 8-byte-key case the disk tree serializes; anything else runs the strided
// scalar loop.
template <typename K>
inline size_t CountLessStrided(const void* base, size_t stride_bytes, size_t n,
                               const K& key) {
  if constexpr (std::is_integral_v<K> && sizeof(K) == 8) {
    if (stride_bytes == 16) {
#if defined(FITREE_SIMD_AVX2)
      if (HaveAvx2()) {
        return CountLessPairs64Avx2(base, n, static_cast<uint64_t>(key),
                                    Bias64<K>());
      }
#elif defined(FITREE_SIMD_NEON)
      return CountLessPairs64Neon(base, n, static_cast<uint64_t>(key),
                                  Bias64<K>());
#endif
    }
  }
  const auto* p = static_cast<const unsigned char*>(base);
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    K x;
    std::memcpy(&x, p + i * stride_bytes, sizeof(K));
    count += x < key ? 1 : 0;
  }
  return count;
}

}  // namespace simd

namespace detail {

// Conditional-move binary narrowing: shrinks [lo, lo + n) to at most
// `limit` keys while keeping the lower-bound answer inside, without a
// single data-dependent branch (the ternary compiles to cmov/csel).
template <typename K>
inline void BranchlessNarrow(const K* data, const K& key, size_t limit,
                             size_t* lo, size_t* n) {
  while (*n > limit) {
    const size_t half = *n / 2;
    const size_t rest = *n - half;
    if (rest > limit) {
      // Both candidate probes of the *next* iteration are known before
      // this iteration's load resolves. Prefetching them overlaps the
      // otherwise serially-dependent misses: cmov defeats the branch
      // speculation that lets plain binary search run its loads ahead,
      // and this buys that overlap back on out-of-cache windows.
      PrefetchRead(data + *lo + rest / 2 - 1);
      PrefetchRead(data + *lo + half + rest / 2 - 1);
    }
    *lo = data[*lo + half - 1] < key ? *lo + half : *lo;
    *n -= half;
  }
}

// Gallops outward from h (where data[h] is valid and begin <= h < end)
// doubling the step, and returns [*lo, *hi) such that the lower bound of
// `key` over data[*lo, *hi) equals the lower bound over data[begin, end).
// The bracket width tracks the model's *actual* error (~2x the distance
// from h to the answer), not the window's worst case.
template <typename K>
inline void GallopBracket(const K* data, size_t begin, size_t end, size_t h,
                          const K& key, size_t* lo, size_t* hi) {
  if (data[h] < key) {
    // Answer in (h, end]; gallop right.
    size_t step = 1;
    *lo = h;
    *hi = h + step;
    while (*hi < end && data[*hi] < key) {
      *lo = *hi;
      step <<= 1;
      *hi = h + step;
    }
    if (*hi > end) *hi = end;
  } else {
    // Answer in [begin, h]; gallop left.
    size_t step = 1;
    *hi = h;
    *lo = h >= begin + step ? h - step : begin;
    while (*lo > begin && data[*lo] >= key) {
      *hi = *lo;
      step <<= 1;
      *lo = h >= begin + step ? h - step : begin;
    }
  }
}

// Lower-bound (first index whose key is >= `key`) over sorted
// data[begin, end), given that the answer is guaranteed to lie in
// [begin, end] and that `hint` (the model's predicted rank) approximates
// it. See the header comment for each policy's use of the hint.
template <typename K>
size_t BoundedLowerBound(const K* data, size_t begin, size_t end, size_t hint,
                         const K& key, SearchPolicy policy) {
  if (begin >= end) return begin;
  switch (policy) {
    case SearchPolicy::kBinary:
      return static_cast<size_t>(
          std::lower_bound(data + begin, data + end, key) - data);
    case SearchPolicy::kLinear: {
      // Scan outward from the prediction, not the window edge: the answer
      // is within the model error of `hint`, usually much closer than the
      // window's begin (whose distance is the *maximum* error).
      size_t i = std::clamp(hint, begin, end - 1);
      if (data[i] < key) {
        do {
          ++i;
        } while (i < end && data[i] < key);
        return i;
      }
      while (i > begin && data[i - 1] >= key) --i;
      return i;
    }
    case SearchPolicy::kExponential: {
      const size_t h = std::clamp(hint, begin, end - 1);
      size_t lo, hi;
      GallopBracket(data, begin, end, h, key, &lo, &hi);
      return static_cast<size_t>(
          std::lower_bound(data + lo, data + hi, key) - data);
    }
    case SearchPolicy::kSimd: {
      // Same hint-anchored gallop as kExponential, but the remnant is
      // resolved by cmov narrowing plus a vector compare-and-popcount
      // count instead of branchy bisection.
      const size_t h = std::clamp(hint, begin, end - 1);
      size_t lo, hi;
      GallopBracket(data, begin, end, h, key, &lo, &hi);
      size_t n = hi - lo;
      BranchlessNarrow(data, key, simd::kSimdWindowKeys, &lo, &n);
      return lo + simd::CountLess(data + lo, n, key);
    }
  }
  return begin;  // unreachable
}

}  // namespace detail
}  // namespace fitree

#endif  // FITREE_CORE_SEARCH_POLICY_H_
