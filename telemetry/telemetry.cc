// Single-definition home for the telemetry cold paths: the cached
// sample-period knob and the trace-ring global state (following the
// common/sink.cc precedent for out-of-line definitions in this
// header-only library). The Registry singleton itself is a constinit
// inline global in registry.h so hot-path instrumentation inlines fully.

#include "telemetry/registry.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/options.h"
#include "telemetry/trace.h"

namespace fitree::telemetry {

#ifndef FITREE_NO_TELEMETRY

namespace {

std::atomic<uint64_t> g_sample_period{0};  // 0 == not yet initialised

}  // namespace

uint64_t SamplePeriod() {
  uint64_t p = g_sample_period.load(std::memory_order_relaxed);
  if (p == 0) {
    p = GlobalOptions().telemetry_sample;  // FITREE_TELEM_SAMPLE, >= 1
    g_sample_period.store(p, std::memory_order_relaxed);
  }
  return p;
}

void SetSamplePeriodForTest(uint64_t period) {
  g_sample_period.store(std::max<uint64_t>(period, 1),
                        std::memory_order_relaxed);
}

namespace detail {

// Out-of-line on purpose: this runs once per sampled span (1-in-N ops per
// phase), so the call costs nothing at op granularity and keeps the
// ScopedPhase destructor small enough to inline.
void RecordPhaseSample(Engine engine, Phase phase, Op op, uint64_t self_ns) {
  Registry& reg = Registry::Get();
  reg.phase_count(engine, phase).Add(1);
  reg.phase_latency(engine, phase).Record(self_ns);
  trace::EmitPhase(engine, op, phase, self_ns);
}

}  // namespace detail

namespace trace {
namespace {

// All trace state hangs off one leaked struct so thread-exit during static
// destruction can't touch a destroyed mutex.
struct TraceState {
  std::mutex mu;
  bool enabled = false;
  size_t ring_capacity = 4096;
  uint32_t next_tid = 0;
  // Rings are owned here (not by the threads) so records survive thread
  // exit and CollectTrace can walk them all.
  std::vector<std::unique_ptr<TraceRing>> rings;
  std::atomic<uint64_t> config_epoch{1};
};

TraceState& State() {
  static TraceState* state = [] {
    auto* s = new TraceState();
    s->enabled = GlobalOptions().trace;            // FITREE_TRACE
    s->ring_capacity = GlobalOptions().trace_ring;  // FITREE_TRACE_RING
    return s;
  }();
  return *state;
}

// Cached fast-path view of "is tracing on". Reloaded per-thread when the
// config epoch moves (ConfigOverride).
struct ThreadTraceView {
  uint64_t epoch = 0;
  bool enabled = false;
  TraceRing* ring = nullptr;
};

TraceRing* RegisterRing() {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.rings.push_back(
      std::make_unique<TraceRing>(s.ring_capacity, s.next_tid++));
  return s.rings.back().get();
}

ThreadTraceView& View() {
  thread_local ThreadTraceView view;
  TraceState& s = State();
  const uint64_t epoch = s.config_epoch.load(std::memory_order_acquire);
  if (view.epoch != epoch) {
    view.epoch = epoch;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      view.enabled = s.enabled;
    }
    view.ring = nullptr;  // re-register against the current ring list
  }
  return view;
}

}  // namespace

bool Enabled() { return View().enabled; }

void Emit(Engine engine, Op op, uint64_t arg) {
  ThreadTraceView& view = View();
  if (!view.enabled) return;
  if (view.ring == nullptr) view.ring = RegisterRing();
  view.ring->Emit(engine, op, NowNs(), arg);
}

void EmitPhase(Engine engine, Op op, Phase phase, uint64_t arg) {
  ThreadTraceView& view = View();
  if (!view.enabled) return;
  if (view.ring == nullptr) view.ring = RegisterRing();
  view.ring->Emit(engine, op, NowNs(), arg,
                  static_cast<uint16_t>(phase) + 1);
}

TraceDump Collect() {
  TraceState& s = State();
  TraceDump dump;
  std::vector<TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    dump.enabled = s.enabled;
    for (auto& r : s.rings) rings.push_back(r.get());
  }
  dump.threads = rings.size();
  for (TraceRing* ring : rings) {
    dump.emitted += ring->emitted();
    dump.dropped += ring->dropped();
    auto records = ring->Collect();
    dump.records.insert(dump.records.end(), records.begin(), records.end());
  }
  std::sort(dump.records.begin(), dump.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.t_ns < b.t_ns;
            });
  return dump;
}

void ConfigOverride(bool enabled, size_t ring_capacity) {
  TraceState& s = State();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.enabled = enabled;
    s.ring_capacity = ring_capacity == 0 ? 1 : ring_capacity;
    s.rings.clear();
    s.next_tid = 0;
  }
  // Bump after the list is swapped so threads re-resolve their ring.
  s.config_epoch.fetch_add(1, std::memory_order_release);
}

}  // namespace trace

#endif  // !FITREE_NO_TELEMETRY

}  // namespace fitree::telemetry
