// Figure 8: the non-linearity ratio of each dataset across error scales.
//
// ratio(e) = S_e * (e + 1) / |D|, i.e. the observed segment count relative
// to the worst case at that scale (Theorem 3.1). The ratio itself is
// analytic; the timed body is the segmentation pass that produces it, so
// the record's ns/op is segmentation cost per key at that error. Expected
// shape: IoT shows one strong bump (daily periodicity), Weblogs several
// overlapping bumps, Maps stays near-linear until very large scales.

#include <string>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/non_linearity.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

void RunFig8(Runner& runner) {
  const size_t n = ScaledN(2000000);
  const struct {
    const char* name;
    uint64_t seed;
    datasets::RealWorld which;
  } sets[] = {{"Weblogs", 1, datasets::RealWorld::kWeblogs},
              {"IoT", 2, datasets::RealWorld::kIot},
              {"Maps", 3, datasets::RealWorld::kMaps}};

  for (const auto& set : sets) {
    const std::string dataset_key = std::string("real/") + set.name + '/' +
                                    std::to_string(n) + '/' +
                                    std::to_string(set.seed);
    const auto keys = MemoKeys(dataset_key, [&] {
      return datasets::Generate(set.which, n, set.seed);
    });
    for (double error = 10.0; error <= 1e7; error *= 10.0) {
      double ratio = 0.0;
      const Stats stats = runner.CollectReps([&] {
        Timer timer;
        ratio = NonLinearityRatio<int64_t>(*keys, error);
        return static_cast<double>(timer.ElapsedNs()) /
               static_cast<double>(keys->size());
      });
      runner.Report({{"dataset", set.name},
                     {"error", TablePrinter::Fmt(error, 0)}},
                    stats, {{"non_linearity_ratio", ratio}});
    }
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig8_nonlinearity",
    "Fig 8: non-linearity ratio across error scales", RunFig8);

}  // namespace
}  // namespace fitree::bench
