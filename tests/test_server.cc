// ShardedIndex server tests: router boundary correctness, batched
// dispatch semantics, the shared differential oracle (batch=1 vs batched
// — same answers), multi-client stress under the partitioned oracle, and
// the post-quiescence shard introspection surface.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/fiting_tree.h"
#include "server/shard_router.h"
#include "server/sharded_index.h"
#include "tests/oracle.h"

namespace {

using fitree::FitingTree;
using fitree::FitingTreeConfig;
using fitree::server::OpQueue;
using fitree::server::ShardedIndex;
using fitree::server::ShardRouter;
using fitree::testing::CrudOptions;
using fitree::testing::MakeInitialLoad;
using fitree::testing::MakePartitionedLoad;
using fitree::testing::PropertyOps;
using fitree::testing::RunCrudDifferential;
using fitree::testing::RunPartitionedCrud;

using Engine = FitingTree<int64_t>;
using Server = ShardedIndex<Engine>;

// Minimal std::map-backed engine modeling MutableIndexApi. The regression
// tests below need an engine that tolerates duplicate keys in the initial
// load (the real engines require duplicate-free input) and a factory that
// can fail mid-load.
class MapEngine {
 public:
  using Key = int64_t;
  using Payload = uint64_t;

  static std::unique_ptr<MapEngine> Create(
      const std::vector<int64_t>& keys, const std::vector<uint64_t>& values) {
    auto engine = std::make_unique<MapEngine>();
    for (size_t i = 0; i < keys.size(); ++i) {
      engine->map_.emplace(keys[i], values.empty() ? 0 : values[i]);
    }
    return engine;
  }

  std::optional<uint64_t> Lookup(const int64_t& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  bool Contains(const int64_t& key) const { return map_.count(key) != 0; }
  template <typename Fn>
  size_t ScanRange(const int64_t& lo, const int64_t& hi, Fn fn) const {
    size_t n = 0;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi;
         ++it, ++n) {
      fn(it->first, it->second);
    }
    return n;
  }
  size_t size() const { return map_.size(); }
  bool Insert(const int64_t& key, const uint64_t& value) {
    return map_.emplace(key, value).second;
  }
  bool Update(const int64_t& key, const uint64_t& value) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    it->second = value;
    return true;
  }
  bool Delete(const int64_t& key) { return map_.erase(key) != 0; }

 private:
  std::map<int64_t, uint64_t> map_;
};

Server::Factory MakeFactory(double error = 32.0) {
  return [error](const std::vector<int64_t>& keys,
                 const std::vector<uint64_t>& values) {
    return Engine::Create(keys, values, FitingTreeConfig{.error = error});
  };
}

std::unique_ptr<Server> MakeServer(const std::vector<int64_t>& keys,
                                   const std::vector<uint64_t>& values,
                                   size_t shards, size_t batch) {
  Server::Config config;
  config.shards = shards;
  config.batch = batch;
  return Server::Create(keys, values, MakeFactory(), config);
}

// --- router ---------------------------------------------------------------

TEST(ShardRouter, PartitionBoundariesAndRouting) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 1000; ++i) keys.push_back(i * 10);
  const auto boundaries = ShardRouter<int64_t>::Partition(keys, 4);
  ASSERT_EQ(boundaries.size(), 4u);
  EXPECT_EQ(boundaries[0], 0);      // keys[0]
  EXPECT_EQ(boundaries[1], 2500);   // keys[250]
  EXPECT_EQ(boundaries[2], 5000);   // keys[500]
  EXPECT_EQ(boundaries[3], 7500);   // keys[750]

  const auto router = ShardRouter<int64_t>::Create(boundaries);
  EXPECT_EQ(router.shard_count(), 4u);
  // Below the first boundary clamps to shard 0 (the left tail).
  EXPECT_EQ(router.ShardOf(-100), 0u);
  // Boundary keys belong to the shard they open.
  EXPECT_EQ(router.ShardOf(0), 0u);
  EXPECT_EQ(router.ShardOf(2500), 1u);
  EXPECT_EQ(router.ShardOf(5000), 2u);
  EXPECT_EQ(router.ShardOf(7500), 3u);
  // Interior keys route to the owning range.
  EXPECT_EQ(router.ShardOf(2499), 0u);
  EXPECT_EQ(router.ShardOf(4999), 1u);
  // Above every key still routes to the last shard.
  EXPECT_EQ(router.ShardOf(1 << 30), 3u);
}

TEST(ShardRouter, DegenerateInputs) {
  // Empty key set: one shard, everything routes to it.
  const auto router =
      ShardRouter<int64_t>::Create(ShardRouter<int64_t>::Partition({}, 8));
  EXPECT_EQ(router.shard_count(), 1u);
  EXPECT_EQ(router.ShardOf(-5), 0u);
  EXPECT_EQ(router.ShardOf(12345), 0u);

  // Fewer distinct keys than requested shards: shard count collapses to
  // the distinct boundary count instead of minting duplicate boundaries.
  const auto tiny = ShardRouter<int64_t>::Partition({1, 2}, 8);
  EXPECT_LE(tiny.size(), 2u);
}

// --- op queue -------------------------------------------------------------

TEST(OpQueueTest, FifoBatchDrain) {
  OpQueue<int> queue(/*capacity=*/8);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(queue.Push(i), 0u);
  int out[8];
  // A batch drain returns everything available, in FIFO order.
  ASSERT_EQ(queue.PopBatch(out, 8), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(queue.Empty());
  // The ring recycles: a second wrap-around works.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queue.Push(100 + i), 0u);
  ASSERT_EQ(queue.PopBatch(out, 3), 3u);
  EXPECT_EQ(out[0], 100);
  ASSERT_EQ(queue.PopBatch(out, 8), 5u);
  EXPECT_EQ(out[4], 107);
}

// --- server basics --------------------------------------------------------

TEST(ShardedIndexTest, PointOpsAndShardOwnership) {
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  for (int64_t i = 0; i < 4096; ++i) {
    keys.push_back(i * 2);
    values.push_back(static_cast<uint64_t>(i) * 7);
  }
  auto server = MakeServer(keys, values, /*shards=*/4, /*batch=*/32);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->shard_count(), 4u);
  EXPECT_EQ(server->size(), keys.size());

  for (int64_t i = 0; i < 4096; i += 97) {
    EXPECT_EQ(server->Lookup(i * 2), std::optional<uint64_t>(
                                         static_cast<uint64_t>(i) * 7));
    EXPECT_FALSE(server->Lookup(i * 2 + 1).has_value());
    EXPECT_TRUE(server->Contains(i * 2));
  }
  EXPECT_TRUE(server->Insert(4096 * 2, 42));
  EXPECT_FALSE(server->Insert(4096 * 2, 43));  // duplicate
  EXPECT_TRUE(server->Update(4096 * 2, 44));
  EXPECT_EQ(server->Lookup(4096 * 2), std::optional<uint64_t>(44));
  EXPECT_TRUE(server->Delete(4096 * 2));
  EXPECT_FALSE(server->Delete(4096 * 2));
  EXPECT_EQ(server->size(), keys.size());

  // Post-quiescence: every key lives in exactly the shard the router names,
  // and the per-shard engines partition the load completely.
  size_t total = 0;
  for (size_t s = 0; s < server->shard_count(); ++s) {
    total += server->shard_engine(s).size();
  }
  EXPECT_EQ(total, keys.size());
  for (int64_t i = 0; i < 4096; i += 51) {
    const size_t shard = server->ShardOf(i * 2);
    EXPECT_TRUE(server->shard_engine(shard).Contains(i * 2));
  }
}

TEST(ShardedIndexTest, CrossShardScanIsSortedAndComplete) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 10000; ++i) keys.push_back(i);
  auto server = MakeServer(keys, {}, /*shards=*/5, /*batch=*/16);
  ASSERT_NE(server, nullptr);

  // A scan spanning every shard returns the whole sorted range once.
  std::vector<int64_t> got;
  const size_t count = server->ScanRange(
      100, 9900, [&](const int64_t& k, const uint64_t&) { got.push_back(k); });
  EXPECT_EQ(count, got.size());
  ASSERT_EQ(got.size(), 9801u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<int64_t>(100 + i));
  }
  // Single-shard and empty intervals.
  EXPECT_EQ(server->ScanRange(5, 10, [](const int64_t&, const uint64_t&) {}),
            6u);
  EXPECT_EQ(server->ScanRange(10, 5, [](const int64_t&, const uint64_t&) {}),
            0u);
}

// Regression: duplicate keys collapse Partition boundaries, so fewer
// shards materialize than requested. The initial-load slices must follow
// the router's kept boundaries, not i*n/actual_shards — with positional
// slicing, key 2 below lands in shard 1 but routes to shard 0, and
// Lookup(2) silently misses.
TEST(ShardedIndexTest, CollapsedBoundariesSliceByRouter) {
  const std::vector<int64_t> keys = {1, 1, 1, 2, 3, 4};
  ShardedIndex<MapEngine>::Config config;
  config.shards = 3;
  config.batch = 4;
  auto server = ShardedIndex<MapEngine>::Create(
      keys, {},
      [](const std::vector<int64_t>& k, const std::vector<uint64_t>& v) {
        return MapEngine::Create(k, v);
      },
      config);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->shard_count(), 2u);  // boundaries collapse to [1, 3]
  for (int64_t key : {1, 2, 3, 4}) {
    EXPECT_TRUE(server->Lookup(key).has_value()) << "key " << key;
    EXPECT_TRUE(server->shard_engine(server->ShardOf(key)).Contains(key))
        << "key " << key;
  }
  EXPECT_FALSE(server->Lookup(5).has_value());
}

// Regression: a factory returning nullptr mid-load must make Create
// return nullptr and tear the half-built server down without touching the
// not-yet-constructed shards' queues.
TEST(ShardedIndexTest, FactoryFailureTearsDownCleanly) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 64; ++i) keys.push_back(i);
  size_t calls = 0;
  ShardedIndex<MapEngine>::Config config;
  config.shards = 4;
  auto server = ShardedIndex<MapEngine>::Create(
      keys, {},
      [&calls](const std::vector<int64_t>& k,
               const std::vector<uint64_t>& v) -> std::unique_ptr<MapEngine> {
        if (++calls == 2) return nullptr;
        return MapEngine::Create(k, v);
      },
      config);
  EXPECT_EQ(server, nullptr);
  EXPECT_EQ(calls, 2u);
}

// --- differential oracle: batched and unbatched give the same answers -----

CrudOptions ServerOpts(uint64_t seed) {
  CrudOptions opt;
  opt.seed = seed;
  opt.ops = PropertyOps(8000);
  opt.key_space = 8000;
  return opt;
}

void RunServerDifferential(size_t shards, size_t batch, uint64_t seed) {
  CrudOptions opt = ServerOpts(seed);
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  std::map<int64_t, uint64_t> oracle;
  MakeInitialLoad(opt, /*load_every=*/4, &keys, &values, &oracle);
  auto server = MakeServer(keys, values, shards, batch);
  ASSERT_NE(server, nullptr);
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*server, oracle, opt));
}

TEST(ShardedIndexTest, CrudPropertyUnbatched) {
  RunServerDifferential(/*shards=*/4, /*batch=*/1, /*seed=*/21);
}

TEST(ShardedIndexTest, CrudPropertyBatched) {
  RunServerDifferential(/*shards=*/4, /*batch=*/32, /*seed=*/21);
}

TEST(ShardedIndexTest, CrudPropertySingleShard) {
  RunServerDifferential(/*shards=*/1, /*batch=*/8, /*seed=*/22);
}

// --- multi-client stress (the TSan target) --------------------------------

TEST(ShardedIndexTest, CrudPropertyMultiClient) {
  constexpr int kClients = 4;
  CrudOptions opt;
  opt.seed = 31;
  opt.ops = PropertyOps(5000);
  opt.key_space = 4000;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  std::vector<std::map<int64_t, uint64_t>> oracles;
  MakePartitionedLoad(opt, kClients, /*load_every=*/4, &keys, &values,
                      &oracles);
  auto server = MakeServer(keys, values, /*shards=*/4, /*batch=*/32);
  ASSERT_NE(server, nullptr);
  ASSERT_NO_FATAL_FAILURE(
      RunPartitionedCrud(*server, kClients, opt, std::move(oracles)));

  // The workers actually batched (multi-client traffic overlaps), and the
  // stats surface reports a coherent picture.
  const auto stats = server->Stats();
  EXPECT_EQ(stats.engine, "server");
  EXPECT_GT(stats.Get("batches"), 0.0);
  EXPECT_GE(stats.Get("avg_batch"), 1.0);
  EXPECT_EQ(stats.Get("shards"), 4.0);
  EXPECT_EQ(static_cast<size_t>(stats.Get("keys")), server->size());
}

}  // namespace
