// Ablation sweeps for the design choices DESIGN.md calls out:
//   (a) internal B+ tree fanout (paper Sec 2.2: any tree can host segments)
//   (b) in-window search policy (paper Sec 4.1.2: binary/linear/exponential)
//   (c) segment feasibility rule (paper's endpoint line vs PGM-style cone)
//   (d) buffer sizing policy (generalizes Figure 12's error/2 default)

#include <iostream>
#include <string>

#include "bench_common.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/fiting_tree.h"
#include "core/shrinking_cone.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

using fitree::Feasibility;
using fitree::FitingTree;
using fitree::FitingTreeConfig;
using fitree::SearchPolicy;
using fitree::TablePrinter;
using fitree::Timer;
using fitree::bench::MeasureMops;
using fitree::bench::MeasurePerOpNs;

template <int kSlots>
void FanoutRow(TablePrinter& table, const std::vector<int64_t>& keys,
               const std::vector<int64_t>& probes) {
  FitingTreeConfig config;
  config.error = 256.0;
  config.buffer_size = 0;
  auto tree = FitingTree<int64_t, kSlots, kSlots>::Create(keys, config);
  const double ns = MeasurePerOpNs(probes.size(), [&](size_t i) {
    return tree->Contains(probes[i]) ? 1 : 0;
  });
  table.AddRow({std::to_string(kSlots), std::to_string(tree->TreeHeight()),
                TablePrinter::Fmt(
                    static_cast<double>(tree->IndexSizeBytes()) / 1024.0, 1),
                TablePrinter::Fmt(ns, 1)});
}

void RunFanout(const std::vector<int64_t>& keys,
               const std::vector<int64_t>& probes) {
  fitree::bench::PrintHeader(
      "Ablation (a): internal B+ tree node slots (error=256)");
  TablePrinter table({"node_slots", "height", "index_KB", "ns_per_lookup"});
  FanoutRow<8>(table, keys, probes);
  FanoutRow<16>(table, keys, probes);
  FanoutRow<32>(table, keys, probes);
  FanoutRow<64>(table, keys, probes);
  FanoutRow<128>(table, keys, probes);
  table.Print(std::cout);
}

void RunSearchPolicy(const std::vector<int64_t>& keys,
                     const std::vector<int64_t>& probes) {
  fitree::bench::PrintHeader("Ablation (b): in-window search policy");
  TablePrinter table({"error", "binary_ns", "linear_ns", "exponential_ns"});
  for (double error : {64.0, 1024.0, 16384.0}) {
    std::vector<double> ns;
    for (auto policy : {SearchPolicy::kBinary, SearchPolicy::kLinear,
                        SearchPolicy::kExponential}) {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = 0;
      config.search_policy = policy;
      auto tree = FitingTree<int64_t>::Create(keys, config);
      ns.push_back(MeasurePerOpNs(probes.size(), [&](size_t i) {
        return tree->Contains(probes[i]) ? 1 : 0;
      }));
    }
    table.AddRow({TablePrinter::Fmt(error, 0), TablePrinter::Fmt(ns[0], 1),
                  TablePrinter::Fmt(ns[1], 1), TablePrinter::Fmt(ns[2], 1)});
  }
  table.Print(std::cout);
}

void RunFeasibility(const std::vector<int64_t>& keys,
                    const std::vector<int64_t>& probes) {
  fitree::bench::PrintHeader(
      "Ablation (c): segment feasibility rule (endpoint = paper, cone = "
      "PGM-style)");
  TablePrinter table({"error", "endpoint_segments", "cone_segments",
                      "endpoint_ns", "cone_ns"});
  for (double error : {64.0, 256.0, 1024.0}) {
    std::vector<size_t> segments;
    std::vector<double> ns;
    for (auto mode : {Feasibility::kEndpointLine, Feasibility::kCone}) {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = 0;
      config.feasibility = mode;
      auto tree = FitingTree<int64_t>::Create(keys, config);
      segments.push_back(tree->SegmentCount());
      ns.push_back(MeasurePerOpNs(probes.size(), [&](size_t i) {
        return tree->Contains(probes[i]) ? 1 : 0;
      }));
    }
    table.AddRow({TablePrinter::Fmt(error, 0),
                  TablePrinter::Fmt(static_cast<uint64_t>(segments[0])),
                  TablePrinter::Fmt(static_cast<uint64_t>(segments[1])),
                  TablePrinter::Fmt(ns[0], 1), TablePrinter::Fmt(ns[1], 1)});
  }
  table.Print(std::cout);
}

void RunBufferPolicy(const std::vector<int64_t>& keys,
                     const std::vector<int64_t>& probes,
                     const std::vector<int64_t>& inserts) {
  fitree::bench::PrintHeader(
      "Ablation (d): buffer fraction of error (error=1024)");
  TablePrinter table({"buffer_fraction", "lookup_ns", "insert_Mops",
                      "merges"});
  const double error = 1024.0;
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    FitingTreeConfig config;
    config.error = error;
    config.buffer_size = static_cast<size_t>(error * frac);
    auto tree = FitingTree<int64_t>::Create(keys, config);
    // A zero buffer merges a whole segment on every insert (that is the
    // point); fewer inserts keep that cell from dominating the run.
    const size_t ops = frac == 0.0 ? inserts.size() / 50 : inserts.size();
    const double mops =
        MeasureMops(ops, [&](size_t i) { tree->Insert(inserts[i]); });
    const double ns = MeasurePerOpNs(probes.size(), [&](size_t i) {
      return tree->Contains(probes[i]) ? 1 : 0;
    });
    table.AddRow({TablePrinter::Fmt(frac, 2), TablePrinter::Fmt(ns, 1),
                  TablePrinter::Fmt(mops, 3),
                  TablePrinter::Fmt(tree->stats().segment_merges)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const size_t n = fitree::bench::ScaledN(1000000);
  const auto keys = fitree::datasets::Weblogs(n, 1);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, fitree::bench::ScaledN(200000),
      fitree::workloads::Access::kUniform, 0.0, 2);
  const auto inserts = fitree::workloads::MakeInserts<int64_t>(
      keys, fitree::bench::ScaledN(200000), 3);

  RunFanout(keys, probes);
  RunSearchPolicy(keys, probes);
  RunFeasibility(keys, probes);
  RunBufferPolicy(keys, probes, inserts);
  return 0;
}
