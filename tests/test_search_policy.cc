// Exhaustive differential coverage of the in-window search policies (kSimd
// against the scalar policies and std::lower_bound) and of the flat
// directory's floor search. Windows are staged in exactly-sized heap
// allocations so that any masked-lane or tail over-read past the window
// lands in an ASan redzone — CI runs this suite under ASan/UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "core/flat_directory.h"
#include "core/search_policy.h"

namespace {

using fitree::DirectoryMode;
using fitree::FlatDirectory;
using fitree::FlatKeyIndex;
using fitree::SearchPolicy;

constexpr SearchPolicy kAllPolicies[] = {
    SearchPolicy::kBinary, SearchPolicy::kLinear, SearchPolicy::kExponential,
    SearchPolicy::kSimd};

// Sorted window of `n` keys with duplicate runs, clamped away from the
// numeric extremes so +/-1 probes cannot overflow. `sentinels` pins the
// first key to numeric_limits::min() and the last to ::max().
template <typename K>
std::vector<K> MakeWindow(size_t n, std::mt19937_64* rng, bool sentinels) {
  std::vector<K> keys(n);
  if (n == 0) return keys;
  // Mostly small gaps with occasional duplicates (gap 0).
  std::uniform_int_distribution<int> gap(0, 6);
  K cur = static_cast<K>(std::numeric_limits<K>::min() / 2 + 1000);
  for (size_t i = 0; i < n; ++i) {
    cur = static_cast<K>(cur + static_cast<K>(gap(*rng)));
    keys[i] = cur;
  }
  if (sentinels) {
    keys.front() = std::numeric_limits<K>::min();
    if (n > 1) keys.back() = std::numeric_limits<K>::max();
    std::sort(keys.begin(), keys.end());
  }
  return keys;
}

// Checks every policy against std::lower_bound for one window placed at
// absolute offset `begin` inside an exactly-sized allocation.
template <typename K>
void CheckWindow(const std::vector<K>& window, size_t begin) {
  const size_t n = window.size();
  const size_t end = begin + n;
  // Exact allocation: [0, begin) is initialized slack below the window
  // (never consulted by any policy), and there is NO slack above — reads
  // past `end` hit the heap redzone under ASan.
  std::unique_ptr<K[]> data(new K[end > 0 ? end : 1]);
  for (size_t i = 0; i < begin; ++i) data[i] = std::numeric_limits<K>::min();
  std::copy(window.begin(), window.end(), data.get() + begin);

  std::vector<K> probes;
  probes.reserve(2 * n + 4);
  for (const K& k : window) {
    probes.push_back(k);  // present (or duplicate run member)
    if (k > std::numeric_limits<K>::min()) {
      probes.push_back(static_cast<K>(k - 1));  // often absent
    }
    if (k < std::numeric_limits<K>::max()) {
      probes.push_back(static_cast<K>(k + 1));
    }
  }
  probes.push_back(std::numeric_limits<K>::min());
  probes.push_back(std::numeric_limits<K>::max());

  for (const K& key : probes) {
    const size_t expected = static_cast<size_t>(
        std::lower_bound(data.get() + begin, data.get() + end, key) -
        data.get());
    // Hints sweep the whole window plus both clamping directions.
    const size_t hints[] = {begin, end > 0 ? end - 1 : 0, (begin + end) / 2,
                            expected, expected + 3, 0, end + 100};
    for (const SearchPolicy policy : kAllPolicies) {
      for (const size_t hint : hints) {
        ASSERT_EQ(fitree::detail::BoundedLowerBound(data.get(), begin, end,
                                                    hint, key, policy),
                  expected)
            << fitree::SearchPolicyName(policy) << " n=" << n
            << " begin=" << begin << " hint=" << hint;
      }
    }
  }
}

template <typename K>
void DifferentialSweep() {
  std::mt19937_64 rng(0xF17EE5EED ^ sizeof(K));
  // Window sizes 0..130 cross every vector-width boundary and the
  // branchless-narrow threshold (kSimdWindowKeys = 128); unaligned begins
  // shift the window off any 32-byte alignment.
  for (size_t n = 0; n <= 130; ++n) {
    for (const size_t begin : {size_t{0}, size_t{1}, size_t{3}}) {
      CheckWindow<K>(MakeWindow<K>(n, &rng, /*sentinels=*/false), begin);
    }
  }
  // Min/max sentinel keys at several sizes (exercises the sign-flip bias
  // at both extremes of the domain).
  for (const size_t n : {size_t{1},  size_t{2},  size_t{4},  size_t{7},
                         size_t{16}, size_t{33}, size_t{130}}) {
    CheckWindow<K>(MakeWindow<K>(n, &rng, /*sentinels=*/true), 1);
  }
}

TEST(SearchPolicy, DifferentialInt64) { DifferentialSweep<int64_t>(); }
TEST(SearchPolicy, DifferentialUint64) { DifferentialSweep<uint64_t>(); }
TEST(SearchPolicy, DifferentialInt32) { DifferentialSweep<int32_t>(); }
TEST(SearchPolicy, DifferentialUint32) { DifferentialSweep<uint32_t>(); }

// Non-integral keys take the portable scalar fallback inside kSimd; the
// policy contract must hold there too.
TEST(SearchPolicy, DifferentialDoubleFallback) {
  std::mt19937_64 rng(77);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                         size_t{129}}) {
    std::vector<double> window(n);
    std::uniform_real_distribution<double> gap(0.0, 3.0);
    double cur = -1000.0;
    for (size_t i = 0; i < n; ++i) window[i] = (cur += gap(rng));
    CheckWindow<double>(window, 2);
  }
}

// Large windows force the branchless narrowing ahead of the vector count.
TEST(SearchPolicy, LargeWindowNarrowing) {
  std::mt19937_64 rng(123);
  const auto window = MakeWindow<int64_t>(100000, &rng, false);
  std::mt19937_64 probe_rng(321);
  std::uniform_int_distribution<size_t> pick(0, window.size() - 1);
  for (int i = 0; i < 2000; ++i) {
    const int64_t key = window[pick(probe_rng)] + (i % 5) - 2;
    const size_t expected = static_cast<size_t>(
        std::lower_bound(window.begin(), window.end(), key) - window.begin());
    for (const SearchPolicy policy : kAllPolicies) {
      ASSERT_EQ(fitree::detail::BoundedLowerBound(window.data(), 0,
                                                  window.size(),
                                                  expected / 2, key, policy),
                expected);
    }
  }
}

// The strided kernel (disk-tree leaf records: {key, payload} pairs) counts
// the same as a scalar sweep, including at n values straddling the vector
// width, with the records staged in an exact-size allocation.
TEST(SearchPolicy, CountLessStridedPairs) {
  struct Record {
    int64_t key;
    uint64_t value;
  };
  static_assert(sizeof(Record) == 16);
  std::mt19937_64 rng(99);
  for (size_t n = 0; n <= 70; ++n) {
    std::unique_ptr<Record[]> recs(new Record[n > 0 ? n : 1]);
    int64_t cur = -50;
    for (size_t i = 0; i < n; ++i) {
      cur += static_cast<int64_t>(rng() % 4);
      recs[i] = Record{cur, rng()};
    }
    const int64_t lo = n > 0 ? recs[0].key - 1 : 0;
    const int64_t hi = n > 0 ? recs[n - 1].key + 1 : 1;
    for (int64_t key = lo; key <= hi; ++key) {
      size_t expected = 0;
      for (size_t i = 0; i < n; ++i) expected += recs[i].key < key ? 1 : 0;
      ASSERT_EQ(fitree::simd::CountLessStrided(recs.get(), sizeof(Record), n,
                                               key),
                expected)
          << "n=" << n << " key=" << key;
    }
  }
}

// FlatKeyIndex::FloorIndex against the upper_bound oracle over several
// distributions, including ones hostile to interpolation.
TEST(FlatDirectory, FloorMatchesOracle) {
  std::mt19937_64 rng(2024);
  std::vector<std::vector<int64_t>> cases;
  cases.push_back({});            // empty
  cases.push_back({42});          // single key
  cases.push_back({-5, 0, 5});    // tiny
  {
    std::vector<int64_t> uniform;  // interpolation-friendly
    for (int64_t i = 0; i < 4000; ++i) uniform.push_back(i * 17);
    cases.push_back(std::move(uniform));
  }
  {
    std::vector<int64_t> skewed;  // exponential gaps defeat the model
    int64_t cur = 1;
    for (int i = 0; i < 60; ++i) {
      skewed.push_back(cur);
      cur += (int64_t{1} << std::min(i, 40));
    }
    cases.push_back(std::move(skewed));
  }
  {
    std::vector<int64_t> clustered;  // dense runs separated by chasms
    int64_t base = -1'000'000;
    for (int c = 0; c < 20; ++c) {
      for (int i = 0; i < 100; ++i) clustered.push_back(base + i);
      base += 10'000'000;
    }
    cases.push_back(std::move(clustered));
  }
  cases.push_back({std::numeric_limits<int64_t>::min(), -1, 0, 1,
                   std::numeric_limits<int64_t>::max()});

  for (const auto& keys : cases) {
    FlatKeyIndex<int64_t> index(keys);
    EXPECT_EQ(index.size(), keys.size());
    std::vector<int64_t> probes = keys;
    for (const int64_t k : keys) {
      if (k > std::numeric_limits<int64_t>::min()) probes.push_back(k - 1);
      if (k < std::numeric_limits<int64_t>::max()) probes.push_back(k + 1);
    }
    probes.push_back(std::numeric_limits<int64_t>::min());
    probes.push_back(std::numeric_limits<int64_t>::max());
    for (int i = 0; i < 1000; ++i) {
      probes.push_back(static_cast<int64_t>(rng()));
    }
    for (const int64_t probe : probes) {
      const auto it = std::upper_bound(keys.begin(), keys.end(), probe);
      const size_t expected = it == keys.begin()
                                  ? FlatKeyIndex<int64_t>::kNone
                                  : static_cast<size_t>(it - keys.begin()) - 1;
      ASSERT_EQ(index.FloorIndex(probe), expected) << "probe " << probe;
    }
  }
}

// Splice keeps the keys, payloads, and interpolation model consistent
// through the mutation patterns the buffered tree's merges produce.
TEST(FlatDirectory, SpliceMaintainsFloorAndValues) {
  FlatDirectory<int64_t, int> dir;
  dir.BulkLoad({10, 20, 30, 40}, {1, 2, 3, 4});
  ASSERT_EQ(dir.size(), 4u);
  EXPECT_EQ(dir.FindFloor(5), nullptr);
  EXPECT_EQ(*dir.FindFloor(25), 2);

  // One-for-one replacement (common merge): in-place overwrite.
  const int64_t k21[] = {21};
  const int v21[] = {20};
  dir.Splice(1, 1, k21, v21);
  EXPECT_EQ(*dir.FindFloor(25), 20);
  EXPECT_EQ(*dir.FindFloor(20), 1);  // floor moved left of the new key

  // One-to-many (merge split the segment).
  const int64_t grow[] = {22, 25, 28};
  const int grow_v[] = {50, 51, 52};
  dir.Splice(1, 1, grow, grow_v);
  ASSERT_EQ(dir.size(), 6u);
  EXPECT_EQ(*dir.FindFloor(24), 50);
  EXPECT_EQ(*dir.FindFloor(27), 51);
  EXPECT_EQ(*dir.FindFloor(100), 4);

  // Retire (merge deleted every key).
  dir.Splice(1, 3, {}, {});
  ASSERT_EQ(dir.size(), 3u);
  EXPECT_EQ(*dir.FindFloor(29), 1);
  EXPECT_EQ(*dir.FindFloor(35), 3);

  // Bootstrap insert into an empty directory.
  FlatDirectory<int64_t, int> empty;
  EXPECT_EQ(empty.FindFloor(0), nullptr);
  const int64_t k7[] = {7};
  const int v7[] = {70};
  empty.Splice(0, 0, k7, v7);
  EXPECT_EQ(empty.FindFloor(6), nullptr);
  EXPECT_EQ(*empty.FindFloor(7), 70);
}

TEST(SearchPolicy, KnobParsing) {
  EXPECT_EQ(fitree::ParseSearchPolicy("simd"), SearchPolicy::kSimd);
  EXPECT_EQ(fitree::ParseSearchPolicy("binary"), SearchPolicy::kBinary);
  EXPECT_EQ(fitree::ParseSearchPolicy("linear"), SearchPolicy::kLinear);
  EXPECT_EQ(fitree::ParseSearchPolicy("exponential"),
            SearchPolicy::kExponential);
  EXPECT_FALSE(fitree::ParseSearchPolicy("avx512").has_value());
  for (const SearchPolicy p : kAllPolicies) {
    EXPECT_EQ(fitree::ParseSearchPolicy(fitree::SearchPolicyName(p)), p);
  }
  EXPECT_EQ(fitree::ParseDirectoryMode("flat"), DirectoryMode::kFlat);
  EXPECT_EQ(fitree::ParseDirectoryMode("btree"), DirectoryMode::kBTree);
  EXPECT_FALSE(fitree::ParseDirectoryMode("hash").has_value());
}

}  // namespace
