// storage/ unit tests: page seal/verify + checksum rejection, buffer-pool
// hit/miss/eviction/pinning semantics, and segment-file write/reopen
// round-trips down to the raw page level.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "core/static_fiting_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/segment_file.h"

namespace {

using fitree::IoStats;
using fitree::PackedSegment;
using fitree::StaticFitingTree;
using fitree::storage::BufferPool;
using fitree::storage::kPageHeaderBytes;
using fitree::storage::LeafCapacity;
using fitree::storage::LeafEntry;
using fitree::storage::LoadAs;
using fitree::storage::MakeFixedSegments;
using fitree::storage::PageHeader;
using fitree::storage::PageSource;
using fitree::storage::PageType;
using fitree::storage::PinnedPage;
using fitree::storage::SealPage;
using fitree::storage::SegmentFileOptions;
using fitree::storage::SegmentFileReader;
using fitree::storage::VerifyPage;

constexpr size_t kPageBytes = 256;  // small pages force multi-page files

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<int64_t> EveryThird(size_t n) {
  std::vector<int64_t> keys;
  for (size_t i = 0; i < n; ++i) keys.push_back(static_cast<int64_t>(3 * i));
  return keys;
}

TEST(Page, SealThenVerifyRoundTrips) {
  std::vector<std::byte> page(kPageBytes, std::byte{0});
  page[kPageHeaderBytes] = std::byte{42};
  SealPage(page.data(), kPageBytes, PageType::kLeaf, 7, 3);
  PageHeader header{};
  ASSERT_TRUE(
      VerifyPage(page.data(), kPageBytes, PageType::kLeaf, 7, &header));
  EXPECT_EQ(header.page_id, 7u);
  EXPECT_EQ(header.count, 3u);
  EXPECT_EQ(header.type, static_cast<uint16_t>(PageType::kLeaf));
}

TEST(Page, AnySingleByteFlipIsDetected) {
  std::vector<std::byte> page(kPageBytes, std::byte{0});
  for (size_t i = 0; i < kPageBytes; i += 17) {
    page[kPageHeaderBytes + (i % (kPageBytes - kPageHeaderBytes))] =
        std::byte{static_cast<unsigned char>(i)};
  }
  SealPage(page.data(), kPageBytes, PageType::kLeaf, 1, 5);
  for (size_t i = 0; i < kPageBytes; ++i) {
    std::vector<std::byte> corrupt = page;
    corrupt[i] ^= std::byte{0x40};
    EXPECT_FALSE(VerifyPage(corrupt.data(), kPageBytes, PageType::kLeaf, 1))
        << "flip at byte " << i << " went undetected";
  }
}

TEST(Page, WrongTypeOrIdIsRejected) {
  std::vector<std::byte> page(kPageBytes, std::byte{0});
  SealPage(page.data(), kPageBytes, PageType::kSegmentTable, 4, 1);
  EXPECT_TRUE(VerifyPage(page.data(), kPageBytes, PageType::kSegmentTable, 4));
  EXPECT_FALSE(VerifyPage(page.data(), kPageBytes, PageType::kLeaf, 4));
  EXPECT_FALSE(VerifyPage(page.data(), kPageBytes, PageType::kSegmentTable, 5));
}

// In-memory page source: page i is a sealed leaf page whose first record
// byte is i. Counts physical reads and can be told to fail specific pages.
class FakeSource : public PageSource {
 public:
  explicit FakeSource(size_t pages) {
    for (size_t i = 0; i < pages; ++i) {
      std::vector<std::byte> page(kPageBytes, std::byte{0});
      page[kPageHeaderBytes] = std::byte{static_cast<unsigned char>(i)};
      SealPage(page.data(), kPageBytes, PageType::kLeaf,
               static_cast<uint32_t>(i), 1);
      pages_.push_back(std::move(page));
    }
  }

  bool ReadPageInto(uint32_t page_id, std::byte* out) override {
    if (page_id >= pages_.size() || failing_.count(page_id) != 0) return false;
    ++reads_;
    std::copy(pages_[page_id].begin(), pages_[page_id].end(), out);
    return true;
  }

  void FailPage(uint32_t page_id) { failing_.insert(page_id); }
  size_t reads() const { return reads_; }

 private:
  std::vector<std::vector<std::byte>> pages_;
  std::set<uint32_t> failing_;
  size_t reads_ = 0;
};

TEST(BufferPool, CountsHitsAndMisses) {
  FakeSource source(4);
  BufferPool pool(&source, kPageBytes, 2);
  for (const uint32_t id : {0u, 1u, 0u, 1u, 0u}) {
    const std::byte* page = pool.Fetch(id);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(LoadAs<unsigned char>(page + kPageHeaderBytes), id);
    pool.Unpin(id);
  }
  EXPECT_EQ(pool.stats().cache_misses, 2u);
  EXPECT_EQ(pool.stats().cache_hits, 3u);
  EXPECT_EQ(pool.stats().pages_read, 2u);
  EXPECT_EQ(pool.stats().bytes_read, 2u * kPageBytes);
  EXPECT_DOUBLE_EQ(pool.stats().HitRate(), 3.0 / 5.0);
}

TEST(BufferPool, EvictsWhenCacheSmallerThanFile) {
  FakeSource source(8);
  BufferPool pool(&source, kPageBytes, 2);
  // Two sequential sweeps over 8 pages through 2 frames: nothing survives
  // to the second sweep, so every access is a miss and a physical read.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (uint32_t id = 0; id < 8; ++id) {
      const std::byte* page = pool.Fetch(id);
      ASSERT_NE(page, nullptr);
      EXPECT_EQ(LoadAs<unsigned char>(page + kPageHeaderBytes), id);
      pool.Unpin(id);
    }
  }
  EXPECT_EQ(pool.stats().cache_misses, 16u);
  EXPECT_EQ(pool.stats().cache_hits, 0u);
  EXPECT_EQ(source.reads(), 16u);
  // At most `frames` pages are ever resident.
  size_t resident = 0;
  for (uint32_t id = 0; id < 8; ++id) resident += pool.Contains(id) ? 1 : 0;
  EXPECT_EQ(resident, 2u);
}

TEST(BufferPool, ClockGivesReusedPagesASecondChance) {
  FakeSource source(8);
  BufferPool pool(&source, kPageBytes, 3);
  const auto touch = [&](uint32_t id) {
    ASSERT_NE(pool.Fetch(id), nullptr);
    pool.Unpin(id);
  };
  // Page 0 is re-referenced between sweeps of {1,2,3}; its reference bit
  // keeps it resident while 1..3 rotate through the other two frames.
  touch(0);
  for (const uint32_t id : {1u, 2u, 0u, 3u, 1u, 0u, 2u, 3u, 0u}) touch(id);
  EXPECT_TRUE(pool.Contains(0));
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 10u);
  // Page 0 was read exactly once; every hit after that was served in-pool.
  EXPECT_GE(stats.cache_hits, 3u);
}

TEST(BufferPool, PinnedPagesAreNeverEvicted) {
  FakeSource source(16);
  BufferPool pool(&source, kPageBytes, 2);
  const std::byte* pinned = pool.Fetch(0);
  ASSERT_NE(pinned, nullptr);
  for (uint32_t id = 1; id < 16; ++id) {
    const std::byte* page = pool.Fetch(id);
    ASSERT_NE(page, nullptr);
    pool.Unpin(id);
  }
  EXPECT_TRUE(pool.Contains(0));
  EXPECT_EQ(LoadAs<unsigned char>(pinned + kPageHeaderBytes), 0u);
  pool.Unpin(0);
}

TEST(BufferPool, AllFramesPinnedFailsCleanly) {
  FakeSource source(4);
  BufferPool pool(&source, kPageBytes, 2);
  ASSERT_NE(pool.Fetch(0), nullptr);
  ASSERT_NE(pool.Fetch(1), nullptr);
  EXPECT_EQ(pool.Fetch(2), nullptr);  // no evictable frame
  pool.Unpin(1);
  EXPECT_NE(pool.Fetch(2), nullptr);  // frame freed, fetch succeeds
  pool.Unpin(2);
  pool.Unpin(0);
}

TEST(BufferPool, FailedReadReturnsNullAndStaysUncached) {
  FakeSource source(4);
  source.FailPage(2);
  BufferPool pool(&source, kPageBytes, 2);
  EXPECT_EQ(pool.Fetch(2), nullptr);
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_EQ(pool.stats().cache_misses, 1u);
  EXPECT_EQ(pool.stats().pages_read, 0u);
  // The pool still works for healthy pages afterwards.
  ASSERT_NE(pool.Fetch(1), nullptr);
  pool.Unpin(1);
}

TEST(SegmentFile, WriteReopenRoundTripsMetaAndSegments) {
  const auto keys = EveryThird(1000);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 8.0);
  const auto exported = tree->ExportSegmentTable();
  const std::string path = TempPath("roundtrip.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));

  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path)) << reader.error_message();
  EXPECT_EQ(reader.meta().key_count, keys.size());
  EXPECT_EQ(reader.meta().segment_count, exported.size());
  EXPECT_EQ(reader.meta().page_bytes, kPageBytes);
  EXPECT_DOUBLE_EQ(reader.meta().error, 8.0);

  std::vector<PackedSegment<int64_t>> reloaded;
  ASSERT_TRUE(reader.ReadSegmentTable(&reloaded));
  EXPECT_EQ(reloaded, exported);
  std::remove(path.c_str());
}

TEST(SegmentFile, LeafPagesHoldEveryKeyInRankOrder) {
  const auto keys = EveryThird(500);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 4.0);
  const std::string path = TempPath("leaves.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));
  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path));
  const size_t cap = reader.meta().leaf_capacity;
  EXPECT_EQ(cap, LeafCapacity<int64_t>(kPageBytes));
  ASSERT_GT(reader.meta().leaf_page_count, 1u);  // multi-page file

  std::vector<std::byte> page(kPageBytes);
  size_t rank = 0;
  for (uint64_t leaf = 0; leaf < reader.meta().leaf_page_count; ++leaf) {
    ASSERT_TRUE(reader.ReadPageInto(reader.LeafPageId(leaf), page.data()));
    const PageHeader header = LoadAs<PageHeader>(page.data());
    for (uint32_t slot = 0; slot < header.count; ++slot, ++rank) {
      const auto entry = LoadAs<LeafEntry<int64_t>>(
          page.data() + kPageHeaderBytes + slot * sizeof(LeafEntry<int64_t>));
      EXPECT_EQ(entry.key, keys[rank]);
      EXPECT_EQ(entry.value, rank);  // WriteIndexFile payload is the rank
    }
  }
  EXPECT_EQ(rank, keys.size());
  std::remove(path.c_str());
}

TEST(SegmentFile, CustomPayloadsRoundTrip) {
  const auto keys = EveryThird(300);
  std::vector<uint64_t> values;
  for (const int64_t k : keys) {
    values.push_back(static_cast<uint64_t>(7 * k + 1));
  }
  const auto segments =
      MakeFixedSegments(std::span<const int64_t>(keys), 32);
  const std::string path = TempPath("payloads.fit");
  ASSERT_TRUE(fitree::storage::WriteSegmentFile<int64_t>(
      path, keys, values, segments, /*error=*/32.0,
      SegmentFileOptions{kPageBytes}));
  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path));
  std::vector<std::byte> page(kPageBytes);
  ASSERT_TRUE(reader.ReadPageInto(reader.LeafPageId(0), page.data()));
  const auto entry = LoadAs<LeafEntry<int64_t>>(page.data() + kPageHeaderBytes);
  EXPECT_EQ(entry.key, keys[0]);
  EXPECT_EQ(entry.value, values[0]);
  std::remove(path.c_str());
}

TEST(SegmentFile, CorruptedPageIsRejectedByReaderAndPool) {
  const auto keys = EveryThird(600);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 8.0);
  const std::string path = TempPath("corrupt.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));

  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path));
  const uint32_t victim = reader.LeafPageId(1);
  reader.Close();

  // Flip one payload byte in the middle of that leaf page on disk.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const long offset =
      static_cast<long>(victim) * kPageBytes + kPageBytes / 2;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(byte ^ 0x01, f);
  std::fclose(f);

  ASSERT_TRUE(reader.Open(path));  // meta page is intact
  std::vector<std::byte> page(kPageBytes);
  EXPECT_TRUE(reader.ReadPageInto(reader.LeafPageId(0), page.data()));
  EXPECT_FALSE(reader.ReadPageInto(victim, page.data()));

  BufferPool pool(&reader, kPageBytes, 4);
  EXPECT_NE(pool.Fetch(reader.LeafPageId(0)), nullptr);
  pool.Unpin(reader.LeafPageId(0));
  EXPECT_EQ(pool.Fetch(victim), nullptr);
  EXPECT_FALSE(pool.Contains(victim));
  std::remove(path.c_str());
}

TEST(SegmentFile, CorruptedMetaFailsOpen) {
  const auto keys = EveryThird(100);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 8.0);
  const std::string path = TempPath("badmeta.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, kPageHeaderBytes, SEEK_SET), 0);  // magic field
  std::fputc('X', f);
  std::fclose(f);
  SegmentFileReader<int64_t> reader;
  EXPECT_FALSE(reader.Open(path));
  std::remove(path.c_str());
}

TEST(SegmentFile, OpenRejectsMissingAndTruncatedFiles) {
  SegmentFileReader<int64_t> reader;
  EXPECT_FALSE(reader.Open(TempPath("does_not_exist.fit")));

  const std::string path = TempPath("truncated.fit");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("short", f);
  std::fclose(f);
  EXPECT_FALSE(reader.Open(path));
  std::remove(path.c_str());
}

TEST(SegmentFile, WriterRejectsNonPartitioningSegments) {
  const auto keys = EveryThird(100);
  auto segments = MakeFixedSegments(std::span<const int64_t>(keys), 16);
  segments.back().length -= 1;  // no longer covers every key
  EXPECT_FALSE(fitree::storage::WriteSegmentFile<int64_t>(
      TempPath("badsegs.fit"), keys, {}, segments, 16.0,
      SegmentFileOptions{kPageBytes}));
}

TEST(SegmentFile, MakeFixedSegmentsPartitionsKeys) {
  const auto keys = EveryThird(103);  // deliberately not a multiple
  const auto segments = MakeFixedSegments(std::span<const int64_t>(keys), 16);
  ASSERT_EQ(segments.size(), 7u);
  uint64_t covered = 0;
  for (const auto& s : segments) {
    EXPECT_EQ(s.start, covered);
    EXPECT_EQ(s.first_key, keys[covered]);
    EXPECT_DOUBLE_EQ(s.Predict(keys[covered]), static_cast<double>(covered));
    covered += s.length;
  }
  EXPECT_EQ(covered, keys.size());
}

}  // namespace
