// perf_event_open plumbing for PerfRegion (see perf_counters.h for the
// design: independent per-event fds, inherit=1, read-side multiplex
// scaling, graceful degradation everywhere).

#include "telemetry/perf_counters.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/options.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define FITREE_PERF_SUPPORTED 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fitree::telemetry {

namespace {

// FITREE_PERF: unset -> attempt, "0" -> off. Read live at every PerfRegion
// construction — NOT through the cached GlobalOptions() snapshot — because
// the knob gates kernel fd acquisition per-region and long-lived processes
// (and the unit tests) flip it at runtime. Options::perf carries the same
// knob's startup value for config reporting.
bool PerfEnvEnabled() { return GetEnvInt64("FITREE_PERF", 1) != 0; }

#ifdef FITREE_PERF_SUPPORTED

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Index order matches the PerfSample fields (cycles first ... task-clock
// last). The cache events use the HW_CACHE encoding: id | (op << 8) |
// (result << 16).
constexpr EventSpec kEvents[kNumPerfEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

int OpenEvent(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;  // free-running; regions read before/after deltas
  attr.inherit = 1;   // count worker threads spawned inside a region
  attr.exclude_kernel = 1;  // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0 /* this thread */,
              -1 /* any cpu */, -1 /* no group: inherit forbids group
                                      reads, see header */,
              0));
}

// perf_event_paranoid level for diagnostics, or -100 when unreadable.
long ParanoidLevel() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) return -100;
  long level = -100;
  if (std::fscanf(f, "%ld", &level) != 1) level = -100;
  std::fclose(f);
  return level;
}

#endif  // FITREE_PERF_SUPPORTED

}  // namespace

PerfRegion::PerfRegion() {
  for (int i = 0; i < kNumPerfEvents; ++i) fds_[i] = -1;
  if (!PerfEnvEnabled()) {
    status_ = "disabled (FITREE_PERF=0)";
    return;
  }
#ifndef FITREE_PERF_SUPPORTED
  status_ = "unavailable: perf_event_open not supported on this platform";
#else
  int opened = 0;
  int first_errno = 0;
  for (int i = 0; i < kNumPerfEvents; ++i) {
    fds_[i] = OpenEvent(kEvents[i]);
    if (fds_[i] >= 0) {
      ++opened;
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  if (opened == 0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "unavailable: perf_event_open failed (%s; "
                  "kernel.perf_event_paranoid=%ld)",
                  std::strerror(first_errno), ParanoidLevel());
    status_ = buf;
    return;
  }
  available_ = true;
  status_ = opened == kNumPerfEvents
                ? "ok"
                : "ok (some events unsupported on this cpu)";
#endif
}

PerfRegion::~PerfRegion() {
#ifdef FITREE_PERF_SUPPORTED
  for (int i = 0; i < kNumPerfEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
#endif
}

bool PerfRegion::Read(int event, Reading* out) const {
#ifdef FITREE_PERF_SUPPORTED
  if (fds_[event] < 0) return false;
  uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
  const ssize_t n = read(fds_[event], buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf))) return false;
  out->value = buf[0];
  out->time_enabled = buf[1];
  out->time_running = buf[2];
  return true;
#else
  (void)event;
  (void)out;
  return false;
#endif
}

void PerfRegion::Start() {
  if (!available_) return;
  for (int i = 0; i < kNumPerfEvents; ++i) {
    baseline_[i] = Reading{};
    if (!Read(i, &baseline_[i])) {
      // Leave the zero baseline; Stop() re-checks readability per event.
    }
  }
  started_ = true;
}

PerfSample PerfRegion::Stop() {
  PerfSample sample;
  sample.status = status_;
  if (!available_ || !started_) {
    if (available_ && !started_) sample.status = "not measured";
    return sample;
  }
  started_ = false;

  double* fields[kNumPerfEvents] = {
      &sample.cycles,     &sample.instructions, &sample.llc_misses,
      &sample.branch_misses, &sample.dtlb_misses,  &sample.task_clock_ns,
  };
  bool any = false;
  for (int i = 0; i < kNumPerfEvents; ++i) {
    Reading now;
    if (!Read(i, &now)) continue;
    const double d_value =
        static_cast<double>(now.value - baseline_[i].value);
    const double d_enabled =
        static_cast<double>(now.time_enabled - baseline_[i].time_enabled);
    const double d_running =
        static_cast<double>(now.time_running - baseline_[i].time_running);
    // Multiplex extrapolation: the event only counted for d_running of the
    // d_enabled ns it was scheduled-in for.
    const double scale = d_running > 0 ? d_enabled / d_running : 0.0;
    *fields[i] = d_running > 0 ? d_value * scale : -1.0;
    if (d_running > 0) {
      any = true;
      if (sample.time_enabled_ns == 0) {
        sample.time_enabled_ns = d_enabled;
        sample.time_running_ns = d_running;
      }
    }
  }
  sample.ok = any;
  if (!any) sample.status = "unavailable: counters never scheduled";
  return sample;
}

}  // namespace fitree::telemetry
