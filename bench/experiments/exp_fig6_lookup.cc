// Figure 6 (a, b, c): lookup latency vs. index size.
//
// For each dataset (Weblogs, IoT, Maps) this sweeps the FITing-Tree error
// threshold and the fixed-paging page size, and reports one record per
// method/parameter point: index size (MB) against lookup latency (ns/op).
// The Full (dense) index is a single point and binary search is the
// zero-space reference, exactly as in the paper's plots.
//
// Expected shape (paper Sec 7.1.2): FITing-Tree dominates fixed paging at
// every size, matches the full index's latency at a small fraction of its
// size, and both paged methods converge to binary search as the index
// shrinks to a handful of entries.

#include <span>
#include <string>
#include <vector>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

void RunFig6(Runner& runner) {
  const size_t n = ScaledN(8000000);
  const size_t probes_n = ScaledN(300000);
  // The paper reports per-thread latency; FITREE_BENCH_THREADS > 1 shares
  // each read-only index among that many lookup threads.
  const int threads = GetEnvInt("FITREE_BENCH_THREADS", 1);

  for (auto which : {datasets::RealWorld::kWeblogs, datasets::RealWorld::kIot,
                     datasets::RealWorld::kMaps}) {
    const std::string dataset = datasets::Name(which);
    const std::string dataset_key =
        "real/" + dataset + '/' + std::to_string(n) + "/42";
    const auto keys =
        MemoKeys(dataset_key, [&] { return datasets::Generate(which, n, 42); });
    const auto probes = MemoProbes(dataset_key, *keys, probes_n,
                                   workloads::Access::kUniform,
                                   /*absent_fraction=*/0.0, 43);

    const auto measure = [&](auto& index) {
      return runner.CollectReps([&] {
        return TimedLoopNsPerOpParallel(probes->size(), threads, [&](size_t i) {
          return index.Contains((*probes)[i]) ? uint64_t{1} : uint64_t{0};
        });
      });
    };

    // FITing-Tree error sweep (read-only: no insert buffers, as in the
    // paper's lookup experiment).
    for (double error : {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
                         262144.0}) {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = 0;
      auto tree = FitingTree<int64_t>::Create(*keys, config);
      const Stats stats = measure(*tree);
      runner.Report({{"dataset", dataset},
                     {"method", "FITing-Tree"},
                     {"param", "e=" + TablePrinter::Fmt(error, 0)}},
                    stats,
                    {{"index_size_MB",
                      static_cast<double>(tree->IndexSizeBytes()) / kMB}});
    }

    // Fixed-size paging sweep over the same granularities.
    for (size_t page : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u,
                        262144u}) {
      PagedIndexConfig config;
      config.page_size = page;
      config.buffer_size = 0;
      auto index = PagedIndex<int64_t>::Create(*keys, config);
      const Stats stats = measure(*index);
      runner.Report({{"dataset", dataset},
                     {"method", "Fixed"},
                     {"param", "page=" + std::to_string(page)}},
                    stats,
                    {{"index_size_MB",
                      static_cast<double>(index->IndexSizeBytes()) / kMB}});
    }

    // Full (dense) index: one point.
    {
      FullIndex<int64_t> full{std::span<const int64_t>(*keys)};
      const Stats stats = measure(full);
      runner.Report({{"dataset", dataset}, {"method", "Full"}, {"param", "-"}},
                    stats,
                    {{"index_size_MB",
                      static_cast<double>(full.IndexSizeBytes()) / kMB}});
    }

    // Binary search: zero space.
    {
      BinarySearchIndex<int64_t> binary{std::span<const int64_t>(*keys)};
      const Stats stats = measure(binary);
      runner.Report(
          {{"dataset", dataset}, {"method", "Binary"}, {"param", "-"}}, stats,
          {{"index_size_MB", 0.0}});
    }
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig6_lookup",
    "Fig 6: lookup latency vs index size (Weblogs/IoT/Maps)", RunFig6);

}  // namespace
}  // namespace fitree::bench
