#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/memory_cost.h"
#include "core/cost_model.h"
#include "datasets/datasets.h"

namespace {

using fitree::CostModelParams;
using fitree::EstimateIndexSizeBytes;
using fitree::EstimateLookupLatencyNs;
using fitree::LearnSegmentCurve;
using fitree::PickErrorForLatency;
using fitree::PickErrorForSpace;

TEST(CostModel, LatencyGrowsWithErrorAndSegments) {
  CostModelParams params;
  params.cache_miss_ns = 50.0;
  // Bigger windows cost more at a fixed segment count.
  EXPECT_LT(EstimateLookupLatencyNs(16.0, 1000.0, params),
            EstimateLookupLatencyNs(4096.0, 1000.0, params));
  // More segments cost more at a fixed error.
  EXPECT_LE(EstimateLookupLatencyNs(64.0, 100.0, params),
            EstimateLookupLatencyNs(64.0, 1e7, params));
  EXPECT_GT(EstimateLookupLatencyNs(16.0, 100.0, params), 0.0);
}

TEST(CostModel, SizeScalesLinearlyInSegments) {
  CostModelParams params;
  const double one = EstimateIndexSizeBytes(1000.0, params);
  const double ten = EstimateIndexSizeBytes(10000.0, params);
  EXPECT_NEAR(ten / one, 10.0, 0.01);
}

TEST(CostModel, CurveIsMonotoneInError) {
  const auto keys = fitree::datasets::Weblogs(30000, 1);
  const std::vector<double> errors{16.0, 64.0, 256.0, 1024.0};
  const auto curve = LearnSegmentCurve<int64_t>(keys, errors);
  ASSERT_EQ(curve.size(), errors.size());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].segments, curve[i - 1].segments);
    EXPECT_GE(curve[i].segments, 1.0);
  }
}

TEST(CostModel, SelectorsRespectTheirConstraints) {
  const auto keys = fitree::datasets::Weblogs(30000, 1);
  const std::vector<double> candidates{16.0, 64.0, 256.0, 1024.0, 4096.0};
  const auto curve = LearnSegmentCurve<int64_t>(keys, candidates);
  CostModelParams params;
  params.cache_miss_ns = 50.0;

  const auto latency_pick =
      PickErrorForLatency(curve, params, 1200.0, candidates);
  ASSERT_TRUE(latency_pick.has_value());
  EXPECT_LE(latency_pick->est_latency_ns, 1200.0);
  // Among candidates meeting the SLA it returns the smallest index.
  for (const double error : candidates) {
    for (const auto& point : curve) {
      if (point.error != error) continue;
      const double lat = EstimateLookupLatencyNs(error, point.segments, params);
      if (lat <= 1200.0) {
        EXPECT_LE(latency_pick->est_size_bytes,
                  EstimateIndexSizeBytes(point.segments, params) + 1e-9);
      }
    }
  }

  const auto space_pick =
      PickErrorForSpace(curve, params, 4.0 * 1024 * 1024, candidates);
  ASSERT_TRUE(space_pick.has_value());
  EXPECT_LE(space_pick->est_size_bytes, 4.0 * 1024 * 1024);

  // Impossible constraints yield no pick.
  EXPECT_FALSE(PickErrorForLatency(curve, params, 1.0, candidates).has_value());
  EXPECT_FALSE(PickErrorForSpace(curve, params, 1.0, candidates).has_value());
}

TEST(MemoryCost, MeasuresPlausibleLatency) {
  // A tiny working set fits in cache; just sanity-check the range.
  const double ns = fitree::MeasureRandomAccessNs(1 << 20);
  EXPECT_GT(ns, 0.1);
  EXPECT_LT(ns, 1000.0);
}

}  // namespace
