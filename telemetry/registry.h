// Process-wide telemetry registry and the instrumentation helpers the
// engines call.
//
// One Registry singleton (leaked heap object, Registry::Get) owns a
// [engine][op] grid of sharded Counters and latency histograms plus the
// named counters/gauges from metrics.h. Engines never talk to the
// singleton directly — they use the helpers at the bottom of this file
// (CountOp / ScopedOp / ScopedDuration / CounterAdd / GaugeAdd), which are
// the only things stubbed out under -DFITREE_NO_TELEMETRY. That keeps the
// escape hatch a pure hot-path question: the Registry, snapshot, and
// metric types stay fully functional in both builds.
//
// Cost model (measured in EXPERIMENTS.md "Telemetry"):
//   - op *counts* are exact: every call does one sharded relaxed
//     fetch_add (~1-3 ns, no cross-thread line sharing),
//   - op *latencies* are sampled: a thread_local countdown fires the
//     clock + histogram record once per FITREE_TELEM_SAMPLE calls
//     (default 64), amortizing two steady_clock reads to well under a
//     nanosecond per op,
//   - merges and compactions (rare, long) are always timed via
//     ScopedDuration.
// Sampled ops also emit a trace record when FITREE_TRACE is on, so the
// trace and the histograms describe the same sample population.

#ifndef FITREE_TELEMETRY_REGISTRY_H_
#define FITREE_TELEMETRY_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/phase.h"
#include "telemetry/trace.h"

namespace fitree::telemetry {

// Value-type snapshot of the whole registry: mergeable with DeltaSince for
// interval measurements (the bench harness snapshots before/after a rep).
struct RegistrySnapshot {
  struct OpSnapshot {
    uint64_t count = 0;
    HistogramSnapshot latency;
  };

  OpSnapshot ops[kNumEngines][kNumOps];
  // Phase cells reuse OpSnapshot: `count` is the number of *sampled* spans
  // (phases ride the op sampling countdown, see phase.h), `latency` holds
  // their self times.
  OpSnapshot phases[kNumEngines][kNumPhases];
  uint64_t counters[kNumCounters] = {};
  int64_t gauges[kNumGauges] = {};

  const OpSnapshot& op(Engine e, Op o) const {
    return ops[static_cast<size_t>(e)][static_cast<size_t>(o)];
  }
  const OpSnapshot& phase(Engine e, Phase p) const {
    return phases[static_cast<size_t>(e)][static_cast<size_t>(p)];
  }
  uint64_t counter(CounterId id) const {
    return counters[static_cast<size_t>(id)];
  }
  int64_t gauge(GaugeId id) const { return gauges[static_cast<size_t>(id)]; }

  // This snapshot minus an earlier one. Counters and histogram buckets are
  // monotone so the difference is an exact interval measurement; gauges
  // are levels, and the delta keeps the *later* level (the meaningful
  // "where did it end up" number for an interval report).
  RegistrySnapshot DeltaSince(const RegistrySnapshot& before) const {
    RegistrySnapshot d;
    for (size_t e = 0; e < kNumEngines; ++e) {
      for (size_t o = 0; o < kNumOps; ++o) {
        d.ops[e][o].count = ops[e][o].count - before.ops[e][o].count;
        d.ops[e][o].latency =
            ops[e][o].latency.DeltaSince(before.ops[e][o].latency);
      }
      for (size_t p = 0; p < kNumPhases; ++p) {
        d.phases[e][p].count = phases[e][p].count - before.phases[e][p].count;
        d.phases[e][p].latency =
            phases[e][p].latency.DeltaSince(before.phases[e][p].latency);
      }
    }
    for (size_t i = 0; i < kNumCounters; ++i) {
      d.counters[i] = counters[i] - before.counters[i];
    }
    for (size_t i = 0; i < kNumGauges; ++i) d.gauges[i] = gauges[i];
    return d;
  }
};

// The live registry. ~500 KB of atomics (the 28 op + 32 phase histograms
// dominate); exactly one process-wide instance behind Get(), but the type
// is constructible so tests can exercise isolated instances.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide instance: a constinit inline global (defined right
  // below the class), so Get() compiles to a direct address — no
  // initialization guard, no out-of-line call to act as an inlining
  // barrier inside instrumented hot loops. The registry is trivially
  // destructible (all-atomic state), so instrumentation during static
  // destruction stays safe without leaking a heap object.
  static Registry& Get();

  Counter& op_count(Engine e, Op o) {
    return op_counts_[static_cast<size_t>(e)][static_cast<size_t>(o)];
  }
  LatencyHistogram& op_latency(Engine e, Op o) {
    return op_latencies_[static_cast<size_t>(e)][static_cast<size_t>(o)];
  }
  Counter& phase_count(Engine e, Phase p) {
    return phase_counts_[static_cast<size_t>(e)][static_cast<size_t>(p)];
  }
  LatencyHistogram& phase_latency(Engine e, Phase p) {
    return phase_latencies_[static_cast<size_t>(e)][static_cast<size_t>(p)];
  }
  Counter& counter(CounterId id) {
    return counters_[static_cast<size_t>(id)];
  }
  Gauge& gauge(GaugeId id) { return gauges_[static_cast<size_t>(id)]; }

  RegistrySnapshot Snapshot() const {
    RegistrySnapshot snap;
    for (size_t e = 0; e < kNumEngines; ++e) {
      for (size_t o = 0; o < kNumOps; ++o) {
        snap.ops[e][o].count = op_counts_[e][o].Load();
        snap.ops[e][o].latency = op_latencies_[e][o].Snapshot();
      }
      for (size_t p = 0; p < kNumPhases; ++p) {
        snap.phases[e][p].count = phase_counts_[e][p].Load();
        snap.phases[e][p].latency = phase_latencies_[e][p].Snapshot();
      }
    }
    for (size_t i = 0; i < kNumCounters; ++i) {
      snap.counters[i] = counters_[i].Load();
    }
    for (size_t i = 0; i < kNumGauges; ++i) snap.gauges[i] = gauges_[i].Load();
    return snap;
  }

 private:
  Counter op_counts_[kNumEngines][kNumOps];
  LatencyHistogram op_latencies_[kNumEngines][kNumOps];
  Counter phase_counts_[kNumEngines][kNumPhases];
  LatencyHistogram phase_latencies_[kNumEngines][kNumPhases];
  Counter counters_[kNumCounters];
  Gauge gauges_[kNumGauges];
};

static_assert(std::is_trivially_destructible_v<Registry>,
              "instrumentation may run during static destruction");

namespace detail {
// ~500 KB of zero-initialized atomics in .bss.
inline constinit Registry g_registry;
}  // namespace detail

inline Registry& Registry::Get() { return detail::g_registry; }

#ifdef FITREE_NO_TELEMETRY

// ---- Escape hatch: every instrumentation helper is a no-op. ----

inline void CountOp(Engine, Op, uint64_t = 1) {}
inline void CounterAdd(CounterId, uint64_t = 1) {}
inline void GaugeAdd(GaugeId, int64_t) {}
inline void RecordDuration(Engine, Op, uint64_t) {}
inline uint64_t SamplePeriod() { return 0; }
inline void SetSamplePeriodForTest(uint64_t) {}

namespace detail {
// Never samples: callers that gate explicit timing on the sampling
// countdown (the server's cross-thread request stamps) compile their
// timed branch away with the rest of the instrumentation.
inline bool ShouldSample() { return false; }
}  // namespace detail

class ScopedOp {
 public:
  ScopedOp(Engine, Op) {}
};

class ScopedDuration {
 public:
  ScopedDuration(Engine, Op) {}
  void Cancel() {}
};

#else  // !FITREE_NO_TELEMETRY

// Exact call count for (engine, op) — the per-op hot-path cost.
inline void CountOp(Engine e, Op o, uint64_t n = 1) {
  Registry::Get().op_count(e, o).Add(n);
}

inline void CounterAdd(CounterId id, uint64_t n = 1) {
  Registry::Get().counter(id).Add(n);
}

inline void GaugeAdd(GaugeId id, int64_t delta) {
  Registry::Get().gauge(id).Add(delta);
}

// Records an already-measured duration into the (engine, op) histogram.
inline void RecordDuration(Engine e, Op o, uint64_t ns) {
  Registry::Get().op_latency(e, o).Record(ns);
}

// Latency sample period (FITREE_TELEM_SAMPLE, default 64, min 1; cached at
// first use). Defined in telemetry.cc.
uint64_t SamplePeriod();
// Test hook: forces the period (1 == time every op) for deterministic
// histogram population. Affects threads' countdowns lazily.
void SetSamplePeriodForTest(uint64_t period);

namespace detail {
// Per-thread countdown to the next latency sample. Starting at 1 makes a
// thread's first op sampled, so short tests see nonempty histograms.
inline bool ShouldSample() {
  thread_local uint64_t countdown = 1;
  if (--countdown == 0) {
    countdown = SamplePeriod();
    return true;
  }
  return false;
}
}  // namespace detail

// Counts one (engine, op) call always; on sampled calls also times it into
// the latency histogram, arms phase spans (phase.h) for the op's duration,
// and, when tracing is on, emits a trace record.
class ScopedOp {
 public:
  ScopedOp(Engine e, Op o) : engine_(e), op_(o) {
    CountOp(e, o);
    if (detail::ShouldSample()) {
      detail::PhaseContext& ctx = detail::g_phase_ctx;
      saved_ctx_ = ctx;
      ctx.timing = true;
      ctx.op = static_cast<uint8_t>(o);
      start_ns_ = NowNs();
    }
  }

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

  ~ScopedOp() {
    if (start_ns_ == 0) return;
    const uint64_t elapsed = NowNs() - start_ns_;
    // Interior spans are balanced by scoping, so restoring the saved
    // context also restores the enclosing op's innermost-span pointer
    // (nested-op case: an op issued from inside another sampled op).
    detail::g_phase_ctx = saved_ctx_;
    RecordDuration(engine_, op_, elapsed);
    trace::Emit(engine_, op_, elapsed);
  }

 private:
  Engine engine_;
  Op op_;
  uint64_t start_ns_ = 0;  // 0 == not sampled
  detail::PhaseContext saved_ctx_;
};

// Always-timed scope for rare structural work (merge, compact): counts and
// times every call. Cancel() for early-out paths that shouldn't count as
// the event having happened (e.g. a merge finding its segment already
// retired).
class ScopedDuration {
 public:
  ScopedDuration(Engine e, Op o)
      : engine_(e), op_(o) {
    detail::PhaseContext& ctx = detail::g_phase_ctx;
    saved_ctx_ = ctx;
    ctx.timing = true;  // structural work always gets phase attribution
    ctx.op = static_cast<uint8_t>(o);
    start_ns_ = NowNs();
  }

  ScopedDuration(const ScopedDuration&) = delete;
  ScopedDuration& operator=(const ScopedDuration&) = delete;

  void Cancel() { cancelled_ = true; }

  // Nanoseconds since construction (for callers that also want the value).
  uint64_t ElapsedNs() const { return NowNs() - start_ns_; }

  ~ScopedDuration() {
    detail::g_phase_ctx = saved_ctx_;
    if (cancelled_) return;
    const uint64_t elapsed = NowNs() - start_ns_;
    CountOp(engine_, op_);
    RecordDuration(engine_, op_, elapsed);
    trace::Emit(engine_, op_, elapsed);
  }

 private:
  Engine engine_;
  Op op_;
  uint64_t start_ns_;
  bool cancelled_ = false;
  detail::PhaseContext saved_ctx_;
};

#endif  // FITREE_NO_TELEMETRY

}  // namespace fitree::telemetry

#endif  // FITREE_TELEMETRY_REGISTRY_H_
