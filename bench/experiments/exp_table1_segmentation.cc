// Table 1: ShrinkingCone vs. the optimal segmentation.
//
// Reproduces the paper's Table 1 rows (segment counts and the
// greedy/optimal ratio) on the synthetic stand-ins for the NYC Taxi, OSM,
// Weblogs and IoT datasets, plus the Appendix A.3 adversarial construction
// where greedy is arbitrarily worse than optimal. The timed body is the
// greedy ShrinkingCone pass (ns per key); the O(n)-memory optimal DP runs
// once per cell, outside the timed region.
//
// The paper capped samples at 1e6 elements because its optimal
// implementation needed O(n^2) memory (>= 1TB); our O(n) memory DP is
// instead time-bound, so the default sample is 100k elements
// (FITREE_BENCH_SCALE scales it).

#include <functional>
#include <string>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/optimal_segmentation.h"
#include "core/shrinking_cone.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

void RunTable1(Runner& runner) {
  const size_t n = ScaledN(100000);

  // Mirror the paper's dataset/error combinations (error=1000 rows exist
  // only where the paper reports them).
  struct Row {
    const char* name;
    std::function<std::vector<int64_t>()> make;
    std::vector<double> errors;
  };
  const Row rows[] = {
      {"Taxi drop lat", [&] { return datasets::TaxiDropLat(n, 5); },
       {10, 100, 1000}},
      {"Taxi drop lon", [&] { return datasets::TaxiDropLon(n, 6); },
       {10, 100, 1000}},
      {"Taxi pick time", [&] { return datasets::TaxiPickupTime(n, 4); },
       {10, 100}},
      {"OSM lon", [&] { return datasets::OsmLongitude(n, 7); }, {10, 100}},
      {"Weblogs", [&] { return datasets::Weblogs(n, 1); }, {10, 100}},
      {"IoT", [&] { return datasets::Iot(n, 2); }, {10, 100}},
  };

  for (const Row& row : rows) {
    const auto keys = MemoKeys(
        "table1/" + std::string(row.name) + '/' + std::to_string(n), row.make);
    for (double error : row.errors) {
      size_t greedy = 0;
      const Stats stats = runner.CollectReps([&] {
        Timer timer;
        greedy = SegmentShrinkingCone<int64_t>(*keys, error).size();
        return static_cast<double>(timer.ElapsedNs()) /
               static_cast<double>(keys->size());
      });
      const size_t optimal = OptimalSegmentCount<int64_t>(*keys, error);
      runner.Report(
          {{"dataset", row.name}, {"error", TablePrinter::Fmt(error, 0)}},
          stats,
          {{"shrinking_cone", static_cast<double>(greedy)},
           {"optimal", static_cast<double>(optimal)},
           {"ratio",
            static_cast<double>(greedy) / static_cast<double>(optimal)}});
    }
  }

  // Appendix A.3: adversarial input where greedy = N+2 while optimal = 2.
  for (size_t n_patterns : {10u, 100u, 1000u}) {
    const auto data = datasets::AdversarialCone(100.0, n_patterns);
    size_t greedy = 0;
    const Stats stats = runner.CollectReps([&] {
      Timer timer;
      greedy = SegmentShrinkingCone<double>(data.keys, 100.0).size();
      return static_cast<double>(timer.ElapsedNs()) /
             static_cast<double>(data.keys.size());
    });
    const size_t optimal = OptimalSegmentCount<double>(data.keys, 100.0);
    runner.Report({{"dataset", "adversarial(A.3)"},
                   {"error", std::to_string(n_patterns) + " patterns"}},
                  stats,
                  {{"shrinking_cone", static_cast<double>(greedy)},
                   {"optimal", static_cast<double>(optimal)},
                   {"ratio", static_cast<double>(greedy) /
                                 static_cast<double>(optimal)}});
  }
}

FITREE_REGISTER_EXPERIMENT(
    "table1_segmentation",
    "Table 1: ShrinkingCone vs optimal segmentation + A.3 adversarial",
    RunTable1);

}  // namespace
}  // namespace fitree::bench
