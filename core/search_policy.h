// In-window search strategies for the final error-bounded search step
// (paper Sec 4.1.2: once a segment predicts a position, the key is located
// with a bounded search around it; binary, linear and exponential variants
// are compared in bench_ablations).

#ifndef FITREE_CORE_SEARCH_POLICY_H_
#define FITREE_CORE_SEARCH_POLICY_H_

#include <algorithm>
#include <cstddef>

namespace fitree {

enum class SearchPolicy {
  kBinary,       // std::lower_bound over the whole window
  kLinear,       // forward scan from the window start
  kExponential,  // gallop outward from the predicted position, then binary
};

namespace detail {

// Lower-bound (first index whose key is >= `key`) over sorted
// data[begin, end), given that the answer is guaranteed to lie in
// [begin, end] and that `hint` approximates it.
template <typename K>
size_t BoundedLowerBound(const K* data, size_t begin, size_t end, size_t hint,
                         const K& key, SearchPolicy policy) {
  if (begin >= end) return begin;
  switch (policy) {
    case SearchPolicy::kBinary:
      return static_cast<size_t>(
          std::lower_bound(data + begin, data + end, key) - data);
    case SearchPolicy::kLinear: {
      size_t i = begin;
      while (i < end && data[i] < key) ++i;
      return i;
    }
    case SearchPolicy::kExponential: {
      const size_t h = std::clamp(hint, begin, end - 1);
      size_t lo, hi;
      if (data[h] < key) {
        // Answer in (h, end]; gallop right doubling the step.
        size_t step = 1;
        lo = h;
        hi = h + step;
        while (hi < end && data[hi] < key) {
          lo = hi;
          step <<= 1;
          hi = h + step;
        }
        if (hi > end) hi = end;
      } else {
        // Answer in [begin, h]; gallop left.
        size_t step = 1;
        hi = h;
        lo = h >= begin + step ? h - step : begin;
        while (lo > begin && data[lo] >= key) {
          hi = lo;
          step <<= 1;
          lo = h >= begin + step ? h - step : begin;
        }
      }
      return static_cast<size_t>(
          std::lower_bound(data + lo, data + hi, key) - data);
    }
  }
  return begin;  // unreachable
}

}  // namespace detail
}  // namespace fitree

#endif  // FITREE_CORE_SEARCH_POLICY_H_
