// Fixed-size page format for the disk-resident FITing-Tree (paper Sec 5's
// page-granular cost model made literal): every on-disk page carries a
// 16-byte typed header whose CRC32 covers the rest of the page, so torn
// writes and bit rot are detected at read time rather than silently served.

#ifndef FITREE_STORAGE_PAGE_H_
#define FITREE_STORAGE_PAGE_H_

#include <cstdlib>

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fitree::storage {

inline constexpr size_t kDefaultPageBytes = 4096;
// Small enough that tests can force multi-page files from tiny datasets,
// large enough that every page type fits its header plus one record.
inline constexpr size_t kMinPageBytes = 128;
// Version 2 (ISSUE 10): ping-pong meta slots in pages 0-1 and per-segment
// leaf-page addressing, enabling crash-safe append-and-republish
// compaction. Version-1 files are rejected at Open.
inline constexpr uint16_t kPageFormatVersion = 2;

// O_DIRECT requires the destination buffer, the file offset, and the
// transfer size to be multiples of the device's logical block size.
// Aligning every page buffer to 4096 satisfies any block size in practice.
inline constexpr size_t kDirectIoAlignment = 4096;

enum class PageType : uint16_t {
  kMeta = 1,          // page 0: file-wide metadata (SegmentFileMeta)
  kSegmentTable = 2,  // packed segment records
  kLeaf = 3,          // sorted key/payload entries
};

struct PageHeader {
  uint32_t checksum;  // CRC32 of bytes [4, page_bytes)
  uint16_t type;      // PageType
  uint16_t version;   // kPageFormatVersion
  uint32_t page_id;   // file-global page number, guards misdirected reads
  uint32_t count;     // records stored in this page
};
static_assert(sizeof(PageHeader) == 16);
inline constexpr size_t kPageHeaderBytes = sizeof(PageHeader);

namespace detail {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace detail

inline uint32_t Crc32(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32Table[(crc ^ p[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// Unaligned-safe record access inside raw page buffers.
template <typename T>
T LoadAs(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void StoreAs(std::byte* p, const T& v) {
  std::memcpy(p, &v, sizeof(T));
}

// Stamps the header and checksum onto a fully-populated page buffer. The
// caller must have zero-initialized the buffer before filling it so struct
// padding and the unused tail hash deterministically.
inline void SealPage(std::byte* page, size_t page_bytes, PageType type,
                     uint32_t page_id, uint32_t count) {
  PageHeader h{};
  h.checksum = 0;
  h.type = static_cast<uint16_t>(type);
  h.version = kPageFormatVersion;
  h.page_id = page_id;
  h.count = count;
  StoreAs(page, h);
  StoreAs(page, Crc32(page + sizeof(uint32_t), page_bytes - sizeof(uint32_t)));
}

// Returns false when the checksum, version, type, or page id disagree with
// what the caller expected to read.
inline bool VerifyPage(const std::byte* page, size_t page_bytes,
                       PageType expected_type, uint32_t expected_id,
                       PageHeader* out = nullptr) {
  const PageHeader h = LoadAs<PageHeader>(page);
  if (h.checksum !=
      Crc32(page + sizeof(uint32_t), page_bytes - sizeof(uint32_t))) {
    return false;
  }
  if (h.version != kPageFormatVersion) return false;
  if (h.type != static_cast<uint16_t>(expected_type)) return false;
  if (h.page_id != expected_id) return false;
  if (out != nullptr) *out = h;
  return true;
}

// One entry of a batched page read: filled in by the caller (page id +
// destination), answered by the source (ok).
struct PageReadRequest {
  uint32_t page_id = 0;
  std::byte* out = nullptr;
  bool ok = false;
};

// Source of verified page reads for the buffer pool: implemented by
// SegmentFileReader (pread + VerifyPage) and by in-memory fakes in tests.
class PageSource {
 public:
  virtual ~PageSource() = default;

  // Fills `out` (page_bytes() long) with page `page_id`. Returns false on
  // I/O failure or page verification failure; `out` is then unspecified.
  virtual bool ReadPageInto(uint32_t page_id, std::byte* out) = 0;

  // Batched form: resolves all `n` requests, setting each request's `ok`.
  // The base implementation reads serially; SegmentFileReader overrides it
  // to submit every read before waiting on any (storage/async_io.h), which
  // is what lets a batch of independent lookups overlap their page faults.
  virtual void ReadPagesInto(PageReadRequest* reqs, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      reqs[i].ok = ReadPageInto(reqs[i].page_id, reqs[i].out);
    }
  }
};

// Page-granular aligned allocation (kDirectIoAlignment) so pool frames and
// scratch buffers are always O_DIRECT-legal destinations. Size is rounded
// up to the alignment because aligned_alloc requires it.
class AlignedBytes {
 public:
  AlignedBytes() = default;
  explicit AlignedBytes(size_t n) : size_(n) {
    const size_t rounded =
        (n + kDirectIoAlignment - 1) / kDirectIoAlignment * kDirectIoAlignment;
    data_ = static_cast<std::byte*>(
        std::aligned_alloc(kDirectIoAlignment, rounded));
    std::memset(data_, 0, rounded);
  }
  ~AlignedBytes() { std::free(data_); }

  AlignedBytes(AlignedBytes&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  AlignedBytes& operator=(AlignedBytes&& o) noexcept {
    if (this != &o) {
      std::free(data_);
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  AlignedBytes(const AlignedBytes&) = delete;
  AlignedBytes& operator=(const AlignedBytes&) = delete;

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_PAGE_H_
