// Multi-threaded YCSB-style benchmark for the concurrent FITing-Tree
// (concurrency/concurrent_fiting_tree.h).
//
// Sweep: workload mix (A 50r/50i, B 95r/5i, C 100r, E 95scan/5i) ×
// access skew (uniform, Zipfian theta=0.99) × thread count (powers of two
// up to FITREE_BENCH_MAX_THREADS). Each cell runs three structures:
//   concurrent — epoch-protected reads, per-segment insert latches
//   mutex      — the same FitingTree behind one std::mutex
//   single     — plain FitingTree, 1 thread only (the no-sync floor)
// and reports aggregate Mops/s plus sampled p50/p99 op latency.
//
// Every run is validated against a std::set reference built from the same
// per-thread operation logs: final size must match, membership must agree
// on a probe sample, and quiesced range scans must return exactly the
// reference contents. Thread t's stream is seeded ThreadSeed(base, t)
// (workloads/workloads.h), so runs are reproducible op-for-op.
//
// Env knobs (see EXPERIMENTS.md): FITREE_BENCH_SCALE scales sizes,
// FITREE_BENCH_MAX_THREADS caps the sweep (default 8),
// FITREE_BENCH_BG_MERGE=1 routes merges to the background worker.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "concurrency/concurrent_fiting_tree.h"
#include "concurrency/mutex_fiting_tree.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

using fitree::ConcurrentFitingTree;
using fitree::ConcurrentFitingTreeConfig;
using fitree::FitingTree;
using fitree::FitingTreeConfig;
using fitree::MutexFitingTree;
using fitree::TablePrinter;
using fitree::Timer;
using fitree::workloads::Access;
using fitree::workloads::Op;
using fitree::workloads::OpMix;
using fitree::workloads::OpType;

using Key = int64_t;
using Streams = std::vector<std::vector<Op<Key>>>;

constexpr uint64_t kBaseSeed = 0xF17EE5EEDull;
constexpr double kScanSelectivity = 0.0001;
constexpr int kLatencySampleEvery = 16;

struct Mix {
  const char* name;
  OpMix mix;
};

struct RunResult {
  double mops = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

// Drives `streams[t]` on thread t against `index`, timing the whole run for
// aggregate throughput and sampling every kLatencySampleEvery-th op for the
// latency percentiles. Returns per-op latency samples merged across
// threads.
template <typename Index>
RunResult DriveThreads(Index& index, const Streams& streams) {
  const int threads = static_cast<int>(streams.size());
  std::vector<std::vector<int64_t>> samples(streams.size());
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(streams.size());
  Timer wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<Op<Key>>& ops = streams[static_cast<size_t>(t)];
      std::vector<int64_t>& lat = samples[static_cast<size_t>(t)];
      lat.reserve(ops.size() / kLatencySampleEvery + 1);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t sink = 0;
      Timer op_timer;
      for (size_t i = 0; i < ops.size(); ++i) {
        const Op<Key>& op = ops[i];
        // Only sampled ops pay for clock reads; a timer on every op would
        // add a fixed ~20-30 ns to sub-200 ns operations.
        const bool sampled = i % kLatencySampleEvery == 0;
        if (sampled) op_timer.Reset();
        switch (op.type) {
          case OpType::kRead:
            sink += index.Contains(op.key) ? 1 : 0;
            break;
          case OpType::kInsert:
            index.Insert(op.key);
            break;
          case OpType::kScan: {
            uint64_t acc = 0;
            index.ScanRange(op.key, op.hi, [&](Key k) {
              acc += static_cast<uint64_t>(k);
            });
            sink += acc;
            break;
          }
        }
        if (sampled) lat.push_back(op_timer.ElapsedNs());
      }
      fitree::bench::SinkValue(sink);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  wall.Reset();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double seconds = wall.ElapsedSeconds();

  size_t total_ops = 0;
  for (const auto& s : streams) total_ops += s.size();
  std::vector<int64_t> merged;
  for (auto& s : samples) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  std::sort(merged.begin(), merged.end());
  RunResult r;
  r.mops = static_cast<double>(total_ops) / seconds / 1e6;
  if (!merged.empty()) {
    r.p50_ns = static_cast<double>(merged[merged.size() / 2]);
    r.p99_ns = static_cast<double>(merged[merged.size() * 99 / 100]);
  }
  return r;
}

// Reference final state: base keys plus every insert in the op log (set
// semantics make the result schedule-independent).
std::set<Key> ReferenceSet(const std::vector<Key>& keys,
                           const Streams& streams) {
  std::set<Key> ref(keys.begin(), keys.end());
  for (const auto& stream : streams) {
    for (const Op<Key>& op : stream) {
      if (op.type == OpType::kInsert) ref.insert(op.key);
    }
  }
  return ref;
}

// Post-run validation of a quiesced index against the reference set:
// size, membership on a mixed present/absent probe sample, and exact
// range-scan contents. Any mismatch aborts the benchmark.
template <typename Index>
void Validate(Index& index, const std::set<Key>& ref, const char* label) {
  if (index.size() != ref.size()) {
    std::fprintf(stderr, "%s: size %zu != reference %zu\n", label,
                 index.size(), ref.size());
    std::exit(1);
  }
  std::mt19937_64 rng(kBaseSeed ^ 0xABCD);
  std::vector<Key> ref_keys(ref.begin(), ref.end());
  for (int i = 0; i < 2000; ++i) {
    const Key probe = i % 2 == 0
                          ? ref_keys[rng() % ref_keys.size()]
                          : static_cast<Key>(rng() % (ref_keys.back() + 2));
    if (index.Contains(probe) != (ref.count(probe) > 0)) {
      std::fprintf(stderr, "%s: membership mismatch at key %lld\n", label,
                   static_cast<long long>(probe));
      std::exit(1);
    }
  }
  for (int i = 0; i < 10; ++i) {
    const size_t start = rng() % ref_keys.size();
    const size_t end =
        std::min(ref_keys.size() - 1, start + ref_keys.size() / 100);
    std::vector<Key> got;
    index.ScanRange(ref_keys[start], ref_keys[end],
                    [&](Key k) { got.push_back(k); });
    const auto lo = ref.lower_bound(ref_keys[start]);
    const auto hi = ref.upper_bound(ref_keys[end]);
    if (!std::equal(got.begin(), got.end(), lo, hi)) {
      std::fprintf(stderr, "%s: range scan mismatch at query %d\n", label, i);
      std::exit(1);
    }
  }
}

}  // namespace

int main() {
  // FITREE_BENCH_N / FITREE_BENCH_OPS override the scaled defaults — the
  // TSan CI smoke uses them to stay inside sanitizer time budgets.
  const size_t n = static_cast<size_t>(fitree::GetEnvInt64(
      "FITREE_BENCH_N",
      static_cast<int64_t>(fitree::bench::ScaledN(400'000))));
  const size_t ops_per_thread = static_cast<size_t>(fitree::GetEnvInt64(
      "FITREE_BENCH_OPS",
      static_cast<int64_t>(fitree::bench::ScaledN(120'000))));
  const int max_threads =
      std::max(1, fitree::GetEnvInt("FITREE_BENCH_MAX_THREADS", 8));
  const bool bg_merge = fitree::GetEnvInt("FITREE_BENCH_BG_MERGE", 0) != 0;
  const double error = 128.0;

  const auto keys = fitree::datasets::Weblogs(n, 11);
  std::printf("bench_concurrent: %zu keys, %zu ops/thread, error=%.0f, "
              "max_threads=%d, bg_merge=%d, hw_threads=%u\n",
              keys.size(), ops_per_thread, error, max_threads,
              static_cast<int>(bg_merge),
              std::thread::hardware_concurrency());

  const Mix mixes[] = {
      {"A(50r/50i)", {.read = 0.5, .insert = 0.5, .scan = 0.0}},
      {"B(95r/5i)", {.read = 0.95, .insert = 0.05, .scan = 0.0}},
      {"C(100r)", {.read = 1.0, .insert = 0.0, .scan = 0.0}},
      {"E(95s/5i)", {.read = 0.0, .insert = 0.05, .scan = 0.95}},
  };
  const Access accesses[] = {Access::kUniform, Access::kZipfian};

  fitree::bench::PrintHeader(
      "YCSB sweep: aggregate Mops/s and sampled op latency");
  TablePrinter table({"mix", "access", "threads", "structure", "Mops",
                      "p50_ns", "p99_ns", "segments", "merges", "check"});

  for (const Mix& mix : mixes) {
    for (const Access access : accesses) {
      for (int threads = 1; threads <= max_threads; threads *= 2) {
        const auto streams = fitree::workloads::MakeThreadOpStreams<Key>(
            keys, threads, ops_per_thread, mix.mix, access, kScanSelectivity,
            kBaseSeed);
        const std::set<Key> ref = ReferenceSet(keys, streams);
        const char* access_name =
            access == Access::kUniform ? "uniform" : "zipfian";

        {
          ConcurrentFitingTreeConfig config;
          config.error = error;
          config.background_merge = bg_merge;
          auto tree = ConcurrentFitingTree<Key>::Create(keys, config);
          const RunResult r = DriveThreads(*tree, streams);
          tree->QuiesceMerges();
          Validate(*tree, ref, "concurrent");
          const auto stats = tree->stats();
          table.AddRow({mix.name, access_name, std::to_string(threads),
                        "concurrent", TablePrinter::Fmt(r.mops, 3),
                        TablePrinter::Fmt(r.p50_ns, 0),
                        TablePrinter::Fmt(r.p99_ns, 0),
                        std::to_string(tree->SegmentCount()),
                        TablePrinter::Fmt(stats.segment_merges), "ok"});
        }

        {
          FitingTreeConfig config;
          config.error = error;
          auto tree = MutexFitingTree<Key>::Create(keys, config);
          const RunResult r = DriveThreads(*tree, streams);
          Validate(*tree, ref, "mutex");
          table.AddRow({mix.name, access_name, std::to_string(threads),
                        "mutex", TablePrinter::Fmt(r.mops, 3),
                        TablePrinter::Fmt(r.p50_ns, 0),
                        TablePrinter::Fmt(r.p99_ns, 0),
                        std::to_string(tree->SegmentCount()), "-", "ok"});
        }

        if (threads == 1) {
          FitingTreeConfig config;
          config.error = error;
          auto tree = FitingTree<Key>::Create(keys, config);
          const RunResult r = DriveThreads(*tree, streams);
          Validate(*tree, ref, "single");
          table.AddRow({mix.name, access_name, "1", "single",
                        TablePrinter::Fmt(r.mops, 3),
                        TablePrinter::Fmt(r.p50_ns, 0),
                        TablePrinter::Fmt(r.p99_ns, 0),
                        std::to_string(tree->SegmentCount()), "-", "ok"});
        }
      }
    }
  }
  table.Print(std::cout);
  return 0;
}
