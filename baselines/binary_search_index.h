// The zero-space baseline: no index at all, just binary search over the
// sorted data array (the lower-left anchor of the paper's Figure 6 plots).

#ifndef FITREE_BASELINES_BINARY_SEARCH_INDEX_H_
#define FITREE_BASELINES_BINARY_SEARCH_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>

namespace fitree {

template <typename K>
class BinarySearchIndex {
 public:
  // Holds a view of the caller's sorted keys; the caller keeps them alive.
  explicit BinarySearchIndex(std::span<const K> keys) : keys_(keys) {}

  bool Contains(const K& key) const {
    return std::binary_search(keys_.begin(), keys_.end(), key);
  }

  // The rank of `key` when present.
  std::optional<size_t> Find(const K& key) const {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) {
      return static_cast<size_t>(it - keys_.begin());
    }
    return std::nullopt;
  }

  // Calls fn(key) for every key in [lo, hi] in ascending order.
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn fn) const {
    for (auto it = std::lower_bound(keys_.begin(), keys_.end(), lo);
         it != keys_.end() && *it <= hi; ++it) {
      fn(*it);
    }
  }

  size_t IndexSizeBytes() const { return 0; }
  size_t size() const { return keys_.size(); }

 private:
  std::span<const K> keys_;
};

}  // namespace fitree

#endif  // FITREE_BASELINES_BINARY_SEARCH_INDEX_H_
