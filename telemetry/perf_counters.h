// Hardware performance-counter profiling over Linux perf_event_open(2).
//
// PerfRegion opens a fixed set of per-thread counters — cycles,
// instructions, LLC-load-misses, branch-misses, dTLB-load-misses, and
// task-clock — and Start()/Stop() bracket a measured region, returning the
// scaled counter deltas. The bench harness wraps every experiment cell's
// timed repetitions in one region, so BENCH_results.json carries a PMU
// block (IPC, LLC-miss/op, ...) per cell alongside the wall-clock stats.
//
// Counters are opened with inherit=1 so worker threads spawned inside a
// region (TimedLoopNsPerOpParallel) are counted too. Because the kernel
// rejects PERF_FORMAT_GROUP reads on inherited counters, each event is
// opened as its own leader and read individually; when the kernel
// multiplexes (more events than hardware slots), each read carries its
// own time_enabled/time_running pair and the delta is scaled by
// enabled/running — the standard extrapolation, exact when the workload
// is steady across the region.
//
// Degradation is a first-class path, not an error: containers and locked-
// down kernels refuse the syscall (EACCES/EPERM under perf_event_paranoid
// >= 3, ENOENT/ENODEV for unsupported events, ENOSYS under seccomp). A
// PerfRegion that cannot open its events stays inert and Stop() returns a
// sample whose status says why — the export records it, nothing crashes.
// FITREE_PERF=0 skips the syscall entirely.
//
// This stays fully functional under -DFITREE_NO_TELEMETRY (it is cold-path
// bench machinery, not hot-path instrumentation), matching the metrics.h
// convention that only instrumentation helpers are stubbed.

#ifndef FITREE_TELEMETRY_PERF_COUNTERS_H_
#define FITREE_TELEMETRY_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace fitree::telemetry {

// Scaled counter deltas over one Start()/Stop() region. `ok` is true when
// the region actually measured; otherwise `status` carries the reason
// ("disabled (FITREE_PERF=0)", "unavailable: ...", "not measured").
// Individual counters the kernel refused stay at -1 even when ok.
struct PerfSample {
  std::string status = "not measured";
  bool ok = false;
  double time_enabled_ns = 0;
  double time_running_ns = 0;  // < enabled => the kernel multiplexed
  double cycles = -1;
  double instructions = -1;
  double llc_misses = -1;
  double branch_misses = -1;
  double dtlb_misses = -1;
  double task_clock_ns = -1;
};

// Number of distinct events a PerfRegion tries to open.
inline constexpr int kNumPerfEvents = 6;

// One reusable set of counters: open once, bracket many regions. Not
// thread-safe; the bench harness owns one on the driver thread.
class PerfRegion {
 public:
  PerfRegion();
  ~PerfRegion();
  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

  // True when at least one event opened; status() explains either way.
  bool available() const { return available_; }
  const std::string& status() const { return status_; }

  // Marks the region start (reads a baseline; counters free-run, so no
  // enable/disable ioctls race with inherited per-thread children).
  void Start();

  // Reads the counters again and returns the scaled deltas since Start().
  // Status-only when unavailable or Start() was never called.
  PerfSample Stop();

 private:
  struct Reading {
    uint64_t value = 0;
    uint64_t time_enabled = 0;
    uint64_t time_running = 0;
  };

  bool Read(int event, Reading* out) const;

  int fds_[kNumPerfEvents];
  Reading baseline_[kNumPerfEvents];
  bool available_ = false;
  bool started_ = false;
  std::string status_;
};

}  // namespace fitree::telemetry

#endif  // FITREE_TELEMETRY_PERF_COUNTERS_H_
