// Disk-resident FITing-Tree: the paper's segment-predict-then-bounded-
// search lookup (Sec 4.1) run against an index file, with every leaf
// access going through the buffer pool, plus a write path. The directory
// (B+ tree over segment first-keys) and segment table stay in memory —
// they are the "index" the paper sizes in Fig 6 — while the sorted
// key/payload pages stay on disk and are cached page-granularly, which is
// exactly the regime the Sec 5 cost model charges in pages.
//
// Writes never touch the file in place. Each base segment owns a small
// in-memory delta — an ordered map of {key -> payload | tombstone} —
// overlaid on the paged file: inserts and payload updates land there as
// live entries, deletes of paged keys as tombstones. Reads consult the
// delta first (no I/O), then fall through to the paged lookup. Because a
// key's delta segment is its directory floor, the per-segment deltas
// concatenate into one globally sorted stream, which is what lets scans
// merge the overlay with the rank-contiguous leaves page by page. An
// explicit Compact() folds every delta back into a freshly serialized
// file (WriteIndexFile convention) via an atomic temp-file rename, after
// which the overlay is empty and reads are pure page I/O again.
//
// The lookup shares core::ErrorWindow with StaticFitingTree::Bound, so a
// serialized tree answers every query identically to its in-memory
// counterpart (tested in tests/test_disk_fiting_tree.cc).

#ifndef FITREE_STORAGE_DISK_FITING_TREE_H_
#define FITREE_STORAGE_DISK_FITING_TREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "btree/btree_map.h"
#include "common/io_stats.h"
#include "common/options.h"
#include "common/prefetch.h"
#include "core/fiting_tree.h"
#include "core/flat_directory.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"
#include "core/static_fiting_tree.h"
#include "storage/buffer_pool.h"
#include "storage/segment_file.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "telemetry/structural.h"
#include "telemetry/trace.h"

namespace fitree::storage {

template <typename K>
class DiskFitingTree {
 public:
  using Key = K;
  // Leaf payloads are serialized as 64-bit words (storage/segment_file.h),
  // so the payload type is fixed; the alias is what the IndexApi contract
  // and the Insert/Update signatures below spell it with.
  using Payload = uint64_t;

  struct Options {
    // Buffer-pool capacity in pages; 1.0 * leaf pages means the whole
    // data file fits (plus the handful of non-leaf pages never cached).
    size_t cache_pages = 64;
    // In-page bounded-search strategy and directory descent form; defaults
    // follow the FITREE_SEARCH_POLICY / FITREE_DIRECTORY knobs (simd +
    // flat unless overridden).
    SearchPolicy search_policy = DefaultSearchPolicy();
    DirectoryMode directory = DefaultDirectoryMode();
  };

  // Opens `path`, loads the meta page and segment table, and builds the
  // in-memory directory. Returns nullptr when the file fails validation.
  static std::unique_ptr<DiskFitingTree<K>> Open(const std::string& path,
                                                 const Options& options = {}) {
    auto tree = std::unique_ptr<DiskFitingTree<K>>(new DiskFitingTree<K>());
    tree->path_ = path;
    tree->options_ = options;
    if (!tree->Load(path)) return nullptr;
    return tree;
  }

  // Live key count: base file plus pending inserts minus pending deletes.
  size_t size() const { return size_; }
  // Keys in the base file (delta overlay excluded).
  size_t base_size() const { return reader_.meta().key_count; }
  double error() const { return reader_.meta().error; }
  size_t SegmentCount() const { return segments_.size(); }
  uint64_t LeafPageCount() const { return reader_.meta().leaf_page_count; }
  uint64_t FileBytes() const {
    return reader_.page_count() * reader_.page_bytes();
  }
  int TreeHeight() const { return directory_.Height(); }
  const std::string& path() const { return path_; }

  // Pending overlay entries (live + tombstones) and completed compactions.
  size_t DeltaEntries() const { return delta_entries_; }
  uint64_t Compactions() const { return compactions_; }

  // True once any page read has failed verification; results after that
  // point are best-effort (lookups report "absent"). Reads are const per
  // the IndexApi contract, so the flag is mutable: a failed page fault
  // inside a const Lookup/ScanRange still has to record itself.
  bool io_error() const { return io_error_; }

  // In-memory index footprint: directory plus segment table plus the delta
  // overlay (the leaf pages are data, cached separately — see
  // CacheCapacityBytes()). Overlay entries are charged at std::map node
  // cost: payload plus three tree pointers and the color word.
  size_t IndexSizeBytes() const {
    constexpr size_t kDeltaNodeBytes =
        sizeof(K) + sizeof(DeltaEntry) + 4 * sizeof(void*);
    return directory_.MemoryBytes() +
           segments_.size() * sizeof(PackedSegment<K>) +
           delta_entries_ * kDeltaNodeBytes;
  }
  size_t CacheCapacityBytes() const { return pool_->CapacityBytes(); }

  const IoStats& io() const { return pool_->stats(); }
  void ResetIoStats() { pool_->ResetStats(); }

  // Rank of the first key >= `key` in the BASE FILE (insertion point over
  // the paged keys; the delta overlay has no ranks until Compact folds it
  // in). Every candidate page is faulted through the buffer pool.
  size_t LowerBound(const K& key) const {
    return LowerBoundAt(FloorSlot(key), key);
  }

  // Payload stored for `key`, or nullopt when absent. The delta overlay
  // overrides the file: a tombstone hides the paged key, a live entry
  // supersedes (or precedes) it. One directory descent serves the delta
  // probe and the paged search.
  std::optional<uint64_t> Lookup(const K& key) const {
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kLookup);
    const size_t floor = FloorSlot(key);
    PrefetchPredictedFrame(floor, key);
    {
      telemetry::ScopedPhase probe(telemetry::Engine::kDisk,
                                   telemetry::Phase::kDeltaProbe);
      const DeltaMap& delta = deltas_[floor == kNoSlot ? 0 : floor];
      const auto it = delta.find(key);
      if (it != delta.end()) {
        if (it->second.tombstone) return std::nullopt;
        return it->second.value;
      }
    }
    return BaseLookupAt(floor, key);
  }

  bool Contains(const K& key) const { return Lookup(key).has_value(); }

  // Prefetch the delta-overlay slot's floor frame position a Lookup(key)
  // would search, when that page is already resident (a miss is the buffer
  // pool's business, not a hint's). Server batches use this for group
  // prefetch across drained probes (server/sharded_index.h).
  void PrefetchLookup(const K& key) const {
    PrefetchPredictedFrame(FloorSlot(key), key);
  }

  // Inserts `key` -> `value` into the delta overlay. Returns true iff the
  // key was new (set semantics); inserting a key present in the base file
  // or overlay returns false without touching anything.
  bool Insert(const K& key, const Payload& value) {
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kInsert);
    DeltaMap& delta = DeltaFor(key);
    const auto it = delta.find(key);
    if (it != delta.end()) {
      if (!it->second.tombstone) return false;
      // Delete-then-reinsert of a paged key: resurrect as a live override.
      it->second = DeltaEntry{value, false};
      ++size_;
      return true;
    }
    if (BaseLookup(key).has_value()) return false;
    delta.emplace(key, DeltaEntry{value, false});
    ++delta_entries_;
    ++size_;
    return true;
  }

  // Replaces the payload of a present key (a paged key gets a live
  // override in the overlay). Returns false when absent.
  bool Update(const K& key, const Payload& value) {
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kUpdate);
    DeltaMap& delta = DeltaFor(key);
    const auto it = delta.find(key);
    if (it != delta.end()) {
      if (it->second.tombstone) return false;
      it->second.value = value;
      return true;
    }
    if (!BaseLookup(key).has_value()) return false;
    delta.emplace(key, DeltaEntry{value, false});
    ++delta_entries_;
    return true;
  }

  // Removes `key`. A paged key gets a tombstone (cleared by Compact); an
  // overlay-only key is dropped outright. Returns false when absent.
  bool Delete(const K& key) {
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kDelete);
    DeltaMap& delta = DeltaFor(key);
    const auto it = delta.find(key);
    if (it != delta.end()) {
      if (it->second.tombstone) return false;
      if (BaseLookup(key).has_value()) {
        it->second = DeltaEntry{0, true};  // hide the paged copy
      } else {
        delta.erase(it);
        --delta_entries_;
      }
      --size_;
      return true;
    }
    if (!BaseLookup(key).has_value()) return false;
    delta.emplace(key, DeltaEntry{0, true});
    ++delta_entries_;
    --size_;
    return true;
  }

  // Calls fn(key, value) for every live entry in [lo, hi] ascending —
  // paged leaves merged with the delta overlay on the fly — and returns
  // the number emitted. One page fault per touched leaf page.
  // Counted as a disk/scan (RangeCount and Compact's full sweep therefore
  // each register one scan — they are real paged scans).
  template <typename Fn>
  size_t ScanRange(const K& lo, const K& hi, Fn fn) const {
    telemetry::ScopedOp telem(telemetry::Engine::kDisk,
                              telemetry::Op::kScan);
    if (hi < lo) return 0;
    DeltaCursor cursor = DeltaCursorAt(lo);
    size_t emitted = 0;
    const size_t base_n = base_size();
    const size_t cap = base_n > 0 ? reader_.meta().leaf_capacity : 1;
    size_t rank = base_n > 0 ? LowerBound(lo) : base_n;
    while (rank < base_n) {
      const uint64_t leaf = rank / cap;
      PinnedPage pin(pool_.get(), reader_.LeafPageId(leaf));
      if (!pin) {
        io_error_ = true;
        return emitted;
      }
      const size_t page_end = std::min(base_n, (leaf + 1) * cap);
      for (; rank < page_end; ++rank) {
        const auto entry = LoadAs<LeafEntry<K>>(
            pin.data() + kPageHeaderBytes + (rank % cap) * sizeof(LeafEntry<K>));
        if (hi < entry.key) {
          return emitted + DrainDelta(&cursor, entry.key, hi, fn);
        }
        // Overlay entries strictly below this paged key are pure inserts;
        // an entry equal to it is a tombstone or payload override.
        emitted += DrainDelta(&cursor, entry.key, hi, fn);
        const auto shadow = PeekDelta(cursor);
        if (shadow != nullptr && shadow->first == entry.key) {
          if (!shadow->second.tombstone) {
            fn(entry.key, shadow->second.value);
            ++emitted;
          }
          AdvanceDelta(&cursor);
          continue;
        }
        fn(entry.key, entry.value);
        ++emitted;
      }
    }
    // Base exhausted: the overlay's tail (pure inserts beyond the last
    // paged key in range) is all that remains.
    return emitted + DrainDelta(&cursor, std::nullopt, hi, fn);
  }

  // Number of live keys in [lo, hi] via a counting scan.
  size_t RangeCount(const K& lo, const K& hi) const {
    return ScanRange(lo, hi, [](const K&, uint64_t) {});
  }

  // Folds the delta overlay into a freshly serialized index file: scans
  // the merged view, re-segments it with the shrinking cone at the stored
  // error bound, writes a temp file in the same page layout, atomically
  // renames it over the original, and reopens. Returns false (leaving the
  // original file and overlay untouched) if the rewrite fails.
  bool Compact() {
    // Compaction reporting: the ScopedDuration feeds the registry's
    // disk/compact count + histogram + trace record, cancelled on the
    // failure paths so they don't register as completed compactions, and
    // arms phase spans so the rewrite is attributed under the compact
    // phase. Wall time is also hand-timed into last_compact_ns_, which
    // must stay live in both telemetry builds (NowNs never compiles out).
    telemetry::ScopedDuration telem(telemetry::Engine::kDisk,
                                    telemetry::Op::kCompact);
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kCompact);
    const uint64_t t0 = telemetry::NowNs();
    std::vector<K> keys;
    std::vector<uint64_t> values;
    keys.reserve(size_);
    values.reserve(size_);
    ScanRange(std::numeric_limits<K>::min(), std::numeric_limits<K>::max(),
              [&](const K& k, uint64_t v) {
                keys.push_back(k);
                values.push_back(v);
              });
    if (io_error_) {
      telem.Cancel();
      return false;
    }
    const double err = reader_.meta().error;
    const SegmentFileOptions file_options{reader_.page_bytes()};
    const auto tree = StaticFitingTree<K>::Create(keys, values, err);
    const std::string tmp = path_ + ".compact";
    if (!WriteIndexFile(tmp, *tree, file_options)) {
      std::remove(tmp.c_str());
      telem.Cancel();
      return false;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      telem.Cancel();
      return false;
    }
    if (!Load(path_)) {
      io_error_ = true;
      telem.Cancel();
      return false;
    }
    ++compactions_;
    last_compact_ns_ = telemetry::NowNs() - t0;
    // Every page of the new file was written by the rewrite (meta +
    // segment-table + leaves), so the post-reload page count is the
    // rewritten-page figure.
    const uint64_t pages = reader_.page_count();
    compact_pages_rewritten_ += pages;
    telemetry::CounterAdd(telemetry::CounterId::kCompactPagesRewritten,
                          pages);
    return true;
  }

  // Duration of the most recent successful Compact() (0 before the first),
  // and the cumulative pages written by all of this instance's compactions.
  uint64_t LastCompactNs() const { return last_compact_ns_; }
  uint64_t CompactPagesRewritten() const { return compact_pages_rewritten_; }

  // Structural snapshot (telemetry tentpole): base/overlay occupancy,
  // segment shape, compaction history, and this instance's buffer-pool I/O
  // picture (hit rate included — the registry's io.* counters aggregate
  // across pools, this is the per-instance view).
  telemetry::StructuralStats Stats() const {
    telemetry::StructuralStats st;
    st.engine = telemetry::EngineName(telemetry::Engine::kDisk);
    st.Add("keys", static_cast<double>(size_));
    st.Add("base_keys", static_cast<double>(base_size()));
    st.Add("segments", static_cast<double>(segments_.size()));
    st.Add("error", error());
    st.Add("delta_entries", static_cast<double>(delta_entries_));
    st.Add("delta_fraction",
           size_ == 0 ? 0.0
                      : static_cast<double>(delta_entries_) /
                            static_cast<double>(size_));
    st.Add("leaf_pages", static_cast<double>(LeafPageCount()));
    st.Add("file_bytes", static_cast<double>(FileBytes()));
    st.Add("cache_frames", static_cast<double>(pool_->frame_count()));
    st.Add("cache_bytes", static_cast<double>(pool_->CapacityBytes()));
    const IoStats& io_stats = pool_->stats();
    st.Add("io_hits", static_cast<double>(io_stats.cache_hits));
    st.Add("io_misses", static_cast<double>(io_stats.cache_misses));
    st.Add("io_pages_read", static_cast<double>(io_stats.pages_read));
    st.Add("io_hit_rate", io_stats.HitRate());
    st.Add("compactions", static_cast<double>(compactions_));
    st.Add("last_compact_ns", static_cast<double>(last_compact_ns_));
    st.Add("compact_pages_rewritten",
           static_cast<double>(compact_pages_rewritten_));
    st.Add("io_error", io_error_ ? 1.0 : 0.0);
    return st;
  }

 private:
  DiskFitingTree() = default;

  // "Key sorts before every segment's first key" sentinel, shared with
  // FlatKeyIndex::kNone so the flat descent needs no translation.
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  struct DeltaEntry {
    uint64_t value = 0;
    bool tombstone = false;
  };
  using DeltaMap = std::map<K, DeltaEntry>;

  // (Re)loads reader, pool, segment table, directory, and resets the
  // overlay. Compactions_ survives; everything else derives from the file.
  bool Load(const std::string& path) {
    directory_ = btree::BTreeMap<K, uint32_t, 16, 16>();
    if (!reader_.Open(path)) return false;
    if (!reader_.ReadSegmentTable(&segments_)) return false;
    pool_ = std::make_unique<BufferPool>(
        &reader_, reader_.page_bytes(),
        std::max<size_t>(1, options_.cache_pages));
    std::vector<std::pair<K, uint32_t>> entries;
    entries.reserve(segments_.size());
    std::vector<K> first_keys;
    first_keys.reserve(segments_.size());
    for (size_t i = 0; i < segments_.size(); ++i) {
      entries.emplace_back(segments_[i].first_key, static_cast<uint32_t>(i));
      first_keys.push_back(segments_[i].first_key);
    }
    directory_.BulkLoad(std::move(entries));
    // Segment ids are 0..n-1 in first-key order, so the flat floor index
    // is itself the id. The directory only changes on Load/Compact, so the
    // flat form can serve every descent when selected.
    flat_index_.Reset(std::move(first_keys));
    deltas_.assign(std::max<size_t>(1, segments_.size()), DeltaMap{});
    delta_entries_ = 0;
    size_ = reader_.meta().key_count;
    return true;
  }

  // Directory floor of `key` in whichever descent form options_ selects,
  // or kNoSlot when `key` sorts before every indexed first key.
  size_t FloorSlot(const K& key) const {
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kDirectoryDescent);
    if (options_.directory == DirectoryMode::kFlat) {
      return flat_index_.FloorIndex(key);  // FlatKeyIndex::kNone == kNoSlot
    }
    const uint32_t* id = directory_.FindFloor(key);
    return id == nullptr ? kNoSlot : static_cast<size_t>(*id);
  }

  // Overlay segment for `key`: its directory floor, else segment 0 (keys
  // below every first key, and the whole keyspace of an empty base file).
  size_t DeltaSlot(const K& key) const {
    const size_t floor = FloorSlot(key);
    return floor == kNoSlot ? 0 : floor;
  }
  DeltaMap& DeltaFor(const K& key) { return deltas_[DeltaSlot(key)]; }

  // Prefetch the predicted rank's position in its resident pool frame (if
  // cached) so the line travels while the delta probe runs. A miss is left
  // alone — faulting a page is the buffer pool's decision, not a hint's.
  void PrefetchPredictedFrame(size_t floor, const K& key) const {
    if (floor == kNoSlot || base_size() == 0) return;
    const PackedSegment<K>& seg = segments_[floor];
    const size_t seg_start = static_cast<size_t>(seg.start);
    const size_t seg_end = seg_start + static_cast<size_t>(seg.length);
    const double pred = seg.Predict(key);
    const size_t rank =
        pred <= static_cast<double>(seg_start)
            ? seg_start
            : std::min(seg_end - 1, static_cast<size_t>(pred));
    const size_t cap = reader_.meta().leaf_capacity;
    if (const std::byte* frame =
            pool_->Peek(reader_.LeafPageId(rank / cap))) {
      PrefetchRead(frame + kPageHeaderBytes +
                   (rank % cap) * sizeof(LeafEntry<K>));
    }
  }

  // Cursor over the concatenation of per-segment deltas — globally sorted
  // because each key's slot is its directory floor.
  struct DeltaCursor {
    size_t slot = 0;
    typename DeltaMap::const_iterator it;
  };

  DeltaCursor DeltaCursorAt(const K& lo) const {
    DeltaCursor c;
    c.slot = DeltaSlot(lo);
    c.it = deltas_[c.slot].lower_bound(lo);
    SkipEmptySlots(&c);
    return c;
  }

  void SkipEmptySlots(DeltaCursor* c) const {
    while (c->it == deltas_[c->slot].end() && c->slot + 1 < deltas_.size()) {
      ++c->slot;
      c->it = deltas_[c->slot].begin();
    }
  }

  const std::pair<const K, DeltaEntry>* PeekDelta(const DeltaCursor& c) const {
    return c.it == deltas_[c.slot].end() ? nullptr : &*c.it;
  }

  void AdvanceDelta(DeltaCursor* c) const {
    ++c->it;
    SkipEmptySlots(c);
  }

  // Emits the cursor's live entries with key <= `hi` and key < `before`
  // (no bound when nullopt), skipping tombstones; returns the emit count.
  template <typename Fn>
  size_t DrainDelta(DeltaCursor* c, std::optional<K> before, const K& hi,
                    Fn& fn) const {
    size_t emitted = 0;
    for (const auto* e = PeekDelta(*c);
         e != nullptr && e->first <= hi &&
         (!before.has_value() || e->first < *before);
         e = PeekDelta(*c)) {
      if (!e->second.tombstone) {
        fn(e->first, e->second.value);
        ++emitted;
      }
      AdvanceDelta(c);
    }
    return emitted;
  }

  // Lower bound of `key` over the base file, descending from an
  // already-resolved directory floor.
  size_t LowerBoundAt(size_t floor, const K& key) const {
    if (base_size() == 0) return 0;
    if (floor == kNoSlot) return 0;  // key sorts before every indexed key
    const PackedSegment<K>& seg = segments_[floor];
    const size_t seg_start = static_cast<size_t>(seg.start);
    const size_t seg_end = seg_start + static_cast<size_t>(seg.length);
    const auto [begin, end] = fitree::ErrorWindow(
        seg.Predict(key), reader_.meta().error, seg_start, seg_end);
    return WindowLowerBound(begin, end, key);
  }

  // Paged lookup, delta overlay excluded.
  std::optional<uint64_t> BaseLookup(const K& key) const {
    return BaseLookupAt(FloorSlot(key), key);
  }

  std::optional<uint64_t> BaseLookupAt(size_t floor, const K& key) const {
    if (base_size() == 0) return std::nullopt;
    const size_t rank = LowerBoundAt(floor, key);
    if (rank >= base_size()) return std::nullopt;
    const auto entry = EntryAt(rank);
    if (!entry.has_value() || entry->key != key) return std::nullopt;
    return entry->value;
  }

  std::optional<LeafEntry<K>> EntryAt(size_t rank) const {
    const size_t cap = reader_.meta().leaf_capacity;
    PinnedPage pin(pool_.get(), reader_.LeafPageId(rank / cap));
    if (!pin) {
      io_error_ = true;
      return std::nullopt;
    }
    return LoadAs<LeafEntry<K>>(pin.data() + kPageHeaderBytes +
                                (rank % cap) * sizeof(LeafEntry<K>));
  }

  // Lower bound of `key` over ranks [begin, end), searching page by page:
  // a window of w ranks touches at most w / leaf_capacity + 1 pages, and
  // pages before the answer are dismissed by one key comparison each.
  size_t WindowLowerBound(size_t begin, size_t end, const K& key) const {
    // Self time here is pure compute: the page faults this search triggers
    // are nested page_io spans (buffer_pool.h) and subtract out.
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kWindowSearch);
    if (begin >= end) return begin;
    const size_t cap = reader_.meta().leaf_capacity;
    for (uint64_t leaf = begin / cap; leaf <= (end - 1) / cap; ++leaf) {
      const size_t slice_begin = std::max(begin, static_cast<size_t>(leaf) * cap);
      const size_t slice_end = std::min(end, (static_cast<size_t>(leaf) + 1) * cap);
      PinnedPage pin(pool_.get(), reader_.LeafPageId(leaf));
      if (!pin) {
        io_error_ = true;
        return end;
      }
      const auto key_at = [&](size_t rank) {
        return LoadAs<K>(pin.data() + kPageHeaderBytes +
                         (rank % cap) * sizeof(LeafEntry<K>));
      };
      if (key_at(slice_end - 1) < key) continue;  // answer is further right
      if (options_.search_policy == SearchPolicy::kSimd) {
        // Branchless narrow over in-page ranks, then a strided vector
        // count over the packed {key, payload} records. The slice never
        // crosses the page, so b % cap + m stays within the pinned frame.
        size_t b = slice_begin;
        size_t m = slice_end - slice_begin;
        while (m > simd::kSimdWindowKeys) {
          const size_t half = m / 2;
          b = key_at(b + half - 1) < key ? b + half : b;
          m -= half;
        }
        const std::byte* base =
            pin.data() + kPageHeaderBytes + (b % cap) * sizeof(LeafEntry<K>);
        return b + simd::CountLessStrided(base, sizeof(LeafEntry<K>), m, key);
      }
      size_t lo = slice_begin, hi = slice_end;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (key_at(mid) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
    return end;
  }

  std::string path_;
  Options options_;
  SegmentFileReader<K> reader_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<PackedSegment<K>> segments_;
  btree::BTreeMap<K, uint32_t, 16, 16> directory_;
  FlatKeyIndex<K> flat_index_;  // same entries, read-path descent form
  std::vector<DeltaMap> deltas_;  // parallel to segments_ (>= 1 slot)
  size_t delta_entries_ = 0;      // live + tombstone entries across slots
  size_t size_ = 0;               // live keys: base + inserts - deletes
  uint64_t compactions_ = 0;
  uint64_t last_compact_ns_ = 0;          // most recent Compact() duration
  uint64_t compact_pages_rewritten_ = 0;  // cumulative across compactions
  mutable bool io_error_ = false;  // set by const reads on failed faults
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_DISK_FITING_TREE_H_
