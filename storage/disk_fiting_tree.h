// Disk-resident FITing-Tree: the paper's segment-predict-then-bounded-
// search lookup (Sec 4.1) run against an index file, with every leaf
// access going through the buffer pool. The directory (B+ tree over
// segment first-keys) and segment table stay in memory — they are the
// "index" the paper sizes in Fig 6 — while the sorted key/payload pages
// stay on disk and are cached page-granularly, which is exactly the
// regime the Sec 5 cost model charges in pages.
//
// The lookup shares core::ErrorWindow with StaticFitingTree::Bound, so a
// serialized tree answers every query identically to its in-memory
// counterpart (tested in tests/test_disk_fiting_tree.cc).

#ifndef FITREE_STORAGE_DISK_FITING_TREE_H_
#define FITREE_STORAGE_DISK_FITING_TREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "btree/btree_map.h"
#include "common/io_stats.h"
#include "core/shrinking_cone.h"
#include "storage/buffer_pool.h"
#include "storage/segment_file.h"

namespace fitree::storage {

template <typename K>
class DiskFitingTree {
 public:
  struct Options {
    // Buffer-pool capacity in pages; 1.0 * leaf pages means the whole
    // data file fits (plus the handful of non-leaf pages never cached).
    size_t cache_pages = 64;
  };

  // Opens `path`, loads the meta page and segment table, and builds the
  // in-memory directory. Returns nullptr when the file fails validation.
  static std::unique_ptr<DiskFitingTree<K>> Open(const std::string& path,
                                                 const Options& options = {}) {
    auto tree = std::unique_ptr<DiskFitingTree<K>>(new DiskFitingTree<K>());
    if (!tree->reader_.Open(path)) return nullptr;
    if (!tree->reader_.ReadSegmentTable(&tree->segments_)) return nullptr;
    tree->pool_ = std::make_unique<BufferPool>(
        &tree->reader_, tree->reader_.page_bytes(),
        std::max<size_t>(1, options.cache_pages));
    std::vector<std::pair<K, uint32_t>> entries;
    entries.reserve(tree->segments_.size());
    for (size_t i = 0; i < tree->segments_.size(); ++i) {
      entries.emplace_back(tree->segments_[i].first_key,
                           static_cast<uint32_t>(i));
    }
    tree->directory_.BulkLoad(std::move(entries));
    return tree;
  }

  size_t size() const { return reader_.meta().key_count; }
  double error() const { return reader_.meta().error; }
  size_t SegmentCount() const { return segments_.size(); }
  uint64_t LeafPageCount() const { return reader_.meta().leaf_page_count; }
  uint64_t FileBytes() const {
    return reader_.page_count() * reader_.page_bytes();
  }
  int TreeHeight() const { return directory_.Height(); }

  // True once any page read has failed verification; results after that
  // point are best-effort (lookups report "absent").
  bool io_error() const { return io_error_; }

  // In-memory index footprint: directory plus segment table (the leaf
  // pages are data, cached separately — see CacheCapacityBytes()).
  size_t IndexSizeBytes() const {
    return directory_.MemoryBytes() +
           segments_.size() * sizeof(PackedSegment<K>);
  }
  size_t CacheCapacityBytes() const { return pool_->CapacityBytes(); }

  const IoStats& io() const { return pool_->stats(); }
  void ResetIoStats() { pool_->ResetStats(); }

  // Rank of the first key >= `key` (insertion point), as in the in-memory
  // tree, but every candidate page is faulted through the buffer pool.
  size_t LowerBound(const K& key) {
    if (size() == 0) return 0;
    const uint32_t* id = directory_.FindFloor(key);
    if (id == nullptr) return 0;  // key sorts before every indexed key
    const PackedSegment<K>& seg = segments_[*id];
    const size_t seg_start = static_cast<size_t>(seg.start);
    const size_t seg_end = seg_start + static_cast<size_t>(seg.length);
    const auto [begin, end] = fitree::ErrorWindow(
        seg.Predict(key), reader_.meta().error, seg_start, seg_end);
    return WindowLowerBound(begin, end, key);
  }

  // Payload stored for `key`, or nullopt when absent.
  std::optional<uint64_t> Lookup(const K& key) {
    const size_t rank = LowerBound(key);
    if (rank >= size()) return std::nullopt;
    const auto entry = EntryAt(rank);
    if (!entry.has_value() || entry->key != key) return std::nullopt;
    return entry->value;
  }

  bool Contains(const K& key) { return Lookup(key).has_value(); }

  // Calls fn(key, value) for every entry in [lo, hi] ascending; returns the
  // number emitted. One page fault per touched leaf page.
  template <typename Fn>
  size_t ScanRange(const K& lo, const K& hi, Fn fn) {
    if (size() == 0 || hi < lo) return 0;
    const size_t cap = reader_.meta().leaf_capacity;
    size_t rank = LowerBound(lo);
    size_t emitted = 0;
    while (rank < size()) {
      const uint64_t leaf = rank / cap;
      PinnedPage pin(pool_.get(), reader_.LeafPageId(leaf));
      if (!pin) {
        io_error_ = true;
        return emitted;
      }
      const size_t page_end = std::min(size(), (leaf + 1) * cap);
      for (; rank < page_end; ++rank) {
        const auto entry = LoadAs<LeafEntry<K>>(
            pin.data() + kPageHeaderBytes + (rank % cap) * sizeof(LeafEntry<K>));
        if (hi < entry.key) return emitted;
        fn(entry.key, entry.value);
        ++emitted;
      }
    }
    return emitted;
  }

  // Number of keys in [lo, hi] via a counting scan.
  size_t RangeCount(const K& lo, const K& hi) {
    return ScanRange(lo, hi, [](const K&, uint64_t) {});
  }

 private:
  DiskFitingTree() = default;

  std::optional<LeafEntry<K>> EntryAt(size_t rank) {
    const size_t cap = reader_.meta().leaf_capacity;
    PinnedPage pin(pool_.get(), reader_.LeafPageId(rank / cap));
    if (!pin) {
      io_error_ = true;
      return std::nullopt;
    }
    return LoadAs<LeafEntry<K>>(pin.data() + kPageHeaderBytes +
                                (rank % cap) * sizeof(LeafEntry<K>));
  }

  // Lower bound of `key` over ranks [begin, end), searching page by page:
  // a window of w ranks touches at most w / leaf_capacity + 1 pages, and
  // pages before the answer are dismissed by one key comparison each.
  size_t WindowLowerBound(size_t begin, size_t end, const K& key) {
    if (begin >= end) return begin;
    const size_t cap = reader_.meta().leaf_capacity;
    for (uint64_t leaf = begin / cap; leaf <= (end - 1) / cap; ++leaf) {
      const size_t slice_begin = std::max(begin, static_cast<size_t>(leaf) * cap);
      const size_t slice_end = std::min(end, (static_cast<size_t>(leaf) + 1) * cap);
      PinnedPage pin(pool_.get(), reader_.LeafPageId(leaf));
      if (!pin) {
        io_error_ = true;
        return end;
      }
      const auto key_at = [&](size_t rank) {
        return LoadAs<K>(pin.data() + kPageHeaderBytes +
                         (rank % cap) * sizeof(LeafEntry<K>));
      };
      if (key_at(slice_end - 1) < key) continue;  // answer is further right
      size_t lo = slice_begin, hi = slice_end;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (key_at(mid) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
    return end;
  }

  SegmentFileReader<K> reader_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<PackedSegment<K>> segments_;
  btree::BTreeMap<K, uint32_t, 16, 16> directory_;
  bool io_error_ = false;
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_DISK_FITING_TREE_H_
