// Consolidated process-wide configuration. Every FITREE_* environment knob
// that tunes engine or server behavior is resolved HERE, exactly once, into
// one immutable fitree::Options value (GlobalOptions()). Engine and server
// config structs default their fields from it; nothing outside this header
// (and the test-only override hooks in telemetry) reads those variables ad
// hoc anymore, so a knob's default, parse rule, and clamp live in a single
// place.
//
// Knobs resolved here:
//   FITREE_SEARCH_POLICY  binary | linear | exponential | simd  (simd)
//   FITREE_DIRECTORY      btree | flat                          (flat)
//   FITREE_TELEM_SAMPLE   latency sampling period, >= 1         (64)
//   FITREE_TRACE          0 | 1 trace-ring capture              (0)
//   FITREE_TRACE_RING     per-thread trace ring slots, >= 16    (4096)
//   FITREE_PERF           0 disables perf_event PMU capture     (attempt)
//   FITREE_SHARDS         server shard count, >= 1              (4)
//   FITREE_BATCH          server per-shard drain batch, >= 1    (32)
//   FITREE_IO_BACKEND     auto | uring | threads | sync         (auto)
//   FITREE_IO_DEPTH       batched-read queue depth, [1, 1024]   (64)
//   FITREE_IO_DIRECT      0 | 1 attempt O_DIRECT reads          (0)
//   FITREE_FETCH_STRATEGY single | window                       (single)
//   FITREE_COMPACT_THRESHOLD  per-segment delta occupancy (%)
//                         that triggers incremental compaction;
//                         0 disables the automatic trigger      (0)
//
// Bench-harness knobs (FITREE_BENCH_*) stay in bench/ — they size
// workloads, not the engines.

#ifndef FITREE_COMMON_OPTIONS_H_
#define FITREE_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "common/env.h"
#include "core/flat_directory.h"
#include "core/search_policy.h"

namespace fitree {

// How the storage layer executes a batch of page reads
// (storage/async_io.h): io_uring when the kernel grants it, a pread
// thread pool otherwise, or strictly synchronous preads. kAuto probes
// io_uring once and falls back to the thread pool.
enum class IoBackend : uint8_t { kAuto, kUring, kThreads, kSync };

inline std::optional<IoBackend> ParseIoBackend(std::string_view s) {
  if (s == "auto") return IoBackend::kAuto;
  if (s == "uring") return IoBackend::kUring;
  if (s == "threads") return IoBackend::kThreads;
  if (s == "sync") return IoBackend::kSync;
  return std::nullopt;
}

inline constexpr const char* IoBackendName(IoBackend b) {
  switch (b) {
    case IoBackend::kAuto: return "auto";
    case IoBackend::kUring: return "uring";
    case IoBackend::kThreads: return "threads";
    case IoBackend::kSync: return "sync";
  }
  return "?";
}

// Disk-lookup paging policy: kSingle demand-faults pages one at a time as
// the window search walks them; kWindow speculatively batch-fetches every
// page the error window can touch before searching, so a window that
// straddles page boundaries overlaps its faults.
enum class FetchStrategy : uint8_t { kSingle, kWindow };

inline std::optional<FetchStrategy> ParseFetchStrategy(std::string_view s) {
  if (s == "single") return FetchStrategy::kSingle;
  if (s == "window") return FetchStrategy::kWindow;
  return std::nullopt;
}

inline constexpr const char* FetchStrategyName(FetchStrategy f) {
  switch (f) {
    case FetchStrategy::kSingle: return "single";
    case FetchStrategy::kWindow: return "window";
  }
  return "?";
}

struct Options {
  SearchPolicy search_policy = SearchPolicy::kSimd;
  DirectoryMode directory = DirectoryMode::kFlat;
  uint64_t telemetry_sample = 64;  // 1-in-N latency sampling
  bool trace = false;              // trace-ring capture on/off
  size_t trace_ring = 4096;        // per-thread ring capacity (slots)
  bool perf = true;                // attempt perf_event PMU capture
  size_t shards = 4;               // server: shard / worker-thread count
  size_t batch = 32;               // server: max ops drained per batch
  IoBackend io_backend = IoBackend::kAuto;  // batched page-read backend
  size_t io_depth = 64;            // batched-read queue depth
  bool io_direct = false;          // attempt O_DIRECT page reads
  FetchStrategy fetch_strategy = FetchStrategy::kSingle;
  size_t compact_threshold_pct = 0;  // 0 = no automatic incremental compact

  // Reads every knob from the environment, applying defaults and clamps.
  static Options FromEnvironment() {
    Options o;
    o.search_policy =
        ParseSearchPolicy(GetEnvString("FITREE_SEARCH_POLICY", "simd"))
            .value_or(SearchPolicy::kSimd);
    o.directory = ParseDirectoryMode(GetEnvString("FITREE_DIRECTORY", "flat"))
                      .value_or(DirectoryMode::kFlat);
    const int64_t sample = GetEnvInt64("FITREE_TELEM_SAMPLE", 64);
    o.telemetry_sample = sample < 1 ? 1u : static_cast<uint64_t>(sample);
    o.trace = GetEnvInt64("FITREE_TRACE", 0) != 0;
    const int64_t ring = GetEnvInt64("FITREE_TRACE_RING", 4096);
    o.trace_ring = ring < 16 ? 16u : static_cast<size_t>(ring);
    o.perf = GetEnvInt64("FITREE_PERF", 1) != 0;
    const int64_t shards = GetEnvInt64("FITREE_SHARDS", 4);
    o.shards = shards < 1 ? 1u : static_cast<size_t>(shards);
    const int64_t batch = GetEnvInt64("FITREE_BATCH", 32);
    o.batch = batch < 1 ? 1u : static_cast<size_t>(batch);
    o.io_backend = ParseIoBackend(GetEnvString("FITREE_IO_BACKEND", "auto"))
                       .value_or(IoBackend::kAuto);
    const int64_t depth = GetEnvInt64("FITREE_IO_DEPTH", 64);
    o.io_depth = depth < 1 ? 1u
                           : depth > 1024 ? 1024u : static_cast<size_t>(depth);
    o.io_direct = GetEnvInt64("FITREE_IO_DIRECT", 0) != 0;
    o.fetch_strategy =
        ParseFetchStrategy(GetEnvString("FITREE_FETCH_STRATEGY", "single"))
            .value_or(FetchStrategy::kSingle);
    const int64_t compact = GetEnvInt64("FITREE_COMPACT_THRESHOLD", 0);
    o.compact_threshold_pct =
        compact < 0 ? 0u
                    : compact > 10000 ? 10000u : static_cast<size_t>(compact);
    return o;
  }
};

// The process-wide Options, resolved from the environment on first use and
// immutable afterwards. Config structs capture its fields as defaults at
// construction time, so per-instance overrides still work as before.
inline const Options& GlobalOptions() {
  static const Options options = Options::FromEnvironment();
  return options;
}

// Process-wide defaults for the two hot-path strategy knobs. These used to
// live next to their enums (core/search_policy.h, core/flat_directory.h)
// and read the environment themselves; they are now thin views over
// GlobalOptions() so the resolution story has one home.
inline SearchPolicy DefaultSearchPolicy() {
  return GlobalOptions().search_policy;
}

inline DirectoryMode DefaultDirectoryMode() { return GlobalOptions().directory; }

}  // namespace fitree

#endif  // FITREE_COMMON_OPTIONS_H_
