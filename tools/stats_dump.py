#!/usr/bin/env python3
"""Pretty-print the telemetry section of a fitree_bench BENCH_results.json.

Renders the process-wide telemetry snapshot captured at the end of a bench
run (schema in EXPERIMENTS.md, "Telemetry"): the per-(engine, op) count +
sampled-latency grid, the named counters and gauges, and — when the run had
FITREE_TRACE=1 — a summary of the merged trace ring dump (per-thread and
per-op breakdowns, plus the first/last records with --trace).

Exit status: 0 on success, 2 on malformed input (missing file, invalid
JSON, or a document without a "telemetry" member) — CI uses this as a
smoke check that the exporter and this parser agree on the schema.

Typical use:

  tools/stats_dump.py BENCH_results.json
  tools/stats_dump.py BENCH_results.json --trace --trace-limit 20
"""

import argparse
import json
import sys


def die(message):
    print(f"stats_dump: {message}", file=sys.stderr)
    sys.exit(2)


def load_telemetry(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: top-level JSON value is not an object")
    telemetry = doc.get("telemetry")
    if not isinstance(telemetry, dict) or "enabled" not in telemetry:
        die(f"{path}: no telemetry section (document predates the "
            "telemetry exporter, or the schema changed)")
    return telemetry


def fmt_count(n):
    return f"{n:,}"


def render_table(rows, header):
    """Column-aligned plain-text table (same style as fitree_bench)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def print_ops(telemetry):
    ops = telemetry.get("ops", [])
    if not isinstance(ops, list):
        die('"ops" is not an array')
    print(f"== per-(engine, op) latency grid "
          f"(sample_period={telemetry.get('sample_period', '?')}) ==")
    if not ops:
        print("(no operations recorded)")
        return
    rows = []
    for cell in ops:
        if not isinstance(cell, dict):
            die('"ops" entry is not an object')
        for key in ("engine", "op", "count", "samples"):
            if key not in cell:
                die(f'"ops" entry missing "{key}"')
        timed = cell["samples"] > 0
        rows.append([
            str(cell["engine"]),
            str(cell["op"]),
            fmt_count(cell["count"]),
            fmt_count(cell["samples"]),
            fmt_count(cell["p50_ns"]) if timed else "-",
            fmt_count(cell["p99_ns"]) if timed else "-",
            fmt_count(cell["p999_ns"]) if timed else "-",
            fmt_count(cell["max_ns"]) if timed else "-",
            f"{cell['mean_ns']:.1f}" if timed else "-",
        ])
    print(render_table(rows, ["engine", "op", "count", "samples", "p50_ns",
                              "p99_ns", "p999_ns", "max_ns", "mean_ns"]))


def print_scalars(telemetry):
    for section in ("counters", "gauges"):
        values = telemetry.get(section, {})
        if not isinstance(values, dict):
            die(f'"{section}" is not an object')
        print(f"\n== {section} ==")
        if not values:
            print("(none)")
            continue
        width = max(len(name) for name in values)
        for name, value in values.items():
            print(f"{name.ljust(width)}  {fmt_count(value)}")


def print_trace(telemetry, show_records, record_limit):
    trace = telemetry.get("trace")
    if not isinstance(trace, dict):
        die('"trace" is missing or not an object')
    print("\n== trace ==")
    if not trace.get("enabled"):
        print("tracing was off (set FITREE_TRACE=1 to capture)")
        return
    records = trace.get("records", [])
    if not isinstance(records, list):
        die('"trace.records" is not an array')
    print(f"threads={trace.get('threads', 0)} "
          f"emitted={fmt_count(trace.get('emitted', 0))} "
          f"dropped={fmt_count(trace.get('dropped', 0))} "
          f"retained={fmt_count(len(records))}")

    by_op = {}
    for record in records:
        if not isinstance(record, dict) or "op" not in record:
            die("trace record missing \"op\"")
        key = (record.get("engine", "?"), record["op"])
        by_op[key] = by_op.get(key, 0) + 1
    if by_op:
        print("retained records by (engine, op):")
        for (engine, op), n in sorted(by_op.items()):
            print(f"  {engine}/{op}: {fmt_count(n)}")

    if show_records and records:
        shown = records[:record_limit]
        rows = [[fmt_count(r.get("t_ns", 0)), str(r.get("tid", "?")),
                 str(r.get("engine", "?")), str(r.get("op", "?")),
                 fmt_count(r.get("arg_ns", 0))] for r in shown]
        print(f"first {len(shown)} record(s):")
        print(render_table(rows, ["t_ns", "tid", "engine", "op", "arg_ns"]))


def main():
    parser = argparse.ArgumentParser(
        description="pretty-print BENCH_results.json telemetry")
    parser.add_argument("results", help="path to BENCH_results.json")
    parser.add_argument("--trace", action="store_true",
                        help="also print individual trace records")
    parser.add_argument("--trace-limit", type=int, default=10,
                        help="max trace records to print (default 10)")
    args = parser.parse_args()

    telemetry = load_telemetry(args.results)
    if not telemetry["enabled"]:
        print("telemetry disabled (built with -DFITREE_NO_TELEMETRY=ON)")
        return
    print_ops(telemetry)
    print_scalars(telemetry)
    print_trace(telemetry, args.trace, max(0, args.trace_limit))


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Output piped into head/less that exited early — not an error.
        sys.exit(0)
