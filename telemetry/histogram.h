// Log-bucketed (HDR-style) latency histogram with mergeable snapshots.
//
// Values are nanoseconds. The bucket layout is the classic
// exponent-plus-sub-bucket scheme: values below 16 get exact unit buckets;
// above that, each power-of-two range splits into 16 sub-buckets, so a
// bucket's width is at most value/16 — every recorded value is reproduced
// to within 6.25% relative error by its bucket's upper bound. Percentiles
// use the exact nearest-rank rule over the recorded counts (rank
// ceil(p/100 * N)), so the only approximation is that in-bucket
// resolution, which tests/test_telemetry.cc pins against a sorted-sample
// oracle: oracle_p <= hist_p <= oracle_p + oracle_p/16 + 1.
//
// Record() is one relaxed fetch_add on the bucket counter — TSan-clean and
// cheap enough for the sampled op timers (registry.h samples 1-in-N ops,
// so cross-thread contention on a hot bucket is rare by construction).
// Snapshots are plain value types: they add (Merge) for cross-histogram
// aggregation and subtract (DeltaSince) for interval measurements, both
// exact because buckets are simple sums.

#ifndef FITREE_TELEMETRY_HISTOGRAM_H_
#define FITREE_TELEMETRY_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fitree::telemetry {

namespace hdr {

inline constexpr int kSubBits = 4;
inline constexpr size_t kSubBuckets = size_t{1} << kSubBits;  // 16
// Groups: 0 (exact units 0..15) plus one per msb position 4..63.
inline constexpr size_t kNumBuckets = (64 - kSubBits + 1) * kSubBuckets;

// Index of the bucket containing `v`. Monotone in v.
inline constexpr size_t BucketIndex(uint64_t v) {
  if (v < kSubBuckets) return static_cast<size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const size_t group = static_cast<size_t>(msb - kSubBits + 1);
  const size_t sub = (v >> (msb - kSubBits)) & (kSubBuckets - 1);
  return group * kSubBuckets + sub;
}

// Largest value mapping to bucket `index` — the representative returned by
// percentile queries (always >= every value in the bucket, and within
// value/16 of it).
inline constexpr uint64_t BucketUpper(size_t index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const size_t group = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  const int shift = static_cast<int>(group) - 1;
  const uint64_t lower = (kSubBuckets + sub) << shift;
  return lower + ((uint64_t{1} << shift) - 1);
}

}  // namespace hdr

// Value-type snapshot of a histogram: bucket counts plus the derived
// total. Mergeable (Merge), subtractable (DeltaSince), and queryable for
// exact nearest-rank percentiles over the bucketed counts.
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  // empty == all-zero (never recorded)
  uint64_t total = 0;

  bool empty() const { return total == 0; }

  void Merge(const HistogramSnapshot& other) {
    if (other.counts.empty()) return;
    if (counts.empty()) counts.assign(hdr::kNumBuckets, 0);
    for (size_t i = 0; i < hdr::kNumBuckets; ++i) counts[i] += other.counts[i];
    total += other.total;
  }

  // This snapshot minus an earlier one of the same histogram (bucket
  // counts are monotone, so the subtraction is well-defined).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& before) const {
    HistogramSnapshot delta;
    if (counts.empty()) return delta;
    delta.counts.assign(hdr::kNumBuckets, 0);
    for (size_t i = 0; i < hdr::kNumBuckets; ++i) {
      const uint64_t b = before.counts.empty() ? 0 : before.counts[i];
      delta.counts[i] = counts[i] - b;
      delta.total += delta.counts[i];
    }
    return delta;
  }

  // Nearest-rank percentile (p in [0, 100]): the representative value of
  // the bucket holding the ceil(p/100 * total)-th smallest sample. 0 when
  // empty.
  uint64_t PercentileNs(double p) const {
    if (total == 0) return 0;
    uint64_t rank =
        static_cast<uint64_t>(p / 100.0 * static_cast<double>(total) + 0.9999);
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen >= rank) return hdr::BucketUpper(i);
    }
    return hdr::BucketUpper(hdr::kNumBuckets - 1);
  }

  // Upper bound of the highest non-empty bucket (0 when empty).
  uint64_t MaxNs() const {
    for (size_t i = counts.size(); i-- > 0;) {
      if (counts[i] != 0) return hdr::BucketUpper(i);
    }
    return 0;
  }

  // Bucket-representative mean — same 6.25% in-bucket resolution as the
  // percentiles.
  double MeanNs() const {
    if (total == 0) return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) {
        sum += static_cast<double>(counts[i]) *
               static_cast<double>(hdr::BucketUpper(i));
      }
    }
    return sum / static_cast<double>(total);
  }
};

// The live, concurrently-writable histogram. ~7.8 KB of atomic buckets.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t ns) {
    buckets_[hdr::BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    snap.counts.resize(hdr::kNumBuckets);
    for (size_t i = 0; i < hdr::kNumBuckets; ++i) {
      snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
      snap.total += snap.counts[i];
    }
    return snap;
  }

 private:
  std::atomic<uint64_t> buckets_[hdr::kNumBuckets] = {};
};

}  // namespace fitree::telemetry

#endif  // FITREE_TELEMETRY_HISTOGRAM_H_
