// Load generator for the sharded batched index server
// (server/sharded_index.h): simulated clients submit YCSB-style op streams
// through the server's async API and the cells report aggregate throughput
// plus sampled client-observed completion latency (p50/p99).
//
// Three sweeps share one driver:
//   1. shard sweep   — shards (1, 2, 4) x mix (A/B/C) x access
//                      (uniform/zipfian) at the default batch, open loop.
//   2. batch ablation— shards fixed at the sweep max, mix C, batch in
//                      {1, 8, 32, 128}: the cost of unbatched dispatch vs
//                      batched drain + group prefetch, the tentpole's
//                      headline comparison. avg_batch rides along so the
//                      table shows how full the batches actually ran.
//   3. closed loop   — pipeline window 1 (a client waits out each request
//                      before the next): the per-request round-trip floor,
//                      vs the open-loop cells' window-32 pipelining.
//
// "Open loop" here is pipelined closed-loop: each client keeps `window`
// requests outstanding, which approximates open-loop arrivals while
// keeping backpressure bounded (a true unbounded open loop would just
// measure the op queues overflowing). Latency samples are client-observed
// completion times — submit to response-publish, *including* time queued
// behind the client's own window — which is what a real pipelined client
// experiences.
//
// Every rep is validated: the quiesced server must match a std::set
// reference (size, sampled membership, cross-shard range scans), and the
// server's registry op rows must equal the issued totals exactly.
// profile_report.py decomposes the same runs into the kShardRoute /
// kShardQueueWait / kShardExec phases.
//
// Env knobs (see EXPERIMENTS.md): FITREE_BENCH_SCALE / FITREE_BENCH_N /
// FITREE_BENCH_OPS size the run, FITREE_BENCH_CLIENTS sets the client
// count (default 4), FITREE_BENCH_WINDOW the open-loop pipeline depth
// (default 32), FITREE_BENCH_MAX_SHARDS caps the shard sweep (default 4),
// and FITREE_SHARDS / FITREE_BATCH set the server defaults the non-ablation
// cells inherit.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/options.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "server/sharded_index.h"
#include "telemetry/registry.h"
#include "workloads/workloads.h"

namespace fitree::bench {
namespace {

using workloads::Access;
using workloads::Op;
using workloads::OpMix;
using workloads::OpType;

using Key = int64_t;
using Engine = FitingTree<Key>;
using Server = server::ShardedIndex<Engine>;
using Streams = std::vector<std::vector<Op<Key>>>;

constexpr uint64_t kBaseSeed = 0x5E47E5EEDull;
constexpr int kLatencySampleEvery = 16;

struct RunResult {
  double ns_per_op = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

server::ShardedIndex<Engine>::Factory MakeFactory(double error) {
  return [error](const std::vector<Key>& keys,
                 const std::vector<uint64_t>& values) {
    FitingTreeConfig config;
    config.error = error;
    return Engine::Create(keys, values, config);
  };
}

// One client thread: submit `ops` through the async API keeping up to
// `window` requests outstanding (window 1 == strict closed loop), sampling
// every kLatencySampleEvery-th op's submit-to-completion time.
template <typename S>
RunResult DriveClients(S& srv, const Streams& streams, size_t window) {
  const int clients = static_cast<int>(streams.size());
  std::vector<std::vector<int64_t>> samples(streams.size());
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(streams.size());
  Timer wall;
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<Op<Key>>& ops = streams[static_cast<size_t>(t)];
      std::vector<int64_t>& lat = samples[static_cast<size_t>(t)];
      lat.reserve(ops.size() / kLatencySampleEvery + 1);
      const size_t win = std::max<size_t>(1, window);
      std::vector<typename S::Slot> slots(win);
      std::vector<uint64_t> sent_ns(win, 0);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t sink = 0;
      const auto reap = [&](size_t idx) {
        slots[idx].Wait();
        sink += slots[idx].ok ? 1 : 0;
        if (sent_ns[idx] != 0) {
          lat.push_back(static_cast<int64_t>(telemetry::NowNs() -
                                             sent_ns[idx]));
        }
        slots[idx].Reset();
      };
      for (size_t i = 0; i < ops.size(); ++i) {
        const size_t idx = i % win;
        if (i >= win) reap(idx);
        const Op<Key>& op = ops[i];
        typename S::Req req;
        switch (op.type) {
          case OpType::kRead:
            req.op = server::ReqOp::kLookup;
            break;
          case OpType::kInsert:
            req.op = server::ReqOp::kInsert;
            req.value = op.value;
            break;
          case OpType::kUpdate:
            req.op = server::ReqOp::kUpdate;
            req.value = op.value;
            break;
          case OpType::kDelete:
            req.op = server::ReqOp::kDelete;
            break;
          case OpType::kScan:
            // The server's sync ScanRange is the scan surface; the sweep
            // mixes here are scan-free, so treat any stray scan as a read.
            req.op = server::ReqOp::kLookup;
            break;
        }
        req.key = op.key;
        req.slot = &slots[idx];
        sent_ns[idx] =
            i % kLatencySampleEvery == 0 ? telemetry::NowNs() : 0;
        srv.SubmitAsync(req);
      }
      // Drain the window: every slot with an assigned request is pending.
      const size_t outstanding = std::min(win, ops.size());
      const size_t base = ops.size() - outstanding;
      for (size_t j = 0; j < outstanding; ++j) reap((base + j) % win);
      SinkValue(sink);
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  wall.Reset();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double ns = static_cast<double>(wall.ElapsedNs());

  size_t total_ops = 0;
  for (const auto& s : streams) total_ops += s.size();
  std::vector<int64_t> merged;
  for (auto& s : samples) merged.insert(merged.end(), s.begin(), s.end());
  std::sort(merged.begin(), merged.end());
  RunResult r;
  r.ns_per_op = total_ops > 0 ? ns / static_cast<double>(total_ops) : 0.0;
  if (!merged.empty()) {
    r.p50_ns = static_cast<double>(merged[merged.size() / 2]);
    r.p99_ns = static_cast<double>(merged[merged.size() * 99 / 100]);
  }
  return r;
}

struct IssuedOps {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
};

IssuedOps CountIssuedOps(const Streams& streams) {
  IssuedOps issued;
  for (const auto& stream : streams) {
    for (const Op<Key>& op : stream) {
      switch (op.type) {
        case OpType::kRead:
        case OpType::kScan: ++issued.lookups; break;
        case OpType::kInsert: ++issued.inserts; break;
        case OpType::kUpdate: ++issued.updates; break;
        case OpType::kDelete: ++issued.deletes; break;
      }
    }
  }
  return issued;
}

// Point-in-time read of the server's registry op row.
IssuedOps ServerOpCounts() {
  namespace tel = fitree::telemetry;
  auto& reg = tel::Registry::Get();
  const auto load = [&](tel::Op op) {
    return reg.op_count(tel::Engine::kServer, op).Load();
  };
  IssuedOps c;
  c.lookups = load(tel::Op::kLookup);
  c.inserts = load(tel::Op::kInsert);
  c.updates = load(tel::Op::kUpdate);
  c.deletes = load(tel::Op::kDelete);
  return c;
}

// The server's op rows count requests exactly (Submit counts before
// enqueue), so after the clients drain their windows the registry delta
// must equal the issued totals. Runs before Validate(), whose probes land
// on the same rows.
void ValidateTelemetryCounts(const IssuedOps& before, const IssuedOps& after,
                             const IssuedOps& issued) {
  if (!fitree::telemetry::kEnabled) return;
  const auto check = [](const char* op, uint64_t got, uint64_t want) {
    if (got != want) {
      Die(std::string("server: telemetry ") + op + " count " +
          std::to_string(got) + " != issued " + std::to_string(want));
    }
  };
  check("lookup", after.lookups - before.lookups, issued.lookups);
  check("insert", after.inserts - before.inserts, issued.inserts);
  check("update", after.updates - before.updates, issued.updates);
  check("delete", after.deletes - before.deletes, issued.deletes);
}

// Reference final state: base keys plus every inserted key (set semantics
// make the result schedule-independent; the sweep mixes never delete).
std::set<Key> ReferenceSet(const std::vector<Key>& keys,
                           const Streams& streams) {
  std::set<Key> ref(keys.begin(), keys.end());
  for (const auto& stream : streams) {
    for (const Op<Key>& op : stream) {
      if (op.type == OpType::kInsert) ref.insert(op.key);
    }
  }
  return ref;
}

// Post-run validation of the quiesced server (all client requests
// answered): size, sampled membership through the request path, and
// cross-shard range scans, against the reference set.
void Validate(Server& srv, const std::set<Key>& ref, const char* label) {
  if (srv.size() != ref.size()) {
    Die(std::string("server: ") + label + ": size " +
        std::to_string(srv.size()) + " != reference " +
        std::to_string(ref.size()));
  }
  std::mt19937_64 rng(kBaseSeed ^ 0xABCD);
  std::vector<Key> ref_keys(ref.begin(), ref.end());
  for (int i = 0; i < 2000; ++i) {
    const Key probe = i % 2 == 0
                          ? ref_keys[rng() % ref_keys.size()]
                          : static_cast<Key>(rng() % (ref_keys.back() + 2));
    if (srv.Contains(probe) != (ref.count(probe) > 0)) {
      Die(std::string("server: ") + label + ": membership mismatch at key " +
          std::to_string(probe));
    }
  }
  for (int i = 0; i < 10; ++i) {
    const size_t start = rng() % ref_keys.size();
    const size_t end =
        std::min(ref_keys.size() - 1, start + ref_keys.size() / 100);
    std::vector<Key> got;
    const size_t n = srv.ScanRange(
        ref_keys[start], ref_keys[end],
        [&](const Key& k, const uint64_t&) { got.push_back(k); });
    const auto lo = ref.lower_bound(ref_keys[start]);
    const auto hi = ref.upper_bound(ref_keys[end]);
    if (n != got.size() ||
        !std::equal(got.begin(), got.end(), lo, hi)) {
      Die(std::string("server: ") + label + ": range scan mismatch at query " +
          std::to_string(i));
    }
  }
}

void RunServer(Runner& runner) {
  const size_t n = static_cast<size_t>(GetEnvInt64(
      "FITREE_BENCH_N", static_cast<int64_t>(ScaledN(400'000))));
  const size_t ops_per_client = static_cast<size_t>(GetEnvInt64(
      "FITREE_BENCH_OPS", static_cast<int64_t>(ScaledN(40'000))));
  const int clients = std::max(1, GetEnvInt("FITREE_BENCH_CLIENTS", 4));
  const size_t window = static_cast<size_t>(
      std::max(1, GetEnvInt("FITREE_BENCH_WINDOW", 32)));
  const size_t max_shards = static_cast<size_t>(
      std::max(1, GetEnvInt("FITREE_BENCH_MAX_SHARDS", 4)));
  const size_t default_batch = GlobalOptions().batch;  // FITREE_BATCH
  const double error = 128.0;

  const auto keys = MemoKeys("real/Weblogs/" + std::to_string(n) + "/11",
                             [&] { return datasets::Weblogs(n, 11); });
  std::printf(
      "server: %zu keys, %zu ops/client, %d clients, window=%zu, "
      "max_shards=%zu, default_batch=%zu, hw_threads=%u\n",
      keys->size(), ops_per_client, clients, window, max_shards,
      default_batch, std::thread::hardware_concurrency());

  // One measured cell: build-per-rep, drive, telemetry-exactness check,
  // oracle validation; reports Mops + sampled latency + realized batching.
  const auto run_cell = [&](const char* loop, size_t shards, size_t batch,
                            const char* mix_name, const OpMix& mix,
                            Access access, size_t win, size_t ops_count) {
    const auto streams = workloads::MakeThreadOpStreams<Key>(
        *keys, clients, ops_count, mix, access, /*scan_selectivity=*/0.0,
        kBaseSeed);
    const std::set<Key> ref = ReferenceSet(*keys, streams);
    const IssuedOps issued = CountIssuedOps(streams);
    const char* access_name =
        access == Access::kUniform ? "uniform" : "zipfian";

    RunResult last;
    double avg_batch = 0.0, batches = 0.0;
    const Stats stats = runner.CollectReps(
        [&] {
          Server::Config config;
          config.shards = shards;
          config.batch = batch;
          auto srv = Server::Create(*keys, {}, MakeFactory(error), config);
          if (srv == nullptr) Die("server: Create failed");
          const IssuedOps before = ServerOpCounts();
          last = DriveClients(*srv, streams, win);
          const IssuedOps after = ServerOpCounts();
          ValidateTelemetryCounts(before, after, issued);
          Validate(*srv, ref, mix_name);
          const auto s = srv->Stats();
          avg_batch = s.Get("avg_batch");
          batches = s.Get("batches");
          return last.ns_per_op;
        },
        /*warmup=*/false);
    runner.Report({{"loop", loop},
                   {"shards", std::to_string(shards)},
                   {"batch", std::to_string(batch)},
                   {"mix", mix_name},
                   {"access", access_name},
                   {"clients", std::to_string(clients)}},
                  stats,
                  {{"Mops", MopsFromNsPerOp(stats.p50)},
                   {"p50_ns", last.p50_ns},
                   {"p99_ns", last.p99_ns},
                   {"avg_batch", avg_batch},
                   {"batches", batches}});
    return MopsFromNsPerOp(stats.p50);
  };

  const struct {
    const char* name;
    OpMix mix;
  } mixes[] = {
      {"A(50r/50i)", {.read = 0.5, .insert = 0.5}},
      {"B(95r/5i)", {.read = 0.95, .insert = 0.05}},
      {"C(100r)", {.read = 1.0}},
  };
  const Access accesses[] = {Access::kUniform, Access::kZipfian};

  // 1. Shard sweep at the default batch, open loop.
  for (const auto& mix : mixes) {
    for (const Access access : accesses) {
      for (size_t shards = 1; shards <= max_shards; shards *= 2) {
        run_cell("open", shards, default_batch, mix.name, mix.mix, access,
                 window, ops_per_client);
      }
    }
  }

  // 2. Batching ablation at the sweep's max shard count: unbatched
  // dispatch (batch=1) vs increasingly batched drains with group prefetch.
  const size_t ablation_batches[] = {1, 8, 32, 128};
  for (const Access access : accesses) {
    double mops_b1 = 0.0, mops_best = 0.0;
    size_t best_batch = 1;
    for (const size_t batch : ablation_batches) {
      const double mops = run_cell("open", max_shards, batch, "C(100r)",
                                   mixes[2].mix, access, window,
                                   ops_per_client);
      if (batch == 1) mops_b1 = mops;
      if (mops > mops_best) {
        mops_best = mops;
        best_batch = batch;
      }
    }
    std::printf(
        "server: ablation (%s, %zu shards): batch=%zu best at %.2f Mops "
        "(%.2fx batch=1's %.2f)\n",
        access == Access::kUniform ? "uniform" : "zipfian", max_shards,
        best_batch, mops_best, mops_b1 > 0.0 ? mops_best / mops_b1 : 0.0,
        mops_b1);
  }

  // 3. Closed loop (window 1): the per-request round-trip floor. Fewer
  // ops — every op pays a full client<->worker handoff.
  for (size_t shards = 1; shards <= max_shards; shards *= 4) {
    run_cell("closed", shards, default_batch, "C(100r)", mixes[2].mix,
             Access::kUniform, /*win=*/1,
             std::max<size_t>(1, ops_per_client / 8));
  }
}

FITREE_REGISTER_EXPERIMENT(
    "server",
    "sharded batched index server: shard sweep, batch ablation, loop modes",
    RunServer);

}  // namespace
}  // namespace fitree::bench
