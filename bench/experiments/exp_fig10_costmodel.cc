// Figure 10: cost-model accuracy on Weblogs.
//
// 10a compares the model's estimated lookup latency against the measured
// latency across error thresholds; the estimate should upper-bound the
// measurement (the model charges a full cache miss per access and ignores
// cache hits). 10b compares estimated vs measured index size; the estimate
// should be pessimistic but close.
//
// The random-access cost `c` is calibrated on this machine with the same
// kind of pointer-chase tool the paper used (it measured c = 50ns). The
// two DBA-facing error selectors (paper Eq. 6.1-2 / 6.2-2) are reported as
// records too, with the selector call as the timed body.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/memory_cost.h"
#include "common/table_printer.h"
#include "core/cost_model.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

void RunFig10(Runner& runner) {
  const size_t n = ScaledN(2000000);
  const size_t probes_n = ScaledN(200000);
  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/1";
  const auto keys =
      MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 1); });
  const auto probes = MemoProbes(dataset_key, *keys, probes_n,
                                 workloads::Access::kUniform, 0.0, 2);

  CostModelParams params;
  // Calibrate c with a pointer chase over a data-sized working set.
  params.cache_miss_ns = MeasureRandomAccessNs(
      std::min<uint64_t>(keys->size() * sizeof(int64_t), 256ull << 20));
  params.fanout = 16.0;
  params.fill = 0.5;
  params.buffer_size = 0.0;

  for (double error : {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    FitingTreeConfig config;
    config.error = error;
    config.buffer_size = 0;
    auto tree = FitingTree<int64_t>::Create(*keys, config);
    const Stats stats = runner.CollectReps([&] {
      return TimedLoopNsPerOp(probes->size(), [&](size_t i) {
        return tree->Contains((*probes)[i]) ? uint64_t{1} : uint64_t{0};
      });
    });
    const auto se = static_cast<double>(tree->SegmentCount());
    runner.Report(
        {{"kind", "model_vs_measured"},
         {"error", TablePrinter::Fmt(error, 0)}},
        stats,
        {{"calibrated_c_ns", params.cache_miss_ns},
         {"est_latency_ns", EstimateLookupLatencyNs(error, se, params)},
         {"est_size_KB", EstimateIndexSizeBytes(se, params) / 1024.0},
         {"meas_size_KB",
          static_cast<double>(tree->IndexSizeBytes()) / 1024.0}});
  }

  // Selector demos: the timed body is the selector itself (the curve is
  // learned once outside the timed region, as a DBA would).
  const std::vector<double> candidates{16.0, 64.0, 256.0, 1024.0, 4096.0,
                                       16384.0};
  const auto curve = LearnSegmentCurve<int64_t>(*keys, candidates);

  {
    std::optional<ErrorPick> pick;
    const Stats stats = runner.CollectReps([&] {
      return TimedLoopNsPerOp(1, [&](size_t) {
        pick = PickErrorForLatency(curve, params, 1000.0, candidates);
        return pick.has_value() ? uint64_t{1} : uint64_t{0};
      });
    });
    if (pick.has_value()) {
      runner.Report({{"kind", "selector"}, {"error", "latency_sla_1000ns"}},
                    stats,
                    {{"picked_error", pick->error},
                     {"est_latency_ns", pick->est_latency_ns},
                     {"est_size_KB", pick->est_size_bytes / 1024.0}});
    }
  }
  {
    std::optional<ErrorPick> pick;
    const Stats stats = runner.CollectReps([&] {
      return TimedLoopNsPerOp(1, [&](size_t) {
        pick = PickErrorForSpace(curve, params, 256.0 * 1024, candidates);
        return pick.has_value() ? uint64_t{1} : uint64_t{0};
      });
    });
    if (pick.has_value()) {
      runner.Report({{"kind", "selector"}, {"error", "space_budget_256KB"}},
                    stats,
                    {{"picked_error", pick->error},
                     {"est_latency_ns", pick->est_latency_ns},
                     {"est_size_KB", pick->est_size_bytes / 1024.0}});
    }
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig10_costmodel",
    "Fig 10: cost-model accuracy on Weblogs + error selectors", RunFig10);

}  // namespace
}  // namespace fitree::bench
