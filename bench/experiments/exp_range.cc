// Range queries (paper Section 4.2 — discussed but not plotted).
//
// A range query finds its start with a point lookup and then scans
// sequentially, so at low selectivity the index dominates cost and at high
// selectivity the scan does. This sweeps selectivity and compares
// FITing-Tree against binary search and (for count-only queries) the
// static variant's O(log) rank subtraction.

#include <span>
#include <string>

#include "baselines/binary_search_index.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

void RunRange(Runner& runner) {
  const size_t n = ScaledN(4000000);
  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/1";
  const auto keys =
      MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 1); });

  FitingTreeConfig config;
  config.error = 256.0;
  config.buffer_size = 0;
  auto fiting = FitingTree<int64_t>::Create(*keys, config);
  auto fixed = StaticFitingTree<int64_t>::Create(*keys, 256.0);
  BinarySearchIndex<int64_t> binary{std::span<const int64_t>(*keys)};

  for (double selectivity : {0.00001, 0.0001, 0.001, 0.01}) {
    const auto queries =
        workloads::MakeRangeQueries<int64_t>(*keys, 2000, selectivity, 7);

    const auto report = [&](const char* method, const Stats& stats) {
      runner.Report({{"selectivity", TablePrinter::Fmt(selectivity, 5)},
                     {"method", method}},
                    stats);
    };

    report("FITing_scan", runner.CollectReps([&] {
      return TimedLoopNsPerOp(queries.size(), [&](size_t i) {
        uint64_t count = 0;
        fiting->ScanRange(queries[i].lo, queries[i].hi,
                          [&count](int64_t) { ++count; });
        return count;
      });
    }));
    report("Binary_scan", runner.CollectReps([&] {
      return TimedLoopNsPerOp(queries.size(), [&](size_t i) {
        uint64_t count = 0;
        binary.ScanRange(queries[i].lo, queries[i].hi,
                         [&count](int64_t) { ++count; });
        return count;
      });
    }));
    // Count-only ranges collapse to two rank lookups on the static variant.
    report("Static_count", runner.CollectReps([&] {
      return TimedLoopNsPerOp(queries.size(), [&](size_t i) {
        return static_cast<uint64_t>(
            fixed->RangeCount(queries[i].lo, queries[i].hi));
      });
    }));
  }
}

FITREE_REGISTER_EXPERIMENT(
    "range", "Sec 4.2: range scans across selectivities (Weblogs)", RunRange);

}  // namespace
}  // namespace fitree::bench
