#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/non_linearity.h"
#include "core/optimal_segmentation.h"
#include "core/shrinking_cone.h"
#include "datasets/datasets.h"

namespace {

using fitree::Feasibility;
using fitree::OptimalSegmentCount;
using fitree::Segment;
using fitree::SegmentShrinkingCone;

// The segmentation invariant: segments partition the rank space and every
// key's predicted position is within `error` of its true rank (a hair of
// floating-point slack on top).
template <typename K>
void CheckInvariants(const std::vector<K>& keys, double error,
                     Feasibility feasibility) {
  const auto segments =
      SegmentShrinkingCone<K>(std::span<const K>(keys), error, feasibility);
  ASSERT_FALSE(segments.empty());
  size_t expected_start = 0;
  for (const Segment<K>& seg : segments) {
    EXPECT_EQ(seg.start, expected_start);
    EXPECT_GT(seg.length, 0u);
    EXPECT_EQ(seg.first_key, keys[seg.start]);
    for (size_t i = 0; i < seg.length; ++i) {
      const double pred = seg.Predict(keys[seg.start + i]);
      const double rank = static_cast<double>(seg.start + i);
      EXPECT_LE(std::abs(pred - rank), error + 1e-6)
          << "segment at " << seg.start << " key index " << i;
    }
    expected_start += seg.length;
  }
  EXPECT_EQ(expected_start, keys.size());
}

TEST(ShrinkingCone, ErrorBoundAcrossSyntheticDatasets) {
  const size_t n = 20000;
  const std::vector<std::vector<int64_t>> datasets = {
      fitree::datasets::Weblogs(n, 1),       fitree::datasets::Iot(n, 2),
      fitree::datasets::Maps(n, 3),          fitree::datasets::OsmLongitude(n, 4),
      fitree::datasets::TaxiPickupTime(n, 5), fitree::datasets::TaxiDropLat(n, 6),
      fitree::datasets::TaxiDropLon(n, 7),   fitree::datasets::Step(n, 100)};
  for (const auto& keys : datasets) {
    for (const double error : {10.0, 100.0, 1000.0}) {
      CheckInvariants(keys, error, Feasibility::kEndpointLine);
      CheckInvariants(keys, error, Feasibility::kCone);
    }
  }
}

TEST(ShrinkingCone, LinearDataCollapsesToOneSegment) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 10000; ++i) keys.push_back(i * 5);
  for (const auto feasibility :
       {Feasibility::kEndpointLine, Feasibility::kCone}) {
    const auto segments =
        SegmentShrinkingCone<int64_t>(std::span<const int64_t>(keys), 1.0,
                                      feasibility);
    EXPECT_EQ(segments.size(), 1u);
  }
}

TEST(ShrinkingCone, SingleAndTinyInputs) {
  const std::vector<int64_t> empty;
  EXPECT_TRUE(SegmentShrinkingCone<int64_t>(std::span<const int64_t>(empty),
                                            10.0)
                  .empty());
  CheckInvariants<int64_t>({42}, 10.0, Feasibility::kEndpointLine);
  CheckInvariants<int64_t>({42}, 10.0, Feasibility::kCone);
  CheckInvariants<int64_t>({1, 2}, 0.0, Feasibility::kEndpointLine);
  CheckInvariants<int64_t>({1, 1000000}, 0.0, Feasibility::kCone);
}

// The exact hull fitter must agree with the O(w^2) pairwise feasibility
// oracle: every segment it emits is feasible, and extending any segment by
// one more key is infeasible (that is what makes greedy optimal).
TEST(ShrinkingCone, ConeModeMatchesBruteForceFeasibility) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    std::vector<int64_t> keys;
    int64_t key = 0;
    const int64_t spread = 1 + static_cast<int64_t>(rng() % 1000);
    for (int i = 0; i < 400; ++i) {
      key += 1 + static_cast<int64_t>(rng() % spread);
      keys.push_back(key);
    }
    const double error = 1.0 + static_cast<double>(rng() % 20);
    const auto segments = SegmentShrinkingCone<int64_t>(
        std::span<const int64_t>(keys), error, Feasibility::kCone);
    for (size_t s = 0; s < segments.size(); ++s) {
      // Rebase ranks so the brute-force oracle sees local positions, like
      // the greedy fitter did when it opened the segment.
      const std::vector<int64_t> window(
          keys.begin() + segments[s].start,
          keys.begin() + segments[s].start + segments[s].length);
      EXPECT_TRUE(fitree::Feasibility2DBruteForce(
          std::span<const int64_t>(window), 0, window.size(), error))
          << "round " << round << " segment " << s;
      if (s + 1 < segments.size()) {
        std::vector<int64_t> extended = window;
        extended.push_back(keys[segments[s].start + segments[s].length]);
        EXPECT_FALSE(fitree::Feasibility2DBruteForce(
            std::span<const int64_t>(extended), 0, extended.size(), error))
            << "round " << round << " segment " << s
            << " should have been maximal";
      }
    }
  }
}

TEST(OptimalSegmentation, NeverWorseThanGreedy) {
  const size_t n = 20000;
  const std::vector<std::vector<int64_t>> datasets = {
      fitree::datasets::Weblogs(n, 1), fitree::datasets::Iot(n, 2),
      fitree::datasets::TaxiDropLat(n, 6), fitree::datasets::Step(n, 100)};
  for (const auto& keys : datasets) {
    for (const double error : {10.0, 100.0}) {
      const size_t greedy =
          SegmentShrinkingCone<int64_t>(std::span<const int64_t>(keys), error)
              .size();
      const size_t optimal =
          OptimalSegmentCount<int64_t>(std::span<const int64_t>(keys), error);
      EXPECT_LE(optimal, greedy);
      EXPECT_GE(optimal, 1u);
    }
  }
}

TEST(OptimalSegmentation, AdversarialConeGapGrowsWithPatterns) {
  const double error = 100.0;
  const auto data = fitree::datasets::AdversarialCone(error, 100);
  const size_t greedy =
      SegmentShrinkingCone<double>(std::span<const double>(data.keys), error)
          .size();
  const size_t optimal = OptimalSegmentCount<double>(
      std::span<const double>(data.keys), error);
  // One free line threads all clusters; the apex-pinned greedy cone cannot.
  EXPECT_LE(optimal, 2u);
  EXPECT_GE(greedy, 20u);
}

TEST(NonLinearity, RatioBoundsAndShape) {
  const auto step = fitree::datasets::Step(20000, 100);
  // Below the step size each run needs its own segment (ratio ~(e+1)/step);
  // past it the staircase is globally linear and collapses to one segment.
  const double small = fitree::NonLinearityRatio<int64_t>(step, 10.0);
  const double large = fitree::NonLinearityRatio<int64_t>(step, 150.0);
  EXPECT_GT(small, 0.05);
  EXPECT_LE(small, 1.0 + 1e-9);
  EXPECT_LT(large, small);
}

}  // namespace
