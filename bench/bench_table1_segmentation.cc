// Table 1: ShrinkingCone vs. the optimal segmentation.
//
// Reproduces the paper's Table 1 rows (segment counts and the
// greedy/optimal ratio) on the synthetic stand-ins for the NYC Taxi, OSM,
// Weblogs and IoT datasets, plus the Appendix A.3 adversarial construction
// where greedy is arbitrarily worse than optimal.
//
// The paper capped samples at 1e6 elements because its optimal
// implementation needed O(n^2) memory (>= 1TB); our O(n) memory DP is
// instead time-bound, so the default sample is 100k elements
// (FITREE_BENCH_SCALE scales it).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/optimal_segmentation.h"
#include "core/shrinking_cone.h"
#include "datasets/datasets.h"

namespace {

using fitree::OptimalSegmentCount;
using fitree::SegmentShrinkingCone;
using fitree::TablePrinter;

struct Row {
  const char* name;
  std::vector<int64_t> keys;
  std::vector<double> errors;
};

void RunTable1(size_t n) {
  // Mirror the paper's dataset/error combinations (error=1000 rows exist
  // only where the paper reports them).
  std::vector<Row> rows;
  rows.push_back({"Taxi drop lat", fitree::datasets::TaxiDropLat(n, 5),
                  {10, 100, 1000}});
  rows.push_back({"Taxi drop lon", fitree::datasets::TaxiDropLon(n, 6),
                  {10, 100, 1000}});
  rows.push_back({"Taxi pick time", fitree::datasets::TaxiPickupTime(n, 4),
                  {10, 100}});
  rows.push_back({"OSM lon", fitree::datasets::OsmLongitude(n, 7),
                  {10, 100}});
  rows.push_back({"Weblogs", fitree::datasets::Weblogs(n, 1), {10, 100}});
  rows.push_back({"IoT", fitree::datasets::Iot(n, 2), {10, 100}});

  TablePrinter table({"Dataset", "error", "ShrinkingCone", "Optimal",
                      "Ratio"});
  for (const auto& row : rows) {
    for (double error : row.errors) {
      const size_t greedy =
          SegmentShrinkingCone<int64_t>(row.keys, error).size();
      const size_t optimal = OptimalSegmentCount<int64_t>(row.keys, error);
      table.AddRow({row.name, TablePrinter::Fmt(error, 0),
                    TablePrinter::Fmt(static_cast<uint64_t>(greedy)),
                    TablePrinter::Fmt(static_cast<uint64_t>(optimal)),
                    TablePrinter::Fmt(static_cast<double>(greedy) /
                                          static_cast<double>(optimal),
                                      2)});
    }
  }
  table.Print(std::cout);
}

void RunAdversarial() {
  fitree::bench::PrintHeader(
      "Appendix A.3: adversarial input (greedy = N+2, optimal = 2)");
  TablePrinter table({"N (patterns)", "ShrinkingCone", "Optimal"});
  for (size_t n_patterns : {10u, 100u, 1000u}) {
    const auto data = fitree::datasets::AdversarialCone(100.0, n_patterns);
    const size_t greedy =
        SegmentShrinkingCone<double>(data.keys, 100.0).size();
    const size_t optimal = OptimalSegmentCount<double>(data.keys, 100.0);
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(n_patterns)),
                  TablePrinter::Fmt(static_cast<uint64_t>(greedy)),
                  TablePrinter::Fmt(static_cast<uint64_t>(optimal))});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const size_t n = fitree::bench::ScaledN(100000);
  fitree::bench::PrintHeader(
      "Table 1: ShrinkingCone vs optimal segmentation (n=" +
      std::to_string(n) + " per dataset)");
  RunTable1(n);
  RunAdversarial();
  return 0;
}
