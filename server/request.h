// Request/response plumbing for the sharded index server.
//
// A client thread builds a Request naming the operation and a ResponseSlot
// it owns (usually on its stack), enqueues it on the target shard's op
// queue, and blocks on ResponseSlot::Wait(). The shard worker executes the
// op against its engine, fills the slot, and Publish()es it. The slot's
// single atomic flag is the only synchronization between the two threads:
// the release store in Publish() pairs with the acquire load in
// Ready()/Wait(), so every plain field the worker wrote before publishing
// — value, count, found, ok, *scan_out — is visible to the client after
// Wait() returns. The same edge is what makes the worker's relaxed
// bookkeeping (shard size counters, batch counters) safely readable from
// a client thread once its request has completed.
//
// Requests are tiny PODs copied by value through the queue; only the slot
// pointer crosses back. `enqueue_ns` doubles as the sampling flag: the
// client stamps it only for requests that won the telemetry sampling draw
// (one in FITREE_TELEM_SAMPLE), and the worker derives queue-wait and
// whole-request latencies from it. Zero means "not sampled, don't time".

#ifndef FITREE_SERVER_REQUEST_H_
#define FITREE_SERVER_REQUEST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace fitree::server {

// The operations a shard worker understands: the point CRUD ops plus a
// per-shard sub-scan (the router splits one client ScanRange across every
// shard the [lo, hi] interval touches).
enum class ReqOp : uint8_t { kLookup, kInsert, kUpdate, kDelete, kScan };

// One-shot response mailbox, owned by the requesting client. Not movable
// (the worker holds a raw pointer to it) — construct in place, wait, read.
template <typename K, typename V>
struct ResponseSlot {
  // Result fields: written by the worker before Publish(), read by the
  // client after Wait(). Which fields are meaningful depends on the op:
  //   kLookup          -> found (+ value when found)
  //   kInsert/kUpdate/
  //   kDelete          -> ok
  //   kScan            -> count (+ *scan_out appended in key order)
  bool ok = false;
  bool found = false;
  V value{};
  size_t count = 0;
  std::vector<std::pair<K, V>>* scan_out = nullptr;

  ResponseSlot() = default;
  ResponseSlot(const ResponseSlot&) = delete;
  ResponseSlot& operator=(const ResponseSlot&) = delete;

  // Worker side: make the result fields visible and wake the client.
  void Publish() { done_.store(true, std::memory_order_release); }

  // Client side: non-blocking completion check.
  bool Ready() const { return done_.load(std::memory_order_acquire); }

  // Client side: spin briefly (a shard worker answers a drained batch in
  // well under a microsecond), then yield to the scheduler — on an
  // oversubscribed box the worker likely needs this core to make progress.
  void Wait() const {
    for (int spin = 0; spin < 1024; ++spin) {
      if (Ready()) return;
    }
    while (!Ready()) std::this_thread::yield();
  }

  // Re-arm for reuse (pipelined clients recycle a slot array). Only legal
  // once the previous request has published and been read.
  void Reset() {
    ok = false;
    found = false;
    count = 0;
    done_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> done_{false};
};

// One queued operation. `hi` is only meaningful for kScan; `value` only
// for kInsert/kUpdate. 0 in `enqueue_ns` means the request was not
// selected for latency sampling.
template <typename K, typename V>
struct Request {
  ReqOp op = ReqOp::kLookup;
  K key{};
  K hi{};
  V value{};
  uint64_t enqueue_ns = 0;
  ResponseSlot<K, V>* slot = nullptr;
};

}  // namespace fitree::server

#endif  // FITREE_SERVER_REQUEST_H_
