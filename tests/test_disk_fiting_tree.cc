// DiskFitingTree end-to-end tests: a serialized tree answers every query
// identically to its in-memory StaticFitingTree counterpart, under caches
// smaller than the file, across error bounds, and in fixed-paging mode.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "workloads/workloads.h"

namespace {

using fitree::IoStats;
using fitree::StaticFitingTree;
using fitree::storage::DiskFitingTree;
using fitree::storage::LeafCapacity;
using fitree::storage::MakeFixedSegments;
using fitree::storage::SegmentFileOptions;

constexpr size_t kPageBytes = 256;  // 15 entries/page: tiny data, many pages

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Irregular gaps (IoT's day/night jumps) exercise long and short segments.
std::vector<int64_t> TestKeys(size_t n) {
  return fitree::datasets::Iot(n, /*seed=*/7);
}

struct Fixture {
  std::vector<int64_t> keys;
  std::unique_ptr<StaticFitingTree<int64_t>> oracle;
  std::unique_ptr<DiskFitingTree<int64_t>> disk;
  std::string path;

  Fixture(size_t n, double error, size_t cache_pages,
          const std::string& name) {
    keys = TestKeys(n);
    oracle = StaticFitingTree<int64_t>::Create(keys, error);
    path = TempPath(name + ".fit");
    EXPECT_TRUE(fitree::storage::WriteIndexFile(
        path, *oracle, SegmentFileOptions{kPageBytes}));
    DiskFitingTree<int64_t>::Options options;
    options.cache_pages = cache_pages;
    disk = DiskFitingTree<int64_t>::Open(path, options);
    EXPECT_NE(disk, nullptr);
  }

  ~Fixture() { std::remove(path.c_str()); }
};

void ExpectMatchesOracle(Fixture& fx) {
  ASSERT_NE(fx.disk, nullptr);
  EXPECT_EQ(fx.disk->size(), fx.oracle->size());
  EXPECT_EQ(fx.disk->SegmentCount(), fx.oracle->SegmentCount());
  for (size_t i = 0; i < fx.keys.size(); ++i) {
    const auto payload = fx.disk->Lookup(fx.keys[i]);
    ASSERT_TRUE(payload.has_value()) << "key rank " << i;
    EXPECT_EQ(*payload, i);
    EXPECT_EQ(fx.disk->LowerBound(fx.keys[i]), i);
  }
  // Absent probes: strictly inside gaps, before the first and after the
  // last key.
  std::mt19937_64 rng(99);
  for (int t = 0; t < 2000; ++t) {
    const int64_t probe = fitree::workloads::detail::AbsentKey(fx.keys, rng);
    EXPECT_EQ(fx.disk->LowerBound(probe), fx.oracle->LowerBound(probe));
    EXPECT_EQ(fx.disk->Lookup(probe).has_value(),
              fx.oracle->Contains(probe));
  }
  EXPECT_EQ(fx.disk->LowerBound(fx.keys.front() - 5), 0u);
  EXPECT_FALSE(fx.disk->Lookup(fx.keys.front() - 5).has_value());
  EXPECT_EQ(fx.disk->LowerBound(fx.keys.back() + 5), fx.keys.size());
  EXPECT_FALSE(fx.disk->Lookup(fx.keys.back() + 5).has_value());
  EXPECT_FALSE(fx.disk->io_error());
}

TEST(DiskFitingTree, MatchesOracleAcrossErrorBounds) {
  for (const double error : {4.0, 32.0, 256.0}) {
    Fixture fx(3000, error, /*cache_pages=*/8,
               "match_e" + std::to_string(static_cast<int>(error)));
    ExpectMatchesOracle(fx);
  }
}

TEST(DiskFitingTree, RangeScansMatchOracle) {
  Fixture fx(2500, 16.0, /*cache_pages=*/8, "ranges");
  const auto queries = fitree::workloads::MakeRangeQueries<int64_t>(
      fx.keys, 200, /*selectivity=*/0.01, /*seed=*/5);
  for (const auto& q : queries) {
    std::vector<int64_t> got;
    std::vector<uint64_t> got_values;
    fx.disk->ScanRange(q.lo, q.hi, [&](int64_t k, uint64_t v) {
      got.push_back(k);
      got_values.push_back(v);
    });
    std::vector<int64_t> want;
    fx.oracle->ScanRange(q.lo, q.hi, [&](int64_t k) { want.push_back(k); });
    ASSERT_EQ(got, want);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got_values[i], fx.oracle->LowerBound(got[i]));
    }
    EXPECT_EQ(fx.disk->RangeCount(q.lo, q.hi),
              fx.oracle->RangeCount(q.lo, q.hi));
  }
  // Empty and inverted ranges.
  EXPECT_EQ(fx.disk->RangeCount(fx.keys.back() + 1, fx.keys.back() + 100), 0u);
  EXPECT_EQ(fx.disk->RangeCount(fx.keys[10], fx.keys[5]), 0u);
}

TEST(DiskFitingTree, CacheSmallerThanFileEvictsButStaysCorrect) {
  // 2500 keys at 15/page is ~167 leaf pages; 4 frames forces constant
  // eviction on uniform probes.
  Fixture fx(2500, 16.0, /*cache_pages=*/4, "small_cache");
  ExpectMatchesOracle(fx);
  const IoStats io = fx.disk->io();
  EXPECT_GT(io.pages_read, fx.disk->LeafPageCount());  // many re-reads
  EXPECT_GT(io.cache_hits, 0u);  // windows within a page still hit
}

TEST(DiskFitingTree, FullyResidentCacheStopsReadingAfterWarmup) {
  Fixture fx(2000, 16.0, /*cache_pages=*/4096, "resident");
  for (const int64_t key : fx.keys) fx.disk->Lookup(key);  // warmup
  const uint64_t warm_reads = fx.disk->io().pages_read;
  EXPECT_LE(warm_reads, fx.disk->LeafPageCount());
  for (const int64_t key : fx.keys) fx.disk->Lookup(key);
  EXPECT_EQ(fx.disk->io().pages_read, warm_reads);  // all hits, no I/O
  EXPECT_GT(fx.disk->io().HitRate(), 0.5);
}

TEST(DiskFitingTree, IoStatsDeltaGivesPerPhaseCounts) {
  Fixture fx(2000, 16.0, /*cache_pages=*/8, "stats");
  for (size_t i = 0; i < 100; ++i) fx.disk->Lookup(fx.keys[i]);
  const IoStats before = fx.disk->io();
  for (size_t i = 100; i < 200; ++i) fx.disk->Lookup(fx.keys[i]);
  const IoStats delta = fx.disk->io() - before;
  EXPECT_GT(delta.accesses(), 0u);
  EXPECT_EQ(delta.bytes_read, delta.pages_read * kPageBytes);
  fx.disk->ResetIoStats();
  EXPECT_EQ(fx.disk->io(), IoStats{});
}

TEST(DiskFitingTree, FixedPagingLayoutMatchesOracle) {
  const auto keys = TestKeys(2000);
  const auto oracle = StaticFitingTree<int64_t>::Create(keys, 16.0);
  const size_t cap = LeafCapacity<int64_t>(kPageBytes);
  const auto segments = MakeFixedSegments(std::span<const int64_t>(keys), cap);
  const std::string path = TempPath("fixed.fit");
  ASSERT_TRUE(fitree::storage::WriteSegmentFile<int64_t>(
      path, keys, {}, segments, static_cast<double>(cap),
      SegmentFileOptions{kPageBytes}));
  DiskFitingTree<int64_t>::Options options;
  options.cache_pages = 8;
  auto disk = DiskFitingTree<int64_t>::Open(path, options);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->SegmentCount(), (keys.size() + cap - 1) / cap);
  disk->ResetIoStats();
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(disk->Lookup(keys[i]).value_or(UINT64_MAX), i);
  }
  // One segment == one leaf page, so each lookup touches exactly one page
  // (fetched twice: window search, then payload read — the second is a
  // guaranteed cache hit). Rank-ordered probing faults each page once.
  EXPECT_EQ(disk->io().accesses(), 2 * keys.size());
  EXPECT_EQ(disk->io().pages_read, disk->LeafPageCount());
  std::mt19937_64 rng(3);
  for (int t = 0; t < 500; ++t) {
    const int64_t probe = fitree::workloads::detail::AbsentKey(keys, rng);
    EXPECT_EQ(disk->LowerBound(probe), oracle->LowerBound(probe));
  }
  std::remove(path.c_str());
}

TEST(DiskFitingTree, TinyTreesRoundTrip) {
  for (const size_t n : {1u, 2u, 3u}) {
    const std::vector<int64_t> keys = [&] {
      std::vector<int64_t> k;
      for (size_t i = 0; i < n; ++i) k.push_back(10 * static_cast<int64_t>(i));
      return k;
    }();
    const auto oracle = StaticFitingTree<int64_t>::Create(keys, 4.0);
    const std::string path = TempPath("tiny" + std::to_string(n) + ".fit");
    ASSERT_TRUE(fitree::storage::WriteIndexFile(
        path, *oracle, SegmentFileOptions{kPageBytes}));
    auto disk = DiskFitingTree<int64_t>::Open(path);
    ASSERT_NE(disk, nullptr);
    EXPECT_EQ(disk->size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(disk->Lookup(keys[i]).value_or(UINT64_MAX), i);
    }
    EXPECT_FALSE(disk->Lookup(5).has_value());
    EXPECT_FALSE(disk->Lookup(-1).has_value());
    std::remove(path.c_str());
  }
}

TEST(DiskFitingTree, ReopenIsDeterministic) {
  Fixture fx(1500, 8.0, /*cache_pages=*/16, "reopen");
  auto second = DiskFitingTree<int64_t>::Open(fx.path);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->size(), fx.disk->size());
  EXPECT_EQ(second->SegmentCount(), fx.disk->SegmentCount());
  EXPECT_EQ(second->LeafPageCount(), fx.disk->LeafPageCount());
  EXPECT_DOUBLE_EQ(second->error(), fx.disk->error());
  for (size_t i = 0; i < fx.keys.size(); i += 97) {
    EXPECT_EQ(second->Lookup(fx.keys[i]), fx.disk->Lookup(fx.keys[i]));
  }
}

TEST(DiskFitingTree, ZipfianProbesRaiseHitRateOverUniform) {
  // ~200 leaf pages; 64 frames hold the Zipfian hot set (each hot key
  // needs its 2-3 window pages resident) but only a third of the file.
  Fixture fx(3000, 16.0, /*cache_pages=*/64, "zipf");
  const auto run = [&](fitree::workloads::Access access) {
    const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
        fx.keys, 20000, access, /*absent_fraction=*/0.0, 17);
    fx.disk->ResetIoStats();
    for (const int64_t p : probes) fx.disk->Lookup(p);
    return fx.disk->io().HitRate();
  };
  const double uniform = run(fitree::workloads::Access::kUniform);
  const double zipfian = run(fitree::workloads::Access::kZipfian);
  EXPECT_GT(zipfian, uniform + 0.1);
}

}  // namespace
