// Key -> shard routing for the sharded index server.
//
// Shards range-partition the key space: shard i owns [boundary[i],
// boundary[i+1]) and the last shard owns everything from its boundary up.
// Routing is therefore a floor lookup over the boundary array, and the
// router reuses FlatKeyIndex (core/flat_directory.h) — the same
// interpolation-guess + SIMD-count descent the flat segment directory
// uses — so a route over even thousands of shards is a handful of
// touches on one small, immutable, cache-resident array.
//
// The boundary array is fixed at server construction (no resharding), so
// the router is immutable after Create and safe to probe from any number
// of client threads with no synchronization.

#ifndef FITREE_SERVER_SHARD_ROUTER_H_
#define FITREE_SERVER_SHARD_ROUTER_H_

#include <cstddef>
#include <vector>

#include "core/flat_directory.h"

namespace fitree::server {

template <typename K>
class ShardRouter {
 public:
  ShardRouter() = default;

  // `boundaries` must be sorted and duplicate-free; boundaries[0] is the
  // logical minimum of shard 0 (keys below it still route to shard 0 —
  // the first shard owns the left tail, see ShardOf).
  static ShardRouter Create(std::vector<K> boundaries) {
    ShardRouter router;
    if (boundaries.empty()) boundaries.push_back(K{});
    router.index_.Reset(std::move(boundaries));
    return router;
  }

  // Evenly split `keys` (sorted) into `shards` boundary keys:
  // boundary[i] = keys[i * n / shards]. Fewer distinct boundaries than
  // requested shards (tiny or skewed key sets) simply yields fewer shards.
  static std::vector<K> Partition(const std::vector<K>& keys, size_t shards) {
    std::vector<K> boundaries;
    if (keys.empty() || shards == 0) {
      boundaries.push_back(K{});
      return boundaries;
    }
    const size_t n = keys.size();
    boundaries.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      const K& b = keys[i * n / shards];
      if (boundaries.empty() || boundaries.back() < b) {
        boundaries.push_back(b);
      }
    }
    return boundaries;
  }

  // The shard owning `key`. Total: keys sorting before the first boundary
  // clamp to shard 0, so every key — including ones the index has never
  // seen — routes somewhere deterministic.
  size_t ShardOf(const K& key) const {
    const size_t floor = index_.FloorIndex(key);
    return floor == FlatKeyIndex<K>::kNone ? 0 : floor;
  }

  size_t shard_count() const { return index_.size(); }
  const K& boundary(size_t shard) const { return index_.key_at(shard); }

 private:
  FlatKeyIndex<K> index_;
};

}  // namespace fitree::server

#endif  // FITREE_SERVER_SHARD_ROUTER_H_
