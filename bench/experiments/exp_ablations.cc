// Ablation sweeps for the design choices DESIGN.md calls out, registered
// as four separately filterable experiments (--filter=ablation runs all):
//   ablation_fanout      internal B+ tree fanout (paper Sec 2.2)
//   ablation_search      in-window search policy (paper Sec 4.1.2)
//   ablation_feasibility endpoint line vs PGM-style cone
//   ablation_buffer      buffer sizing policy (generalizes Figure 12)

#include <memory>
#include <string>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "core/shrinking_cone.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

struct AblationData {
  std::shared_ptr<const std::vector<int64_t>> keys;
  std::shared_ptr<const std::vector<int64_t>> probes;
  std::shared_ptr<const std::vector<int64_t>> inserts;
};

AblationData LoadData() {
  const size_t n = ScaledN(1000000);
  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/1";
  AblationData data;
  data.keys = MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 1); });
  data.probes = MemoProbes(dataset_key, *data.keys, ScaledN(200000),
                           workloads::Access::kUniform, 0.0, 2);
  data.inserts = MemoInserts(dataset_key, *data.keys, ScaledN(200000), 3);
  return data;
}

template <typename Tree>
Stats MeasureLookups(Runner& runner, Tree& tree,
                     const std::vector<int64_t>& probes) {
  return runner.CollectReps([&] {
    return TimedLoopNsPerOp(probes.size(), [&](size_t i) {
      return tree.Contains(probes[i]) ? uint64_t{1} : uint64_t{0};
    });
  });
}

template <int kSlots>
void FanoutPoint(Runner& runner, const AblationData& data) {
  FitingTreeConfig config;
  config.error = 256.0;
  config.buffer_size = 0;
  auto tree = FitingTree<int64_t, kSlots, kSlots>::Create(*data.keys, config);
  const Stats stats = MeasureLookups(runner, *tree, *data.probes);
  runner.Report(
      {{"node_slots", std::to_string(kSlots)}}, stats,
      {{"height", static_cast<double>(tree->TreeHeight())},
       {"index_KB", static_cast<double>(tree->IndexSizeBytes()) / 1024.0}});
}

void RunFanout(Runner& runner) {
  const AblationData data = LoadData();
  FanoutPoint<8>(runner, data);
  FanoutPoint<16>(runner, data);
  FanoutPoint<32>(runner, data);
  FanoutPoint<64>(runner, data);
  FanoutPoint<128>(runner, data);
}

void RunSearchPolicy(Runner& runner) {
  const AblationData data = LoadData();
  const struct {
    SearchPolicy policy;
    const char* name;
  } policies[] = {{SearchPolicy::kBinary, "binary"},
                  {SearchPolicy::kLinear, "linear"},
                  {SearchPolicy::kExponential, "exponential"},
                  {SearchPolicy::kSimd, "simd"}};
  for (double error : {64.0, 1024.0, 16384.0}) {
    for (const auto& p : policies) {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = 0;
      config.search_policy = p.policy;
      auto tree = FitingTree<int64_t>::Create(*data.keys, config);
      runner.Report({{"error", TablePrinter::Fmt(error, 0)},
                     {"policy", p.name}},
                    MeasureLookups(runner, *tree, *data.probes));
    }
  }
}

void RunFeasibility(Runner& runner) {
  const AblationData data = LoadData();
  const struct {
    Feasibility mode;
    const char* name;
  } modes[] = {{Feasibility::kEndpointLine, "endpoint"},
               {Feasibility::kCone, "cone"}};
  for (double error : {64.0, 256.0, 1024.0}) {
    for (const auto& m : modes) {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = 0;
      config.feasibility = m.mode;
      auto tree = FitingTree<int64_t>::Create(*data.keys, config);
      const Stats stats = MeasureLookups(runner, *tree, *data.probes);
      runner.Report({{"error", TablePrinter::Fmt(error, 0)},
                     {"feasibility", m.name}},
                    stats,
                    {{"segments", static_cast<double>(tree->SegmentCount())}});
    }
  }
}

void RunBufferPolicy(Runner& runner) {
  const AblationData data = LoadData();
  const double error = 1024.0;
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // A zero buffer merges a whole segment on every insert (that is the
    // point); fewer inserts keep that cell from dominating the run.
    const size_t ops =
        frac == 0.0 ? data.inserts->size() / 50 : data.inserts->size();
    std::unique_ptr<FitingTree<int64_t>> tree;
    const Stats stats = runner.CollectReps([&] {
      FitingTreeConfig config;
      config.error = error;
      config.buffer_size = static_cast<size_t>(error * frac);
      tree = FitingTree<int64_t>::Create(*data.keys, config);
      return TimedLoopNsPerOp(ops, [&](size_t i) {
        tree->Insert((*data.inserts)[i]);
        return uint64_t{1};
      });
    }, /*warmup=*/false);
    const double lookup_ns =
        TimedLoopNsPerOp(data.probes->size(), [&](size_t i) {
          return tree->Contains((*data.probes)[i]) ? uint64_t{1} : uint64_t{0};
        });
    runner.Report(
        {{"buffer_fraction", TablePrinter::Fmt(frac, 2)}}, stats,
        {{"insert_Mops", MopsFromNsPerOp(stats.p50)},
         {"lookup_ns", lookup_ns},
         {"merges", static_cast<double>(tree->stats().segment_merges)}});
  }
}

FITREE_REGISTER_EXPERIMENT(
    "ablation_fanout",
    "Ablation (a): internal B+ tree node slots (error=256)", RunFanout);
FITREE_REGISTER_EXPERIMENT(
    "ablation_search", "Ablation (b): in-window search policy",
    RunSearchPolicy);
FITREE_REGISTER_EXPERIMENT(
    "ablation_feasibility",
    "Ablation (c): endpoint-line (paper) vs PGM-style cone feasibility",
    RunFeasibility);
FITREE_REGISTER_EXPERIMENT(
    "ablation_buffer",
    "Ablation (d): buffer fraction of error (error=1024)", RunBufferPolicy);

}  // namespace
}  // namespace fitree::bench
