// Per-phase span attribution: where inside an operation a nanosecond went.
//
// The paper's lookup cost is a sum of distinct stages — directory descent,
// bounded window search within the error range, buffer/delta probe, and
// (on disk) page I/O. Phase is the closed vocabulary of those stages and
// ScopedPhase is a nestable RAII span the engines drop around each one,
// feeding a per-(engine, phase) count + latency-histogram grid in the
// registry and, when FITREE_TRACE is on, phase-tagged trace records.
//
// Cost model: phases piggyback on the op sampling countdown. A ScopedOp
// that wins the 1-in-FITREE_TELEM_SAMPLE draw (or a ScopedDuration, which
// always times) marks the thread "phase timing active"; every ScopedPhase
// inside that op then counts and times itself, and every ScopedPhase
// outside one is a single thread-local load + branch (measured in
// EXPERIMENTS.md "Profiling"). Phase counts are therefore *sample* counts
// — the same population the op latency histograms describe — not exact
// call counts; that is what keeps 3-4 spans per op inside the +10-20
// ns/op instrumentation envelope established in PR 7.
//
// Nesting: spans form a stack per thread, and a span records its SELF
// time — wall time minus enclosed child spans — so the phases of one op
// sum to (at most) the op's own latency and a flame view of the grid is
// additive. The disk engine's window search, for example, records compute
// time only, while the page faults it triggers land under page_io.
//
// ScopedPhase compiles to a true no-op under -DFITREE_NO_TELEMETRY; the
// Phase enum and names stay real in both builds (tools and tests use
// them), matching the metrics.h convention.

#ifndef FITREE_TELEMETRY_PHASE_H_
#define FITREE_TELEMETRY_PHASE_H_

#include <cstddef>
#include <cstdint>

#include "telemetry/metrics.h"

namespace fitree::telemetry {

// The cost stages the engines distinguish: the per-op hot-path stages in
// execution order, then the rare structural/background ones.
enum class Phase : uint8_t {
  kDirectoryDescent,  // segment directory walk (flat interpolation or B+)
  kWindowSearch,      // bounded search inside the model's error window
  kBufferProbe,       // per-segment insert-buffer probe (buffered/concurrent)
  kDeltaProbe,        // disk engine's in-memory delta-overlay probe
  kPageIo,            // buffer-pool miss: read + verify one page
  kPageIoBatch,       // batched miss handling: submit all, then wait + verify
  kMergeResegment,    // buffer merge + shrinking-cone resegmentation
  kCompact,           // disk base-file rewrite absorbing the delta
  kEpochReclaim,      // epoch-based reclamation sweep
  // Server request-path stages (server/sharded_index.h). These are
  // recorded cross-thread — routing on the client, wait/exec on the shard
  // worker — so the server records them straight into the phase grid for
  // sampled requests instead of using thread-local ScopedPhase nesting.
  kShardRoute,        // shard-boundary floor lookup on the client thread
  kShardQueueWait,    // enqueue-to-dequeue time in the shard's op queue
  kShardExec,         // engine call on the shard worker (probe + publish)
};
inline constexpr size_t kNumPhases = 12;

inline constexpr const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kDirectoryDescent: return "directory_descent";
    case Phase::kWindowSearch: return "window_search";
    case Phase::kBufferProbe: return "buffer_probe";
    case Phase::kDeltaProbe: return "delta_probe";
    case Phase::kPageIo: return "page_io";
    case Phase::kPageIoBatch: return "page_io_batch";
    case Phase::kMergeResegment: return "merge_resegment";
    case Phase::kCompact: return "compact";
    case Phase::kEpochReclaim: return "epoch_reclaim";
    case Phase::kShardRoute: return "shard_route";
    case Phase::kShardQueueWait: return "shard_queue_wait";
    case Phase::kShardExec: return "shard_exec";
  }
  return "?";
}

#ifdef FITREE_NO_TELEMETRY

class ScopedPhase {
 public:
  ScopedPhase(Engine, Phase) {}
};

#else  // !FITREE_NO_TELEMETRY

class ScopedPhase;

namespace detail {

// Per-thread phase state. `timing` is armed by a ScopedOp that sampled
// (or by a ScopedDuration, which always times) and `op` is that op's id,
// so phase records can carry their enclosing op without ScopedPhase
// taking an Op parameter at every call site. Trivial + constinit keeps
// the TLS access direct — no __tls_init wrapper on the fast path (same
// reasoning as ThreadSlot() in metrics.h).
struct PhaseContext {
  ScopedPhase* innermost = nullptr;
  bool timing = false;
  uint8_t op = 0;
};
inline constinit thread_local PhaseContext g_phase_ctx;

// Cold path (runs 1-in-FITREE_TELEM_SAMPLE ops per span): folds one
// finished span into the registry's phase grid and, when tracing is on,
// the calling thread's trace ring. Defined in telemetry.cc.
void RecordPhaseSample(Engine engine, Phase phase, Op op, uint64_t self_ns);

}  // namespace detail

// Nestable span covering one phase of the currently executing op. Armed
// only while the enclosing op is being timed (see file comment); an
// unarmed span costs one thread-local load + branch in the constructor
// and a dead-store test in the destructor.
class ScopedPhase {
 public:
  ScopedPhase(Engine e, Phase p) {
    detail::PhaseContext& ctx = detail::g_phase_ctx;
    if (!ctx.timing) return;
    engine_ = e;
    phase_ = p;
    parent_ = ctx.innermost;
    ctx.innermost = this;
    start_ns_ = NowNs();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (start_ns_ == 0) return;
    const uint64_t inclusive = NowNs() - start_ns_;
    detail::PhaseContext& ctx = detail::g_phase_ctx;
    ctx.innermost = parent_;
    if (parent_ != nullptr) parent_->child_ns_ += inclusive;
    const uint64_t self = inclusive > child_ns_ ? inclusive - child_ns_ : 0;
    detail::RecordPhaseSample(engine_, phase_, static_cast<Op>(ctx.op), self);
  }

 private:
  ScopedPhase* parent_ = nullptr;
  uint64_t start_ns_ = 0;  // 0 == span not armed
  uint64_t child_ns_ = 0;  // inclusive time of direct children
  Engine engine_{};
  Phase phase_{};
};

#endif  // FITREE_NO_TELEMETRY

}  // namespace fitree::telemetry

#endif  // FITREE_TELEMETRY_PHASE_H_
