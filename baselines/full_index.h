// The dense ("full") index baseline: every key goes into a B+ tree, the
// upper-right anchor of Figure 6 — fastest lookups, largest index. Inserts
// go straight into the tree (Figure 7's Full series).

#ifndef FITREE_BASELINES_FULL_INDEX_H_
#define FITREE_BASELINES_FULL_INDEX_H_

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "btree/btree_map.h"

namespace fitree {

template <typename K>
class FullIndex {
 public:
  explicit FullIndex(std::span<const K> keys) {
    std::vector<std::pair<K, K>> items;
    items.reserve(keys.size());
    for (const K& key : keys) items.emplace_back(key, key);
    tree_.BulkLoad(std::move(items));
  }

  bool Contains(const K& key) const { return tree_.Contains(key); }

  std::optional<K> Find(const K& key) const {
    const K* value = tree_.Find(key);
    return value == nullptr ? std::nullopt : std::optional<K>(*value);
  }

  void Insert(const K& key) { tree_.Insert(key, key); }

  // Calls fn(key) for every key in [lo, hi] in ascending order.
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn fn) const {
    tree_.ScanFrom(lo, [&](const K& key, const K&) {
      if (key > hi) return false;
      fn(key);
      return true;
    });
  }

  size_t IndexSizeBytes() const { return tree_.MemoryBytes(); }
  size_t size() const { return tree_.size(); }
  int TreeHeight() const { return tree_.Height(); }

 private:
  btree::BTreeMap<K, K, 64, 64> tree_;
};

}  // namespace fitree

#endif  // FITREE_BASELINES_FULL_INDEX_H_
