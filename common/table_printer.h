// Column-aligned plain-text tables for the paper-figure benchmark output.

#ifndef FITREE_COMMON_TABLE_PRINTER_H_
#define FITREE_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fitree {

// Collects rows of pre-formatted cells and prints them with every column
// padded to its widest entry, e.g.
//
//   method       param    index_size_MB  ns_per_lookup
//   FITing-Tree  e=16     12.3456        181.2
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(std::ostream& os) const {
    std::vector<size_t> widths(columns_.size(), 0);
    for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    PrintRow(os, columns_, widths);
    for (const auto& row : rows_) PrintRow(os, row, widths);
    os.flush();
  }

  // Fixed-precision decimal formatting, e.g. Fmt(12.345, 1) == "12.3".
  static std::string Fmt(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return std::string(buf);
  }

  static std::string Fmt(uint64_t value) { return std::to_string(value); }

 private:
  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        const size_t width = c < widths.size() ? widths[c] : row[c].size();
        line.append(width > row[c].size() ? width - row[c].size() + 2 : 2,
                    ' ');
      }
    }
    os << line << '\n';
  }

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fitree

#endif  // FITREE_COMMON_TABLE_PRINTER_H_
