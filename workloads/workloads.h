// Workload builders: lookup probe streams (with a controllable fraction of
// absent keys), insert streams drawn from the gaps of the base
// distribution, and range queries of a target selectivity.

#ifndef FITREE_WORKLOADS_WORKLOADS_H_
#define FITREE_WORKLOADS_WORKLOADS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <random>
#include <vector>

namespace fitree::workloads {

enum class Access {
  kUniform,  // probes drawn uniformly over the key set
  kZipfian,  // Zipf(theta=0.99) popularity, hot keys scattered over the set
};

// SplitMix64 step: advances `state` by the golden-ratio gamma and returns a
// finalized 64-bit output. The canonical seed expander (Vigna 2015) — every
// distinct state index yields a decorrelated value, which is what makes
// per-thread seeding below collision-free by construction.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Deterministic per-thread stream seed: element `thread_id` of the
// SplitMix64 sequence rooted at `base_seed`. Multi-threaded benches seed
// thread t's generator with ThreadSeed(base, t) so every run of the same
// binary replays identical per-thread operation streams regardless of
// scheduling, while distinct threads never share a stream.
inline uint64_t ThreadSeed(uint64_t base_seed, uint64_t thread_id) {
  uint64_t state = base_seed + thread_id * 0x9E3779B97F4A7C15ull;
  return SplitMix64(state);
}

template <typename K>
struct RangeQuery {
  K lo{};
  K hi{};
};

namespace detail {

// A key strictly inside a randomly chosen gap of `keys`, i.e. absent from
// it. Falls back to an existing key when the data leaves no room (e.g. fully
// dense ranges).
template <typename K>
K AbsentKey(const std::vector<K>& keys, std::mt19937_64& rng) {
  // A single key has no gaps to draw from (and keys.size() - 1 == 0 would
  // be a modulo by zero below); fall back to the lone key.
  if (keys.size() < 2) return keys.empty() ? K{} : keys.front();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const size_t i = rng() % (keys.size() - 1);
    const K gap = keys[i + 1] - keys[i];
    if (gap > K{1}) {
      return keys[i] + K{1} + static_cast<K>(rng() % static_cast<uint64_t>(gap - K{1}));
    }
  }
  return keys[rng() % keys.size()];
}

// YCSB-style Zipfian rank sampler over [0, n): O(n) zeta precomputation,
// constant time per draw. Ranks are scattered across the key set with a
// splitmix64 finalizer so the hot set is not one contiguous key prefix
// (and hence not one contiguous run of leaf pages) — the standard trick
// for exercising caches with realistic skew.
class ZipfianRanks {
 public:
  explicit ZipfianRanks(size_t n, double theta = 0.99)
      : n_(n == 0 ? 1 : n), theta_(theta) {
    for (size_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  size_t Next(std::mt19937_64& rng) {
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    const double u = unif(rng);
    const double uz = u * zetan_;
    size_t rank;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      rank = 1;
    } else {
      rank = static_cast<size_t>(
          static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    }
    if (rank >= n_) rank = n_ - 1;
    return Scatter(rank) % n_;
  }

 private:
  static uint64_t Scatter(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  size_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace detail

// `count` point-lookup probes over `keys` (sorted). An `absent_fraction` of
// them miss: they fall strictly inside gaps of the key set. Present probes
// are drawn per `access`: uniform, or Zipfian-skewed so a small hot set
// dominates (what cache-sensitive disk benches need to show hit-rate
// effects).
template <typename K>
std::vector<K> MakeLookupProbes(const std::vector<K>& keys, size_t count,
                                Access access, double absent_fraction,
                                uint64_t seed) {
  std::vector<K> probes;
  probes.reserve(count);
  if (keys.empty()) return probes;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::optional<detail::ZipfianRanks> zipf;
  if (access == Access::kZipfian) zipf.emplace(keys.size());
  for (size_t i = 0; i < count; ++i) {
    if (keys.size() > 1 && absent_fraction > 0.0 &&
        unif(rng) < absent_fraction) {
      probes.push_back(detail::AbsentKey(keys, rng));
    } else {
      const size_t index =
          zipf.has_value() ? zipf->Next(rng) : rng() % keys.size();
      probes.push_back(keys[index]);
    }
  }
  return probes;
}

// `count` insert keys drawn from the same distribution as `keys`: each lands
// strictly inside a uniformly chosen gap, so it is absent from the base data
// (duplicates within the stream itself are possible and benign for
// set-semantics indexes).
template <typename K>
std::vector<K> MakeInserts(const std::vector<K>& keys, size_t count,
                           uint64_t seed) {
  std::vector<K> inserts;
  inserts.reserve(count);
  if (keys.size() < 2) return inserts;
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < count; ++i) {
    inserts.push_back(detail::AbsentKey(keys, rng));
  }
  return inserts;
}

// `count` closed ranges [lo, hi] each spanning ~selectivity * keys.size()
// consecutive keys.
template <typename K>
std::vector<RangeQuery<K>> MakeRangeQueries(const std::vector<K>& keys,
                                            size_t count, double selectivity,
                                            uint64_t seed) {
  std::vector<RangeQuery<K>> queries;
  queries.reserve(count);
  if (keys.empty()) return queries;
  const size_t span = std::max<size_t>(
      1, static_cast<size_t>(selectivity * static_cast<double>(keys.size())));
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < count; ++i) {
    const size_t start =
        keys.size() > span ? rng() % (keys.size() - span) : 0;
    const size_t end = std::min(keys.size() - 1, start + span - 1);
    queries.push_back({keys[start], keys[end]});
  }
  return queries;
}

// ---- YCSB-style mixed operation streams (bench_concurrent, bench_crud) ----

enum class OpType : uint8_t {
  kRead,    // point lookup
  kInsert,  // insert of a key absent from the base data
  kScan,    // closed range [key, hi]
  kUpdate,  // payload update of a (probably) present key
  kDelete,  // delete of a (probably) present key
};

template <typename K>
struct Op {
  OpType type = OpType::kRead;
  K key{};
  K hi{};              // scan upper bound; unused otherwise
  uint64_t value = 0;  // payload for inserts/updates
};

// Operation mix as fractions summing to at most 1; the remainder (if any)
// falls to reads. The standard YCSB core mixes map as:
//   A = {.read=0.5, .update=0.5}   B = {.read=0.95, .update=0.05}
//   C = {.read=1.0}                E = {.scan=0.95, .insert=0.05}
// plus delete-bearing mixes for the CRUD experiments. Update/delete keys
// are drawn from the base data per `access` (they may have been deleted by
// an earlier op — engines report that via their bool returns); insert keys
// fall in gaps, so a key inserted then deleted can be reinserted later.
struct OpMix {
  double read = 1.0;
  double insert = 0.0;
  double update = 0.0;
  double del = 0.0;
  double scan = 0.0;
};

// One thread's operation stream: `count` ops over sorted `keys` drawn from
// `mix`. Read/update/delete/scan keys follow `access` (uniform or
// Zipfian); inserts fall in gaps of the base data; scans cover
// ~`scan_selectivity` * n keys. Insert/update payloads are drawn from the
// stream's rng, so an update observably changes the stored value. Pass
// seed = ThreadSeed(base, thread_id) for reproducible per-thread streams.
template <typename K>
std::vector<Op<K>> MakeOpStream(const std::vector<K>& keys, size_t count,
                                const OpMix& mix, Access access,
                                double scan_selectivity, uint64_t seed) {
  std::vector<Op<K>> ops;
  ops.reserve(count);
  if (keys.empty()) return ops;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::optional<detail::ZipfianRanks> zipf;
  if (access == Access::kZipfian) zipf.emplace(keys.size());
  const size_t span = std::max<size_t>(
      1, static_cast<size_t>(scan_selectivity *
                             static_cast<double>(keys.size())));
  const auto pick_index = [&] {
    return zipf.has_value() ? zipf->Next(rng) : rng() % keys.size();
  };
  for (size_t i = 0; i < count; ++i) {
    const double draw = unif(rng);
    Op<K> op;
    if (draw < mix.insert) {
      // A degenerate base (< 2 keys) has no gaps to insert into; those
      // draws fall to reads, matching the documented remainder rule.
      if (keys.size() > 1) {
        op.type = OpType::kInsert;
        op.key = detail::AbsentKey(keys, rng);
        op.value = rng();
      } else {
        op.type = OpType::kRead;
        op.key = keys.front();
      }
    } else if (draw < mix.insert + mix.update) {
      op.type = OpType::kUpdate;
      op.key = keys[pick_index()];
      op.value = rng();
    } else if (draw < mix.insert + mix.update + mix.del) {
      op.type = OpType::kDelete;
      op.key = keys[pick_index()];
    } else if (draw < mix.insert + mix.update + mix.del + mix.scan) {
      op.type = OpType::kScan;
      const size_t start = pick_index();
      const size_t end = std::min(keys.size() - 1, start + span - 1);
      op.key = keys[start];
      op.hi = keys[end];
    } else {
      op.type = OpType::kRead;
      op.key = keys[pick_index()];
    }
    ops.push_back(op);
  }
  return ops;
}

// Per-thread streams for a `threads`-wide run: thread t gets an independent
// stream seeded with ThreadSeed(base_seed, t). Deterministic run-to-run for
// a fixed (base_seed, threads) pair.
template <typename K>
std::vector<std::vector<Op<K>>> MakeThreadOpStreams(
    const std::vector<K>& keys, int threads, size_t ops_per_thread,
    const OpMix& mix, Access access, double scan_selectivity,
    uint64_t base_seed) {
  std::vector<std::vector<Op<K>>> streams;
  streams.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    streams.push_back(MakeOpStream(keys, ops_per_thread, mix, access,
                                   scan_selectivity,
                                   ThreadSeed(base_seed,
                                              static_cast<uint64_t>(t))));
  }
  return streams;
}

}  // namespace fitree::workloads

#endif  // FITREE_WORKLOADS_WORKLOADS_H_
