// Environment-variable helpers used by the benchmark binaries to scale
// element counts and thread counts without recompiling.

#ifndef FITREE_COMMON_ENV_H_
#define FITREE_COMMON_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace fitree {

// Returns the value of `name` parsed as a 64-bit integer, or `def` when the
// variable is unset or unparsable.
inline int64_t GetEnvInt64(const char* name, int64_t def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return def;
  return static_cast<int64_t>(parsed);
}

inline int GetEnvInt(const char* name, int def) {
  return static_cast<int>(GetEnvInt64(name, static_cast<int64_t>(def)));
}

// Returns the value of `name`, or `def` when unset or empty (used by the
// FITREE_SEARCH_POLICY / FITREE_DIRECTORY hot-path knobs).
inline std::string GetEnvString(const char* name, const char* def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return def;
  return value;
}

}  // namespace fitree

#endif  // FITREE_COMMON_ENV_H_
