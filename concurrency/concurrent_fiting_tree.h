// Thread-safe FITing-Tree (paper Sec 4.2 index, made concurrent):
//
//  - Lookups and scans are lock-free: they run against an immutable
//    snapshot of the segment directory (a sorted first-key array published
//    through one atomic pointer) under epoch protection, and against each
//    segment's immutable key page. The only mutable per-segment state is
//    the small delta buffer; readers elide its latch with a
//    sequence-validated "buffer empty" check, so a 100%-read workload
//    never executes an atomic RMW on shared data and scales linearly.
//  - Inserts take the target segment's SegLatch, append into its sorted
//    delta buffer, and release — contention is spread over thousands of
//    segments, which is the concurrency payoff of the paper's design:
//    clamped inserts keep every write local to one segment.
//  - When a buffer overflows, the inserting thread (or the optional
//    background MergeWorker) marks the segment retired under its latch,
//    re-runs shrinking-cone segmentation over page+buffer off-latch, and
//    publishes the replacement segment(s) with a copy-on-write directory
//    swap. The old directory snapshot and the old segment are handed to
//    the EpochManager and freed once all in-flight readers quiesce.
//
// Writers waiting on a retired segment retry from the freshly published
// directory; readers never retry — a snapshot stays self-consistent for as
// long as they hold their epoch guard, which is what makes scans safe
// against concurrent merges (bundledrefs' versioned-range-scan discipline,
// specialized to whole-directory snapshots since merges are rare).

#ifndef FITREE_CONCURRENCY_CONCURRENT_FITING_TREE_H_
#define FITREE_CONCURRENCY_CONCURRENT_FITING_TREE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "concurrency/epoch.h"
#include "concurrency/merge_worker.h"
#include "concurrency/seg_latch.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"

namespace fitree {

struct ConcurrentFitingTreeConfig {
  // Sentinel: size the buffer as max(1, error/2), the paper's default ratio.
  static constexpr size_t kAutoBufferSize = static_cast<size_t>(-1);

  double error = 64.0;
  // Per-segment delta-buffer budget. With a background worker the budget is
  // soft: buffers keep absorbing inserts while their merge is queued.
  size_t buffer_size = kAutoBufferSize;
  SearchPolicy search_policy = SearchPolicy::kBinary;
  Feasibility feasibility = Feasibility::kEndpointLine;
  // Off: the inserting thread merges inline. On: overflows are queued to a
  // MergeWorker thread and inserts return immediately.
  bool background_merge = false;
};

struct ConcurrentFitingTreeStats {
  uint64_t inserts = 0;
  uint64_t segment_merges = 0;
  uint64_t segments_created = 0;
  uint64_t insert_retries = 0;  // landed on a retired segment, rerouted
};

template <typename K>
class ConcurrentFitingTree {
 public:
  static std::unique_ptr<ConcurrentFitingTree<K>> Create(
      const std::vector<K>& keys, const ConcurrentFitingTreeConfig& config) {
    auto tree = std::make_unique<ConcurrentFitingTree<K>>();
    tree->config_ = config;
    tree->effective_buffer_ =
        config.buffer_size == ConcurrentFitingTreeConfig::kAutoBufferSize
            ? std::max<size_t>(1, static_cast<size_t>(config.error / 2.0))
            : config.buffer_size;
    tree->BulkLoad(std::span<const K>(keys));
    if (config.background_merge) {
      tree->worker_.Start([t = tree.get()](void* seg) {
        EpochGuard guard(t->epoch_);
        t->MergeSegment(static_cast<Segment*>(seg));
      });
    }
    return tree;
  }

  ConcurrentFitingTree() = default;
  ConcurrentFitingTree(const ConcurrentFitingTree&) = delete;
  ConcurrentFitingTree& operator=(const ConcurrentFitingTree&) = delete;

  ~ConcurrentFitingTree() {
    worker_.Stop();
    // Single-threaded from here on: free the live snapshot, then drain the
    // epoch retire list (old snapshots/segments replaced during the run).
    const Directory* dir = dir_.load(std::memory_order_acquire);
    if (dir != nullptr) {
      for (Segment* seg : dir->segments) delete seg;
      delete dir;
    }
    epoch_.DrainAll();
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  bool Contains(const K& key) const {
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    const Segment* seg = dir->Floor(key);
    if (seg == nullptr) return false;
    return SearchPage(*seg, key) || SearchBuffer(*seg, key);
  }

  std::optional<K> Find(const K& key) const {
    return Contains(key) ? std::optional<K>(key) : std::nullopt;
  }

  // Inserts `key` (set semantics). Lands in the floor segment's delta
  // buffer under that segment's latch; overflow triggers merge-and-
  // resegment, inline or via the background worker.
  void Insert(const K& key) {
    stats_inserts_.fetch_add(1, std::memory_order_relaxed);
    EpochGuard guard(epoch_);
    for (;;) {
      const Directory* dir = dir_.load(std::memory_order_seq_cst);
      Segment* seg = dir->Floor(key);
      if (seg == nullptr) {
        if (InsertIntoEmpty(key)) return;
        continue;  // lost the bootstrap race; the directory now has a root
      }
      if (SearchPage(*seg, key)) return;  // already present in the page
      seg->latch.Lock();
      if (seg->retired.load(std::memory_order_relaxed)) {
        // A merge replaced this segment after we located it; retry against
        // the new directory (published before or shortly after retirement).
        seg->latch.Unlock();
        stats_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        continue;
      }
      const bool inserted = InsertIntoBufferLocked(seg, key);
      const bool overflow = seg->buffer.size() > effective_buffer_;
      seg->latch.Unlock();
      if (inserted) size_.fetch_add(1, std::memory_order_release);
      if (overflow) {
        if (worker_.running()) {
          if (!seg->merge_pending.exchange(true, std::memory_order_acq_rel)) {
            worker_.Enqueue(seg);
          }
        } else {
          MergeSegment(seg);
        }
      }
      return;
    }
  }

  // Calls fn(key) for every stored key in [lo, hi] in ascending order over
  // one directory snapshot: segment pages are read in place, delta buffers
  // are copied out under their latch (they hold at most ~error/2 keys).
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn fn) const {
    if (hi < lo) return;
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    if (dir->segments.empty()) return;
    std::vector<K> buffer_copy;
    for (size_t i = dir->FloorIndex(lo); i < dir->segments.size(); ++i) {
      const Segment* seg = dir->segments[i];
      if (seg->first_key > hi) break;
      CopyBuffer(*seg, &buffer_copy);
      EmitRange(*seg, buffer_copy, lo, hi, fn);
    }
  }

  size_t SegmentCount() const {
    EpochGuard guard(epoch_);
    return dir_.load(std::memory_order_seq_cst)->segments.size();
  }

  // Directory arrays plus per-segment model metadata (pages and buffers are
  // data, not index).
  size_t IndexSizeBytes() const {
    EpochGuard guard(epoch_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    return dir->segments.size() * (sizeof(K) + sizeof(Segment*)) +
           dir->segments.size() * kSegmentMetaBytes;
  }

  ConcurrentFitingTreeStats stats() const {
    ConcurrentFitingTreeStats s;
    s.inserts = stats_inserts_.load(std::memory_order_relaxed);
    s.segment_merges = stats_merges_.load(std::memory_order_relaxed);
    s.segments_created = stats_created_.load(std::memory_order_relaxed);
    s.insert_retries = stats_retries_.load(std::memory_order_relaxed);
    return s;
  }

  const ConcurrentFitingTreeConfig& config() const { return config_; }
  EpochManager& epoch() { return epoch_; }
  MergeWorker& merge_worker() { return worker_; }

  // Blocks until queued background merges finish (no-op inline). Tests and
  // benches call this before validating final contents.
  void QuiesceMerges() {
    if (worker_.running()) worker_.WaitIdle();
  }

 private:
  struct Segment {
    K first_key{};
    double slope = 0.0;
    double intercept = 0.0;      // predicted in-page rank at first_key
    std::vector<K> keys;         // immutable once published
    mutable SegLatch latch;      // guards buffer + retired transition
    std::atomic<bool> retired{false};
    std::atomic<bool> merge_pending{false};
    std::atomic<uint32_t> buffer_count{0};
    std::vector<K> buffer;       // sorted delta buffer, latch-protected

    double Predict(const K& key) const {
      return intercept + slope * (static_cast<double>(key) -
                                  static_cast<double>(first_key));
    }
  };

  static constexpr size_t kSegmentMetaBytes =
      sizeof(K) + 2 * sizeof(double) + sizeof(void*);

  // Immutable snapshot of the segment directory. Merges publish a fresh
  // copy; the arrays are never mutated after publication.
  struct Directory {
    std::vector<K> first_keys;       // sorted
    std::vector<Segment*> segments;  // parallel to first_keys

    // Index of the floor segment for `key` (clamped to 0 below the first
    // key, matching the single-threaded tree's floor-else-first rule).
    size_t FloorIndex(const K& key) const {
      auto it =
          std::upper_bound(first_keys.begin(), first_keys.end(), key);
      return it == first_keys.begin()
                 ? 0
                 : static_cast<size_t>(it - first_keys.begin()) - 1;
    }

    Segment* Floor(const K& key) const {
      return segments.empty() ? nullptr : segments[FloorIndex(key)];
    }
  };

  void BulkLoad(std::span<const K> keys) {
    auto dir = std::make_unique<Directory>();
    if (!keys.empty()) {
      const auto models =
          SegmentShrinkingCone<K>(keys, config_.error, config_.feasibility);
      dir->first_keys.reserve(models.size());
      dir->segments.reserve(models.size());
      for (const fitree::Segment<K>& m : models) {
        auto* seg = new Segment();
        seg->first_key = m.first_key;
        seg->slope = m.slope;
        seg->intercept = m.intercept - static_cast<double>(m.start);
        seg->keys.assign(keys.begin() + m.start,
                         keys.begin() + m.start + m.length);
        dir->first_keys.push_back(m.first_key);
        dir->segments.push_back(seg);
      }
    }
    size_.store(keys.size(), std::memory_order_release);
    dir_.store(dir.release(), std::memory_order_seq_cst);
  }

  // Error-bounded search of the immutable page, sharing ErrorWindow with
  // the single-threaded and disk-resident lookup paths.
  bool SearchPage(const Segment& seg, const K& key) const {
    const size_t n = seg.keys.size();
    if (n == 0) return false;
    const double pred = seg.Predict(key);
    // Keys below the leftmost segment (floor fallback) predict far
    // negative; bail before ErrorWindow's size_t casts.
    if (pred + config_.error + 2.0 < 0.0) return false;
    const auto [begin, end] = ErrorWindow(pred, config_.error, 0, n);
    const size_t hint = static_cast<size_t>(std::max(0.0, pred));
    const size_t i = detail::BoundedLowerBound(
        seg.keys.data(), begin, end, hint, key, config_.search_policy);
    return i < n && seg.keys[i] == key;
  }

  // Latch-eliding buffer membership test: a sequence-validated empty check
  // answers the common case without an atomic RMW; otherwise fall back to a
  // short critical section (the buffer holds at most ~error/2 keys).
  bool SearchBuffer(const Segment& seg, const K& key) const {
    const uint32_t seq = seg.latch.ReadSeq();
    if (seg.buffer_count.load(std::memory_order_acquire) == 0 &&
        seg.latch.Validate(seq)) {
      return false;
    }
    SegLatch::Scoped lock(seg.latch);
    return std::binary_search(seg.buffer.begin(), seg.buffer.end(), key);
  }

  void CopyBuffer(const Segment& seg, std::vector<K>* out) const {
    out->clear();
    const uint32_t seq = seg.latch.ReadSeq();
    if (seg.buffer_count.load(std::memory_order_acquire) == 0 &&
        seg.latch.Validate(seq)) {
      return;
    }
    SegLatch::Scoped lock(seg.latch);
    *out = seg.buffer;
  }

  template <typename Fn>
  void EmitRange(const Segment& seg, const std::vector<K>& buffer,
                 const K& lo, const K& hi, Fn& fn) const {
    auto k = std::lower_bound(seg.keys.begin(), seg.keys.end(), lo);
    auto b = std::lower_bound(buffer.begin(), buffer.end(), lo);
    while (k != seg.keys.end() || b != buffer.end()) {
      const bool take_key =
          b == buffer.end() || (k != seg.keys.end() && *k <= *b);
      const K value = take_key ? *k : *b;
      if (value > hi) return;
      fn(value);
      if (take_key) {
        ++k;
      } else {
        ++b;
      }
    }
  }

  // Precondition: latch held, segment live. Returns false on duplicate.
  bool InsertIntoBufferLocked(Segment* seg, const K& key) {
    auto pos = std::lower_bound(seg->buffer.begin(), seg->buffer.end(), key);
    if (pos != seg->buffer.end() && *pos == key) return false;
    seg->buffer.insert(pos, key);
    seg->buffer_count.store(static_cast<uint32_t>(seg->buffer.size()),
                            std::memory_order_release);
    return true;
  }

  // First key of an empty tree: build a one-segment directory under the
  // swap mutex. Returns false when another thread won the race.
  bool InsertIntoEmpty(const K& key) {
    std::lock_guard<std::mutex> lock(dir_mu_);
    const Directory* dir = dir_.load(std::memory_order_seq_cst);
    if (!dir->segments.empty()) return false;
    auto* seg = new Segment();
    seg->first_key = key;
    seg->keys.push_back(key);
    auto next = std::make_unique<Directory>();
    next->first_keys.push_back(key);
    next->segments.push_back(seg);
    dir_.store(next.release(), std::memory_order_seq_cst);
    epoch_.Retire(const_cast<Directory*>(dir));
    size_.fetch_add(1, std::memory_order_release);
    return true;
  }

  // Merge-and-resegment (paper Sec 4.2.2), concurrent edition. The caller
  // holds an epoch guard and no latch. Steps:
  //   1. Under the segment latch: bail if already retired (another thread
  //      merged it) or the buffer shrank below budget; otherwise mark the
  //      segment retired and snapshot page+buffer merged.
  //   2. Off-latch: shrinking-cone resegmentation of the merged keys (the
  //      expensive part; the retired segment is frozen so no insert can
  //      slip in, and readers continue against the old snapshot).
  //   3. Under the directory mutex: publish a copy-on-write directory with
  //      the retired segment's entry replaced by the new segment(s), then
  //      retire the old directory and old segment through the epoch
  //      manager.
  void MergeSegment(Segment* seg) {
    std::vector<K> merged;
    {
      SegLatch::Scoped lock(seg->latch);
      if (seg->retired.load(std::memory_order_relaxed)) return;
      if (seg->buffer.empty()) {
        seg->merge_pending.store(false, std::memory_order_release);
        return;
      }
      seg->retired.store(true, std::memory_order_release);
      merged.resize(seg->keys.size() + seg->buffer.size());
      std::merge(seg->keys.begin(), seg->keys.end(), seg->buffer.begin(),
                 seg->buffer.end(), merged.begin());
    }
    stats_merges_.fetch_add(1, std::memory_order_relaxed);

    const auto models = SegmentShrinkingCone<K>(
        std::span<const K>(merged), config_.error, config_.feasibility);
    stats_created_.fetch_add(models.size(), std::memory_order_relaxed);
    std::vector<Segment*> replacements;
    replacements.reserve(models.size());
    for (const fitree::Segment<K>& m : models) {
      auto* out = new Segment();
      out->first_key = m.first_key;
      out->slope = m.slope;
      out->intercept = m.intercept - static_cast<double>(m.start);
      out->keys.assign(merged.begin() + m.start,
                       merged.begin() + m.start + m.length);
      replacements.push_back(out);
    }

    {
      std::lock_guard<std::mutex> lock(dir_mu_);
      const Directory* dir = dir_.load(std::memory_order_seq_cst);
      // The retired segment is still in the live directory: only this
      // thread retired it, and entries leave the directory only here.
      size_t idx = dir->FloorIndex(seg->first_key);
      assert(idx < dir->segments.size() && dir->segments[idx] == seg);
      auto next = std::make_unique<Directory>();
      next->first_keys.reserve(dir->first_keys.size() + models.size() - 1);
      next->segments.reserve(next->first_keys.capacity());
      for (size_t i = 0; i < idx; ++i) {
        next->first_keys.push_back(dir->first_keys[i]);
        next->segments.push_back(dir->segments[i]);
      }
      for (Segment* r : replacements) {
        next->first_keys.push_back(r->first_key);
        next->segments.push_back(r);
      }
      for (size_t i = idx + 1; i < dir->segments.size(); ++i) {
        next->first_keys.push_back(dir->first_keys[i]);
        next->segments.push_back(dir->segments[i]);
      }
      dir_.store(next.release(), std::memory_order_seq_cst);
      epoch_.Retire(const_cast<Directory*>(dir));
    }
    epoch_.Retire(seg);
  }

  ConcurrentFitingTreeConfig config_;
  size_t effective_buffer_ = 0;
  std::atomic<const Directory*> dir_{nullptr};
  std::mutex dir_mu_;  // serializes directory publishes (merges are rare)
  mutable EpochManager epoch_;
  MergeWorker worker_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> stats_inserts_{0};
  std::atomic<uint64_t> stats_merges_{0};
  std::atomic<uint64_t> stats_created_{0};
  std::atomic<uint64_t> stats_retries_{0};
};

}  // namespace fitree

#endif  // FITREE_CONCURRENCY_CONCURRENT_FITING_TREE_H_
