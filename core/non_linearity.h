// Non-linearity ratio (paper Sec 3.3, Figure 8). The shrinking cone keeps a
// segment open at least while the rank delta stays within the error bound,
// so every segment covers at least error+1 keys and the worst possible
// segment count at threshold e is |D| / (e + 1) (Theorem 3.1). The ratio
//   ratio(e) = S_e * (e + 1) / |D|
// therefore lands in (0, 1]: 1.0 for data that defeats the cone entirely,
// approaching (e+1)/|D| for perfectly linear data, making datasets
// comparable across error scales.

#ifndef FITREE_CORE_NON_LINEARITY_H_
#define FITREE_CORE_NON_LINEARITY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/shrinking_cone.h"

namespace fitree {

template <typename K>
double NonLinearityRatio(const std::vector<K>& keys, double error) {
  if (keys.empty()) return 0.0;
  const size_t segments =
      SegmentShrinkingCone<K>(std::span<const K>(keys), error).size();
  return static_cast<double>(segments) * (error + 1.0) /
         static_cast<double>(keys.size());
}

}  // namespace fitree

#endif  // FITREE_CORE_NON_LINEARITY_H_
