// Consolidated process-wide configuration. Every FITREE_* environment knob
// that tunes engine or server behavior is resolved HERE, exactly once, into
// one immutable fitree::Options value (GlobalOptions()). Engine and server
// config structs default their fields from it; nothing outside this header
// (and the test-only override hooks in telemetry) reads those variables ad
// hoc anymore, so a knob's default, parse rule, and clamp live in a single
// place.
//
// Knobs resolved here:
//   FITREE_SEARCH_POLICY  binary | linear | exponential | simd  (simd)
//   FITREE_DIRECTORY      btree | flat                          (flat)
//   FITREE_TELEM_SAMPLE   latency sampling period, >= 1         (64)
//   FITREE_TRACE          0 | 1 trace-ring capture              (0)
//   FITREE_TRACE_RING     per-thread trace ring slots, >= 16    (4096)
//   FITREE_PERF           0 disables perf_event PMU capture     (attempt)
//   FITREE_SHARDS         server shard count, >= 1              (4)
//   FITREE_BATCH          server per-shard drain batch, >= 1    (32)
//
// Bench-harness knobs (FITREE_BENCH_*) stay in bench/ — they size
// workloads, not the engines.

#ifndef FITREE_COMMON_OPTIONS_H_
#define FITREE_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "common/env.h"
#include "core/flat_directory.h"
#include "core/search_policy.h"

namespace fitree {

struct Options {
  SearchPolicy search_policy = SearchPolicy::kSimd;
  DirectoryMode directory = DirectoryMode::kFlat;
  uint64_t telemetry_sample = 64;  // 1-in-N latency sampling
  bool trace = false;              // trace-ring capture on/off
  size_t trace_ring = 4096;        // per-thread ring capacity (slots)
  bool perf = true;                // attempt perf_event PMU capture
  size_t shards = 4;               // server: shard / worker-thread count
  size_t batch = 32;               // server: max ops drained per batch

  // Reads every knob from the environment, applying defaults and clamps.
  static Options FromEnvironment() {
    Options o;
    o.search_policy =
        ParseSearchPolicy(GetEnvString("FITREE_SEARCH_POLICY", "simd"))
            .value_or(SearchPolicy::kSimd);
    o.directory = ParseDirectoryMode(GetEnvString("FITREE_DIRECTORY", "flat"))
                      .value_or(DirectoryMode::kFlat);
    const int64_t sample = GetEnvInt64("FITREE_TELEM_SAMPLE", 64);
    o.telemetry_sample = sample < 1 ? 1u : static_cast<uint64_t>(sample);
    o.trace = GetEnvInt64("FITREE_TRACE", 0) != 0;
    const int64_t ring = GetEnvInt64("FITREE_TRACE_RING", 4096);
    o.trace_ring = ring < 16 ? 16u : static_cast<size_t>(ring);
    o.perf = GetEnvInt64("FITREE_PERF", 1) != 0;
    const int64_t shards = GetEnvInt64("FITREE_SHARDS", 4);
    o.shards = shards < 1 ? 1u : static_cast<size_t>(shards);
    const int64_t batch = GetEnvInt64("FITREE_BATCH", 32);
    o.batch = batch < 1 ? 1u : static_cast<size_t>(batch);
    return o;
  }
};

// The process-wide Options, resolved from the environment on first use and
// immutable afterwards. Config structs capture its fields as defaults at
// construction time, so per-instance overrides still work as before.
inline const Options& GlobalOptions() {
  static const Options options = Options::FromEnvironment();
  return options;
}

// Process-wide defaults for the two hot-path strategy knobs. These used to
// live next to their enums (core/search_policy.h, core/flat_directory.h)
// and read the environment themselves; they are now thin views over
// GlobalOptions() so the resolution story has one home.
inline SearchPolicy DefaultSearchPolicy() {
  return GlobalOptions().search_policy;
}

inline DirectoryMode DefaultDirectoryMode() { return GlobalOptions().directory; }

}  // namespace fitree

#endif  // FITREE_COMMON_OPTIONS_H_
