// Shared helpers for the per-figure benchmark binaries.
//
// Every binary prints the paper-style series for its table/figure using
// TablePrinter. Sizes scale with FITREE_BENCH_SCALE (default 1); paper-scale
// runs need a bigger machine, but shapes and crossovers reproduce at the
// defaults (see EXPERIMENTS.md).

#ifndef FITREE_BENCH_BENCH_COMMON_H_
#define FITREE_BENCH_BENCH_COMMON_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/timer.h"

namespace fitree::bench {

// Base element count scaled by the FITREE_BENCH_SCALE environment variable.
inline size_t ScaledN(size_t base) {
  const int64_t scale = GetEnvInt64("FITREE_BENCH_SCALE", 1);
  return base * static_cast<size_t>(scale < 1 ? 1 : scale);
}

// Defeats dead-code elimination of measured loops. Atomic because worker
// threads publish their sinks concurrently (relaxed: ordering is
// irrelevant, the store just has to survive into the binary).
inline void SinkValue(uint64_t v) {
  static std::atomic<uint64_t> g_sink{0};
  g_sink.fetch_add(v, std::memory_order_relaxed);
}

// Measures the average latency of `body(i)` over `ops` calls, in ns/op.
// `body` must return a value that is accumulated into a sink to defeat
// dead-code elimination.
template <typename Body>
double MeasurePerOpNs(size_t ops, Body body) {
  uint64_t sink = 0;
  Timer timer;
  for (size_t i = 0; i < ops; ++i) {
    sink += static_cast<uint64_t>(body(i));
  }
  const double ns = static_cast<double>(timer.ElapsedNs());
  // Publish the sink so the compiler cannot drop the loop.
  SinkValue(sink);
  return ns / static_cast<double>(ops);
}

// Per-thread average latency when `threads` workers issue `ops` lookups in
// total against a shared read-only index (how the paper reports Figure 6:
// "latency per thread"). `body(i)` must be thread-safe for concurrent
// callers. Falls back to the single-threaded path for threads <= 1.
template <typename Body>
double MeasurePerOpNsParallel(size_t ops, int threads, Body body) {
  if (threads <= 1) return MeasurePerOpNs(ops, body);
  const size_t per_thread = ops / static_cast<size_t>(threads);
  Timer timer;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t sink = 0;
      const size_t begin = static_cast<size_t>(t) * per_thread;
      for (size_t i = begin; i < begin + per_thread; ++i) {
        sink += static_cast<uint64_t>(body(i));
      }
      SinkValue(sink);
    });
  }
  for (auto& w : workers) w.join();
  const double ns = static_cast<double>(timer.ElapsedNs());
  return ns / static_cast<double>(per_thread);
}

// Throughput in million operations per second for a timed mutation loop.
template <typename Body>
double MeasureMops(size_t ops, Body body) {
  Timer timer;
  for (size_t i = 0; i < ops; ++i) body(i);
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(ops) / seconds / 1e6;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace fitree::bench

#endif  // FITREE_BENCH_BENCH_COMMON_H_
