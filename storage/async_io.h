// Batched page-read backends for the storage layer (ISSUE 10 tentpole).
//
// A BatchReadEngine takes a batch of page reads against one fd and resolves
// all of them, submitting every read before waiting on any, so a batch of
// independent lookups overlaps its page faults instead of serializing them:
//
//   kUring    raw io_uring syscalls (no liburing dependency): one
//             io_uring_enter submits the wave and waits for all of its
//             completions. Kernels or sandboxes that refuse
//             io_uring_setup make the factory fall back at runtime.
//   kThreads  a small pread thread pool — the portable fallback with the
//             same submit-all-then-wait shape (hosted CI runners disable
//             io_uring, so this is the backend CI forces).
//   kSync     strictly sequential preads; the degenerate baseline the
//             fetch-strategy ablation compares against.
//
// Selection is runtime, via the FITREE_IO_BACKEND knob (common/options.h):
// kAuto probes io_uring once and falls back to the thread pool. Engines
// only move bytes — page verification (CRC/type/id) stays in the caller
// (SegmentFileReader), exactly as on the synchronous path.

#ifndef FITREE_STORAGE_ASYNC_IO_H_
#define FITREE_STORAGE_ASYNC_IO_H_

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/options.h"
#include "storage/page.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#define FITREE_HAS_IO_URING 1
#else
#define FITREE_HAS_IO_URING 0
#endif

namespace fitree::storage {

// Executes one batch of page reads against `fd`. Implementations are bound
// to a single caller at a time (the pool and reader are single-threaded per
// instance); the thread-pool engine owns threads but its ReadBatch is still
// one-batch-at-a-time.
class BatchReadEngine {
 public:
  virtual ~BatchReadEngine() = default;

  // The backend actually in effect (after runtime fallback), for stats and
  // bench labels.
  virtual const char* name() const = 0;

  // Reads page_bytes at offset reqs[i].page_id * page_bytes into
  // reqs[i].out for all i, setting each request's `ok` to "full page read".
  virtual void ReadBatch(int fd, size_t page_bytes, PageReadRequest* reqs,
                         size_t n) = 0;
};

// Sequential preads: the synchronous baseline.
class SyncReadEngine final : public BatchReadEngine {
 public:
  const char* name() const override { return "sync"; }

  void ReadBatch(int fd, size_t page_bytes, PageReadRequest* reqs,
                 size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      const off_t off = static_cast<off_t>(reqs[i].page_id) *
                        static_cast<off_t>(page_bytes);
      reqs[i].ok = ::pread(fd, reqs[i].out, page_bytes, off) ==
                   static_cast<ssize_t>(page_bytes);
    }
  }
};

// pread thread pool: submit-all-then-wait with portable syscalls. Threads
// start lazily on the first batch, so instances that never batch (or pools
// over in-memory fakes) cost nothing.
class ThreadPoolReadEngine final : public BatchReadEngine {
 public:
  explicit ThreadPoolReadEngine(size_t depth)
      : threads_(std::clamp<size_t>(depth, 1, 8)) {}

  ~ThreadPoolReadEngine() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  const char* name() const override { return "threads"; }

  void ReadBatch(int fd, size_t page_bytes, PageReadRequest* reqs,
                 size_t n) override {
    if (n == 0) return;
    if (n == 1) {  // no overlap to win; skip the handoff
      SyncReadEngine{}.ReadBatch(fd, page_bytes, reqs, n);
      return;
    }
    Start();
    {
      std::lock_guard<std::mutex> lock(mu_);
      fd_ = fd;
      page_bytes_ = page_bytes;
      for (size_t i = 0; i < n; ++i) queue_.push_back(&reqs[i]);
      pending_ = n;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }

 private:
  void Start() {
    if (!workers_.empty()) return;
    workers_.reserve(threads_);
    for (size_t i = 0; i < threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      PageReadRequest* req = queue_.back();
      queue_.pop_back();
      const int fd = fd_;
      const size_t page_bytes = page_bytes_;
      lock.unlock();
      const off_t off =
          static_cast<off_t>(req->page_id) * static_cast<off_t>(page_bytes);
      req->ok = ::pread(fd, req->out, page_bytes, off) ==
                static_cast<ssize_t>(page_bytes);
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  const size_t threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<PageReadRequest*> queue_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  int fd_ = -1;
  size_t page_bytes_ = 0;
  bool stop_ = false;
};

#if FITREE_HAS_IO_URING

// io_uring over raw syscalls (the container/toolchain has the kernel UAPI
// header but no liburing). One ring per engine instance; batches larger
// than the ring submit in waves. Single-threaded use only, matching the
// reader/pool contract.
class UringReadEngine final : public BatchReadEngine {
 public:
  // Factory: returns nullptr when the kernel (or a seccomp sandbox)
  // refuses io_uring_setup, so callers can fall back at runtime.
  static std::unique_ptr<UringReadEngine> TryCreate(size_t depth) {
    auto engine =
        std::unique_ptr<UringReadEngine>(new UringReadEngine());
    if (!engine->Init(std::clamp<size_t>(depth, 1, 1024))) return nullptr;
    return engine;
  }

  ~UringReadEngine() override {
    if (sq_ring_ != MAP_FAILED) ::munmap(sq_ring_, sq_ring_bytes_);
    if (cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != MAP_FAILED) ::munmap(sqes_, sqe_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "uring"; }

  void ReadBatch(int fd, size_t page_bytes, PageReadRequest* reqs,
                 size_t n) override {
    size_t next = 0;
    while (next < n) {
      const size_t wave = std::min<size_t>(n - next, sq_entries_);
      unsigned tail = *sq_tail_;
      for (size_t i = 0; i < wave; ++i) {
        const unsigned idx = tail & *sq_mask_;
        io_uring_sqe& sqe = sqes_typed_[idx];
        std::memset(&sqe, 0, sizeof(sqe));
        sqe.opcode = IORING_OP_READ;
        sqe.fd = fd;
        sqe.addr = reinterpret_cast<uint64_t>(reqs[next + i].out);
        sqe.len = static_cast<uint32_t>(page_bytes);
        sqe.off = static_cast<uint64_t>(reqs[next + i].page_id) *
                  static_cast<uint64_t>(page_bytes);
        sqe.user_data = next + i;
        sq_array_[idx] = idx;
        ++tail;
      }
      __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
      size_t completed = 0;
      while (completed < wave) {
        const unsigned to_submit =
            completed == 0 ? static_cast<unsigned>(wave) : 0;
        const long ret = ::syscall(
            __NR_io_uring_enter, ring_fd_, to_submit,
            static_cast<unsigned>(wave - completed), IORING_ENTER_GETEVENTS,
            nullptr, 0);
        if (ret < 0 && errno != EINTR) {
          // Ring wedged: fail the wave's unresolved requests and bail.
          for (size_t i = 0; i < wave; ++i) reqs[next + i].ok = false;
          DrainCompletions(reqs, page_bytes);
          return;
        }
        completed += DrainCompletions(reqs, page_bytes);
      }
      next += wave;
    }
  }

 private:
  UringReadEngine() = default;

  bool Init(size_t depth) {
    io_uring_params params{};
    ring_fd_ = static_cast<int>(
        ::syscall(__NR_io_uring_setup, static_cast<unsigned>(depth), &params));
    if (ring_fd_ < 0) return false;

    sq_ring_bytes_ =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_,
                                                 cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    cq_ring_ = single_mmap
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                            IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) return false;
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) return false;

    auto* sq = static_cast<unsigned char*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<unsigned char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    sq_entries_ = params.sq_entries;
    sqes_typed_ = static_cast<io_uring_sqe*>(sqes_);
    return true;
  }

  size_t DrainCompletions(PageReadRequest* reqs, size_t page_bytes) {
    size_t drained = 0;
    unsigned head = *cq_head_;
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & *cq_mask_];
      reqs[cqe.user_data].ok =
          cqe.res == static_cast<int32_t>(page_bytes);
      ++head;
      ++drained;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    return drained;
  }

  int ring_fd_ = -1;
  void* sq_ring_ = MAP_FAILED;
  void* cq_ring_ = MAP_FAILED;
  void* sqes_ = MAP_FAILED;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  size_t sqe_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  io_uring_sqe* sqes_typed_ = nullptr;
  size_t sq_entries_ = 0;
};

#endif  // FITREE_HAS_IO_URING

// Runtime backend selection with graceful degradation: kAuto and kUring
// probe io_uring and fall back to the thread pool when the kernel or
// sandbox refuses it (hosted CI runners do); kSync never batches.
inline std::unique_ptr<BatchReadEngine> MakeBatchReadEngine(
    IoBackend requested, size_t depth) {
  switch (requested) {
    case IoBackend::kSync:
      return std::make_unique<SyncReadEngine>();
    case IoBackend::kThreads:
      return std::make_unique<ThreadPoolReadEngine>(depth);
    case IoBackend::kAuto:
    case IoBackend::kUring:
#if FITREE_HAS_IO_URING
      if (auto uring = UringReadEngine::TryCreate(depth)) return uring;
#endif
      return std::make_unique<ThreadPoolReadEngine>(depth);
  }
  return std::make_unique<SyncReadEngine>();
}

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_ASYNC_IO_H_
