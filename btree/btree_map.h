// A cache-friendly in-memory B+ tree.
//
// Serves two roles in the repo: the standalone ordered-map competitor for the
// Figure 7/11 experiments (via baselines/full_index.h), and the inner "tree
// over segments" directory inside FITing-Tree, the fixed-paging baseline and
// the static tree (paper Sec 2.2: any tree structure can host the segment
// endpoints; we use a B+ tree like the paper's Stx-based implementation).
//
// Design notes:
//  - Leaves hold the entries and form a doubly-linked list for ordered scans
//    and floor queries across lazily-emptied leaves.
//  - Inner nodes route with upper_bound semantics: child i covers keys in
//    [keys[i-1], keys[i]).
//  - Erase is lazy (no rebalancing): entries are removed from leaves, which
//    may underflow or empty entirely; routing and scans stay correct because
//    separators are upper bounds, not stored keys. The index workloads erase
//    only on segment merges, which immediately re-insert, so occupancy stays
//    healthy.
//  - BulkLoad packs leaves fully and builds inner levels bottom-up, which is
//    what makes the read-only trees in the lookup figures compact.

#ifndef FITREE_BTREE_BTREE_MAP_H_
#define FITREE_BTREE_BTREE_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace fitree::btree {

template <typename K, typename V, int kLeafSlots = 64,
          int kInnerSlots = kLeafSlots>
class BTreeMap {
  static_assert(kLeafSlots >= 2, "leaves need at least two slots");
  static_assert(kInnerSlots >= 3, "inner nodes need at least three slots");
  static_assert(std::is_trivially_copyable_v<K>);
  static_assert(std::is_trivially_copyable_v<V>);

 public:
  BTreeMap() = default;
  ~BTreeMap() { Clear(); }

  BTreeMap(const BTreeMap&) = delete;
  BTreeMap& operator=(const BTreeMap&) = delete;

  BTreeMap(BTreeMap&& other) noexcept { Swap(other); }
  BTreeMap& operator=(BTreeMap&& other) noexcept {
    if (this != &other) {
      Clear();
      Swap(other);
    }
    return *this;
  }

  void Clear() {
    if (root_ != nullptr) FreeRec(root_, height_);
    root_ = nullptr;
    height_ = 0;
    size_ = 0;
    leaf_nodes_ = 0;
    inner_nodes_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Node levels including the leaf level (0 when empty).
  int Height() const { return root_ == nullptr ? 0 : height_ + 1; }

  size_t MemoryBytes() const {
    return leaf_nodes_ * sizeof(LeafNode) + inner_nodes_ * sizeof(InnerNode);
  }

  // Inserts or overwrites. Returns true when a new entry was created.
  bool Insert(const K& key, const V& value) {
    if (root_ == nullptr) {
      LeafNode* leaf = NewLeaf();
      leaf->keys[0] = key;
      leaf->values[0] = value;
      leaf->count = 1;
      root_ = leaf;
      size_ = 1;
      return true;
    }
    SplitResult split;
    bool inserted = false;
    InsertRec(root_, height_, key, value, &split, &inserted);
    if (split.right != nullptr) {
      InnerNode* new_root = NewInner();
      new_root->keys[0] = split.key;
      new_root->children[0] = root_;
      new_root->children[1] = split.right;
      new_root->count = 1;
      root_ = new_root;
      ++height_;
    }
    if (inserted) ++size_;
    return inserted;
  }

  // Removes `key` if present (lazy: no rebalancing). Returns true on removal.
  bool Erase(const K& key) {
    LeafNode* leaf = DescendToLeaf(key);
    if (leaf == nullptr) return false;
    const int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos >= leaf->count || leaf->keys[pos] != key) return false;
    for (int i = pos; i + 1 < leaf->count; ++i) {
      leaf->keys[i] = leaf->keys[i + 1];
      leaf->values[i] = leaf->values[i + 1];
    }
    --leaf->count;
    --size_;
    return true;
  }

  const V* Find(const K& key) const {
    const LeafNode* leaf = DescendToLeaf(key);
    if (leaf == nullptr) return nullptr;
    const int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos < leaf->count && leaf->keys[pos] == key) return &leaf->values[pos];
    return nullptr;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  // Greatest entry with entry.key <= key. Returns null when every key is
  // greater than `key` (or the tree is empty).
  const V* FindFloor(const K& key, K* out_key = nullptr) const {
    const LeafNode* leaf = DescendToLeaf(key);
    if (leaf == nullptr) return nullptr;
    // Last in-leaf key <= `key`, else the last entry of the nearest earlier
    // non-empty leaf (all earlier keys sort below this leaf's lower bound,
    // which is <= `key` by the descent).
    int pos = UpperBound(leaf->keys, leaf->count, key) - 1;
    while (pos < 0) {
      leaf = leaf->prev;
      if (leaf == nullptr) return nullptr;
      pos = leaf->count - 1;
    }
    if (out_key != nullptr) *out_key = leaf->keys[pos];
    return &leaf->values[pos];
  }

  // Smallest entry, or null when empty.
  const V* First(K* out_key = nullptr) const {
    const void* node = root_;
    if (node == nullptr) return nullptr;
    for (int level = height_; level > 0; --level) {
      node = static_cast<const InnerNode*>(node)->children[0];
    }
    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    while (leaf != nullptr && leaf->count == 0) leaf = leaf->next;
    if (leaf == nullptr) return nullptr;
    if (out_key != nullptr) *out_key = leaf->keys[0];
    return &leaf->values[0];
  }

  // Calls fn(key, value) for each entry with key >= lo, in ascending key
  // order, until fn returns false or the entries run out.
  template <typename Fn>
  void ScanFrom(const K& lo, Fn fn) const {
    const LeafNode* leaf = DescendToLeaf(lo);
    if (leaf == nullptr) return;
    int pos = LowerBound(leaf->keys, leaf->count, lo);
    while (leaf != nullptr) {
      for (; pos < leaf->count; ++pos) {
        if (!fn(leaf->keys[pos], leaf->values[pos])) return;
      }
      leaf = leaf->next;
      pos = 0;
    }
  }

  // Replaces the contents with `items`, which must be sorted by key with no
  // duplicates. Leaves are packed full and inner levels built bottom-up.
  void BulkLoad(std::vector<std::pair<K, V>>&& items) {
    Clear();
    if (items.empty()) return;
    size_ = items.size();

    // Level 0: packed leaves chained into the linked list.
    std::vector<std::pair<K, void*>> level;  // (first key of subtree, node)
    level.reserve(items.size() / kLeafSlots + 1);
    LeafNode* prev = nullptr;
    for (size_t begin = 0; begin < items.size(); begin += kLeafSlots) {
      const size_t end = std::min(items.size(), begin + kLeafSlots);
      LeafNode* leaf = NewLeaf();
      for (size_t i = begin; i < end; ++i) {
        leaf->keys[i - begin] = items[i].first;
        leaf->values[i - begin] = items[i].second;
      }
      leaf->count = static_cast<int>(end - begin);
      leaf->prev = prev;
      if (prev != nullptr) prev->next = leaf;
      prev = leaf;
      level.emplace_back(leaf->keys[0], leaf);
    }

    // Upper levels: group kInnerSlots+1 children per inner node; the
    // separator for child i is the first key of its subtree.
    int levels_built = 0;
    while (level.size() > 1) {
      std::vector<std::pair<K, void*>> next_level;
      const size_t group = static_cast<size_t>(kInnerSlots) + 1;
      size_t begin = 0;
      while (begin < level.size()) {
        size_t end = std::min(level.size(), begin + group);
        // Avoid a trailing one-child node: leave it two from the previous
        // group instead.
        if (end - begin == group && level.size() - end == 1) --end;
        InnerNode* inner = NewInner();
        inner->children[0] = level[begin].second;
        int count = 0;
        for (size_t i = begin + 1; i < end; ++i) {
          inner->keys[count] = level[i].first;
          inner->children[count + 1] = level[i].second;
          ++count;
        }
        inner->count = count;
        next_level.emplace_back(level[begin].first, inner);
        begin = end;
      }
      level = std::move(next_level);
      ++levels_built;
    }
    root_ = level[0].second;
    height_ = levels_built;
  }

 private:
  struct LeafNode {
    int count = 0;
    LeafNode* next = nullptr;
    LeafNode* prev = nullptr;
    K keys[kLeafSlots];
    V values[kLeafSlots];
  };

  struct InnerNode {
    int count = 0;  // separator keys; child pointers = count + 1
    K keys[kInnerSlots];
    void* children[kInnerSlots + 1];
  };

  struct SplitResult {
    K key{};
    void* right = nullptr;
  };

  LeafNode* NewLeaf() {
    ++leaf_nodes_;
    return new LeafNode();
  }

  InnerNode* NewInner() {
    ++inner_nodes_;
    return new InnerNode();
  }

  void FreeRec(void* node, int level) {
    if (level > 0) {
      InnerNode* inner = static_cast<InnerNode*>(node);
      for (int i = 0; i <= inner->count; ++i) FreeRec(inner->children[i], level - 1);
      delete inner;
      --inner_nodes_;
    } else {
      delete static_cast<LeafNode*>(node);
      --leaf_nodes_;
    }
  }

  static int LowerBound(const K* keys, int count, const K& key) {
    return static_cast<int>(std::lower_bound(keys, keys + count, key) - keys);
  }

  static int UpperBound(const K* keys, int count, const K& key) {
    return static_cast<int>(std::upper_bound(keys, keys + count, key) - keys);
  }

  const LeafNode* DescendToLeaf(const K& key) const {
    const void* node = root_;
    if (node == nullptr) return nullptr;
    for (int level = height_; level > 0; --level) {
      const InnerNode* inner = static_cast<const InnerNode*>(node);
      node = inner->children[UpperBound(inner->keys, inner->count, key)];
    }
    return static_cast<const LeafNode*>(node);
  }

  LeafNode* DescendToLeaf(const K& key) {
    return const_cast<LeafNode*>(
        static_cast<const BTreeMap*>(this)->DescendToLeaf(key));
  }

  // Inserts into the subtree at `node` (at `level` inner levels above the
  // leaves). On node split, fills `*split` for the caller to link in.
  void InsertRec(void* node, int level, const K& key, const V& value,
                 SplitResult* split, bool* inserted) {
    split->right = nullptr;
    if (level == 0) {
      InsertLeaf(static_cast<LeafNode*>(node), key, value, split, inserted);
      return;
    }
    InnerNode* inner = static_cast<InnerNode*>(node);
    const int child = UpperBound(inner->keys, inner->count, key);
    SplitResult child_split;
    InsertRec(inner->children[child], level - 1, key, value, &child_split,
              inserted);
    if (child_split.right == nullptr) return;

    if (inner->count < kInnerSlots) {
      InsertSeparator(inner, child, child_split);
      return;
    }
    // Split the inner node around the median separator, then place the new
    // separator into the proper half.
    const int mid = inner->count / 2;
    InnerNode* right = NewInner();
    const K promoted = inner->keys[mid];
    right->count = inner->count - mid - 1;
    for (int i = 0; i < right->count; ++i) right->keys[i] = inner->keys[mid + 1 + i];
    for (int i = 0; i <= right->count; ++i) right->children[i] = inner->children[mid + 1 + i];
    inner->count = mid;

    if (child_split.key < promoted) {
      const int pos = UpperBound(inner->keys, inner->count, child_split.key);
      InsertSeparator(inner, pos, child_split);
    } else {
      const int pos = UpperBound(right->keys, right->count, child_split.key);
      InsertSeparator(right, pos, child_split);
    }
    split->key = promoted;
    split->right = right;
  }

  // Inserts (split.key, split.right) after child index `child`.
  void InsertSeparator(InnerNode* inner, int child, const SplitResult& split) {
    for (int i = inner->count; i > child; --i) {
      inner->keys[i] = inner->keys[i - 1];
      inner->children[i + 1] = inner->children[i];
    }
    inner->keys[child] = split.key;
    inner->children[child + 1] = split.right;
    ++inner->count;
  }

  void InsertLeaf(LeafNode* leaf, const K& key, const V& value,
                  SplitResult* split, bool* inserted) {
    int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos < leaf->count && leaf->keys[pos] == key) {
      leaf->values[pos] = value;  // upsert
      *inserted = false;
      return;
    }
    *inserted = true;
    if (leaf->count == kLeafSlots) {
      // Split, then insert into the proper half.
      LeafNode* right = NewLeaf();
      const int mid = kLeafSlots / 2;
      right->count = kLeafSlots - mid;
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = leaf->keys[mid + i];
        right->values[i] = leaf->values[mid + i];
      }
      leaf->count = mid;
      right->next = leaf->next;
      if (right->next != nullptr) right->next->prev = right;
      right->prev = leaf;
      leaf->next = right;
      split->key = right->keys[0];
      split->right = right;
      LeafNode* target = key < right->keys[0] ? leaf : right;
      pos = LowerBound(target->keys, target->count, key);
      leaf = target;
    }
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->count;
  }

  void Swap(BTreeMap& other) {
    std::swap(root_, other.root_);
    std::swap(height_, other.height_);
    std::swap(size_, other.size_);
    std::swap(leaf_nodes_, other.leaf_nodes_);
    std::swap(inner_nodes_, other.inner_nodes_);
  }

  void* root_ = nullptr;
  int height_ = 0;  // inner levels above the leaf level
  size_t size_ = 0;
  size_t leaf_nodes_ = 0;
  size_t inner_nodes_ = 0;
};

}  // namespace fitree::btree

#endif  // FITREE_BTREE_BTREE_MAP_H_
