// Dead-code-elimination sink shared by every measurement loop.
//
// The accumulator lives in common/sink.cc so the whole process shares ONE
// definition. A `static` local in a header (the previous design) can give
// each translation unit — or each dynamically linked component — its own
// copy under some link setups, which both wastes a cache line per TU and
// lets a sufficiently clever LTO pass prove a particular copy unobserved.

#ifndef FITREE_COMMON_SINK_H_
#define FITREE_COMMON_SINK_H_

#include <atomic>
#include <cstdint>

namespace fitree {

// The single process-wide sink (defined in common/sink.cc). Atomic because
// benchmark worker threads publish their sinks concurrently (relaxed:
// ordering is irrelevant, the store just has to survive into the binary).
extern std::atomic<uint64_t> g_bench_sink;

// Folds `v` into the sink so the compiler cannot drop the loop that
// produced it.
inline void SinkValue(uint64_t v) {
  g_bench_sink.fetch_add(v, std::memory_order_relaxed);
}

// Reads the accumulated sink (used by tests to assert the sink is shared).
inline uint64_t SinkTotal() {
  return g_bench_sink.load(std::memory_order_relaxed);
}

}  // namespace fitree

#endif  // FITREE_COMMON_SINK_H_
