// Tests for the telemetry subsystem (telemetry/): histogram percentile
// accuracy against a sorted-sample oracle, multi-threaded counter folding
// (run under TSan in CI), trace ring wraparound, registry snapshot
// isolation, and the Stats() structural snapshots of all four engines.
//
// The metric types (Counter, Gauge, LatencyHistogram, TraceRing, Registry,
// StructuralStats) are real even under -DFITREE_NO_TELEMETRY — only the
// instrumentation helpers are stubbed — so most of this file runs in both
// builds; tests that depend on engines actually emitting telemetry skip
// themselves when the escape hatch is on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/concurrent_fiting_tree.h"
#include "concurrency/mutex_fiting_tree.h"
#include "core/fiting_tree.h"
#include "core/static_fiting_tree.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"
#include "telemetry/structural.h"
#include "telemetry/trace.h"

namespace {

using namespace fitree::telemetry;

// --- histogram buckets ----------------------------------------------------

TEST(HdrBuckets, ExactBelowSixteen) {
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(hdr::BucketIndex(v), v);
    EXPECT_EQ(hdr::BucketUpper(hdr::BucketIndex(v)), v);
  }
}

TEST(HdrBuckets, UpperBoundsValueWithinRelativeError) {
  std::mt19937_64 rng(7);
  std::vector<uint64_t> values;
  // Dense small values, then random values at every magnitude including
  // the extremes of the 64-bit range.
  for (uint64_t v = 0; v < 4096; ++v) values.push_back(v);
  for (int shift = 12; shift < 64; ++shift) {
    for (int i = 0; i < 64; ++i) {
      values.push_back((uint64_t{1} << shift) | (rng() >> (64 - shift)));
    }
  }
  values.push_back(UINT64_MAX);
  for (const uint64_t v : values) {
    const size_t index = hdr::BucketIndex(v);
    ASSERT_LT(index, hdr::kNumBuckets);
    const uint64_t upper = hdr::BucketUpper(index);
    EXPECT_GE(upper, v);
    // Bucket width is at most v/16: within 6.25% relative error.
    EXPECT_LE(upper - v, v / 16 + 1) << "v=" << v;
  }
}

TEST(HdrBuckets, IndexMonotoneAndUppersIncreasing) {
  uint64_t prev_upper = 0;
  for (size_t i = 1; i < hdr::kNumBuckets; ++i) {
    const uint64_t upper = hdr::BucketUpper(i);
    EXPECT_GT(upper, prev_upper) << "bucket " << i;
    prev_upper = upper;
    // The upper bound of bucket i maps back to bucket i, and the next
    // value maps past it.
    EXPECT_EQ(hdr::BucketIndex(upper), i);
    if (upper < UINT64_MAX) {
      EXPECT_GT(hdr::BucketIndex(upper + 1), i);
    }
  }
}

// --- percentiles vs sorted-sample oracle ----------------------------------

// Exact nearest-rank percentile of a sorted sample.
uint64_t OraclePercentile(const std::vector<uint64_t>& sorted, double p) {
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<size_t>(p / 100.0 * n + 0.9999);
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TEST(Histogram, PercentilesMatchSortedOracleWithinBucketResolution) {
  // Log-uniform latencies (the shape op latencies actually have): the
  // histogram's nearest-rank percentile must land in [oracle, oracle*1.0625
  // + 1] for every probed percentile.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> log_ns(std::log(16.0),
                                                std::log(5e7));
  LatencyHistogram hist;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 200000; ++i) {
    const auto v = static_cast<uint64_t>(std::exp(log_ns(rng)));
    samples.push_back(v);
    hist.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.total, samples.size());
  for (const double p : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const uint64_t oracle = OraclePercentile(samples, p);
    const uint64_t got = snap.PercentileNs(p);
    EXPECT_GE(got, oracle) << "p=" << p;
    EXPECT_LE(got, oracle + oracle / 16 + 1) << "p=" << p;
  }
  EXPECT_GE(snap.MaxNs(), samples.back());
  EXPECT_LE(snap.MaxNs(), samples.back() + samples.back() / 16 + 1);
}

TEST(Histogram, SnapshotMergeAndDelta) {
  LatencyHistogram hist;
  hist.Record(100);
  hist.Record(200);
  const HistogramSnapshot before = hist.Snapshot();
  hist.Record(400);
  hist.Record(100);
  const HistogramSnapshot after = hist.Snapshot();

  const HistogramSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.total, 2u);
  EXPECT_EQ(delta.counts[hdr::BucketIndex(100)], 1u);
  EXPECT_EQ(delta.counts[hdr::BucketIndex(400)], 1u);

  // before + delta == after, bucket for bucket.
  HistogramSnapshot merged = before;
  merged.Merge(delta);
  EXPECT_EQ(merged.total, after.total);
  EXPECT_EQ(merged.counts, after.counts);

  // Empty snapshots: merge is identity, delta from empty is the snapshot.
  HistogramSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.PercentileNs(50.0), 0u);
  EXPECT_EQ(empty.MaxNs(), 0u);
  merged.Merge(empty);
  EXPECT_EQ(merged.total, after.total);
  EXPECT_EQ(after.DeltaSince(empty).total, after.total);
}

// --- sharded counters under threads (TSan-checked in CI) ------------------

TEST(Counter, FoldsExactlyAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.Load(), kThreads * kAddsPerThread);
}

TEST(Gauge, BalancedDeltasNetToZeroAcrossThreads) {
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&gauge] {
      for (int i = 0; i < 20000; ++i) {
        gauge.Add(3);
        gauge.Add(-3);
      }
      gauge.Add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(gauge.Load(), kThreads);  // the +1 per thread survives
}

TEST(Histogram, ConcurrentRecordsAllLand) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * 1000 + 17);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(hist.Snapshot().total,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- trace ring -----------------------------------------------------------

TEST(TraceRing, HoldsAllRecordsBeforeWraparound) {
  TraceRing ring(8, /*tid=*/3);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Emit(Engine::kStatic, Op::kLookup, /*t_ns=*/100 + i, /*arg=*/i);
  }
  EXPECT_EQ(ring.emitted(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto records = ring.Collect();
  ASSERT_EQ(records.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].t_ns, 100 + i);
    EXPECT_EQ(records[i].tid, 3u);
    EXPECT_EQ(records[i].engine, static_cast<uint8_t>(Engine::kStatic));
    EXPECT_EQ(records[i].op, static_cast<uint8_t>(Op::kLookup));
    EXPECT_EQ(records[i].arg, i);
  }
}

TEST(TraceRing, WrapsKeepingNewestOldestFirst) {
  constexpr size_t kCapacity = 8;
  TraceRing ring(kCapacity, /*tid=*/0);
  constexpr uint64_t kEmits = 27;  // 27 = 3*8 + 3: wraps mid-ring
  for (uint64_t i = 0; i < kEmits; ++i) {
    ring.Emit(Engine::kDisk, Op::kCompact, /*t_ns=*/i, /*arg=*/i * 2);
  }
  EXPECT_EQ(ring.emitted(), kEmits);
  EXPECT_EQ(ring.dropped(), kEmits - kCapacity);
  const auto records = ring.Collect();
  ASSERT_EQ(records.size(), kCapacity);
  // The newest kCapacity records, oldest first: t_ns 19..26.
  for (size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(records[i].t_ns, kEmits - kCapacity + i);
    EXPECT_EQ(records[i].arg, (kEmits - kCapacity + i) * 2);
  }
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  TraceRing ring(0, /*tid=*/1);
  ring.Emit(Engine::kBuffered, Op::kMerge, 1, 10);
  ring.Emit(Engine::kBuffered, Op::kMerge, 2, 20);
  const auto records = ring.Collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].t_ns, 2u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(TraceGlobal, OverrideCollectAndWraparound) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  // Small rings so wraparound happens fast; ConfigOverride drops rings
  // registered by other tests/threads, isolating this one.
  trace::ConfigOverride(/*enabled=*/true, /*ring_capacity=*/16);
  ASSERT_TRUE(trace::Enabled());
  for (uint64_t i = 0; i < 40; ++i) {
    trace::Emit(Engine::kConcurrent, Op::kInsert, /*arg=*/i);
  }
  const TraceDump dump = trace::Collect();
  EXPECT_TRUE(dump.enabled);
  EXPECT_EQ(dump.threads, 1u);
  EXPECT_EQ(dump.emitted, 40u);
  EXPECT_EQ(dump.dropped, 24u);
  ASSERT_EQ(dump.records.size(), 16u);
  // Newest 16 survive, time-sorted.
  for (size_t i = 1; i < dump.records.size(); ++i) {
    EXPECT_GE(dump.records[i].t_ns, dump.records[i - 1].t_ns);
  }
  EXPECT_EQ(dump.records.back().arg, 39u);
  EXPECT_EQ(dump.records.front().arg, 24u);

  // Disabled again: emits are dropped, Collect reports disabled.
  trace::ConfigOverride(/*enabled=*/false, /*ring_capacity=*/16);
  trace::Emit(Engine::kConcurrent, Op::kInsert, 0);
  EXPECT_FALSE(trace::Collect().enabled);
}

TEST(TraceGlobal, MergesRingsFromMultipleThreads) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  trace::ConfigOverride(/*enabled=*/true, /*ring_capacity=*/64);
  constexpr int kThreads = 3;
  constexpr int kPerThread = 10;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::Emit(Engine::kStatic, Op::kScan, static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  const TraceDump dump = trace::Collect();
  EXPECT_EQ(dump.threads, static_cast<size_t>(kThreads));
  EXPECT_EQ(dump.emitted, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(dump.dropped, 0u);
  EXPECT_EQ(dump.records.size(), static_cast<size_t>(kThreads) * kPerThread);
  trace::ConfigOverride(/*enabled=*/false, /*ring_capacity=*/64);
}

// --- registry snapshots ---------------------------------------------------

TEST(Registry, SnapshotIsolationAndDelta) {
  // An isolated instance (not the singleton) so counts are fully
  // deterministic regardless of what other tests did.
  Registry reg;
  reg.op_count(Engine::kDisk, Op::kLookup).Add(10);
  reg.op_latency(Engine::kDisk, Op::kLookup).Record(500);
  reg.counter(CounterId::kIoPagesRead).Add(7);
  reg.gauge(GaugeId::kEpochPending).Add(3);

  const RegistrySnapshot before = reg.Snapshot();
  EXPECT_EQ(before.op(Engine::kDisk, Op::kLookup).count, 10u);
  EXPECT_EQ(before.counter(CounterId::kIoPagesRead), 7u);
  EXPECT_EQ(before.gauge(GaugeId::kEpochPending), 3);

  reg.op_count(Engine::kDisk, Op::kLookup).Add(5);
  reg.op_latency(Engine::kDisk, Op::kLookup).Record(900);
  reg.counter(CounterId::kIoPagesRead).Add(2);
  reg.gauge(GaugeId::kEpochPending).Add(-1);

  // The earlier snapshot is a value: mutating the registry didn't move it.
  EXPECT_EQ(before.op(Engine::kDisk, Op::kLookup).count, 10u);
  EXPECT_EQ(before.op(Engine::kDisk, Op::kLookup).latency.total, 1u);

  const RegistrySnapshot after = reg.Snapshot();
  const RegistrySnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.op(Engine::kDisk, Op::kLookup).count, 5u);
  EXPECT_EQ(delta.op(Engine::kDisk, Op::kLookup).latency.total, 1u);
  EXPECT_EQ(delta.counter(CounterId::kIoPagesRead), 2u);
  // Gauges are levels: the delta carries the later level, not a diff.
  EXPECT_EQ(delta.gauge(GaugeId::kEpochPending), 2);
  // Untouched cells stay zero.
  EXPECT_EQ(delta.op(Engine::kStatic, Op::kInsert).count, 0u);
  EXPECT_EQ(delta.counter(CounterId::kIoCacheHits), 0u);
}

TEST(Registry, NamesCoverEveryId) {
  for (size_t e = 0; e < kNumEngines; ++e) {
    EXPECT_NE(EngineName(static_cast<Engine>(e))[0], '\0');
  }
  for (size_t o = 0; o < kNumOps; ++o) {
    EXPECT_NE(OpName(static_cast<Op>(o))[0], '\0');
  }
  for (size_t c = 0; c < kNumCounters; ++c) {
    EXPECT_NE(CounterName(static_cast<CounterId>(c))[0], '\0');
  }
  for (size_t g = 0; g < kNumGauges; ++g) {
    EXPECT_NE(GaugeName(static_cast<GaugeId>(g))[0], '\0');
  }
}

// --- instrumentation helpers against the singleton ------------------------

TEST(Instrumentation, ScopedOpCountsEveryCallAndTimesSampled) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  SetSamplePeriodForTest(1);  // time every op: deterministic histograms
  auto& reg = Registry::Get();
  const uint64_t count_before =
      reg.op_count(Engine::kStatic, Op::kDelete).Load();
  const uint64_t timed_before =
      reg.op_latency(Engine::kStatic, Op::kDelete).Snapshot().total;
  constexpr int kCalls = 100;
  for (int i = 0; i < kCalls; ++i) {
    ScopedOp op(Engine::kStatic, Op::kDelete);
  }
  EXPECT_EQ(reg.op_count(Engine::kStatic, Op::kDelete).Load() - count_before,
            static_cast<uint64_t>(kCalls));
  // Period 1: every call recorded a latency sample.
  EXPECT_EQ(reg.op_latency(Engine::kStatic, Op::kDelete).Snapshot().total -
                timed_before,
            static_cast<uint64_t>(kCalls));
  SetSamplePeriodForTest(64);  // restore the default period
}

TEST(Instrumentation, ScopedDurationCancelSuppressesTheRecord) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  auto& reg = Registry::Get();
  const uint64_t before = reg.op_count(Engine::kDisk, Op::kCompact).Load();
  {
    ScopedDuration timer(Engine::kDisk, Op::kCompact);
    timer.Cancel();
  }
  EXPECT_EQ(reg.op_count(Engine::kDisk, Op::kCompact).Load(), before);
  {
    ScopedDuration timer(Engine::kDisk, Op::kCompact);
  }
  EXPECT_EQ(reg.op_count(Engine::kDisk, Op::kCompact).Load(), before + 1);
}

// --- phase spans ----------------------------------------------------------

// Busy-wait so span durations are deterministic lower bounds: the loop
// exits only once the clock has passed `ns`, so a span around it measures
// at least that much.
void SpinFor(uint64_t ns) {
  const uint64_t end = NowNs() + ns;
  while (NowNs() < end) {
  }
}

TEST(Phase, NamesCoverEveryPhaseInBothBuilds) {
  // Phase and PhaseName stay real under FITREE_NO_TELEMETRY (same
  // convention as the metric types): exporters and tools compile either
  // way.
  for (size_t p = 0; p < kNumPhases; ++p) {
    EXPECT_NE(PhaseName(static_cast<Phase>(p))[0], '\0');
  }
  EXPECT_STREQ(PhaseName(Phase::kDirectoryDescent), "directory_descent");
  EXPECT_STREQ(PhaseName(Phase::kEpochReclaim), "epoch_reclaim");
}

TEST(Phase, RegistryStorageSnapshotsAndDeltas) {
  // Registry phase storage is plain metric plumbing, live in both builds.
  Registry reg;
  reg.phase_count(Engine::kDisk, Phase::kPageIo).Add(3);
  reg.phase_latency(Engine::kDisk, Phase::kPageIo).Record(1000);
  const RegistrySnapshot before = reg.Snapshot();
  EXPECT_EQ(before.phase(Engine::kDisk, Phase::kPageIo).count, 3u);
  reg.phase_count(Engine::kDisk, Phase::kPageIo).Add(2);
  reg.phase_latency(Engine::kDisk, Phase::kPageIo).Record(2000);
  const RegistrySnapshot delta = reg.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.phase(Engine::kDisk, Phase::kPageIo).count, 2u);
  EXPECT_EQ(delta.phase(Engine::kDisk, Phase::kPageIo).latency.total, 1u);
  EXPECT_EQ(delta.phase(Engine::kStatic, Phase::kPageIo).count, 0u);
}

TEST(Phase, SpansShareTheScopedOpSampleCountdown) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  auto& reg = Registry::Get();
  // Flush this thread's countdown to a known state: at period 1 the next
  // op samples and reloads the countdown to 1.
  SetSamplePeriodForTest(1);
  { ScopedOp op(Engine::kStatic, Op::kUpdate); }
  SetSamplePeriodForTest(4);

  const uint64_t phases_before =
      reg.phase_count(Engine::kStatic, Phase::kWindowSearch).Load();
  const uint64_t samples_before =
      reg.op_latency(Engine::kStatic, Op::kUpdate).Snapshot().total;
  for (int i = 0; i < 8; ++i) {
    ScopedOp op(Engine::kStatic, Op::kUpdate);
    ScopedPhase phase(Engine::kStatic, Phase::kWindowSearch);
  }
  // Period 4 over 8 ops: exactly ops 1 and 5 sample — and ONLY their
  // phases record. One shared countdown, no second decision point.
  EXPECT_EQ(reg.op_latency(Engine::kStatic, Op::kUpdate).Snapshot().total -
                samples_before,
            2u);
  EXPECT_EQ(reg.phase_count(Engine::kStatic, Phase::kWindowSearch).Load() -
                phases_before,
            2u);
  SetSamplePeriodForTest(64);
}

TEST(Phase, InertOutsideAnyArmedOperation) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  auto& reg = Registry::Get();
  SetSamplePeriodForTest(1);
  const uint64_t before =
      reg.phase_count(Engine::kStatic, Phase::kCompact).Load();
  // No enclosing ScopedOp/ScopedDuration: the span must not record, no
  // matter how aggressive the sample period is.
  { ScopedPhase phase(Engine::kStatic, Phase::kCompact); }
  EXPECT_EQ(reg.phase_count(Engine::kStatic, Phase::kCompact).Load(), before);
  SetSamplePeriodForTest(64);
}

TEST(Phase, NestedSpansRecordSelfTimeChildrenExcluded) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  auto& reg = Registry::Get();
  SetSamplePeriodForTest(1);
  // Static engine never emits compact/epoch_reclaim phases, so these two
  // cells are private to this test even on the singleton.
  const auto outer_before =
      reg.phase_latency(Engine::kStatic, Phase::kCompact).Snapshot();
  const auto child_before =
      reg.phase_latency(Engine::kStatic, Phase::kEpochReclaim).Snapshot();

  constexpr uint64_t kMs = 1'000'000;
  const uint64_t wall_start = NowNs();
  {
    ScopedOp op(Engine::kStatic, Op::kLookup);
    ScopedPhase outer(Engine::kStatic, Phase::kCompact);
    SpinFor(1 * kMs);
    {
      ScopedPhase child(Engine::kStatic, Phase::kEpochReclaim);
      SpinFor(8 * kMs);
    }
    SpinFor(1 * kMs);
  }
  const uint64_t wall_inclusive = NowNs() - wall_start;

  const auto outer_delta =
      reg.phase_latency(Engine::kStatic, Phase::kCompact)
          .Snapshot()
          .DeltaSince(outer_before);
  const auto child_delta =
      reg.phase_latency(Engine::kStatic, Phase::kEpochReclaim)
          .Snapshot()
          .DeltaSince(child_before);
  ASSERT_EQ(outer_delta.total, 1u);
  ASSERT_EQ(child_delta.total, 1u);
  // The child saw its full 8 ms; the outer span's SELF time is ~2 ms.
  // No absolute upper bound is noise-proof (preemption on a loaded
  // runner stretches the 2 ms of spinning arbitrarily), but self =
  // inclusive - child always holds, and the wall-clocked inclusive
  // time measured around the block grows with the same noise: self
  // must stay at least the child's full 8 ms spin below it (1 ms slack
  // for the clock reads outside the span).
  EXPECT_GE(child_delta.PercentileNs(50.0), 8 * kMs);
  EXPECT_GE(outer_delta.PercentileNs(50.0), 2 * kMs);
  EXPECT_LE(outer_delta.PercentileNs(50.0),
            wall_inclusive - 8 * kMs + 1 * kMs);
  SetSamplePeriodForTest(64);
}

TEST(Phase, ScopedDurationAlwaysArmsSpans) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  auto& reg = Registry::Get();
  SetSamplePeriodForTest(64);  // structural scopes ignore the period
  const uint64_t before =
      reg.phase_count(Engine::kDisk, Phase::kMergeResegment).Load();
  {
    ScopedDuration timer(Engine::kDisk, Op::kCompact);
    ScopedPhase phase(Engine::kDisk, Phase::kMergeResegment);
  }
  EXPECT_EQ(
      reg.phase_count(Engine::kDisk, Phase::kMergeResegment).Load() - before,
      1u);
}

TEST(Phase, TraceRecordsCarryThePhaseTag) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  trace::ConfigOverride(/*enabled=*/true, /*ring_capacity=*/16);
  SetSamplePeriodForTest(1);
  {
    ScopedOp op(Engine::kConcurrent, Op::kLookup);
    ScopedPhase phase(Engine::kConcurrent, Phase::kBufferProbe);
  }
  const TraceDump dump = trace::Collect();
  bool found_phase = false, found_op = false;
  for (const TraceRecord& r : dump.records) {
    if (r.phase ==
        static_cast<uint16_t>(Phase::kBufferProbe) + 1) {
      found_phase = true;
      EXPECT_EQ(r.engine, static_cast<uint8_t>(Engine::kConcurrent));
      EXPECT_EQ(r.op, static_cast<uint8_t>(Op::kLookup));
    }
    if (r.phase == 0 && r.op == static_cast<uint8_t>(Op::kLookup) &&
        r.engine == static_cast<uint8_t>(Engine::kConcurrent)) {
      found_op = true;
    }
  }
  EXPECT_TRUE(found_phase) << "no phase-tagged trace record emitted";
  EXPECT_TRUE(found_op) << "op-level record lost its phase==0 tag";
  trace::ConfigOverride(/*enabled=*/false, /*ring_capacity=*/16);
  SetSamplePeriodForTest(64);
}

// --- hardware counters ----------------------------------------------------

TEST(PerfCounters, RegionDegradesGracefullyEverywhere) {
  // Must never crash, whatever the kernel/container allows. Both builds:
  // PerfRegion is bench machinery, live under FITREE_NO_TELEMETRY too.
  PerfRegion region;
  EXPECT_FALSE(region.status().empty());
  region.Start();
  const PerfSample sample = region.Stop();
  EXPECT_FALSE(sample.status.empty());
  if (region.available()) {
    // Counters that scheduled report usable windows and non-negative
    // values; ok mirrors "anything counted".
    if (sample.ok) {
      EXPECT_GT(sample.time_running_ns, 0.0);
      EXPECT_GE(sample.time_enabled_ns, sample.time_running_ns);
    }
  } else {
    EXPECT_FALSE(sample.ok);
    // The status names the failure, never a bare error code.
    EXPECT_TRUE(sample.status.find("unavailable") != std::string::npos ||
                sample.status.find("disabled") != std::string::npos)
        << sample.status;
  }
}

TEST(PerfCounters, StopWithoutStartIsNotMeasured) {
  PerfRegion region;
  const PerfSample sample = region.Stop();
  EXPECT_FALSE(sample.ok);
  if (region.available()) {
    EXPECT_EQ(sample.status, "not measured");
  }
}

TEST(PerfCounters, EnvKnobDisablesCollection) {
  ASSERT_EQ(setenv("FITREE_PERF", "0", /*overwrite=*/1), 0);
  {
    PerfRegion region;
    EXPECT_FALSE(region.available());
    EXPECT_EQ(region.status(), "disabled (FITREE_PERF=0)");
    region.Start();
    EXPECT_FALSE(region.Stop().ok);
  }
  unsetenv("FITREE_PERF");
}

// --- engine Stats() snapshots ---------------------------------------------

std::vector<int64_t> TestKeys(size_t n) {
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<int64_t>(i) * 7 + (i % 3));
  }
  return keys;
}

TEST(StructuralStats, EveryEngineReportsCoreFields) {
  const auto keys = TestKeys(20000);

  const auto static_tree =
      fitree::StaticFitingTree<int64_t>::Create(keys, 64.0);
  const StructuralStats ss = static_tree->Stats();
  EXPECT_EQ(ss.engine, "static");
  EXPECT_EQ(ss.Get("keys"), static_cast<double>(keys.size()));
  EXPECT_GT(ss.Get("segments"), 0.0);
  EXPECT_EQ(ss.Get("error"), 64.0);
  EXPECT_GT(ss.Get("index_bytes"), 0.0);
  EXPECT_GE(ss.Get("segment_len_max"), ss.Get("segment_len_mean"));
  EXPECT_GE(ss.Get("segment_len_mean"), ss.Get("segment_len_min"));

  fitree::FitingTreeConfig config;
  config.error = 64.0;
  const auto buffered = fitree::FitingTree<int64_t>::Create(keys, config);
  const StructuralStats bs = buffered->Stats();
  EXPECT_EQ(bs.engine, "buffered");
  EXPECT_EQ(bs.Get("keys"), static_cast<double>(keys.size()));
  EXPECT_TRUE(bs.Has("buffer_capacity"));
  EXPECT_TRUE(bs.Has("buffered_entries"));
  EXPECT_TRUE(bs.Has("merges"));

  fitree::ConcurrentFitingTreeConfig cconfig;
  cconfig.error = 64.0;
  const auto concurrent =
      fitree::ConcurrentFitingTree<int64_t>::Create(keys, cconfig);
  concurrent->Insert(-100);
  const StructuralStats cs = concurrent->Stats();
  EXPECT_EQ(cs.engine, "concurrent");
  EXPECT_EQ(cs.Get("keys"), static_cast<double>(keys.size() + 1));
  EXPECT_GE(cs.Get("buffered_entries"), 1.0);
  EXPECT_TRUE(cs.Has("epoch_pending"));
  EXPECT_TRUE(cs.Has("merge_queue"));

  fitree::FitingTreeConfig mconfig;
  mconfig.error = 64.0;
  const auto mutex_tree =
      fitree::MutexFitingTree<int64_t>::Create(keys, mconfig);
  const StructuralStats ms = mutex_tree->Stats();
  EXPECT_EQ(ms.engine, "buffered");  // delegates to the wrapped tree
  EXPECT_EQ(ms.Get("keys"), static_cast<double>(keys.size()));
}

TEST(StructuralStats, DiskEngineReportsIoAndCompaction) {
  const auto keys = TestKeys(20000);
  const auto base = fitree::StaticFitingTree<int64_t>::Create(keys, 64.0);
  const std::string path = ::testing::TempDir() + "/telemetry_stats.fit";
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *base,
                                              fitree::storage::SegmentFileOptions{}));
  typename fitree::storage::DiskFitingTree<int64_t>::Options options;
  options.cache_pages = 16;
  auto disk = fitree::storage::DiskFitingTree<int64_t>::Open(path, options);
  ASSERT_NE(disk, nullptr);

  for (int i = 0; i < 50; ++i) disk->Insert(-1000 - i, /*value=*/1);
  ASSERT_TRUE(disk->Compact());
  EXPECT_GT(disk->LastCompactNs(), 0u);
  EXPECT_GT(disk->CompactPagesRewritten(), 0u);
  // Compact reopens the rewritten file with a fresh buffer pool; touch it
  // so the io_* fields below are nonzero.
  EXPECT_TRUE(disk->Contains(keys[0]));

  const StructuralStats ds = disk->Stats();
  EXPECT_EQ(ds.engine, "disk");
  EXPECT_EQ(ds.Get("keys"), static_cast<double>(keys.size() + 50));
  EXPECT_EQ(ds.Get("delta_entries"), 0.0);  // compaction folded the overlay
  EXPECT_EQ(ds.Get("compactions"), 1.0);
  EXPECT_GT(ds.Get("last_compact_ns"), 0.0);
  EXPECT_GT(ds.Get("compact_pages_rewritten"), 0.0);
  EXPECT_GT(ds.Get("leaf_pages"), 0.0);
  EXPECT_GT(ds.Get("file_bytes"), 0.0);
  EXPECT_EQ(ds.Get("io_error"), 0.0);
  // Page reads flowed through the pool: hits + misses > 0.
  EXPECT_GT(ds.Get("io_hits") + ds.Get("io_misses"), 0.0);
  std::remove(path.c_str());
}

// --- driver-count exactness (the acceptance criterion, unit-sized) --------

TEST(Instrumentation, ConcurrentOpCountsMatchIssuedOps) {
  if (!kEnabled) GTEST_SKIP() << "built with FITREE_NO_TELEMETRY";
  const auto keys = TestKeys(20000);
  fitree::ConcurrentFitingTreeConfig config;
  config.error = 64.0;
  auto tree = fitree::ConcurrentFitingTree<int64_t>::Create(keys, config);

  auto& reg = Registry::Get();
  const auto load = [&](Op o) {
    return reg.op_count(Engine::kConcurrent, o).Load();
  };
  const uint64_t lookups0 = load(Op::kLookup);
  const uint64_t inserts0 = load(Op::kInsert);
  const uint64_t scans0 = load(Op::kScan);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tree, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t k = static_cast<int64_t>(t) * 100000 + i;
        tree->Insert(k);          // 1 insert
        (void)tree->Contains(k);  // 1 lookup (Contains routes via Lookup)
        tree->ScanRange(k, k + 10, [](int64_t) {});  // 1 scan
      }
    });
  }
  for (auto& w : workers) w.join();
  tree->QuiesceMerges();

  constexpr uint64_t kIssued =
      static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(load(Op::kLookup) - lookups0, kIssued);
  EXPECT_EQ(load(Op::kInsert) - inserts0, kIssued);
  EXPECT_EQ(load(Op::kScan) - scans0, kIssued);
}

}  // namespace
