// Workload builders: lookup probe streams (with a controllable fraction of
// absent keys), insert streams drawn from the gaps of the base
// distribution, and range queries of a target selectivity.

#ifndef FITREE_WORKLOADS_WORKLOADS_H_
#define FITREE_WORKLOADS_WORKLOADS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace fitree::workloads {

enum class Access {
  kUniform,  // probes drawn uniformly over the key set
};

template <typename K>
struct RangeQuery {
  K lo{};
  K hi{};
};

namespace detail {

// A key strictly inside a randomly chosen gap of `keys`, i.e. absent from
// it. Falls back to an existing key when the data leaves no room (e.g. fully
// dense ranges).
template <typename K>
K AbsentKey(const std::vector<K>& keys, std::mt19937_64& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const size_t i = rng() % (keys.size() - 1);
    const K gap = keys[i + 1] - keys[i];
    if (gap > K{1}) {
      return keys[i] + K{1} + static_cast<K>(rng() % static_cast<uint64_t>(gap - K{1}));
    }
  }
  return keys[rng() % keys.size()];
}

}  // namespace detail

// `count` point-lookup probes over `keys` (sorted). An `absent_fraction` of
// them miss: they fall strictly inside gaps of the key set.
template <typename K>
std::vector<K> MakeLookupProbes(const std::vector<K>& keys, size_t count,
                                Access /*access*/, double absent_fraction,
                                uint64_t seed) {
  std::vector<K> probes;
  probes.reserve(count);
  if (keys.empty()) return probes;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (size_t i = 0; i < count; ++i) {
    if (keys.size() > 1 && absent_fraction > 0.0 &&
        unif(rng) < absent_fraction) {
      probes.push_back(detail::AbsentKey(keys, rng));
    } else {
      probes.push_back(keys[rng() % keys.size()]);
    }
  }
  return probes;
}

// `count` insert keys drawn from the same distribution as `keys`: each lands
// strictly inside a uniformly chosen gap, so it is absent from the base data
// (duplicates within the stream itself are possible and benign for
// set-semantics indexes).
template <typename K>
std::vector<K> MakeInserts(const std::vector<K>& keys, size_t count,
                           uint64_t seed) {
  std::vector<K> inserts;
  inserts.reserve(count);
  if (keys.size() < 2) return inserts;
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < count; ++i) {
    inserts.push_back(detail::AbsentKey(keys, rng));
  }
  return inserts;
}

// `count` closed ranges [lo, hi] each spanning ~selectivity * keys.size()
// consecutive keys.
template <typename K>
std::vector<RangeQuery<K>> MakeRangeQueries(const std::vector<K>& keys,
                                            size_t count, double selectivity,
                                            uint64_t seed) {
  std::vector<RangeQuery<K>> queries;
  queries.reserve(count);
  if (keys.empty()) return queries;
  const size_t span = std::max<size_t>(
      1, static_cast<size_t>(selectivity * static_cast<double>(keys.size())));
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < count; ++i) {
    const size_t start =
        keys.size() > span ? rng() % (keys.size() - span) : 0;
    const size_t end = std::min(keys.size() - 1, start + span - 1);
    queries.push_back({keys[start], keys[end]});
  }
  return queries;
}

}  // namespace fitree::workloads

#endif  // FITREE_WORKLOADS_WORKLOADS_H_
