// Figure 11: data-size scalability on Weblogs.
//
// Lookup latency across scale factors with error = page size = 100 (the
// paper's optimum for this dataset). Expected shape: the three tree-based
// methods grow slowly (log_b n) and track each other, binary search grows
// fastest (log2 n), and FITing-Tree stays within a whisker of the full
// index while using a vanishing fraction of its memory (also reported).

#include <span>
#include <string>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

void RunFig11(Runner& runner) {
  const size_t base = ScaledN(1000000);
  const size_t probes_n = ScaledN(200000);

  for (size_t scale : {1u, 2u, 4u, 8u, 16u}) {
    const size_t n = base * scale;
    const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/1";
    const auto keys =
        MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 1); });
    const auto probes = MemoProbes(dataset_key, *keys, probes_n,
                                   workloads::Access::kUniform, 0.0, 3);

    FitingTreeConfig fconfig;
    fconfig.error = 100.0;
    fconfig.buffer_size = 0;
    auto fiting = FitingTree<int64_t>::Create(*keys, fconfig);
    PagedIndexConfig pconfig;
    pconfig.page_size = 100;
    pconfig.buffer_size = 0;
    auto paged = PagedIndex<int64_t>::Create(*keys, pconfig);
    FullIndex<int64_t> full{std::span<const int64_t>(*keys)};
    BinarySearchIndex<int64_t> binary{std::span<const int64_t>(*keys)};

    const auto measure = [&](auto& index) {
      return runner.CollectReps([&] {
        return TimedLoopNsPerOp(probes->size(), [&](size_t i) {
          return index.Contains((*probes)[i]) ? uint64_t{1} : uint64_t{0};
        });
      });
    };

    const auto report = [&](const char* method, const Stats& stats,
                            double index_mb) {
      runner.Report({{"scale", std::to_string(scale)},
                     {"n", std::to_string(n)},
                     {"method", method}},
                    stats, {{"index_MB", index_mb}});
    };

    report("FITing-Tree", measure(*fiting),
           static_cast<double>(fiting->IndexSizeBytes()) / kMB);
    report("Fixed", measure(*paged),
           static_cast<double>(paged->IndexSizeBytes()) / kMB);
    report("Full", measure(full),
           static_cast<double>(full.IndexSizeBytes()) / kMB);
    report("Binary", measure(binary), 0.0);
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig11_scalability",
    "Fig 11: data-size scalability on Weblogs (error=page=100)", RunFig11);

}  // namespace
}  // namespace fitree::bench
