// One-pass error-bounded segmentation (paper Sec 3.2, Algorithm "shrinking
// cone"): partitions a sorted key array into linear segments such that each
// key's predicted position is within `error` of its true position.
//
// Two feasibility rules are provided (ablation (c) in bench_ablations):
//  - kEndpointLine: the paper's rule. The segment's line must pass through
//    its first point (the cone apex); the feasible slope interval shrinks as
//    points arrive and the segment closes when it empties. O(1) per key.
//  - kCone: PGM-style exact rule. The segment admits *any* line within
//    `error` of all of its points, tracked with convex hulls of the +/-error
//    constraint points. Greedily extending a segment for as long as any
//    feasible line exists yields the minimum possible number of segments
//    (feasibility is closed under taking prefixes), which is why
//    optimal_segmentation.h reuses this machinery as the Table 1 reference.

#ifndef FITREE_CORE_SHRINKING_CONE_H_
#define FITREE_CORE_SHRINKING_CONE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace fitree {

enum class Feasibility {
  kEndpointLine,  // paper's shrinking cone: line pinned to the first point
  kCone,          // exact: any line within error of every point
};

// One linear segment over the sorted key array. The global position of `key`
// inside this segment is predicted as
//   intercept + slope * (key - first_key)
// and is within `error` of the key's true rank for every covered key (up to
// floating-point rounding). For kEndpointLine, intercept == start exactly.
template <typename K>
struct Segment;

// Fixed-width form of Segment used by the storage/ layer when serializing
// the segment table to disk: size_t is platform-dependent, uint64_t is not,
// so an index file written on one machine opens on another.
template <typename K>
struct PackedSegment {
  K first_key{};
  double slope = 0.0;
  double intercept = 0.0;
  uint64_t start = 0;   // rank of first covered key
  uint64_t length = 0;  // number of covered keys

  double Predict(const K& key) const {
    return intercept +
           slope * (static_cast<double>(key) - static_cast<double>(first_key));
  }

  friend bool operator==(const PackedSegment&, const PackedSegment&) = default;
};

template <typename K>
struct Segment {
  K first_key{};
  double slope = 0.0;
  double intercept = 0.0;
  size_t start = 0;   // rank of first covered key
  size_t length = 0;  // number of covered keys

  double Predict(const K& key) const {
    return intercept +
           slope * (static_cast<double>(key) - static_cast<double>(first_key));
  }

  PackedSegment<K> Pack() const {
    return {first_key, slope, intercept, static_cast<uint64_t>(start),
            static_cast<uint64_t>(length)};
  }
};

// Rank window [begin, end) guaranteed to contain the key's insertion point
// given its segment's prediction: the model is error-bounded on the
// segment's keys and monotone between them, so the true rank is within
// error+2 of `pred` and, for the floor segment, inside [seg_start,
// seg_end]. Shared by the in-memory and disk-resident lookup paths so the
// two stay bit-identical.
inline std::pair<size_t, size_t> ErrorWindow(double pred, double error,
                                             size_t seg_start,
                                             size_t seg_end) {
  const double wlo = pred - error - 2.0;
  const double whi = pred + error + 2.0;
  const size_t begin = wlo <= static_cast<double>(seg_start)
                           ? seg_start
                           : std::min(seg_end, static_cast<size_t>(wlo));
  const size_t end = whi >= static_cast<double>(seg_end)
                         ? seg_end
                         : std::max(begin, static_cast<size_t>(whi));
  return {begin, end};
}

namespace detail {

// Incremental test for "does any line fit all points seen so far within
// +/- error". Points arrive with strictly increasing x. Maintains the upper
// hull of the low constraint points (x, y - e) and the lower hull of the
// high constraint points (x, y + e); the feasible slope interval is
//   [ max over pairs (low_j - high_i)/(x_j - x_i),
//     min over pairs (high_j - low_i)/(x_j - x_i) ]
// and each new point tightens it via a tangent search on the opposing hull
// (unimodal over a strictly convex chain, so binary-refined ternary search).
class ExactLineFitter {
  struct Pt {
    double x;
    double y;
  };

 public:
  explicit ExactLineFitter(double error) : e_(error) {}

  size_t size() const { return n_; }
  double slope_lo() const { return slope_lo_; }
  double slope_hi() const { return slope_hi_; }

  void Reset() {
    n_ = 0;
    lows_.clear();
    highs_.clear();
    slope_lo_ = -std::numeric_limits<double>::infinity();
    slope_hi_ = std::numeric_limits<double>::infinity();
  }

  // Returns false (leaving the fitter unchanged) when no single line can
  // cover the previous points plus (x, y).
  bool TryAdd(double x, double y) {
    const Pt low{x, y - e_};
    const Pt high{x, y + e_};
    if (n_ > 0) {
      // Tightest new bounds come from tangents against the opposing hulls.
      const double hi_cand = MinSlopeTo(lows_, high);
      const double lo_cand = MaxSlopeTo(highs_, low);
      const double new_lo = std::max(slope_lo_, lo_cand);
      const double new_hi = std::min(slope_hi_, hi_cand);
      if (new_lo > new_hi) return false;
      slope_lo_ = new_lo;
      slope_hi_ = new_hi;
    }
    PushUpperHull(lows_, low);
    PushLowerHull(highs_, high);
    ++n_;
    return true;
  }

 private:
  static double Slope(const Pt& a, const Pt& b) {
    return (b.y - a.y) / (b.x - a.x);
  }

  // cross(o, a, b) > 0 <=> o->a->b turns counter-clockwise.
  static double Cross(const Pt& o, const Pt& a, const Pt& b) {
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
  }

  static void PushUpperHull(std::vector<Pt>& hull, const Pt& p) {
    while (hull.size() >= 2 &&
           Cross(hull[hull.size() - 2], hull.back(), p) >= 0.0) {
      hull.pop_back();
    }
    hull.push_back(p);
  }

  static void PushLowerHull(std::vector<Pt>& hull, const Pt& p) {
    while (hull.size() >= 2 &&
           Cross(hull[hull.size() - 2], hull.back(), p) <= 0.0) {
      hull.pop_back();
    }
    hull.push_back(p);
  }

  // Minimum slope from any hull point to `p` (p.x greater than every hull
  // x). Unimodal over the chain; ternary-search then resolve locally.
  static double MinSlopeTo(const std::vector<Pt>& hull, const Pt& p) {
    size_t lo = 0, hi = hull.size() - 1;
    while (hi - lo > 2) {
      const size_t m1 = lo + (hi - lo) / 3;
      const size_t m2 = hi - (hi - lo) / 3;
      if (Slope(hull[m1], p) < Slope(hull[m2], p)) {
        hi = m2 - 1;
      } else {
        lo = m1 + 1;
      }
    }
    double best = Slope(hull[lo], p);
    for (size_t i = lo + 1; i <= hi; ++i) {
      best = std::min(best, Slope(hull[i], p));
    }
    return best;
  }

  static double MaxSlopeTo(const std::vector<Pt>& hull, const Pt& p) {
    size_t lo = 0, hi = hull.size() - 1;
    while (hi - lo > 2) {
      const size_t m1 = lo + (hi - lo) / 3;
      const size_t m2 = hi - (hi - lo) / 3;
      if (Slope(hull[m1], p) > Slope(hull[m2], p)) {
        hi = m2 - 1;
      } else {
        lo = m1 + 1;
      }
    }
    double best = Slope(hull[lo], p);
    for (size_t i = lo + 1; i <= hi; ++i) {
      best = std::max(best, Slope(hull[i], p));
    }
    return best;
  }

  double e_;
  size_t n_ = 0;
  std::vector<Pt> lows_;   // upper hull of (x, y - e)
  std::vector<Pt> highs_;  // lower hull of (x, y + e)
  double slope_lo_ = -std::numeric_limits<double>::infinity();
  double slope_hi_ = std::numeric_limits<double>::infinity();
};

// Picks a concrete witness line for keys[start..start+length) given a
// feasible slope, anchored at first_key: intercept is the midpoint of the
// feasible intercept interval (non-empty by construction, up to rounding).
template <typename K>
double FitIntercept(std::span<const K> keys, size_t start, size_t length,
                    double slope, double error) {
  const double x0 = static_cast<double>(keys[start]);
  double b_lo = -std::numeric_limits<double>::infinity();
  double b_hi = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < length; ++i) {
    const double dx = static_cast<double>(keys[start + i]) - x0;
    const double y = static_cast<double>(start + i);
    b_lo = std::max(b_lo, y - error - slope * dx);
    b_hi = std::min(b_hi, y + error - slope * dx);
  }
  return 0.5 * (b_lo + b_hi);
}

}  // namespace detail

// Segments `keys` (sorted, duplicate-free) so that every key's predicted
// position is within `error` of its rank. Returns at least one segment for
// non-empty input; segments partition [0, keys.size()).
template <typename K>
std::vector<Segment<K>> SegmentShrinkingCone(
    std::span<const K> keys, double error,
    Feasibility feasibility = Feasibility::kEndpointLine) {
  std::vector<Segment<K>> segments;
  const size_t n = keys.size();
  if (n == 0) return segments;

  if (feasibility == Feasibility::kEndpointLine) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    size_t start = 0;
    double lo = 0.0, hi = kInf;
    for (size_t i = start + 1; i < n; ++i) {
      const double dx = static_cast<double>(keys[i]) -
                        static_cast<double>(keys[start]);
      const double dy = static_cast<double>(i - start);
      const double nlo = std::max(lo, (dy - error) / dx);
      const double nhi = std::min(hi, (dy + error) / dx);
      if (nlo > nhi) {
        segments.push_back(
            {keys[start], hi == kInf ? 0.0 : 0.5 * (lo + hi),
             static_cast<double>(start), start, i - start});
        start = i;
        lo = 0.0;
        hi = kInf;
      } else {
        lo = nlo;
        hi = nhi;
      }
    }
    segments.push_back({keys[start], hi == kInf ? 0.0 : 0.5 * (lo + hi),
                        static_cast<double>(start), start, n - start});
    return segments;
  }

  // kCone: greedy maximal extension under exact line feasibility.
  detail::ExactLineFitter fitter(error);
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    if (fitter.TryAdd(static_cast<double>(keys[i]),
                      static_cast<double>(i))) {
      continue;
    }
    const double slope =
        fitter.size() == 1 ? 0.0
                           : 0.5 * (fitter.slope_lo() + fitter.slope_hi());
    segments.push_back(
        {keys[start], slope,
         detail::FitIntercept(keys, start, i - start, slope, error), start,
         i - start});
    start = i;
    fitter.Reset();
    fitter.TryAdd(static_cast<double>(keys[i]), static_cast<double>(i));
  }
  const double slope = fitter.size() == 1
                           ? 0.0
                           : 0.5 * (fitter.slope_lo() + fitter.slope_hi());
  segments.push_back(
      {keys[start], slope,
       detail::FitIntercept(keys, start, n - start, slope, error), start,
       n - start});
  return segments;
}

}  // namespace fitree

#endif  // FITREE_CORE_SHRINKING_CONE_H_
