// Figure 7 (a, b, c): insert throughput vs. error threshold.
//
// Bulk-loads each dataset, then times a stream of inserts drawn from the
// same distribution. FITing-Tree uses a buffer of error/2 (paper Sec
// 7.1.3); the Fixed baseline uses page = error with a half-page buffer; the
// Full index inserts straight into its B+ tree.
//
// Expected shape: Full is fastest (no page splits); FITing-Tree is
// comparable to Fixed, and can beat it at small errors where frequent
// resegmentation stays cheap (paper Sec 7.1.3).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

using fitree::FitingTree;
using fitree::FitingTreeConfig;
using fitree::FullIndex;
using fitree::PagedIndex;
using fitree::PagedIndexConfig;
using fitree::TablePrinter;
using fitree::bench::MeasureMops;

void RunDataset(fitree::datasets::RealWorld which, size_t n,
                size_t inserts_n) {
  const auto keys = fitree::datasets::Generate(which, n, 7);
  const auto inserts =
      fitree::workloads::MakeInserts<int64_t>(keys, inserts_n, 8);

  fitree::bench::PrintHeader("Figure 7: " + fitree::datasets::Name(which) +
                             " (n=" + std::to_string(n) + ", " +
                             std::to_string(inserts_n) + " inserts)");
  TablePrinter table(
      {"error", "FITing-Tree_M/s", "Fixed_M/s", "Full_M/s"});

  for (double error : {16.0, 64.0, 256.0, 1024.0}) {
    // FITing-Tree with buffer = error/2.
    FitingTreeConfig fconfig;
    fconfig.error = error;
    auto fiting = FitingTree<int64_t>::Create(keys, fconfig);
    const double fiting_mops = MeasureMops(
        inserts.size(), [&](size_t i) { fiting->Insert(inserts[i]); });

    // Fixed paging with page = error, buffer = page/2.
    PagedIndexConfig pconfig;
    pconfig.page_size = static_cast<size_t>(error);
    auto paged = PagedIndex<int64_t>::Create(keys, pconfig);
    const double paged_mops = MeasureMops(
        inserts.size(), [&](size_t i) { paged->Insert(inserts[i]); });

    // Full index.
    FullIndex<int64_t> full{std::span<const int64_t>(keys)};
    const double full_mops = MeasureMops(
        inserts.size(), [&](size_t i) { full.Insert(inserts[i]); });

    table.AddRow({TablePrinter::Fmt(error, 0),
                  TablePrinter::Fmt(fiting_mops, 3),
                  TablePrinter::Fmt(paged_mops, 3),
                  TablePrinter::Fmt(full_mops, 3)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const size_t n = fitree::bench::ScaledN(1000000);
  const size_t inserts = fitree::bench::ScaledN(500000);
  for (auto which : {fitree::datasets::RealWorld::kWeblogs,
                     fitree::datasets::RealWorld::kIot,
                     fitree::datasets::RealWorld::kMaps}) {
    RunDataset(which, n, inserts);
  }
  return 0;
}
