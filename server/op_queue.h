// Bounded multi-producer single-consumer op queue for shard workers.
//
// The ring is Vyukov's bounded MPMC queue used in MPSC mode: each cell
// carries a sequence atomic that encodes, relative to the head/tail
// counters, whether the cell is free, full, or in flight. Producers claim
// cells with one CAS on enqueue_pos_ and never touch each other's cells;
// the single consumer drains *batches* — PopBatch copies out every ready
// cell up to a cap with one acquire load per cell and no CAS at all, which
// is the structural basis of the server's batched dispatch (the worker
// amortizes wakeup, telemetry, and prefetch work over the whole batch).
//
// Blocking is layered on top, not inside: the ring itself is lock-free.
// The consumer parks on a condvar only after the queue goes empty
// (WaitNonEmpty), and producers take the mutex only when the consumer has
// declared itself sleeping. The handshake is the classic Dekker
// store/load pattern, which requires seq_cst *fences* between each side's
// store and subsequent load (a release store followed by a seq_cst load
// does not forbid StoreLoad reordering): the producer fences between
// publishing its cell and reading sleeping_, the consumer fences between
// setting sleeping_ and re-checking Empty(). Either the producer observes
// sleeping_==true and notifies under the mutex, or the consumer's Empty()
// check observes the published cell and skips the park. The consumer
// additionally bounds every park (~500us), so even a defect in the
// handshake could only cost a bounded stall, never liveness.
//
// Capacity is rounded up to a power of two; Push spins on a full ring
// (backpressure) and reports the number of full-ring stalls so the server
// can surface queue saturation as a counter.

#ifndef FITREE_SERVER_OP_QUEUE_H_
#define FITREE_SERVER_OP_QUEUE_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#if defined(__SANITIZE_THREAD__)
#define FITREE_OPQUEUE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FITREE_OPQUEUE_TSAN 1
#endif
#endif

namespace fitree::server {

template <typename T>
class OpQueue {
 public:
  explicit OpQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  OpQueue(const OpQueue&) = delete;
  OpQueue& operator=(const OpQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Producer: one attempt. False means the ring is currently full.
  bool TryPush(const T& item) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full: the consumer hasn't recycled this cell yet
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = item;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Producer: blocking push. Spins TryPush (yielding periodically while the
  // ring stays full) and wakes the consumer if it is parked. Returns the
  // number of full-ring stalls endured — the server feeds that into the
  // enqueue-stall counter as a backpressure signal.
  size_t Push(const T& item) {
    size_t stalls = 0;
    while (!TryPush(item)) {
      ++stalls;
      if ((stalls & 0x3F) == 0) {
        std::this_thread::yield();
      }
    }
    WakeConsumer();
    return stalls;
  }

  // Consumer only: drain up to `max` ready items into `out`. Returns the
  // number drained (0 == queue empty at the time of the call). One acquire
  // load + one release store per item; no CAS — there is only one consumer.
  size_t PopBatch(T* out, size_t max) {
    size_t n = 0;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    while (n < max) {
      Cell* cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif < 0) break;  // cell not yet published
      assert(dif == 0 && "single consumer invariant violated");
      out[n++] = cell->value;
      cell->seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
    }
    dequeue_pos_.store(pos, std::memory_order_relaxed);
    return n;
  }

  // Consumer-side emptiness check (exact for the single consumer; a
  // producer may publish immediately after, which WaitNonEmpty handles).
  bool Empty() const {
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const size_t seq = cells_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0;
  }

  // Consumer: park until an item is (probably) available or `stop` turns
  // true. The seq_cst fence pairs with WakeConsumer's: it keeps the
  // Empty() load from moving before the sleeping_ store, the consumer
  // half of the Dekker handshake (see file comment). The bounded wait is
  // belt-and-suspenders on top: a missed notify costs at most ~500us of
  // latency, never liveness.
  void WaitNonEmpty(const std::atomic<bool>& stop) {
    std::unique_lock<std::mutex> lock(mu_);
    sleeping_.store(true, std::memory_order_relaxed);
    SeqCstBarrier();
    if (Empty() && !stop.load(std::memory_order_acquire)) {
      cv_.wait_for(lock, std::chrono::microseconds(500));
    }
    sleeping_.store(false, std::memory_order_relaxed);
  }

  // Producer: wake the consumer iff it declared itself parked. The seq_cst
  // fence keeps the sleeping_ load from moving before the enqueue's
  // release store to cell->seq — the producer half of the Dekker
  // handshake (see file comment).
  void WakeConsumer() {
    SeqCstBarrier();
    if (sleeping_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_one();
    }
  }

  // Shutdown path: unconditional wake (the consumer may be parked with the
  // queue empty and only the stop flag changed).
  void WakeAll() {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }

 private:
  // StoreLoad barrier for the Dekker handshake. TSan does not model
  // std::atomic_thread_fence (-Wtsan, and the race detector would not see
  // the ordering it provides); under TSan a seq_cst RMW on a per-queue
  // dummy gives equivalent ordering that the detector does track.
  void SeqCstBarrier() {
#if defined(FITREE_OPQUEUE_TSAN)
    fence_dummy_.fetch_add(1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }

  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};

  alignas(64) std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> sleeping_{false};
#if defined(FITREE_OPQUEUE_TSAN)
  std::atomic<size_t> fence_dummy_{0};
#endif
};

}  // namespace fitree::server

#endif  // FITREE_SERVER_OP_QUEUE_H_
