// Lock-free metric primitives for the process-wide telemetry registry.
//
// Counter and Gauge spread their state over cache-line-padded per-thread
// slots (the same Fibonacci-scattered thread assignment epoch.h uses for
// its guard slots): a hot-path Add() is one relaxed fetch_add on a line no
// other thread is writing, and Load() folds the slots on the cold read
// path. Relaxed atomics keep both TSan-clean; the fold is a monotonic sum
// of per-thread monotonic values, so a concurrent Load() sees some valid
// point-in-time total (exact once writers quiesce — what the bench
// validation relies on).
//
// Everything here stays defined under FITREE_NO_TELEMETRY (the unit tests
// exercise the types directly in both builds); only the *instrumentation
// helpers* in registry.h compile to no-ops, so the escape hatch removes
// every hot-path cost without forking the metric types.

#ifndef FITREE_TELEMETRY_METRICS_H_
#define FITREE_TELEMETRY_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace fitree::telemetry {

// Compile-time escape hatch: -DFITREE_NO_TELEMETRY turns every
// instrumentation helper (registry.h, trace.h) into a no-op.
inline constexpr bool kEnabled =
#ifdef FITREE_NO_TELEMETRY
    false;
#else
    true;
#endif

// The four engines the instrumentation distinguishes, plus the sharded
// server front-end (server/sharded_index.h), whose rows measure the
// request path — enqueue to response-publish — on top of whatever engine
// the shards run. The mutex baseline delegates to the buffered FitingTree,
// so its traffic lands on kBuffered.
enum class Engine : uint8_t { kStatic, kBuffered, kConcurrent, kDisk,
                              kServer };
inline constexpr size_t kNumEngines = 5;

inline constexpr const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kStatic: return "static";
    case Engine::kBuffered: return "buffered";
    case Engine::kConcurrent: return "concurrent";
    case Engine::kDisk: return "disk";
    case Engine::kServer: return "server";
  }
  return "?";
}

// Per-op-type accounting: the five CRUD ops plus the two structural
// maintenance events (merge-and-resegment, disk compaction). Op counters
// count *calls* — a rejected duplicate insert still counts — which is what
// lets the bench driver check its issued-op totals exactly.
enum class Op : uint8_t {
  kLookup,
  kInsert,
  kUpdate,
  kDelete,
  kScan,
  kMerge,
  kCompact,
};
inline constexpr size_t kNumOps = 7;

inline constexpr const char* OpName(Op o) {
  switch (o) {
    case Op::kLookup: return "lookup";
    case Op::kInsert: return "insert";
    case Op::kUpdate: return "update";
    case Op::kDelete: return "delete";
    case Op::kScan: return "scan";
    case Op::kMerge: return "merge";
    case Op::kCompact: return "compact";
  }
  return "?";
}

// Named process-wide counters outside the per-(engine, op) grid. The io.*
// group is the telemetry home of the common/io_stats.h fields: every
// BufferPool mirrors its per-instance IoStats into these, so one registry
// snapshot carries the aggregate I/O picture.
enum class CounterId : uint8_t {
  kIoCacheHits,
  kIoCacheMisses,
  kIoPagesRead,
  kIoBytesRead,
  kEpochRetired,
  kEpochFreed,
  kMergesEnqueued,
  kMergesProcessed,
  kCompactPagesRewritten,
  kServerBatches,        // batches drained by shard workers
  kServerBatchOps,       // ops inside those batches (avg fill = ops/batches)
  kServerEnqueueStalls,  // failed enqueue attempts (queue-full backpressure)
  kIoBatches,            // batched page-read submissions (FetchBatch misses)
};
inline constexpr size_t kNumCounters = 13;

inline constexpr const char* CounterName(CounterId id) {
  switch (id) {
    case CounterId::kIoCacheHits: return "io.cache_hits";
    case CounterId::kIoCacheMisses: return "io.cache_misses";
    case CounterId::kIoPagesRead: return "io.pages_read";
    case CounterId::kIoBytesRead: return "io.bytes_read";
    case CounterId::kEpochRetired: return "epoch.retired";
    case CounterId::kEpochFreed: return "epoch.freed";
    case CounterId::kMergesEnqueued: return "merge_worker.enqueued";
    case CounterId::kMergesProcessed: return "merge_worker.processed";
    case CounterId::kCompactPagesRewritten: return "disk.compact_pages_rewritten";
    case CounterId::kServerBatches: return "server.batches";
    case CounterId::kServerBatchOps: return "server.batch_ops";
    case CounterId::kServerEnqueueStalls: return "server.enqueue_stalls";
    case CounterId::kIoBatches: return "io.batches";
  }
  return "?";
}

// Gauges are signed level meters driven by +/- deltas (never Set), so
// several instances — every EpochManager, every MergeWorker — fold into
// one aggregate level without stomping each other.
enum class GaugeId : uint8_t {
  kEpochPending,      // retired-but-unfreed objects across all managers
  kMergeQueueDepth,   // enqueued-but-unprocessed background merges
  kIoInflight,        // page reads submitted but not yet completed
};
inline constexpr size_t kNumGauges = 3;

inline constexpr const char* GaugeName(GaugeId id) {
  switch (id) {
    case GaugeId::kEpochPending: return "epoch.pending";
    case GaugeId::kMergeQueueDepth: return "merge_worker.queue_depth";
    case GaugeId::kIoInflight: return "io.inflight";
  }
  return "?";
}

namespace detail {

// Threads claim slots in registration order (the Fibonacci constant is 1
// mod 16, so the scatter degenerates to round-robin — deliberate: the
// first kSlots threads land on distinct cache lines).
inline constexpr size_t kCounterSlots = 16;

// Process-wide thread registration counter. constinit + inline: no static
// initialization guard on the hot path below.
inline constinit std::atomic<uint32_t> g_thread_counter{0};

inline constexpr uint32_t kSlotUnassigned = ~uint32_t{0};

// The calling thread's counter slot. The sentinel + branch (instead of a
// dynamically-initialized thread_local) keeps the TLS access direct:
// a dynamic initializer would route every read through the __tls_init
// wrapper call, which costs more than the fetch_add it guards and — worse
// — acts as an inlining barrier inside instrumented hot loops.
inline size_t ThreadSlot() {
  thread_local uint32_t slot = kSlotUnassigned;
  if (slot == kSlotUnassigned) [[unlikely]] {
    slot = (g_thread_counter.fetch_add(1, std::memory_order_relaxed) *
            2654435761u) %
           kCounterSlots;
  }
  return slot;
}

}  // namespace detail

// Monotonic nanosecond clock shared by the sampled op timers and the trace
// ring (one definition of "now" so trace timestamps and latencies agree).
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Monotonic counter: cache-line-sharded relaxed adds, folded on read.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    slots_[detail::ThreadSlot()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Load() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  Slot slots_[detail::kCounterSlots];
};

// Level meter: same sharding, signed deltas. The folded sum is the live
// level because every +d is eventually matched by a -d (possibly from a
// different thread — per-slot values may go negative, the sum never lies).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t delta) {
    slots_[detail::ThreadSlot()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  int64_t Load() const {
    int64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> value{0};
  };
  Slot slots_[detail::kCounterSlots];
};

}  // namespace fitree::telemetry

#endif  // FITREE_TELEMETRY_METRICS_H_
