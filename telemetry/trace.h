// Sampled event-trace ring buffers: fixed-size, per-thread, binary records.
//
// Tracing is off unless the FITREE_TRACE env knob is set (non-zero); when
// on, the sampled op timers in registry.h — and every merge/compaction —
// emit one 24-byte TraceRecord into the calling thread's ring. Rings are
// fixed-capacity (FITREE_TRACE_RING, default 4096 records) and wrap,
// keeping the newest records; memory is bounded at threads * capacity * 24
// bytes no matter how long the process runs.
//
// Each ring is written by exactly one thread; a small per-ring mutex
// serializes Emit against CollectTrace (the dump path), which only matters
// while a dump races live traffic. Emits ride the sampled path (1-in-N
// ops), so the uncontended lock never shows up at op granularity — the
// lock-free budget is spent where it pays, on the per-op counters.
//
// Dump-to-JSON lives in the bench harness (runner.cc: TelemetryToJson),
// keeping this header dependency-free; tools/stats_dump.py pretty-prints
// the result.

#ifndef FITREE_TELEMETRY_TRACE_H_
#define FITREE_TELEMETRY_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/phase.h"

namespace fitree::telemetry {

// One binary trace event. `t_ns` is monotonic nanoseconds since the first
// telemetry use in the process; `arg` is the op latency for sampled ops,
// the duration for merges/compactions, and the self time for phase spans.
// `phase` is 0 for whole-op records, else 1 + the Phase index — the
// formerly reserved pad bytes, so the record stays 24 bytes.
struct TraceRecord {
  uint64_t t_ns = 0;
  uint32_t tid = 0;  // thread registration id (dense, process-local)
  uint8_t engine = 0;
  uint8_t op = 0;
  uint16_t phase = 0;  // 0 == op-level record, else 1 + Phase index
  uint64_t arg = 0;
};
static_assert(sizeof(TraceRecord) == 24, "trace records are packed binary");

// Fixed-capacity wrapping ring of TraceRecords, written by one thread.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity, uint32_t tid)
      : records_(capacity == 0 ? 1 : capacity), tid_(tid) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  uint32_t tid() const { return tid_; }

  void Emit(Engine engine, Op op, uint64_t t_ns, uint64_t arg,
            uint16_t phase = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    TraceRecord& r = records_[next_];
    r.t_ns = t_ns;
    r.tid = tid_;
    r.engine = static_cast<uint8_t>(engine);
    r.op = static_cast<uint8_t>(op);
    r.phase = phase;
    r.arg = arg;
    next_ = (next_ + 1) % records_.size();
    ++emitted_;
  }

  // Records currently held, oldest first.
  std::vector<TraceRecord> Collect() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceRecord> out;
    const size_t held = emitted_ < records_.size()
                            ? static_cast<size_t>(emitted_)
                            : records_.size();
    out.reserve(held);
    const size_t start = emitted_ < records_.size() ? 0 : next_;
    for (size_t i = 0; i < held; ++i) {
      out.push_back(records_[(start + i) % records_.size()]);
    }
    return out;
  }

  uint64_t emitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return emitted_;
  }

  // Events overwritten by wraparound (emitted minus held).
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return emitted_ < records_.size() ? 0 : emitted_ - records_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceRecord> records_;
  size_t next_ = 0;
  uint64_t emitted_ = 0;
  uint32_t tid_;
};

// Everything collected from every thread's ring, merged oldest-first.
struct TraceDump {
  bool enabled = false;
  size_t threads = 0;
  uint64_t emitted = 0;
  uint64_t dropped = 0;
  std::vector<TraceRecord> records;  // sorted by t_ns
};

#ifdef FITREE_NO_TELEMETRY

namespace trace {
inline bool Enabled() { return false; }
inline void Emit(Engine, Op, uint64_t) {}
inline void EmitPhase(Engine, Op, Phase, uint64_t) {}
inline TraceDump Collect() { return {}; }
inline void ConfigOverride(bool, size_t) {}
}  // namespace trace

#else  // !FITREE_NO_TELEMETRY

namespace trace {

// True when FITREE_TRACE is set non-zero (cached at first use).
bool Enabled();

// Appends one record to the calling thread's ring (registered lazily on
// first emit). No-op when tracing is disabled.
void Emit(Engine engine, Op op, uint64_t arg);

// Same, tagged with the phase a span covered; `op` is the enclosing op.
void EmitPhase(Engine engine, Op op, Phase phase, uint64_t arg);

// Snapshot of every registered ring, merged and time-sorted.
TraceDump Collect();

// Test/tool hook: overrides the cached FITREE_TRACE / FITREE_TRACE_RING
// values and drops all previously registered rings. Not thread-safe
// against concurrent Emit — call from quiesced code only.
void ConfigOverride(bool enabled, size_t ring_capacity);

}  // namespace trace

#endif  // FITREE_NO_TELEMETRY

}  // namespace fitree::telemetry

#endif  // FITREE_TELEMETRY_TRACE_H_
