// Micro-benchmarks of the core operations (the former google-benchmark
// bench_micro, re-hosted on the shared harness so the numbers land in the
// same BENCH_results.json): point lookups for every index structure,
// inserts, segmentation throughput and B+ tree primitives.

#include <algorithm>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "btree/btree_map.h"
#include "core/fiting_tree.h"
#include "core/flat_directory.h"
#include "core/optimal_segmentation.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

constexpr size_t kProbeMask = (1 << 16) - 1;  // probe count is a power of two

struct MicroData {
  std::string dataset_key;  // the memo namespace, shared by all workloads
  std::shared_ptr<const std::vector<int64_t>> keys;
  std::shared_ptr<const std::vector<int64_t>> probes;
};

MicroData LoadData() {
  const size_t n = ScaledN(1000000);
  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/1";
  MicroData data;
  data.dataset_key = dataset_key;
  data.keys = MemoKeys(dataset_key, [&] { return datasets::Weblogs(n, 1); });
  data.probes = MemoProbes(dataset_key, *data.keys, kProbeMask + 1,
                           workloads::Access::kUniform, 0.0, 2);
  return data;
}

void RunMicroLookup(Runner& runner) {
  const MicroData data = LoadData();
  const size_t ops = ScaledN(1 << 20);

  const auto measure = [&](auto& index) {
    return runner.CollectReps([&] {
      return TimedLoopNsPerOp(ops, [&](size_t i) {
        return index.Contains((*data.probes)[i & kProbeMask]) ? uint64_t{1}
                                                              : uint64_t{0};
      });
    });
  };

  for (double error : {16.0, 256.0, 4096.0, 65536.0}) {
    FitingTreeConfig config;
    config.error = error;
    config.buffer_size = 0;
    auto tree = FitingTree<int64_t>::Create(*data.keys, config);
    runner.Report(
        {{"structure", "FITing-Tree"},
         {"param", "e=" + std::to_string(static_cast<int>(error))}},
        measure(*tree),
        {{"segments", static_cast<double>(tree->SegmentCount())},
         {"index_bytes", static_cast<double>(tree->IndexSizeBytes())}});
  }
  for (size_t page : {16u, 256u, 4096u, 65536u}) {
    PagedIndexConfig config;
    config.page_size = page;
    config.buffer_size = 0;
    auto index = PagedIndex<int64_t>::Create(*data.keys, config);
    runner.Report(
        {{"structure", "Paged"}, {"param", "page=" + std::to_string(page)}},
        measure(*index),
        {{"index_bytes", static_cast<double>(index->IndexSizeBytes())}});
  }
  {
    FullIndex<int64_t> index{std::span<const int64_t>(*data.keys)};
    runner.Report(
        {{"structure", "Full"}, {"param", "-"}}, measure(index),
        {{"index_bytes", static_cast<double>(index.IndexSizeBytes())}});
  }
  {
    BinarySearchIndex<int64_t> index{std::span<const int64_t>(*data.keys)};
    runner.Report({{"structure", "Binary"}, {"param", "-"}}, measure(index));
  }
}

void RunMicroInsert(Runner& runner) {
  const MicroData data = LoadData();
  // The stream is exactly ops long: replaying a wrapped stream would time
  // the duplicate-insert no-op path instead of fresh inserts.
  const size_t ops = ScaledN(1 << 19);
  const auto inserts = MemoInserts(data.dataset_key, *data.keys, ops, 3);

  for (double error : {64.0, 1024.0}) {
    const Stats stats = runner.CollectReps([&] {
      FitingTreeConfig config;
      config.error = error;
      auto tree = FitingTree<int64_t>::Create(*data.keys, config);
      return TimedLoopNsPerOp(ops, [&](size_t i) {
        tree->Insert((*inserts)[i]);
        return uint64_t{1};
      });
    }, /*warmup=*/false);
    runner.Report({{"structure", "FITing-Tree"},
                   {"param", "e=" + std::to_string(static_cast<int>(error))}},
                  stats, {{"insert_Mops", MopsFromNsPerOp(stats.p50)}});
  }
}

void RunMicroSegmentation(Runner& runner) {
  const MicroData data = LoadData();

  {
    const Stats stats = runner.CollectReps([&] {
      Timer timer;
      const auto segments = SegmentShrinkingCone<int64_t>(*data.keys, 100.0);
      SinkValue(segments.size());
      return static_cast<double>(timer.ElapsedNs()) /
             static_cast<double>(data.keys->size());
    });
    runner.Report({{"algorithm", "shrinking_cone"},
                   {"n", std::to_string(data.keys->size())}},
                  stats);
  }
  for (size_t sample_n : {10000u, 50000u}) {
    const std::vector<int64_t> sample(data.keys->begin(),
                                      data.keys->begin() + sample_n);
    const Stats stats = runner.CollectReps([&] {
      Timer timer;
      SinkValue(OptimalSegmentCount<int64_t>(sample, 100.0));
      return static_cast<double>(timer.ElapsedNs()) /
             static_cast<double>(sample.size());
    });
    runner.Report(
        {{"algorithm", "optimal_dp"}, {"n", std::to_string(sample_n)}}, stats);
  }
}

void RunMicroBtree(Runner& runner) {
  const size_t n = ScaledN(1000000);

  {
    const Stats stats = runner.CollectReps([&] {
      btree::BTreeMap<int64_t, int64_t> tree;
      return TimedLoopNsPerOp(n, [&](size_t i) {
        tree.Insert(static_cast<int64_t>(i), static_cast<int64_t>(i));
        return uint64_t{1};
      });
    }, /*warmup=*/false);
    runner.Report({{"op", "insert_sequential"}, {"n", std::to_string(n)}},
                  stats);
  }
  {
    btree::BTreeMap<int64_t, int64_t> tree;
    std::vector<std::pair<int64_t, int64_t>> items;
    items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      items.emplace_back(static_cast<int64_t>(i) * 7,
                         static_cast<int64_t>(i));
    }
    tree.BulkLoad(std::move(items));
    const Stats stats = runner.CollectReps([&] {
      return TimedLoopNsPerOp(ScaledN(1 << 20), [&](size_t i) {
        const auto probe = static_cast<int64_t>(i * 977 % n) * 7;
        return tree.Find(probe) != nullptr ? uint64_t{1} : uint64_t{0};
      });
    });
    runner.Report({{"op", "find_random"}, {"n", std::to_string(n)}}, stats);
  }
}

// Ablation of the hot-path microarchitecture pass: (a) the in-window
// lower-bound policies (binary / linear / exponential / simd) across error
// window sizes, probed with model-style hints (right answer +/- jitter);
// (b) segment-directory descent, btree vs flat interpolation+SIMD, over
// the same key set's shrinking-cone segments. These are the two per-lookup
// costs the FITREE_SEARCH_POLICY / FITREE_DIRECTORY knobs select between.
void RunMicroSearchPolicy(Runner& runner) {
  const MicroData data = LoadData();
  const auto& keys = *data.keys;
  const size_t n = keys.size();
  const size_t ops = ScaledN(1 << 18);
  constexpr size_t kMask = (1 << 12) - 1;

  struct Probe {
    size_t begin = 0;
    size_t end = 0;
    size_t hint = 0;
    int64_t key = 0;
  };

  for (const size_t window :
       {size_t{16}, size_t{64}, size_t{128}, size_t{512}, size_t{4096}}) {
    const size_t w = std::min(window, n);
    // Pre-generate windows that contain their answer, with the hint
    // wandering +/- w/4 around it — the regime the segment models produce.
    std::vector<Probe> probes(kMask + 1);
    std::mt19937_64 rng(0x5EA4C4 + window);
    std::uniform_int_distribution<size_t> pick(0, n - 1);
    std::uniform_int_distribution<size_t> off(0, w - 1);
    std::uniform_int_distribution<long> jitter(-static_cast<long>(w / 4),
                                               static_cast<long>(w / 4));
    for (Probe& p : probes) {
      const size_t t = pick(rng);
      size_t begin = t - std::min(t, off(rng));
      if (begin + w > n) begin = n - w;
      const long h = static_cast<long>(t) + jitter(rng);
      p.begin = begin;
      p.end = begin + w;
      p.hint = std::clamp(static_cast<size_t>(std::max(h, 0L)), begin,
                          begin + w - 1);
      p.key = keys[t];
    }
    for (const SearchPolicy policy :
         {SearchPolicy::kBinary, SearchPolicy::kLinear,
          SearchPolicy::kExponential, SearchPolicy::kSimd}) {
      const Stats stats = runner.CollectReps([&] {
        return TimedLoopNsPerOp(ops, [&](size_t i) {
          const Probe& p = probes[i & kMask];
          return static_cast<uint64_t>(detail::BoundedLowerBound(
              keys.data(), p.begin, p.end, p.hint, p.key, policy));
        });
      });
      runner.Report({{"policy", SearchPolicyName(policy)},
                     {"window", std::to_string(window)}},
                    stats);
    }
  }

  // Directory descent over the segment first keys (error=64 keeps the
  // directory big enough that descent cost is visible).
  const auto segments = SegmentShrinkingCone<int64_t>(keys, 64.0);
  std::vector<int64_t> first_keys;
  std::vector<std::pair<int64_t, uint32_t>> entries;
  first_keys.reserve(segments.size());
  entries.reserve(segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    first_keys.push_back(segments[i].first_key);
    entries.emplace_back(segments[i].first_key, static_cast<uint32_t>(i));
  }
  btree::BTreeMap<int64_t, uint32_t, 16, 16> btree_dir;
  btree_dir.BulkLoad(std::move(entries));
  const FlatKeyIndex<int64_t> flat_dir(first_keys);
  const auto& descent_probes = *data.probes;
  const double seg_count = static_cast<double>(segments.size());
  {
    const Stats stats = runner.CollectReps([&] {
      return TimedLoopNsPerOp(ops, [&](size_t i) {
        const uint32_t* id = btree_dir.FindFloor(descent_probes[i & kProbeMask]);
        return id == nullptr ? uint64_t{0} : static_cast<uint64_t>(*id);
      });
    });
    runner.Report({{"policy", "directory-btree"}, {"window", "-"}}, stats,
                  {{"segments", seg_count}});
  }
  {
    const Stats stats = runner.CollectReps([&] {
      return TimedLoopNsPerOp(ops, [&](size_t i) {
        return static_cast<uint64_t>(
            flat_dir.FloorIndex(descent_probes[i & kProbeMask]));
      });
    });
    runner.Report({{"policy", "directory-flat"}, {"window", "-"}}, stats,
                  {{"segments", seg_count}});
  }
}

FITREE_REGISTER_EXPERIMENT(
    "micro_lookup", "Micro: point lookups across index structures",
    RunMicroLookup);
FITREE_REGISTER_EXPERIMENT(
    "micro_search_policy",
    "Micro: in-window search policy x window-size sweep, plus "
    "btree-vs-flat directory descent",
    RunMicroSearchPolicy);
FITREE_REGISTER_EXPERIMENT(
    "micro_insert", "Micro: FITing-Tree insert throughput", RunMicroInsert);
FITREE_REGISTER_EXPERIMENT(
    "micro_segmentation",
    "Micro: ShrinkingCone and optimal-DP segmentation throughput",
    RunMicroSegmentation);
FITREE_REGISTER_EXPERIMENT(
    "micro_btree", "Micro: B+ tree insert/find primitives", RunMicroBtree);

}  // namespace
}  // namespace fitree::bench
