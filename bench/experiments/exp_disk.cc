// Disk-resident FITing-Tree vs fixed paging, through the buffer pool.
//
// Builds the index file on disk (storage/segment_file.h), then serves
// point lookups and range scans entirely through the buffer-pool cache
// while counting page I/O. Sweeps (a) the error bound and (b) the cache
// size as a fraction of the leaf pages, under uniform and Zipfian probe
// skew; the fixed-paging baseline (one data-blind segment per page) rides
// the same read path.
//
// Every configuration is first validated against the in-memory
// StaticFitingTree oracle: lookups (present and absent) must return the
// oracle's rank payload and range scans must emit the oracle's keys. A
// mismatch aborts the whole bench (Die): a bench that measures wrong
// answers measures nothing.
//
// Expected shape: pages-read/op falls toward 0 as the cache fraction
// approaches 1, and at any partial cache Zipfian skew buys a higher hit
// rate than uniform. Larger errors read more pages per lookup but shrink
// the in-memory segment table (the paper's Fig 6 contrast, restated in
// I/O).

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/io_stats.h"
#include "common/table_printer.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "workloads/workloads.h"

namespace fitree::bench {
namespace {

using storage::DiskFitingTree;
using workloads::Access;

struct ProbeSet {
  Access access;
  const char* name;
  std::shared_ptr<const std::vector<int64_t>> probes;
};

// Checks the disk tree against the in-memory oracle on a probe prefix and
// a handful of range scans.
void ValidateOrDie(DiskFitingTree<int64_t>& disk,
                   const StaticFitingTree<int64_t>& oracle,
                   std::span<const int64_t> probes, const std::string& label) {
  const size_t checks = std::min<size_t>(probes.size(), 2000);
  for (size_t i = 0; i < checks; ++i) {
    const int64_t key = probes[i];
    const auto got = disk.Lookup(key);
    const auto want = oracle.Find(key);
    const bool match = want.has_value() ? (got.has_value() && *got == *want)
                                        : !got.has_value();
    if (!match || disk.LowerBound(key) != oracle.LowerBound(key)) {
      Die("disk: " + label + ": mismatch vs oracle at key " +
          std::to_string(key));
    }
  }
  const auto ranges = workloads::MakeRangeQueries<int64_t>(
      oracle.data(), 32, /*selectivity=*/0.001, /*seed=*/77);
  for (const auto& q : ranges) {
    std::vector<int64_t> got;
    disk.ScanRange(q.lo, q.hi, [&](int64_t k, uint64_t) { got.push_back(k); });
    std::vector<int64_t> want;
    oracle.ScanRange(q.lo, q.hi, [&](int64_t k) { want.push_back(k); });
    if (got != want) Die("disk: " + label + ": range scan mismatch");
  }
  if (disk.io_error()) {
    Die("disk: " + label + ": I/O error during validation");
  }
}

void BenchConfig(Runner& runner, const std::string& method,
                 const std::string& param, const std::string& path,
                 const StaticFitingTree<int64_t>& oracle,
                 std::span<const ProbeSet> probe_sets,
                 std::span<const double> cache_fractions,
                 size_t cache_override, uint64_t leaf_pages) {
  for (const double fraction : cache_fractions) {
    for (const ProbeSet& set : probe_sets) {
      DiskFitingTree<int64_t>::Options options;
      options.cache_pages =
          cache_override > 0
              ? cache_override
              : std::max<uint64_t>(
                    4, static_cast<uint64_t>(
                           fraction * static_cast<double>(leaf_pages)));
      const std::string frac_cell =
          cache_override > 0 ? "env" : TablePrinter::Fmt(fraction, 2);
      auto disk = DiskFitingTree<int64_t>::Open(path, options);
      if (disk == nullptr) Die("disk: cannot open " + path);
      const std::string label = method + " " + param;
      ValidateOrDie(*disk, oracle, *set.probes, label);

      // Validation doubles as cache warmup; every rep then measures the
      // same steady-state pool.
      const size_t ops = set.probes->size();
      IoStats io{};
      const Stats stats = runner.CollectReps([&] {
        disk->ResetIoStats();
        const double ns = TimedLoopNsPerOp(ops, [&](size_t i) {
          return disk->Lookup((*set.probes)[i]).value_or(0);
        });
        io = disk->io();
        return ns;
      }, /*warmup=*/false);
      const double pages_per_op =
          static_cast<double>(io.pages_read) / static_cast<double>(ops);
      runner.Report(
          {{"op", "lookup"},
           {"method", method},
           {"param", param},
           {"access", set.name},
           {"cache_frac", frac_cell}},
          stats,
          {{"cache_pages", static_cast<double>(options.cache_pages)},
           {"pages_read_per_op", pages_per_op},
           {"hit_rate", io.HitRate()},
           {"io_per_sec", stats.mean > 0.0
                              ? pages_per_op / stats.mean * 1e9
                              : 0.0}});

      // Range scans: uniform starts only (skew matters less once a scan
      // streams pages), at the same cache point.
      if (set.access == Access::kUniform) {
        const auto ranges = workloads::MakeRangeQueries<int64_t>(
            oracle.data(), 512, /*selectivity=*/0.0005, /*seed=*/99);
        IoStats rio{};
        const Stats range_stats = runner.CollectReps([&] {
          disk->ResetIoStats();
          const double ns = TimedLoopNsPerOp(ranges.size(), [&](size_t i) {
            uint64_t sum = 0;
            disk->ScanRange(ranges[i].lo, ranges[i].hi,
                            [&](int64_t, uint64_t v) { sum += v; });
            return sum;
          });
          rio = disk->io();
          return ns;
        }, /*warmup=*/false);
        runner.Report(
            {{"op", "range"},
             {"method", method},
             {"param", param},
             {"access", set.name},
             {"cache_frac", frac_cell}},
            range_stats,
            {{"cache_pages", static_cast<double>(options.cache_pages)},
             {"pages_read_per_op", static_cast<double>(rio.pages_read) /
                                       static_cast<double>(ranges.size())},
             {"hit_rate", rio.HitRate()}});
      }
      if (disk->io_error()) {
        Die("disk: I/O error while measuring " + label);
      }
    }
  }
}

// The ISSUE 10 async-read cells, run at cache fractions far below 1 where
// nearly every probe faults: (a) a fetch-strategy ablation — kSingle
// faults the predicted page serially, kWindow stages every page the error
// window spans through one batched read — and (b) multiget served two
// ways over identical 64-key batches, a serial Lookup loop vs LookupBatch
// (which overlaps all of a batch's misses in one submission). IOPS here is
// data pages actually read per second of wall time, so a strategy that
// reads MORE pages but stalls less shows up honestly on both axes.
void BenchAsyncReads(Runner& runner, const std::string& method,
                     const std::string& param, const std::string& path,
                     const StaticFitingTree<int64_t>& oracle,
                     const ProbeSet& set,
                     std::span<const double> cache_fractions,
                     uint64_t leaf_pages) {
  constexpr size_t kBatch = 64;
  for (const double fraction : cache_fractions) {
    const size_t cache_pages = std::max<uint64_t>(
        4, static_cast<uint64_t>(fraction * static_cast<double>(leaf_pages)));
    const std::string frac_cell = TablePrinter::Fmt(fraction, 2);

    // Both families attempt O_DIRECT: on a freshly written file every
    // buffered read is a warm page-cache hit, which measures syscall +
    // checksum CPU rather than I/O — the axis the async path exists for.
    // Falls back to buffered (and says so in io_mode) where the
    // filesystem or page size refuses direct reads.
    // (a) fetch-strategy ablation on the plain serial lookup path.
    for (const FetchStrategy strategy :
         {FetchStrategy::kSingle, FetchStrategy::kWindow}) {
      DiskFitingTree<int64_t>::Options options;
      options.cache_pages = cache_pages;
      options.fetch_strategy = strategy;
      options.io_direct = true;
      auto disk = DiskFitingTree<int64_t>::Open(path, options);
      if (disk == nullptr) Die("disk: cannot open " + path);
      const std::string label =
          method + " " + param + " fetch=" + FetchStrategyName(strategy);
      ValidateOrDie(*disk, oracle, *set.probes, label);
      const size_t ops = set.probes->size();
      IoStats io{};
      const Stats stats = runner.CollectReps([&] {
        disk->ResetIoStats();
        const double ns = TimedLoopNsPerOp(ops, [&](size_t i) {
          return disk->Lookup((*set.probes)[i]).value_or(0);
        });
        io = disk->io();
        return ns;
      }, /*warmup=*/false);
      const double pages_per_op =
          static_cast<double>(io.pages_read) / static_cast<double>(ops);
      runner.Report({{"op", "fetch_ablation"},
                     {"method", method},
                     {"param", param},
                     {"access", set.name},
                     {"cache_frac", frac_cell},
                     {"fetch", FetchStrategyName(strategy)},
                     {"io_mode", disk->DirectIo() ? "direct" : "buffered"}},
                    stats,
                    {{"pages_read_per_op", pages_per_op},
                     {"hit_rate", io.HitRate()},
                     {"io_per_sec", stats.mean > 0.0
                                        ? pages_per_op / stats.mean * 1e9
                                        : 0.0}});
      if (disk->io_error()) Die("disk: I/O error in " + label);
    }

    // (b) multiget: sync loop vs batched submission, same key batches.
    for (const bool batched : {false, true}) {
      DiskFitingTree<int64_t>::Options options;
      options.cache_pages = cache_pages;
      options.io_direct = true;
      auto disk = DiskFitingTree<int64_t>::Open(path, options);
      if (disk == nullptr) Die("disk: cannot open " + path);
      const std::string label = method + " " + param +
                                (batched ? " multiget=batch" : " multiget=sync");
      ValidateOrDie(*disk, oracle, *set.probes, label);
      const std::vector<int64_t>& probes = *set.probes;
      const size_t batches = probes.size() / kBatch;
      if (batches == 0) break;
      const size_t ops = batches * kBatch;
      std::vector<std::optional<uint64_t>> out(kBatch);
      IoStats io{};
      const Stats stats = runner.CollectReps([&] {
        disk->ResetIoStats();
        const double ns_per_batch = TimedLoopNsPerOp(batches, [&](size_t b) {
          const int64_t* chunk = probes.data() + b * kBatch;
          uint64_t sum = 0;
          if (batched) {
            disk->LookupBatch(chunk, kBatch, out.data());
            for (const auto& v : out) sum += v.value_or(0);
          } else {
            for (size_t i = 0; i < kBatch; ++i) {
              sum += disk->Lookup(chunk[i]).value_or(0);
            }
          }
          return sum;
        });
        io = disk->io();
        return ns_per_batch / static_cast<double>(kBatch);  // ns per key
      }, /*warmup=*/false);
      const double pages_per_op =
          static_cast<double>(io.pages_read) / static_cast<double>(ops);
      runner.Report({{"op", "multiget"},
                     {"method", method},
                     {"param", param},
                     {"access", set.name},
                     {"cache_frac", frac_cell},
                     {"mode", batched ? "batch" : "sync"},
                     {"io", batched ? disk->IoBackendName() : "sync"},
                     {"io_mode", disk->DirectIo() ? "direct" : "buffered"}},
                    stats,
                    {{"pages_read_per_op", pages_per_op},
                     {"hit_rate", io.HitRate()},
                     {"io_per_sec", stats.mean > 0.0
                                        ? pages_per_op / stats.mean * 1e9
                                        : 0.0}});
      if (disk->io_error()) Die("disk: I/O error in " + label);
    }
  }
}

void ReportFileShape(Runner& runner, const std::string& method,
                     const std::string& param, const std::string& path) {
  auto disk = DiskFitingTree<int64_t>::Open(path);
  if (disk == nullptr) return;
  runner.Report(
      {{"op", "file"}, {"method", method}, {"param", param}},
      Stats{},
      {{"segments", static_cast<double>(disk->SegmentCount())},
       {"index_KB", static_cast<double>(disk->IndexSizeBytes()) / 1024.0},
       {"leaf_pages", static_cast<double>(disk->LeafPageCount())},
       {"file_MB",
        static_cast<double>(disk->FileBytes()) / (1024.0 * 1024.0)}});
}

void RunDisk(Runner& runner) {
  const size_t n = ScaledN(400'000);
  const size_t probes_n = ScaledN(100'000);
  const size_t page_bytes = static_cast<size_t>(
      GetEnvInt64("FITREE_BENCH_PAGE_BYTES",
                  static_cast<int64_t>(storage::kDefaultPageBytes)));
  const size_t cache_override =
      static_cast<size_t>(GetEnvInt64("FITREE_BENCH_CACHE_PAGES", 0));
  const char* path_env = std::getenv("FITREE_BENCH_DISK_PATH");
  const std::string path = (path_env != nullptr && *path_env != '\0')
                               ? path_env
                               : "bench_disk_index.fit";

  const std::string dataset_key = "real/Weblogs/" + std::to_string(n) + "/42";
  const auto keys = MemoKeys(dataset_key, [&] {
    return datasets::Generate(datasets::RealWorld::kWeblogs, n, 42);
  });
  const size_t leaf_cap = storage::LeafCapacity<int64_t>(page_bytes);
  const uint64_t leaf_pages = (keys->size() + leaf_cap - 1) / leaf_cap;

  std::vector<ProbeSet> probe_sets;
  for (const Access access : {Access::kUniform, Access::kZipfian}) {
    probe_sets.push_back(
        {access, access == Access::kUniform ? "uniform" : "zipfian",
         MemoProbes(dataset_key, *keys, probes_n, access,
                    /*absent_fraction=*/0.1, 43)});
  }
  // FITREE_BENCH_CACHE_PAGES pins the pool to one absolute frame count, so
  // the fraction sweep collapses to a single point.
  const std::vector<double> cache_fractions =
      cache_override > 0 ? std::vector<double>{0.0}
                         : std::vector<double>{0.02, 0.10, 1.00};

  const storage::SegmentFileOptions file_options{page_bytes};
  for (const double error : {16.0, 128.0, 1024.0}) {
    const auto oracle = StaticFitingTree<int64_t>::Create(*keys, error);
    if (!storage::WriteIndexFile(path, *oracle, file_options)) {
      Die("disk: failed to write " + path);
    }
    const std::string param = "e=" + std::to_string(static_cast<int>(error));
    ReportFileShape(runner, "FITing-Tree", param, path);
    BenchConfig(runner, "FITing-Tree", param, path, *oracle, probe_sets,
                cache_fractions, cache_override, leaf_pages);
    // The async-read cells live where the cache is far smaller than the
    // data (fractions << 1); one error point keeps the sweep bounded.
    if (error == 128.0 && cache_override == 0) {
      const std::vector<double> cold_fractions{0.02, 0.10};
      BenchAsyncReads(runner, "FITing-Tree", param, path, *oracle,
                      probe_sets[0], cold_fractions, leaf_pages);
    }
  }

  // Fixed paging: one data-blind segment per leaf page; the stored error
  // (= keys per page) makes the lookup window exactly that page.
  {
    const auto oracle = StaticFitingTree<int64_t>::Create(*keys, 64.0);
    const auto fixed_segments =
        storage::MakeFixedSegments(std::span<const int64_t>(*keys), leaf_cap);
    if (!storage::WriteSegmentFile<int64_t>(
            path, *keys, {},
            std::span<const PackedSegment<int64_t>>(fixed_segments),
            static_cast<double>(leaf_cap), file_options)) {
      Die("disk: failed to write " + path);
    }
    const std::string param = "page=" + std::to_string(leaf_cap);
    ReportFileShape(runner, "Fixed", param, path);
    BenchConfig(runner, "Fixed", param, path, *oracle, probe_sets,
                cache_fractions, cache_override, leaf_pages);
  }

  std::remove(path.c_str());
}

FITREE_REGISTER_EXPERIMENT(
    "disk",
    "Sec 5 in I/O: disk-resident lookups/ranges through the buffer pool",
    RunDisk);

}  // namespace
}  // namespace fitree::bench
