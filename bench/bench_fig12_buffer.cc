// Figure 12 (appendix): insert throughput as a function of the per-segment
// buffer size, on Weblogs with error = 20000.
//
// Expected shape: throughput rises with the buffer size (fewer
// merge-and-resegment events), approaching a plateau — the DBA's
// read-vs-write-optimized dial (paper Appendix A.2).

#include <iostream>
#include <string>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

int main() {
  using fitree::FitingTree;
  using fitree::FitingTreeConfig;
  using fitree::TablePrinter;
  using fitree::bench::MeasureMops;

  const size_t n = fitree::bench::ScaledN(1000000);
  // Small buffers at error=20000 merge ~hundred-thousand-key segments
  // every few inserts (that is the point of the figure); keep the insert
  // count modest so the worst cell finishes in seconds.
  const size_t inserts_n = fitree::bench::ScaledN(60000);
  const double error = 20000.0;
  const auto keys = fitree::datasets::Weblogs(n, 1);
  const auto inserts =
      fitree::workloads::MakeInserts<int64_t>(keys, inserts_n, 2);

  fitree::bench::PrintHeader(
      "Figure 12: insert throughput vs buffer size (Weblogs, n=" +
      std::to_string(n) + ", error=20000)");
  TablePrinter table({"buffer_size", "insert_Mops", "segment_merges",
                      "lookup_ns"});

  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 100000, fitree::workloads::Access::kUniform, 0.0, 3);

  for (size_t buffer : {10u, 100u, 1000u, 10000u}) {
    FitingTreeConfig config;
    config.error = error;
    config.buffer_size = buffer;
    auto tree = FitingTree<int64_t>::Create(keys, config);
    const double mops = MeasureMops(
        inserts.size(), [&](size_t i) { tree->Insert(inserts[i]); });
    // Larger buffers trade read latency for write throughput; report both.
    const double lookup_ns =
        fitree::bench::MeasurePerOpNs(probes.size(), [&](size_t i) {
          return tree->Contains(probes[i]) ? 1 : 0;
        });
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(buffer)),
                  TablePrinter::Fmt(mops, 3),
                  TablePrinter::Fmt(tree->stats().segment_merges),
                  TablePrinter::Fmt(lookup_ns, 1)});
  }
  table.Print(std::cout);
  return 0;
}
