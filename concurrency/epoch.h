// Epoch-based memory reclamation for the concurrent FITing-Tree.
//
// Readers wrap every operation in an EpochGuard: entering announces the
// current global epoch in a per-thread slot, exiting marks the slot idle.
// Writers that unlink a shared object (a replaced segment or a superseded
// directory snapshot) hand it to Retire() instead of deleting it; the object
// is stamped with the epoch at retirement and freed only once every active
// slot has announced a strictly newer epoch — i.e. once every reader that
// could possibly still hold a reference has quiesced. This is the classic
// quiescence recipe (Fraser-style EBR, same discipline as the vbr/vcas
// structures in bundledrefs): readers pay one seq_cst store per operation
// and never take a lock; reclamation cost is borne by the rare writers.
//
// Slots are claimed per guard with a hashed linear probe over a fixed,
// cache-line-padded slot array, so distinct threads land on distinct cache
// lines and the read path never contends on shared state.

#ifndef FITREE_CONCURRENCY_EPOCH_H_
#define FITREE_CONCURRENCY_EPOCH_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/phase.h"
#include "telemetry/registry.h"

namespace fitree {

class EpochManager {
 public:
  static constexpr size_t kMaxSlots = 128;
  static constexpr uint64_t kIdle = ~0ull;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Frees everything still on the retire list. The caller must guarantee no
  // guard is active (single-threaded teardown); the assert documents that.
  ~EpochManager() {
    assert(ActiveGuards() == 0 && "EpochManager destroyed with active guards");
    const bool drained = DrainAll();
    assert(drained && "retire list not drainable at shutdown");
    (void)drained;
  }

 private:
  struct Slot;

 public:
  // RAII epoch participation: hold one for the duration of any operation
  // that dereferences epoch-protected pointers.
  class Guard {
   public:
    explicit Guard(EpochManager& mgr) : slot_(mgr.ClaimSlot()) {
      // seq_cst: the announcement must be globally ordered against the
      // reclaimer's slot scan — either the scan sees this slot (and the
      // retired object survives) or this guard started after the scan, in
      // which case the object was already unreachable from the shared roots.
      slot_->epoch.store(mgr.global_epoch_.load(std::memory_order_seq_cst),
                         std::memory_order_seq_cst);
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    ~Guard() {
      slot_->epoch.store(kIdle, std::memory_order_release);
      slot_->claimed.store(false, std::memory_order_release);
    }

   private:
    Slot* slot_;
  };

  // Transfers ownership of `p`: it is deleted once every guard active at the
  // time of this call has exited. Safe to call while holding a Guard (the
  // caller's own slot simply defers the free to a later reclaim pass).
  template <typename T>
  void Retire(T* p) {
    RetireRaw(p, [](void* q) { delete static_cast<T*>(q); });
  }

  void RetireRaw(void* p, void (*deleter)(void*)) {
    const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      retired_.push_back({epoch, p, deleter});
    }
    retired_count_.fetch_add(1, std::memory_order_relaxed);
    // Process-wide retire accounting: gauges are delta-driven, so every
    // manager instance folds into one aggregate pending level.
    telemetry::CounterAdd(telemetry::CounterId::kEpochRetired);
    telemetry::GaugeAdd(telemetry::GaugeId::kEpochPending, 1);
    TryReclaim();
  }

  // One reclamation pass: advance the global epoch, then free every retired
  // object whose stamp predates all currently announced epochs. Returns the
  // number of objects freed.
  size_t TryReclaim() {
    // Attributed to the concurrent engine: epoch managers only exist
    // inside it, and reclamation rides its mutation paths.
    telemetry::ScopedPhase phase(telemetry::Engine::kConcurrent,
                                 telemetry::Phase::kEpochReclaim);
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    const uint64_t min_active = MinActiveEpoch();
    std::vector<Retired> eligible;
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      size_t kept = 0;
      for (Retired& r : retired_) {
        if (r.epoch < min_active) {
          eligible.push_back(r);
        } else {
          retired_[kept++] = r;
        }
      }
      retired_.resize(kept);
    }
    // Deleters run outside the lock: they may be arbitrarily heavy and must
    // not serialize against concurrent Retire() calls.
    for (const Retired& r : eligible) r.deleter(r.p);
    freed_count_.fetch_add(eligible.size(), std::memory_order_relaxed);
    if (!eligible.empty()) {
      telemetry::CounterAdd(telemetry::CounterId::kEpochFreed,
                            eligible.size());
      telemetry::GaugeAdd(telemetry::GaugeId::kEpochPending,
                          -static_cast<int64_t>(eligible.size()));
    }
    return eligible.size();
  }

  // Repeatedly reclaims until the retire list is empty. Only succeeds when
  // no guard stays permanently active; returns false after `max_rounds`
  // bounded attempts (so a stuck reader cannot hang teardown diagnostics).
  bool DrainAll(int max_rounds = 1024) {
    for (int round = 0; round < max_rounds; ++round) {
      if (PendingCount() == 0) return true;
      if (TryReclaim() == 0) std::this_thread::yield();
    }
    return PendingCount() == 0;
  }

  size_t PendingCount() const {
    std::lock_guard<std::mutex> lock(retire_mu_);
    return retired_.size();
  }

  uint64_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }
  uint64_t freed_count() const {
    return freed_count_.load(std::memory_order_relaxed);
  }

  size_t ActiveGuards() const {
    size_t n = 0;
    for (const Slot& s : slots_) {
      if (s.claimed.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<bool> claimed{false};
  };

  struct Retired {
    uint64_t epoch;
    void* p;
    void (*deleter)(void*);
  };

  // Distinct threads start probing at distinct, Fibonacci-scattered offsets,
  // so the common case is one uncontended exchange on a thread-private line.
  static uint32_t ThreadProbeStart() {
    static std::atomic<uint32_t> counter{0};
    thread_local const uint32_t start =
        counter.fetch_add(1, std::memory_order_relaxed) * 2654435761u;
    return start;
  }

  Slot* ClaimSlot() {
    const uint32_t start = ThreadProbeStart();
    for (size_t attempt = 0;; ++attempt) {
      Slot& s = slots_[(start + attempt) % kMaxSlots];
      if (!s.claimed.load(std::memory_order_relaxed) &&
          !s.claimed.exchange(true, std::memory_order_acquire)) {
        return &s;
      }
      if (attempt >= kMaxSlots) std::this_thread::yield();
    }
  }

  uint64_t MinActiveEpoch() const {
    uint64_t min_epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (const Slot& s : slots_) {
      const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != kIdle && e < min_epoch) min_epoch = e;
    }
    return min_epoch;
  }

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxSlots];

  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;
  std::atomic<uint64_t> retired_count_{0};
  std::atomic<uint64_t> freed_count_{0};
};

using EpochGuard = EpochManager::Guard;

}  // namespace fitree

#endif  // FITREE_CONCURRENCY_EPOCH_H_
