// Uniform structural-stats snapshot every engine returns from Stats().
//
// Unlike the registry (process-wide, cumulative), a StructuralStats
// describes one engine *instance* at one moment: segment count, error
// window, buffer/delta occupancy, pool hit rate, epoch queue depth — the
// shape of the structure rather than the traffic through it. It is an
// ordered list of named doubles rather than a fixed struct so the four
// engines can report different fields through one API and one JSON
// emitter, and adding a field never breaks a caller.
//
// Always real (never stubbed): Stats() reads existing per-instance state,
// costs nothing until called, and the bench/tools layers depend on it in
// both telemetry builds.

#ifndef FITREE_TELEMETRY_STRUCTURAL_H_
#define FITREE_TELEMETRY_STRUCTURAL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fitree::telemetry {

struct StructuralStats {
  std::string engine;  // EngineName() of the reporting engine
  std::vector<std::pair<std::string, double>> fields;  // insertion order

  void Add(std::string name, double value) {
    fields.emplace_back(std::move(name), value);
  }

  double Get(std::string_view name, double def = 0.0) const {
    for (const auto& [k, v] : fields) {
      if (k == name) return v;
    }
    return def;
  }

  bool Has(std::string_view name) const {
    for (const auto& [k, v] : fields) {
      if (k == name) return true;
    }
    return false;
  }
};

}  // namespace fitree::telemetry

#endif  // FITREE_TELEMETRY_STRUCTURAL_H_
