// Figure 11: data-size scalability on Weblogs.
//
// Lookup latency across scale factors with error = page size = 100 (the
// paper's optimum for this dataset). Expected shape: the three tree-based
// methods grow slowly (log_b n) and track each other, binary search grows
// fastest (log2 n), and FITing-Tree stays within a whisker of the full
// index while using a vanishing fraction of its memory (also reported).

#include <iostream>
#include <string>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

int main() {
  using fitree::BinarySearchIndex;
  using fitree::FitingTree;
  using fitree::FitingTreeConfig;
  using fitree::FullIndex;
  using fitree::PagedIndex;
  using fitree::PagedIndexConfig;
  using fitree::TablePrinter;
  using fitree::bench::MeasurePerOpNs;

  const size_t base = fitree::bench::ScaledN(1000000);
  const size_t probes_n = fitree::bench::ScaledN(200000);
  fitree::bench::PrintHeader(
      "Figure 11: scalability on Weblogs (base n=" + std::to_string(base) +
      ", error=page=100)");
  TablePrinter table({"scale", "n", "FITing_ns", "Fixed_ns", "Full_ns",
                      "Binary_ns", "FITing_MB", "Full_MB"});

  for (size_t scale : {1u, 2u, 4u, 8u, 16u}) {
    const size_t n = base * scale;
    const auto keys = fitree::datasets::Weblogs(n, 1);
    const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
        keys, probes_n, fitree::workloads::Access::kUniform, 0.0, 3);

    FitingTreeConfig fconfig;
    fconfig.error = 100.0;
    fconfig.buffer_size = 0;
    auto fiting = FitingTree<int64_t>::Create(keys, fconfig);
    PagedIndexConfig pconfig;
    pconfig.page_size = 100;
    pconfig.buffer_size = 0;
    auto paged = PagedIndex<int64_t>::Create(keys, pconfig);
    FullIndex<int64_t> full{std::span<const int64_t>(keys)};
    BinarySearchIndex<int64_t> binary{std::span<const int64_t>(keys)};

    const double fiting_ns = MeasurePerOpNs(probes.size(), [&](size_t i) {
      return fiting->Contains(probes[i]) ? 1 : 0;
    });
    const double paged_ns = MeasurePerOpNs(probes.size(), [&](size_t i) {
      return paged->Contains(probes[i]) ? 1 : 0;
    });
    const double full_ns = MeasurePerOpNs(probes.size(), [&](size_t i) {
      return full.Contains(probes[i]) ? 1 : 0;
    });
    const double binary_ns = MeasurePerOpNs(probes.size(), [&](size_t i) {
      return binary.Contains(probes[i]) ? 1 : 0;
    });

    const double kMB = 1024.0 * 1024.0;
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(scale)),
                  TablePrinter::Fmt(static_cast<uint64_t>(n)),
                  TablePrinter::Fmt(fiting_ns, 1),
                  TablePrinter::Fmt(paged_ns, 1),
                  TablePrinter::Fmt(full_ns, 1),
                  TablePrinter::Fmt(binary_ns, 1),
                  TablePrinter::Fmt(
                      static_cast<double>(fiting->IndexSizeBytes()) / kMB, 3),
                  TablePrinter::Fmt(
                      static_cast<double>(full.IndexSizeBytes()) / kMB, 3)});
  }
  table.Print(std::cout);
  return 0;
}
