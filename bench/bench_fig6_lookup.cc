// Figure 6 (a, b, c): lookup latency vs. index size.
//
// For each dataset (Weblogs, IoT, Maps) this sweeps the FITing-Tree error
// threshold and the fixed-paging page size, and reports one series per
// method: index size (MB) against average lookup latency (ns). The Full
// (dense) index is a single point and binary search is the zero-space
// reference, exactly as in the paper's plots.
//
// Expected shape (paper Sec 7.1.2): FITing-Tree dominates fixed paging at
// every size, matches the full index's latency at a small fraction of its
// size, and both paged methods converge to binary search as the index
// shrinks to a handful of entries.

#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench_common.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

using fitree::BinarySearchIndex;
using fitree::FitingTree;
using fitree::FitingTreeConfig;
using fitree::FullIndex;
using fitree::PagedIndex;
using fitree::PagedIndexConfig;
using fitree::TablePrinter;
using fitree::bench::MeasurePerOpNsParallel;

constexpr double kMB = 1024.0 * 1024.0;

void RunDataset(fitree::datasets::RealWorld which, size_t n, size_t probes_n,
                int threads) {
  const auto keys = fitree::datasets::Generate(which, n, 42);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, probes_n, fitree::workloads::Access::kUniform,
      /*absent_fraction=*/0.0, 43);

  fitree::bench::PrintHeader("Figure 6: " + fitree::datasets::Name(which) +
                             " (n=" + std::to_string(n) + ", " +
                             std::to_string(threads) + " thread(s))");
  TablePrinter table({"method", "param", "index_size_MB", "ns_per_lookup"});

  // FITing-Tree error sweep (read-only: no insert buffers, as in the
  // paper's lookup experiment).
  for (double error : {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0,
                       65536.0, 262144.0}) {
    FitingTreeConfig config;
    config.error = error;
    config.buffer_size = 0;
    auto tree = FitingTree<int64_t>::Create(keys, config);
    const double ns = MeasurePerOpNsParallel(probes.size(), threads,
                                             [&](size_t i) {
      return tree->Contains(probes[i]) ? 1 : 0;
    });
    table.AddRow({"FITing-Tree", "e=" + TablePrinter::Fmt(error, 0),
                  TablePrinter::Fmt(
                      static_cast<double>(tree->IndexSizeBytes()) / kMB, 4),
                  TablePrinter::Fmt(ns, 1)});
  }

  // Fixed-size paging sweep over the same granularities.
  for (size_t page : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u,
                      262144u}) {
    PagedIndexConfig config;
    config.page_size = page;
    config.buffer_size = 0;
    auto index = PagedIndex<int64_t>::Create(keys, config);
    const double ns = MeasurePerOpNsParallel(probes.size(), threads,
                                             [&](size_t i) {
      return index->Contains(probes[i]) ? 1 : 0;
    });
    table.AddRow(
        {"Fixed", "page=" + std::to_string(page),
         TablePrinter::Fmt(static_cast<double>(index->IndexSizeBytes()) / kMB,
                           4),
         TablePrinter::Fmt(ns, 1)});
  }

  // Full (dense) index: one point.
  {
    FullIndex<int64_t> full{std::span<const int64_t>(keys)};
    const double ns = MeasurePerOpNsParallel(probes.size(), threads,
                                             [&](size_t i) {
      return full.Contains(probes[i]) ? 1 : 0;
    });
    table.AddRow(
        {"Full", "-",
         TablePrinter::Fmt(static_cast<double>(full.IndexSizeBytes()) / kMB,
                           4),
         TablePrinter::Fmt(ns, 1)});
  }

  // Binary search: zero space.
  {
    BinarySearchIndex<int64_t> binary{std::span<const int64_t>(keys)};
    const double ns = MeasurePerOpNsParallel(probes.size(), threads,
                                             [&](size_t i) {
      return binary.Contains(probes[i]) ? 1 : 0;
    });
    table.AddRow({"Binary", "-", "0.0000", TablePrinter::Fmt(ns, 1)});
  }

  table.Print(std::cout);
}

}  // namespace

int main() {
  const size_t n = fitree::bench::ScaledN(8000000);
  const size_t probes = fitree::bench::ScaledN(300000);
  // The paper reports per-thread latency; FITREE_BENCH_THREADS > 1 shares
  // each index among that many lookup threads (reads are thread-safe).
  const int threads =
      static_cast<int>(fitree::GetEnvInt64("FITREE_BENCH_THREADS", 1));
  for (auto which : {fitree::datasets::RealWorld::kWeblogs,
                     fitree::datasets::RealWorld::kIot,
                     fitree::datasets::RealWorld::kMaps}) {
    RunDataset(which, n, probes, threads);
  }
  return 0;
}
