// Figure 7 (a, b, c): insert throughput vs. error threshold.
//
// Bulk-loads each dataset, then times a stream of inserts drawn from the
// same distribution. FITing-Tree uses a buffer of error/2 (paper Sec
// 7.1.3); the Fixed baseline uses page = error with a half-page buffer; the
// Full index inserts straight into its B+ tree. Every repetition rebuilds
// the structure so each timed pass inserts into identical state (hence no
// warmup rep).
//
// Expected shape: Full is fastest (no page splits); FITing-Tree is
// comparable to Fixed, and can beat it at small errors where frequent
// resegmentation stays cheap (paper Sec 7.1.3).

#include <span>
#include <string>
#include <vector>

#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "bench/harness/registry.h"
#include "bench/harness/runner.h"
#include "common/table_printer.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"

namespace fitree::bench {
namespace {

void RunFig7(Runner& runner) {
  const size_t n = ScaledN(1000000);
  const size_t inserts_n = ScaledN(500000);

  for (auto which : {datasets::RealWorld::kWeblogs, datasets::RealWorld::kIot,
                     datasets::RealWorld::kMaps}) {
    const std::string dataset = datasets::Name(which);
    const std::string dataset_key =
        "real/" + dataset + '/' + std::to_string(n) + "/7";
    const auto keys =
        MemoKeys(dataset_key, [&] { return datasets::Generate(which, n, 7); });
    const auto inserts = MemoInserts(dataset_key, *keys, inserts_n, 8);

    const auto report = [&](const char* method, double error,
                            const Stats& stats) {
      runner.Report({{"dataset", dataset},
                     {"method", method},
                     {"error", TablePrinter::Fmt(error, 0)}},
                    stats, {{"insert_Mops", MopsFromNsPerOp(stats.p50)}});
    };

    for (double error : {16.0, 64.0, 256.0, 1024.0}) {
      // FITing-Tree with buffer = error/2 (the config default).
      report("FITing-Tree", error, runner.CollectReps([&] {
        FitingTreeConfig config;
        config.error = error;
        auto tree = FitingTree<int64_t>::Create(*keys, config);
        return TimedLoopNsPerOp(inserts->size(), [&](size_t i) {
          tree->Insert((*inserts)[i]);
          return uint64_t{1};
        });
      }, /*warmup=*/false));

      // Fixed paging with page = error, buffer = page/2.
      report("Fixed", error, runner.CollectReps([&] {
        PagedIndexConfig config;
        config.page_size = static_cast<size_t>(error);
        auto paged = PagedIndex<int64_t>::Create(*keys, config);
        return TimedLoopNsPerOp(inserts->size(), [&](size_t i) {
          paged->Insert((*inserts)[i]);
          return uint64_t{1};
        });
      }, /*warmup=*/false));

      // Full index: straight into the B+ tree.
      report("Full", error, runner.CollectReps([&] {
        FullIndex<int64_t> full{std::span<const int64_t>(*keys)};
        return TimedLoopNsPerOp(inserts->size(), [&](size_t i) {
          full.Insert((*inserts)[i]);
          return uint64_t{1};
        });
      }, /*warmup=*/false));
    }
  }
}

FITREE_REGISTER_EXPERIMENT(
    "fig7_insert", "Fig 7: insert throughput vs error threshold", RunFig7);

}  // namespace
}  // namespace fitree::bench
