#!/usr/bin/env python3
"""Pretty-print the telemetry section of a fitree_bench BENCH_results.json.

Renders the process-wide telemetry snapshot captured at the end of a bench
run (schema in EXPERIMENTS.md, "Telemetry"): the per-(engine, op) count +
sampled-latency grid, the named counters and gauges, and — when the run had
FITREE_TRACE=1 — a summary of the merged trace ring dump (per-thread and
per-op breakdowns, plus the first/last records with --trace).

Exit status: 0 on success, 2 on malformed input (missing file, invalid
JSON, or a document without a "telemetry" member) — CI uses this as a
smoke check that the exporter and this parser agree on the schema.

--delta A.json B.json compares two runs' cumulative snapshots the way
RegistrySnapshot::DeltaSince does: op/phase counts, sample counts, and
counters print as true differences (B - A); gauges are levels, so the
later run's value prints as-is; latency percentiles come from the later
snapshot unchanged — the export carries percentiles, not raw buckets, so
interval percentiles are not derivable and are labeled cumulative.

Typical use:

  tools/stats_dump.py BENCH_results.json
  tools/stats_dump.py BENCH_results.json --trace --trace-limit 20
  tools/stats_dump.py --delta before.json after.json
"""

import argparse
import json
import sys


def die(message):
    print(f"stats_dump: {message}", file=sys.stderr)
    sys.exit(2)


def load_telemetry(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: top-level JSON value is not an object")
    telemetry = doc.get("telemetry")
    if not isinstance(telemetry, dict) or "enabled" not in telemetry:
        die(f"{path}: no telemetry section (document predates the "
            "telemetry exporter, or the schema changed)")
    return telemetry


def fmt_count(n):
    return f"{n:,}"


def render_table(rows, header):
    """Column-aligned plain-text table (same style as fitree_bench)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def print_ops(telemetry):
    ops = telemetry.get("ops", [])
    if not isinstance(ops, list):
        die('"ops" is not an array')
    print(f"== per-(engine, op) latency grid "
          f"(sample_period={telemetry.get('sample_period', '?')}) ==")
    if not ops:
        print("(no operations recorded)")
        return
    rows = []
    for cell in ops:
        if not isinstance(cell, dict):
            die('"ops" entry is not an object')
        for key in ("engine", "op", "count", "samples"):
            if key not in cell:
                die(f'"ops" entry missing "{key}"')
        timed = cell["samples"] > 0
        rows.append([
            str(cell["engine"]),
            str(cell["op"]),
            fmt_count(cell["count"]),
            fmt_count(cell["samples"]),
            fmt_count(cell["p50_ns"]) if timed else "-",
            fmt_count(cell["p99_ns"]) if timed else "-",
            fmt_count(cell["p999_ns"]) if timed else "-",
            fmt_count(cell["max_ns"]) if timed else "-",
            f"{cell['mean_ns']:.1f}" if timed else "-",
        ])
    print(render_table(rows, ["engine", "op", "count", "samples", "p50_ns",
                              "p99_ns", "p999_ns", "max_ns", "mean_ns"]))


def print_phases(telemetry):
    phases = telemetry.get("phases")
    if phases is None:
        return  # document predates phase spans
    if not isinstance(phases, list):
        die('"phases" is not an array')
    print("\n== per-(engine, phase) span grid (self time, sampled) ==")
    if not phases:
        print("(no phase spans recorded)")
        return
    rows = []
    for cell in phases:
        if not isinstance(cell, dict):
            die('"phases" entry is not an object')
        for key in ("engine", "phase", "samples"):
            if key not in cell:
                die(f'"phases" entry missing "{key}"')
        timed = "mean_ns" in cell
        rows.append([
            str(cell["engine"]),
            str(cell["phase"]),
            fmt_count(cell["samples"]),
            fmt_count(cell["p50_ns"]) if timed else "-",
            fmt_count(cell["p95_ns"]) if timed else "-",
            fmt_count(cell["p99_ns"]) if timed else "-",
            fmt_count(cell["max_ns"]) if timed else "-",
            f"{cell['mean_ns']:.1f}" if timed else "-",
        ])
    print(render_table(rows, ["engine", "phase", "samples", "p50_ns",
                              "p95_ns", "p99_ns", "max_ns", "mean_ns"]))


def print_scalars(telemetry):
    for section in ("counters", "gauges"):
        values = telemetry.get(section, {})
        if not isinstance(values, dict):
            die(f'"{section}" is not an object')
        print(f"\n== {section} ==")
        if not values:
            print("(none)")
            continue
        width = max(len(name) for name in values)
        for name, value in values.items():
            print(f"{name.ljust(width)}  {fmt_count(value)}")


def print_trace(telemetry, show_records, record_limit):
    trace = telemetry.get("trace")
    if not isinstance(trace, dict):
        die('"trace" is missing or not an object')
    print("\n== trace ==")
    if not trace.get("enabled"):
        print("tracing was off (set FITREE_TRACE=1 to capture)")
        return
    records = trace.get("records", [])
    if not isinstance(records, list):
        die('"trace.records" is not an array')
    print(f"threads={trace.get('threads', 0)} "
          f"emitted={fmt_count(trace.get('emitted', 0))} "
          f"dropped={fmt_count(trace.get('dropped', 0))} "
          f"retained={fmt_count(len(records))}")

    by_op = {}
    for record in records:
        if not isinstance(record, dict) or "op" not in record:
            die("trace record missing \"op\"")
        key = (record.get("engine", "?"), record["op"])
        by_op[key] = by_op.get(key, 0) + 1
    if by_op:
        print("retained records by (engine, op):")
        for (engine, op), n in sorted(by_op.items()):
            print(f"  {engine}/{op}: {fmt_count(n)}")

    if show_records and records:
        shown = records[:record_limit]
        rows = [[fmt_count(r.get("t_ns", 0)), str(r.get("tid", "?")),
                 str(r.get("engine", "?")), str(r.get("op", "?")),
                 fmt_count(r.get("arg_ns", 0))] for r in shown]
        print(f"first {len(shown)} record(s):")
        print(render_table(rows, ["t_ns", "tid", "engine", "op", "arg_ns"]))


def grid_by_key(telemetry, section, key_fields):
    """{(engine, op-or-phase): cell} for one grid section."""
    cells = telemetry.get(section, [])
    if not isinstance(cells, list):
        die(f'"{section}" is not an array')
    out = {}
    for cell in cells:
        if not isinstance(cell, dict):
            die(f'"{section}" entry is not an object')
        out[tuple(str(cell.get(k, "?")) for k in key_fields)] = cell
    return out


def print_grid_delta(before, after, section, key_label):
    """B - A for one grid: count deltas exact, latencies cumulative-from-B
    (mirrors RegistrySnapshot::DeltaSince, which subtracts histograms
    bucket-wise — buckets are not exported, so percentiles stay B's)."""
    b = grid_by_key(before, section, ("engine", key_label))
    a = grid_by_key(after, section, ("engine", key_label))
    count_key = "count" if section == "ops" else "samples"
    rows = []
    for key in sorted(set(a) | set(b)):
        after_cell = a.get(key, {})
        before_cell = b.get(key, {})
        d_count = after_cell.get(count_key, 0) - before_cell.get(count_key, 0)
        d_samples = (after_cell.get("samples", 0) -
                     before_cell.get("samples", 0))
        if d_count == 0 and d_samples == 0:
            continue
        mean = after_cell.get("mean_ns")
        rows.append([
            key[0], key[1], fmt_count(d_count), fmt_count(d_samples),
            f"{mean:.1f}" if isinstance(mean, (int, float)) else "-",
        ])
    print(f"\n== {section} delta (B - A; mean_ns cumulative from B) ==")
    if not rows:
        print("(no change)")
        return
    print(render_table(
        rows, ["engine", key_label, "d_count", "d_samples", "B_mean_ns"]))


def print_delta(before, after):
    print_grid_delta(before, after, "ops", "op")
    if "phases" in after or "phases" in before:
        print_grid_delta(before, after, "phases", "phase")

    before_counters = before.get("counters", {})
    after_counters = after.get("counters", {})
    if not isinstance(before_counters, dict) or \
            not isinstance(after_counters, dict):
        die('"counters" is not an object')
    print("\n== counters delta (B - A) ==")
    rows = []
    for name in sorted(set(after_counters) | set(before_counters)):
        d = after_counters.get(name, 0) - before_counters.get(name, 0)
        if d != 0:
            rows.append([name, fmt_count(d)])
    if rows:
        print(render_table(rows, ["counter", "delta"]))
    else:
        print("(no change)")

    # Gauges are levels, not rates: a delta of two levels is another level
    # change, but the later absolute value is what operators act on.
    gauges = after.get("gauges", {})
    if not isinstance(gauges, dict):
        die('"gauges" is not an object')
    print("\n== gauges (level from B) ==")
    if gauges:
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            print(f"{name.ljust(width)}  {fmt_count(value)}")
    else:
        print("(none)")


def main():
    parser = argparse.ArgumentParser(
        description="pretty-print BENCH_results.json telemetry")
    parser.add_argument("results", nargs="?",
                        help="path to BENCH_results.json")
    parser.add_argument("--trace", action="store_true",
                        help="also print individual trace records")
    parser.add_argument("--trace-limit", type=int, default=10,
                        help="max trace records to print (default 10)")
    parser.add_argument("--delta", nargs=2, metavar=("A", "B"),
                        help="print the telemetry difference of two runs "
                             "(A before, B after)")
    args = parser.parse_args()

    if args.delta:
        if args.results:
            die("--delta takes exactly two files; drop the positional one")
        before = load_telemetry(args.delta[0])
        after = load_telemetry(args.delta[1])
        if not before["enabled"] or not after["enabled"]:
            print("telemetry disabled in at least one input "
                  "(built with -DFITREE_NO_TELEMETRY=ON)")
            return
        print_delta(before, after)
        return

    if not args.results:
        die("missing results file (or use --delta A B)")
    telemetry = load_telemetry(args.results)
    if not telemetry["enabled"]:
        print("telemetry disabled (built with -DFITREE_NO_TELEMETRY=ON)")
        return
    print_ops(telemetry)
    print_phases(telemetry)
    print_scalars(telemetry)
    print_trace(telemetry, args.trace, max(0, args.trace_limit))


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Output piped into head/less that exited early — not an error.
        sys.exit(0)
