// FITing-Tree with per-segment insert buffers (paper Sec 4.2): each linear
// segment owns its sorted key page plus a small sorted buffer for incoming
// inserts. When a buffer exceeds its budget the segment merges buffer and
// page and re-runs the shrinking cone over the combined keys, replacing
// itself with however many segments the data now needs — this is the
// data-aware split that distinguishes FITing-Tree from fixed paging.
//
// The segment directory is a B+ tree keyed by each segment's first key; its
// node width is a template parameter so bench_ablations can sweep fanout.
// Read operations are const and safe for concurrent readers.

#ifndef FITREE_CORE_FITING_TREE_H_
#define FITREE_CORE_FITING_TREE_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "btree/btree_map.h"
#include "common/timer.h"
#include "core/search_policy.h"
#include "core/shrinking_cone.h"

namespace fitree {

struct FitingTreeConfig {
  // Sentinel: size the buffer as max(1, error/2), the paper's default ratio
  // (Sec 7.1.3).
  static constexpr size_t kAutoBufferSize = static_cast<size_t>(-1);

  double error = 64.0;
  // Per-segment insert-buffer capacity. 0 means merge on every insert
  // (write-pessimal, read-optimal); kAutoBufferSize means error/2.
  size_t buffer_size = kAutoBufferSize;
  SearchPolicy search_policy = SearchPolicy::kBinary;
  Feasibility feasibility = Feasibility::kEndpointLine;
};

struct FitingTreeStats {
  uint64_t inserts = 0;
  uint64_t segment_merges = 0;   // buffer merge-and-resegment events
  uint64_t segments_created = 0; // segments produced by those merges
};

template <typename K, int kInnerSlots = 16, int kLeafSlots = kInnerSlots>
class FitingTree {
 public:
  static std::unique_ptr<FitingTree<K, kInnerSlots, kLeafSlots>> Create(
      const std::vector<K>& keys, const FitingTreeConfig& config) {
    auto tree = std::make_unique<FitingTree<K, kInnerSlots, kLeafSlots>>();
    tree->config_ = config;
    tree->effective_buffer_ =
        config.buffer_size == FitingTreeConfig::kAutoBufferSize
            ? std::max<size_t>(1, static_cast<size_t>(config.error / 2.0))
            : config.buffer_size;
    tree->BulkLoad(std::span<const K>(keys));
    return tree;
  }

  size_t size() const { return size_; }

  bool Contains(const K& key) const {
    const SegmentData* seg = LocateSegment(key);
    if (seg == nullptr) return false;
    return SearchSegment(*seg, key) || SearchBuffer(*seg, key);
  }

  // Returns the stored key equal to `key` when present.
  std::optional<K> Find(const K& key) const {
    return Contains(key) ? std::optional<K>(key) : std::nullopt;
  }

  // Contains() that also accrues the time spent descending the directory
  // vs. searching the segment page/buffer (Figure 13's breakdown).
  bool ContainsWithBreakdown(const K& key, int64_t* tree_ns,
                             int64_t* page_ns) const {
    Timer timer;
    const SegmentData* seg = LocateSegment(key);
    *tree_ns += timer.ElapsedNs();
    timer.Reset();
    const bool found =
        seg != nullptr && (SearchSegment(*seg, key) || SearchBuffer(*seg, key));
    *page_ns += timer.ElapsedNs();
    return found;
  }

  // Inserts `key` (set semantics: duplicates are ignored). The key lands in
  // its floor segment's buffer; a full buffer triggers merge-and-resegment.
  void Insert(const K& key) {
    ++stats_.inserts;
    SegmentData* seg = LocateSegmentMutable(key);
    if (seg == nullptr) {
      // First key of an empty tree.
      auto data = std::make_unique<SegmentData>();
      data->first_key = key;
      data->slope = 0.0;
      data->intercept = 0.0;
      data->keys.push_back(key);
      directory_.Insert(key, data.get());
      segments_.push_back(std::move(data));
      ++live_segments_;
      ++size_;
      return;
    }
    if (SearchSegment(*seg, key) || SearchBuffer(*seg, key)) return;
    auto pos = std::lower_bound(seg->buffer.begin(), seg->buffer.end(), key);
    seg->buffer.insert(pos, key);
    ++size_;
    if (seg->buffer.size() > effective_buffer_) MergeSegment(seg);
  }

  // Calls fn(key) for every stored key in [lo, hi] in ascending order,
  // merging each segment's page with its buffer on the fly.
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn fn) const {
    if (live_segments_ == 0 || hi < lo) return;
    K start_key{};
    if (directory_.FindFloor(lo, &start_key) == nullptr) {
      directory_.First(&start_key);
    }
    directory_.ScanFrom(start_key, [&](const K& first_key, SegmentData* seg) {
      if (first_key > hi) return false;
      EmitRange(*seg, lo, hi, fn);
      return true;
    });
  }

  // Directory nodes plus per-segment model metadata (the key pages and
  // buffers are the data, not the index).
  size_t IndexSizeBytes() const {
    return directory_.MemoryBytes() + live_segments_ * kSegmentMetaBytes;
  }

  size_t SegmentCount() const { return live_segments_; }
  int TreeHeight() const { return directory_.Height(); }
  const FitingTreeStats& stats() const { return stats_; }
  const FitingTreeConfig& config() const { return config_; }

 private:
  struct SegmentData {
    K first_key{};
    double slope = 0.0;
    double intercept = 0.0;  // predicted index into `keys` at first_key
    std::vector<K> keys;     // sorted page
    std::vector<K> buffer;   // sorted insert buffer

    double Predict(const K& key) const {
      return intercept + slope * (static_cast<double>(key) -
                                  static_cast<double>(first_key));
    }
  };

  static constexpr size_t kSegmentMetaBytes =
      sizeof(K) + 2 * sizeof(double) + sizeof(void*);

  using Directory = btree::BTreeMap<K, SegmentData*, kLeafSlots, kInnerSlots>;

  void BulkLoad(std::span<const K> keys) {
    size_ = keys.size();
    if (keys.empty()) return;
    const auto models =
        SegmentShrinkingCone<K>(keys, config_.error, config_.feasibility);
    std::vector<std::pair<K, SegmentData*>> entries;
    entries.reserve(models.size());
    segments_.reserve(models.size());
    for (const Segment<K>& m : models) {
      auto data = std::make_unique<SegmentData>();
      data->first_key = m.first_key;
      data->slope = m.slope;
      data->intercept = m.intercept - static_cast<double>(m.start);
      data->keys.assign(keys.begin() + m.start,
                        keys.begin() + m.start + m.length);
      entries.emplace_back(m.first_key, data.get());
      segments_.push_back(std::move(data));
    }
    directory_.BulkLoad(std::move(entries));
    live_segments_ = segments_.size();
  }

  const SegmentData* LocateSegment(const K& key) const {
    SegmentData* const* seg = directory_.FindFloor(key);
    if (seg == nullptr) seg = directory_.First();
    return seg == nullptr ? nullptr : *seg;
  }

  SegmentData* LocateSegmentMutable(const K& key) {
    return const_cast<SegmentData*>(LocateSegment(key));
  }

  // Error-bounded search of the segment page for an exact match, through
  // the same ErrorWindow as the disk-resident and concurrent lookup paths.
  bool SearchSegment(const SegmentData& seg, const K& key) const {
    const size_t n = seg.keys.size();
    if (n == 0) return false;
    const double pred = seg.Predict(key);
    // A key below the leftmost segment (floor fallback) predicts far
    // negative; a present key always predicts a window overlapping [0, n).
    if (pred + config_.error + 2.0 < 0.0) return false;
    const auto [begin, end] = ErrorWindow(pred, config_.error, 0, n);
    const size_t hint = static_cast<size_t>(std::max(0.0, pred));
    const size_t i = detail::BoundedLowerBound(
        seg.keys.data(), begin, end, hint, key, config_.search_policy);
    return i < n && seg.keys[i] == key;
  }

  bool SearchBuffer(const SegmentData& seg, const K& key) const {
    return std::binary_search(seg.buffer.begin(), seg.buffer.end(), key);
  }

  template <typename Fn>
  void EmitRange(const SegmentData& seg, const K& lo, const K& hi,
                 Fn& fn) const {
    auto k = std::lower_bound(seg.keys.begin(), seg.keys.end(), lo);
    auto b = std::lower_bound(seg.buffer.begin(), seg.buffer.end(), lo);
    while (k != seg.keys.end() || b != seg.buffer.end()) {
      const bool take_key =
          b == seg.buffer.end() || (k != seg.keys.end() && *k <= *b);
      const K value = take_key ? *k : *b;
      if (value > hi) return;
      fn(value);
      if (take_key) {
        ++k;
      } else {
        ++b;
      }
    }
  }

  // Merges `seg`'s buffer into its page and re-segments the combined keys
  // with the shrinking cone, replacing one directory entry with possibly
  // several (paper Sec 4.2.2).
  void MergeSegment(SegmentData* seg) {
    ++stats_.segment_merges;
    std::vector<K> merged(seg->keys.size() + seg->buffer.size());
    std::merge(seg->keys.begin(), seg->keys.end(), seg->buffer.begin(),
               seg->buffer.end(), merged.begin());

    const auto models = SegmentShrinkingCone<K>(
        std::span<const K>(merged), config_.error, config_.feasibility);
    stats_.segments_created += models.size();

    directory_.Erase(seg->first_key);
    // Reuse the merged segment's slot for the first replacement model and
    // append the rest.
    for (size_t m = 0; m < models.size(); ++m) {
      SegmentData* target;
      if (m == 0) {
        target = seg;
      } else {
        segments_.push_back(std::make_unique<SegmentData>());
        target = segments_.back().get();
        ++live_segments_;
      }
      const Segment<K>& model = models[m];
      target->first_key = model.first_key;
      target->slope = model.slope;
      target->intercept = model.intercept - static_cast<double>(model.start);
      target->keys.assign(merged.begin() + model.start,
                          merged.begin() + model.start + model.length);
      target->buffer.clear();
      target->buffer.shrink_to_fit();
      directory_.Insert(model.first_key, target);
    }
  }

  FitingTreeConfig config_;
  size_t effective_buffer_ = 0;
  std::vector<std::unique_ptr<SegmentData>> segments_;
  Directory directory_;
  size_t live_segments_ = 0;
  size_t size_ = 0;
  FitingTreeStats stats_;
};

}  // namespace fitree

#endif  // FITREE_CORE_FITING_TREE_H_
