// Monotonic wall-clock timer for the measurement loops.

#ifndef FITREE_COMMON_TIMER_H_
#define FITREE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fitree {

// Starts timing at construction; ElapsedNs/ElapsedSeconds read the monotonic
// clock without stopping the timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fitree

#endif  // FITREE_COMMON_TIMER_H_
