#include "common/sink.h"

namespace fitree {

std::atomic<uint64_t> g_bench_sink{0};

}  // namespace fitree
