// The unified engine contract (core/index_api.h), checked two ways: the
// concepts themselves as compile-time static_asserts over every engine —
// so a signature drift (a non-const read, a void ScanRange, a renamed
// mutator) fails the build with the concept's name in the error — and a
// small differential oracle run per mutable engine through the exact
// concept-shaped surface, so the shared semantics ("Insert true iff new",
// "ScanRange returns emitted count, sorted") hold behaviorally too.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concurrency/concurrent_fiting_tree.h"
#include "concurrency/mutex_fiting_tree.h"
#include "core/fiting_tree.h"
#include "core/index_api.h"
#include "core/static_fiting_tree.h"
#include "server/sharded_index.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "tests/oracle.h"

namespace {

using fitree::ConcurrentFitingTree;
using fitree::ConcurrentFitingTreeConfig;
using fitree::FitingTree;
using fitree::FitingTreeConfig;
using fitree::IndexApi;
using fitree::MutableIndexApi;
using fitree::MutexFitingTree;
using fitree::PrefetchableIndex;
using fitree::StaticFitingTree;
using fitree::server::ShardedIndex;
using fitree::storage::DiskFitingTree;
using fitree::testing::CrudOptions;
using fitree::testing::MakeInitialLoad;
using fitree::testing::PropertyOps;
using fitree::testing::RunCrudDifferential;

// --- the contract, as compile-time facts ----------------------------------

using Buffered = FitingTree<int64_t>;
using Static = StaticFitingTree<int64_t>;
using Concurrent = ConcurrentFitingTree<int64_t>;
using Mutex = MutexFitingTree<int64_t>;
using Disk = DiskFitingTree<int64_t>;
using Server = ShardedIndex<Buffered>;

// Every engine (and the server front-end) models the read contract.
static_assert(IndexApi<Buffered>);
static_assert(IndexApi<Static>);
static_assert(IndexApi<Concurrent>);
static_assert(IndexApi<Mutex>);
static_assert(IndexApi<Disk>);
static_assert(IndexApi<Server>);

// The mutable engines (and the server) model the full CRUD contract.
static_assert(MutableIndexApi<Buffered>);
static_assert(MutableIndexApi<Concurrent>);
static_assert(MutableIndexApi<Mutex>);
static_assert(MutableIndexApi<Disk>);
static_assert(MutableIndexApi<Server>);

// The static tree is read-mostly: it supports payload Update (same-key
// overwrite) but not Insert/Delete, so it must NOT model MutableIndexApi.
static_assert(!MutableIndexApi<Static>);

// Prefetch hooks: every single-writer-safe engine exposes PrefetchLookup
// for the server's group-prefetch pass; the mutex baseline deliberately
// does not (an unlocked probe of the guarded tree would race).
static_assert(PrefetchableIndex<Buffered>);
static_assert(PrefetchableIndex<Static>);
static_assert(PrefetchableIndex<Concurrent>);
static_assert(PrefetchableIndex<Disk>);
static_assert(!PrefetchableIndex<Mutex>);

// Key/Payload aliases are part of the contract.
static_assert(std::is_same_v<Buffered::Key, int64_t>);
static_assert(std::is_same_v<Buffered::Payload, uint64_t>);
static_assert(std::is_same_v<Disk::Key, int64_t>);
static_assert(std::is_same_v<Disk::Payload, uint64_t>);

// --- shared CRUD semantics, one oracle run per mutable engine -------------

CrudOptions SmallOpts(uint64_t seed) {
  CrudOptions opt;
  opt.seed = seed;
  opt.ops = PropertyOps(4000);
  opt.key_space = 4000;
  return opt;
}

TEST(IndexApiContract, BufferedEngineMatchesOracle) {
  CrudOptions opt = SmallOpts(11);
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  std::map<int64_t, uint64_t> oracle;
  MakeInitialLoad(opt, /*load_every=*/4, &keys, &values, &oracle);
  auto tree = Buffered::Create(keys, values, FitingTreeConfig{.error = 32.0});
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
}

TEST(IndexApiContract, ConcurrentEngineMatchesOracle) {
  CrudOptions opt = SmallOpts(12);
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  std::map<int64_t, uint64_t> oracle;
  MakeInitialLoad(opt, /*load_every=*/4, &keys, &values, &oracle);
  auto tree = Concurrent::Create(keys, values,
                                 ConcurrentFitingTreeConfig{.error = 32.0});
  opt.checkpoint = [&] { tree->QuiesceMerges(); };
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
}

TEST(IndexApiContract, MutexEngineMatchesOracle) {
  CrudOptions opt = SmallOpts(13);
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  std::map<int64_t, uint64_t> oracle;
  MakeInitialLoad(opt, /*load_every=*/4, &keys, &values, &oracle);
  auto tree = Mutex::Create(keys, values, FitingTreeConfig{.error = 32.0});
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*tree, oracle, opt));
}

TEST(IndexApiContract, DiskEngineMatchesOracle) {
  CrudOptions opt = SmallOpts(14);
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;
  std::map<int64_t, uint64_t> oracle;
  MakeInitialLoad(opt, /*load_every=*/4, &keys, &values, &oracle);
  auto mem = Static::Create(keys, values, /*error=*/32.0);
  const std::string path = testing::TempDir() + "/index_api_disk.fit";
  ASSERT_TRUE(fitree::storage::WriteIndexFile(
      path, *mem, fitree::storage::SegmentFileOptions{/*page_bytes=*/1024}));
  Disk::Options options;
  options.cache_pages = 64;
  auto disk = Disk::Open(path, options);
  ASSERT_NE(disk, nullptr);
  opt.checkpoint = [&] { ASSERT_TRUE(disk->Compact()); };
  ASSERT_NO_FATAL_FAILURE(RunCrudDifferential(*disk, oracle, opt));
  std::remove(path.c_str());
}

// --- ScanRange returns the emitted count, uniformly -----------------------

template <typename Index>
void ExpectScanCountsMatch(const Index& index, int64_t lo, int64_t hi) {
  size_t collected = 0;
  const size_t returned = index.ScanRange(
      lo, hi, [&](const int64_t&, const uint64_t&) { ++collected; });
  EXPECT_EQ(returned, collected);
  EXPECT_GT(returned, 0u);
  // Inverted interval: zero, not UB.
  EXPECT_EQ(index.ScanRange(hi, lo, [](const int64_t&, const uint64_t&) {}),
            0u);
}

TEST(IndexApiContract, ScanRangeReturnsEmittedCount) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 512; ++i) keys.push_back(i * 3);
  auto buffered = Buffered::Create(keys, {}, FitingTreeConfig{.error = 16.0});
  auto statict = Static::Create(keys, /*error=*/16.0);
  auto concurrent =
      Concurrent::Create(keys, {}, ConcurrentFitingTreeConfig{.error = 16.0});
  auto mutexed = Mutex::Create(keys, {}, FitingTreeConfig{.error = 16.0});
  ExpectScanCountsMatch(*buffered, 30, 300);
  ExpectScanCountsMatch(*statict, 30, 300);
  ExpectScanCountsMatch(*concurrent, 30, 300);
  ExpectScanCountsMatch(*mutexed, 30, 300);
}

// --- StaticFitingTree Update (payload overwrite, no insert path) ----------

TEST(IndexApiContract, StaticUpdateRenamed) {
  std::vector<int64_t> keys = {10, 20, 30, 40};
  auto tree = Static::Create(keys, /*error=*/4.0);
  EXPECT_TRUE(tree->Update(20, 999));
  EXPECT_EQ(tree->Lookup(20), std::optional<uint64_t>(999));
  EXPECT_FALSE(tree->Update(25, 1));  // absent key: no insert path

  EXPECT_TRUE(tree->Update(30, 777));
  EXPECT_EQ(tree->Lookup(30), std::optional<uint64_t>(777));
}

}  // namespace
