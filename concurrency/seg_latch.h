// Per-segment insert latch: a word-sized spinlock whose state doubles as a
// modification sequence number (seqlock discipline, FB+-tree style).
//
// The word is even when unlocked and odd while held; Unlock() leaves it two
// higher than Lock() found it, so every critical section bumps the sequence.
// Readers that want to skip the latch (e.g. "is this segment's delta buffer
// empty?") read the sequence, load the atomics they care about, and
// re-validate: an unchanged even sequence proves no writer ran in between.
// Anything non-atomic (the buffer contents) is only ever touched while
// holding the latch — the sequence is used to *elide* the lock on the empty
// fast path, never to read mutable plain data unlocked, which keeps the
// scheme ThreadSanitizer-clean.
//
// Segments are small and numerous, so the latch must be cheap: one uint32
// per segment, uncontended acquire is a single CAS, and spinning backs off
// to yield so oversubscribed machines don't livelock.

#ifndef FITREE_CONCURRENCY_SEG_LATCH_H_
#define FITREE_CONCURRENCY_SEG_LATCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace fitree {

namespace detail {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace detail

class SegLatch {
 public:
  SegLatch() = default;
  SegLatch(const SegLatch&) = delete;
  SegLatch& operator=(const SegLatch&) = delete;

  void Lock() {
    int spins = 0;
    for (;;) {
      uint32_t s = seq_.load(std::memory_order_relaxed);
      if ((s & 1u) == 0 &&
          seq_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        return;
      }
      if (++spins < kSpinLimit) {
        detail::CpuRelax();
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  bool TryLock() {
    uint32_t s = seq_.load(std::memory_order_relaxed);
    return (s & 1u) == 0 &&
           seq_.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed);
  }

  void Unlock() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }

  // Spins until the latch is free and returns the (even) sequence observed.
  uint32_t ReadSeq() const {
    int spins = 0;
    for (;;) {
      const uint32_t s = seq_.load(std::memory_order_acquire);
      if ((s & 1u) == 0) return s;
      if (++spins < kSpinLimit) {
        detail::CpuRelax();
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  // True iff no writer ran since `seq` was returned by ReadSeq(): the
  // atomic loads issued between the two calls saw an unmodified segment.
  bool Validate(uint32_t seq) const {
    return seq_.load(std::memory_order_acquire) == seq;
  }

  // RAII holder for the plain lock/unlock use.
  class Scoped {
   public:
    explicit Scoped(SegLatch& latch) : latch_(&latch) { latch_->Lock(); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    ~Scoped() { latch_->Unlock(); }

   private:
    SegLatch* latch_;
  };

 private:
  static constexpr int kSpinLimit = 64;

  std::atomic<uint32_t> seq_{0};
};

}  // namespace fitree

#endif  // FITREE_CONCURRENCY_SEG_LATCH_H_
