#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "baselines/binary_search_index.h"
#include "baselines/full_index.h"
#include "baselines/paged_index.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

using fitree::BinarySearchIndex;
using fitree::FullIndex;
using fitree::PagedIndex;
using fitree::PagedIndexConfig;

TEST(BinarySearchIndex, MatchesOracle) {
  const auto keys = fitree::datasets::Weblogs(20000, 1);
  const std::set<int64_t> oracle(keys.begin(), keys.end());
  BinarySearchIndex<int64_t> index{std::span<const int64_t>(keys)};
  EXPECT_EQ(index.IndexSizeBytes(), 0u);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 3000, fitree::workloads::Access::kUniform, 0.4, 2);
  for (const int64_t probe : probes) {
    ASSERT_EQ(index.Contains(probe), oracle.count(probe) > 0);
  }
  EXPECT_EQ(index.Find(keys[1234]).value(), 1234u);
  EXPECT_FALSE(index.Find(keys.front() - 1).has_value());
}

TEST(FullIndex, LookupInsertScan) {
  const auto keys = fitree::datasets::Iot(20000, 3);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  FullIndex<int64_t> index{std::span<const int64_t>(keys)};
  EXPECT_EQ(index.size(), keys.size());
  EXPECT_GT(index.IndexSizeBytes(), keys.size() * sizeof(int64_t));

  for (const int64_t key :
       fitree::workloads::MakeInserts<int64_t>(keys, 3000, 4)) {
    index.Insert(key);
    oracle.insert(key);
  }
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 3000, fitree::workloads::Access::kUniform, 0.4, 5);
  for (const int64_t probe : probes) {
    ASSERT_EQ(index.Contains(probe), oracle.count(probe) > 0);
  }

  const auto queries =
      fitree::workloads::MakeRangeQueries<int64_t>(keys, 100, 0.01, 6);
  for (const auto& q : queries) {
    std::vector<int64_t> expected;
    for (auto it = oracle.lower_bound(q.lo);
         it != oracle.end() && *it <= q.hi; ++it) {
      expected.push_back(*it);
    }
    std::vector<int64_t> scanned;
    index.ScanRange(q.lo, q.hi, [&](int64_t key) { scanned.push_back(key); });
    ASSERT_EQ(scanned, expected);
  }
}

TEST(PagedIndex, LookupAcrossPageSizes) {
  const auto keys = fitree::datasets::Maps(20000, 7);
  const std::set<int64_t> oracle(keys.begin(), keys.end());
  for (const size_t page : {16u, 256u, 4096u}) {
    PagedIndexConfig config;
    config.page_size = page;
    config.buffer_size = 0;
    auto index = PagedIndex<int64_t>::Create(keys, config);
    EXPECT_EQ(index->size(), keys.size());
    EXPECT_EQ(index->PageCount(), (keys.size() + page - 1) / page);
    const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
        keys, 2000, fitree::workloads::Access::kUniform, 0.4, 8);
    for (const int64_t probe : probes) {
      ASSERT_EQ(index->Contains(probe), oracle.count(probe) > 0)
          << "page " << page << " probe " << probe;
    }
  }
}

TEST(PagedIndex, InsertSplitsPages) {
  const auto keys = fitree::datasets::Weblogs(8000, 9);
  std::set<int64_t> oracle(keys.begin(), keys.end());
  PagedIndexConfig config;
  config.page_size = 64;
  config.buffer_size = 8;
  auto index = PagedIndex<int64_t>::Create(keys, config);
  const size_t pages_before = index->PageCount();

  for (const int64_t key :
       fitree::workloads::MakeInserts<int64_t>(keys, 4000, 10)) {
    index->Insert(key);
    oracle.insert(key);
    ASSERT_TRUE(index->Contains(key));
  }
  EXPECT_EQ(index->size(), oracle.size());
  EXPECT_GT(index->PageCount(), pages_before);
  for (const int64_t key : oracle) {
    ASSERT_TRUE(index->Contains(key)) << "key " << key;
  }

  std::vector<int64_t> scanned;
  index->ScanRange(keys.front(), keys.back(),
                   [&](int64_t key) { scanned.push_back(key); });
  std::vector<int64_t> expected(oracle.begin(), oracle.end());
  // Inserted keys can precede keys.front() only if drawn below it; the
  // workload draws strictly inside gaps, so the full range matches.
  EXPECT_EQ(scanned, expected);
}

TEST(PagedIndex, BreakdownAndSizes) {
  const auto keys = fitree::datasets::Iot(10000, 11);
  PagedIndexConfig fine;
  fine.page_size = 16;
  fine.buffer_size = 0;
  PagedIndexConfig coarse;
  coarse.page_size = 4096;
  coarse.buffer_size = 0;
  auto a = PagedIndex<int64_t>::Create(keys, fine);
  auto b = PagedIndex<int64_t>::Create(keys, coarse);
  EXPECT_GT(a->IndexSizeBytes(), b->IndexSizeBytes());
  int64_t tree_ns = 0, page_ns = 0;
  for (size_t i = 0; i < keys.size(); i += 25) {
    ASSERT_TRUE(a->ContainsWithBreakdown(keys[i], &tree_ns, &page_ns));
  }
  EXPECT_GT(tree_ns, 0);
  EXPECT_GT(page_ns, 0);
}

}  // namespace
