// Disk-resident FITing-Tree vs fixed paging, through the buffer pool.
//
// Builds the index file on disk (segment table + sorted key/payload leaf
// pages, see storage/segment_file.h), then serves point lookups and range
// scans entirely through the buffer-pool cache while counting page I/O.
// Sweeps (a) the error bound, which trades in-memory segment-table size
// against lookup-window width in pages, and (b) the cache size as a
// fraction of the leaf pages, under uniform and Zipfian probe skew. The
// fixed-paging baseline (one data-blind segment per page) rides the same
// read path.
//
// Every configuration is first validated against the in-memory
// StaticFitingTree oracle: lookups (present and absent) must return the
// oracle's rank payload and range scans must emit the oracle's keys.
//
// Expected shape: pages-read/op falls toward 0 as the cache fraction
// approaches 1, and at any partial cache Zipfian skew buys a higher hit
// rate than uniform. Larger errors read more pages per lookup but shrink
// the in-memory segment table; at small errors FITing-Tree tracks fixed
// paging's pages/lookup (within the odd window that straddles a page
// boundary) while its segment table stays an order of magnitude smaller
// than one entry per page — the paper's Fig 6 contrast, restated in I/O.
//
// Env knobs (see EXPERIMENTS.md): FITREE_BENCH_SCALE,
// FITREE_BENCH_PAGE_BYTES, FITREE_BENCH_CACHE_PAGES (0 = sweep fractions),
// FITREE_BENCH_DISK_PATH.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "common/io_stats.h"
#include "common/table_printer.h"
#include "core/static_fiting_tree.h"
#include "datasets/datasets.h"
#include "storage/disk_fiting_tree.h"
#include "storage/segment_file.h"
#include "workloads/workloads.h"

namespace {

using fitree::GetEnvInt64;
using fitree::IoStats;
using fitree::PackedSegment;
using fitree::StaticFitingTree;
using fitree::TablePrinter;
using fitree::storage::DiskFitingTree;
using fitree::storage::LeafCapacity;
using fitree::storage::MakeFixedSegments;
using fitree::storage::SegmentFileOptions;
using fitree::storage::WriteSegmentFile;
using fitree::workloads::Access;

struct ProbeSet {
  Access access;
  const char* name;
  std::vector<int64_t> probes;
};

// Checks the disk tree against the in-memory oracle on a probe prefix and
// a handful of range scans. Exits non-zero on any mismatch: a bench that
// measures wrong answers measures nothing.
void ValidateOrDie(DiskFitingTree<int64_t>& disk,
                   const StaticFitingTree<int64_t>& oracle,
                   std::span<const int64_t> probes, const char* label) {
  const size_t checks = std::min<size_t>(probes.size(), 2000);
  for (size_t i = 0; i < checks; ++i) {
    const int64_t key = probes[i];
    const auto got = disk.Lookup(key);
    const auto want = oracle.Find(key);
    const bool match = want.has_value()
                           ? (got.has_value() && *got == *want)
                           : !got.has_value();
    if (!match || disk.LowerBound(key) != oracle.LowerBound(key)) {
      std::fprintf(stderr, "bench_disk: %s: mismatch vs oracle at key %" PRId64 "\n",
                   label, key);
      std::exit(1);
    }
  }
  const auto ranges = fitree::workloads::MakeRangeQueries<int64_t>(
      oracle.data(), 32, /*selectivity=*/0.001, /*seed=*/77);
  for (const auto& q : ranges) {
    std::vector<int64_t> got;
    disk.ScanRange(q.lo, q.hi, [&](int64_t k, uint64_t) { got.push_back(k); });
    std::vector<int64_t> want;
    oracle.ScanRange(q.lo, q.hi, [&](int64_t k) { want.push_back(k); });
    if (got != want) {
      std::fprintf(stderr, "bench_disk: %s: range scan mismatch\n", label);
      std::exit(1);
    }
  }
  if (disk.io_error()) {
    std::fprintf(stderr, "bench_disk: %s: I/O error during validation\n",
                 label);
    std::exit(1);
  }
}

void BenchRows(TablePrinter& lookups_table, TablePrinter& ranges_table,
               const std::string& method, const std::string& param,
               const std::string& path,
               const StaticFitingTree<int64_t>& oracle,
               std::span<const ProbeSet> probe_sets,
               std::span<const double> cache_fractions, size_t cache_override,
               uint64_t leaf_pages) {
  for (const double fraction : cache_fractions) {
    for (const ProbeSet& set : probe_sets) {
      DiskFitingTree<int64_t>::Options options;
      options.cache_pages =
          cache_override > 0
              ? cache_override
              : std::max<uint64_t>(
                    4, static_cast<uint64_t>(
                           fraction * static_cast<double>(leaf_pages)));
      const std::string frac_cell =
          cache_override > 0 ? "env" : TablePrinter::Fmt(fraction, 2);
      auto disk = DiskFitingTree<int64_t>::Open(path, options);
      if (disk == nullptr) {
        std::fprintf(stderr, "bench_disk: cannot open %s\n", path.c_str());
        std::exit(1);
      }
      const std::string label = method + " " + param;
      ValidateOrDie(*disk, oracle, set.probes, label.c_str());

      // Validation doubles as cache warmup; measure steady state.
      disk->ResetIoStats();
      const size_t ops = set.probes.size();
      const double ns = fitree::bench::MeasurePerOpNs(ops, [&](size_t i) {
        return disk->Lookup(set.probes[i]).value_or(0);
      });
      const IoStats io = disk->io();
      lookups_table.AddRow(
          {method, param, set.name, std::to_string(options.cache_pages),
           frac_cell, TablePrinter::Fmt(ns, 1),
           TablePrinter::Fmt(static_cast<double>(io.pages_read) /
                                 static_cast<double>(ops),
                             4),
           TablePrinter::Fmt(io.HitRate(), 3)});

      // Range scans: uniform starts only (skew matters less once a scan
      // streams pages), at the same cache point.
      if (set.access == Access::kUniform) {
        const auto ranges = fitree::workloads::MakeRangeQueries<int64_t>(
            oracle.data(), 512, /*selectivity=*/0.0005, /*seed=*/99);
        disk->ResetIoStats();
        const double range_ns =
            fitree::bench::MeasurePerOpNs(ranges.size(), [&](size_t i) {
              uint64_t sum = 0;
              disk->ScanRange(ranges[i].lo, ranges[i].hi,
                              [&](int64_t, uint64_t v) { sum += v; });
              return sum;
            });
        const IoStats rio = disk->io();
        ranges_table.AddRow(
            {method, param, std::to_string(options.cache_pages),
             frac_cell, TablePrinter::Fmt(range_ns, 0),
             TablePrinter::Fmt(static_cast<double>(rio.pages_read) /
                                   static_cast<double>(ranges.size()),
                               3),
             TablePrinter::Fmt(rio.HitRate(), 3)});
      }
      if (disk->io_error()) {
        std::fprintf(stderr, "bench_disk: I/O error while measuring %s\n",
                     label.c_str());
        std::exit(1);
      }
    }
  }
}

}  // namespace

int main() {
  const size_t n = fitree::bench::ScaledN(400'000);
  const size_t probes_n = fitree::bench::ScaledN(100'000);
  const size_t page_bytes = static_cast<size_t>(
      GetEnvInt64("FITREE_BENCH_PAGE_BYTES",
                  static_cast<int64_t>(fitree::storage::kDefaultPageBytes)));
  const size_t cache_override = static_cast<size_t>(
      GetEnvInt64("FITREE_BENCH_CACHE_PAGES", 0));
  const char* path_env = std::getenv("FITREE_BENCH_DISK_PATH");
  const std::string path =
      (path_env != nullptr && *path_env != '\0') ? path_env
                                                 : "bench_disk_index.fit";

  const auto keys =
      fitree::datasets::Generate(fitree::datasets::RealWorld::kWeblogs, n, 42);
  const size_t leaf_cap = LeafCapacity<int64_t>(page_bytes);
  const uint64_t leaf_pages = (keys.size() + leaf_cap - 1) / leaf_cap;

  std::vector<ProbeSet> probe_sets;
  for (const Access access : {Access::kUniform, Access::kZipfian}) {
    probe_sets.push_back(
        {access, access == Access::kUniform ? "uniform" : "zipfian",
         fitree::workloads::MakeLookupProbes<int64_t>(
             keys, probes_n, access, /*absent_fraction=*/0.1, 43)});
  }
  // FITREE_BENCH_CACHE_PAGES pins the pool to one absolute frame count, so
  // the fraction sweep collapses to a single point.
  const std::vector<double> cache_fractions =
      cache_override > 0 ? std::vector<double>{0.0}
                         : std::vector<double>{0.02, 0.10, 1.00};

  fitree::bench::PrintHeader(
      "Disk-resident lookups/ranges through the buffer pool (Weblogs, n=" +
      std::to_string(keys.size()) + ", page=" + std::to_string(page_bytes) +
      "B, " + std::to_string(leaf_cap) + " keys/page)");
  TablePrinter lookups_table({"method", "param", "access", "cache_pages",
                              "cache_frac", "ns_per_lookup",
                              "pages_read_per_lookup", "hit_rate"});
  TablePrinter ranges_table({"method", "param", "cache_pages", "cache_frac",
                             "ns_per_range", "pages_read_per_range",
                             "hit_rate"});
  TablePrinter files_table({"method", "param", "segments", "index_KB",
                            "leaf_pages", "file_MB"});
  const auto add_file_row = [&](const std::string& method,
                                const std::string& param,
                                const std::string& file_path) {
    auto disk = DiskFitingTree<int64_t>::Open(file_path);
    if (disk == nullptr) return;
    const double file_mb =
        static_cast<double>(disk->FileBytes()) / (1024.0 * 1024.0);
    files_table.AddRow({method, param, std::to_string(disk->SegmentCount()),
                        TablePrinter::Fmt(
                            static_cast<double>(disk->IndexSizeBytes()) /
                                1024.0,
                            1),
                        std::to_string(disk->LeafPageCount()),
                        TablePrinter::Fmt(file_mb, 1)});
  };

  const SegmentFileOptions file_options{page_bytes};
  for (const double error : {16.0, 128.0, 1024.0}) {
    const auto oracle = StaticFitingTree<int64_t>::Create(keys, error);
    if (!fitree::storage::WriteIndexFile(path, *oracle, file_options)) {
      std::fprintf(stderr, "bench_disk: failed to write %s\n", path.c_str());
      return 1;
    }
    const std::string param = "e=" + std::to_string(static_cast<int>(error));
    add_file_row("FITing-Tree", param, path);
    BenchRows(lookups_table, ranges_table, "FITing-Tree", param, path,
              *oracle, probe_sets, cache_fractions, cache_override,
              leaf_pages);
  }

  // Fixed paging: one data-blind segment per leaf page; the stored error
  // (= keys per page) makes the lookup window exactly that page.
  {
    const auto oracle = StaticFitingTree<int64_t>::Create(keys, 64.0);
    const auto fixed_segments =
        MakeFixedSegments(std::span<const int64_t>(keys), leaf_cap);
    if (!WriteSegmentFile<int64_t>(path, keys, {},
                                   std::span<const PackedSegment<int64_t>>(
                                       fixed_segments),
                                   static_cast<double>(leaf_cap),
                                   file_options)) {
      std::fprintf(stderr, "bench_disk: failed to write %s\n", path.c_str());
      return 1;
    }
    const std::string param = "page=" + std::to_string(leaf_cap);
    add_file_row("Fixed", param, path);
    BenchRows(lookups_table, ranges_table, "Fixed", param, path, *oracle,
              probe_sets, cache_fractions, cache_override, leaf_pages);
  }

  files_table.Print(std::cout);
  std::printf("\n");
  lookups_table.Print(std::cout);
  std::printf("\n");
  ranges_table.Print(std::cout);
  std::printf("\nvalidation: all configurations matched the in-memory oracle\n");
  std::remove(path.c_str());
  return 0;
}
