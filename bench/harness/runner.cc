#include "bench/harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <list>
#include <map>
#include <sstream>
#include <thread>

#include "common/table_printer.h"
#include "telemetry/perf_counters.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

extern "C" char** environ;

namespace fitree::bench {

namespace {

// One process-wide counter group: perf_event_open per measurement window
// would dominate short cells, and inherit=1 means counters opened here
// follow into every worker thread the experiments spawn later.
telemetry::PerfRegion& GlobalPerfRegion() {
  static telemetry::PerfRegion region;
  return region;
}

}  // namespace

void PerfCaptureStart() { GlobalPerfRegion().Start(); }

telemetry::PerfSample PerfCaptureStop() { return GlobalPerfRegion().Stop(); }

bool ResultRecord::operator==(const ResultRecord& other) const {
  if (experiment != other.experiment || params != other.params ||
      ns_per_op.reps != other.ns_per_op.reps ||
      metrics != other.metrics) {
    return false;
  }
  return ns_per_op.min == other.ns_per_op.min &&
         ns_per_op.max == other.ns_per_op.max &&
         ns_per_op.mean == other.ns_per_op.mean &&
         ns_per_op.p50 == other.ns_per_op.p50 &&
         ns_per_op.p99 == other.ns_per_op.p99 &&
         ns_per_op.stddev == other.ns_per_op.stddev;
}

std::string FmtMetric(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

// --- table rendering ------------------------------------------------------

namespace {

// Ordered union of keys across records, preserving first-seen order.
template <typename Pairs>
std::vector<std::string> KeyUnion(const std::vector<ResultRecord>& records,
                                  Pairs ResultRecord::* field) {
  std::vector<std::string> keys;
  for (const ResultRecord& r : records) {
    for (const auto& [k, v] : r.*field) {
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
  }
  return keys;
}

template <typename Pairs>
const typename Pairs::value_type::second_type* FindKey(
    const Pairs& pairs, const std::string& key) {
  for (const auto& [k, v] : pairs) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

void Runner::RenderTable(std::ostream& os) const {
  if (records_.empty()) {
    os << "(no records)\n";
    return;
  }
  const auto param_keys = KeyUnion(records_, &ResultRecord::params);
  const auto metric_keys = KeyUnion(records_, &ResultRecord::metrics);
  const bool timed = std::any_of(
      records_.begin(), records_.end(),
      [](const ResultRecord& r) { return r.ns_per_op.valid(); });

  std::vector<std::string> columns = param_keys;
  if (timed) {
    columns.insert(columns.end(),
                   {"ns_op_p50", "ns_op_min", "ns_op_mean", "ns_op_p99"});
  }
  columns.insert(columns.end(), metric_keys.begin(), metric_keys.end());

  TablePrinter table(columns);
  for (const ResultRecord& r : records_) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const auto& key : param_keys) {
      const std::string* v = FindKey(r.params, key);
      row.push_back(v != nullptr ? *v : "-");
    }
    if (timed) {
      if (r.ns_per_op.valid()) {
        row.push_back(TablePrinter::Fmt(r.ns_per_op.p50, 1));
        row.push_back(TablePrinter::Fmt(r.ns_per_op.min, 1));
        row.push_back(TablePrinter::Fmt(r.ns_per_op.mean, 1));
        row.push_back(TablePrinter::Fmt(r.ns_per_op.p99, 1));
      } else {
        row.insert(row.end(), 4, "-");
      }
    }
    for (const auto& key : metric_keys) {
      const double* v = FindKey(r.metrics, key);
      row.push_back(v != nullptr ? FmtMetric(*v) : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print(os);
}

// --- measurement loops ----------------------------------------------------

double TimedLoopNsPerOpParallel(size_t ops, int threads,
                                const std::function<uint64_t(size_t)>& body) {
  if (threads <= 1) {
    return TimedLoopNsPerOp(ops, [&](size_t i) { return body(i); });
  }
  const size_t per_thread = ops / static_cast<size_t>(threads);
  if (per_thread == 0) return 0.0;
  // Ready/go barrier: thread spawn cost (~100us each, serialized) must not
  // be charged to the measured window.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t sink = 0;
      const size_t begin = static_cast<size_t>(t) * per_thread;
      for (size_t i = begin; i < begin + per_thread; ++i) {
        sink += body(i);
      }
      SinkValue(sink);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double ns = static_cast<double>(timer.ElapsedNs());
  return ns / static_cast<double>(per_thread);
}

// --- dataset / workload memoization ---------------------------------------

namespace {

class MemoCache {
 public:
  std::shared_ptr<const std::vector<int64_t>> Get(
      const std::string& key,
      const std::function<std::vector<int64_t>()>& make) {
    if (auto it = entries_.find(key); it != entries_.end()) {
      return it->second;
    }
    auto value =
        std::make_shared<const std::vector<int64_t>>(make());
    const size_t bytes = value->size() * sizeof(int64_t);
    const size_t limit = static_cast<size_t>(
        GetEnvInt64("FITREE_BENCH_MEMO_BYTES", int64_t{1} << 30));
    // Evict least-recently-inserted entries first; holders of evicted
    // vectors keep them alive through their own shared_ptr.
    while (!insertion_order_.empty() && total_bytes_ + bytes > limit) {
      const std::string& victim = insertion_order_.front();
      if (auto it = entries_.find(victim); it != entries_.end()) {
        total_bytes_ -= it->second->size() * sizeof(int64_t);
        entries_.erase(it);
      }
      insertion_order_.pop_front();
    }
    entries_.emplace(key, value);
    insertion_order_.push_back(key);
    total_bytes_ += bytes;
    return value;
  }

 private:
  std::map<std::string, std::shared_ptr<const std::vector<int64_t>>> entries_;
  std::list<std::string> insertion_order_;
  size_t total_bytes_ = 0;
};

MemoCache& GlobalMemoCache() {
  static MemoCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const std::vector<int64_t>> MemoKeys(
    const std::string& key,
    const std::function<std::vector<int64_t>()>& make) {
  return GlobalMemoCache().Get(key, make);
}

std::shared_ptr<const std::vector<int64_t>> MemoProbes(
    const std::string& dataset_key, const std::vector<int64_t>& keys,
    size_t count, workloads::Access access, double absent_fraction,
    uint64_t seed) {
  std::ostringstream id;
  // Max-precision fraction: two distinct fractions must never collide to
  // one memo key (default ostream precision would fold them at 6 digits).
  id << "probes/" << dataset_key << '/' << count << '/'
     << (access == workloads::Access::kUniform ? "uniform" : "zipfian") << '/'
     << std::setprecision(17) << absent_fraction << '/' << seed;
  return MemoKeys(id.str(), [&] {
    return workloads::MakeLookupProbes<int64_t>(keys, count, access,
                                                absent_fraction, seed);
  });
}

std::shared_ptr<const std::vector<int64_t>> MemoInserts(
    const std::string& dataset_key, const std::vector<int64_t>& keys,
    size_t count, uint64_t seed) {
  std::ostringstream id;
  id << "inserts/" << dataset_key << '/' << count << '/' << seed;
  return MemoKeys(id.str(), [&] {
    return workloads::MakeInserts<int64_t>(keys, count, seed);
  });
}

// --- JSON schema ----------------------------------------------------------

Json StatsToJson(const Stats& stats) {
  Json j = Json::Object();
  j.Set("reps", Json(stats.reps));
  j.Set("min", Json(stats.min));
  j.Set("max", Json(stats.max));
  j.Set("mean", Json(stats.mean));
  j.Set("p50", Json(stats.p50));
  j.Set("p99", Json(stats.p99));
  j.Set("stddev", Json(stats.stddev));
  return j;
}

namespace {

// The "perf" member every exported record carries: the status string is
// always present ("ok", "not measured", "disabled (...)", or
// "unavailable: ..."), counters/derived only when something was counted.
// Events that never scheduled export as absent, not as 0 — a 0 would read
// as "this code causes no misses", which is a different claim.
Json PerfSampleToJson(const telemetry::PerfSample& perf, double ops) {
  Json j = Json::Object();
  j.Set("status", Json(perf.status));
  if (!perf.ok) return j;
  j.Set("time_enabled_ns", Json(perf.time_enabled_ns));
  j.Set("time_running_ns", Json(perf.time_running_ns));

  const std::pair<const char*, double> counters[] = {
      {"cycles", perf.cycles},
      {"instructions", perf.instructions},
      {"llc_load_misses", perf.llc_misses},
      {"branch_misses", perf.branch_misses},
      {"dtlb_load_misses", perf.dtlb_misses},
      {"task_clock_ns", perf.task_clock_ns},
  };
  Json counter_obj = Json::Object();
  for (const auto& [name, value] : counters) {
    if (value >= 0) counter_obj.Set(name, Json(value));
  }
  j.Set("counters", std::move(counter_obj));

  Json derived = Json::Object();
  if (perf.cycles > 0 && perf.instructions >= 0) {
    derived.Set("ipc", Json(perf.instructions / perf.cycles));
  }
  if (ops > 0) {
    j.Set("estimated_ops", Json(ops));
    const std::pair<const char*, double> rates[] = {
        {"cycles_per_op", perf.cycles},
        {"instructions_per_op", perf.instructions},
        {"llc_load_misses_per_op", perf.llc_misses},
        {"branch_misses_per_op", perf.branch_misses},
        {"dtlb_load_misses_per_op", perf.dtlb_misses},
    };
    for (const auto& [name, value] : rates) {
      if (value >= 0) derived.Set(name, Json(value / ops));
    }
  }
  j.Set("derived", std::move(derived));
  return j;
}

}  // namespace

Json ResultRecordToJson(const ResultRecord& record) {
  Json j = Json::Object();
  j.Set("experiment", Json(record.experiment));
  Json params = Json::Object();
  for (const auto& [k, v] : record.params) params.Set(k, Json(v));
  j.Set("params", std::move(params));
  if (record.ns_per_op.valid()) {
    j.Set("ns_per_op", StatsToJson(record.ns_per_op));
  }
  Json metrics = Json::Object();
  for (const auto& [k, v] : record.metrics) metrics.Set(k, Json(v));
  j.Set("metrics", std::move(metrics));
  // PMU block (tentpole): ResultRecordFromJson deliberately skips it —
  // baseline comparison pairs on params + stats + metrics only, so adding
  // or renaming perf fields can never break the bench_diff CI gate.
  j.Set("perf", PerfSampleToJson(record.perf, record.perf_ops));
  return j;
}

std::optional<ResultRecord> ResultRecordFromJson(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  ResultRecord record;
  const Json* experiment = json.Find("experiment");
  if (experiment == nullptr || experiment->type() != Json::Type::kString) {
    return std::nullopt;
  }
  record.experiment = experiment->AsString();
  if (const Json* params = json.Find("params");
      params != nullptr && params->is_object()) {
    for (const auto& [k, v] : params->AsObject()) {
      if (v.type() != Json::Type::kString) return std::nullopt;
      record.params.emplace_back(k, v.AsString());
    }
  }
  if (const Json* stats = json.Find("ns_per_op");
      stats != nullptr && stats->is_object()) {
    const auto number = [&](const char* key) {
      const Json* v = stats->Find(key);
      return v != nullptr && v->type() == Json::Type::kNumber ? v->AsNumber()
                                                              : 0.0;
    };
    record.ns_per_op.reps = static_cast<int>(number("reps"));
    record.ns_per_op.min = number("min");
    record.ns_per_op.max = number("max");
    record.ns_per_op.mean = number("mean");
    record.ns_per_op.p50 = number("p50");
    record.ns_per_op.p99 = number("p99");
    record.ns_per_op.stddev = number("stddev");
  }
  if (const Json* metrics = json.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    for (const auto& [k, v] : metrics->AsObject()) {
      if (v.type() != Json::Type::kNumber) return std::nullopt;
      record.metrics.emplace_back(k, v.AsNumber());
    }
  }
  return record;
}

// --- environment capture --------------------------------------------------

namespace {

// First output line of `command`, or empty on any failure.
std::string CommandLine(const char* command) {
  FILE* pipe = popen(command, "r");
  if (pipe == nullptr) return {};
  char buf[256];
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::string CpuModel() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
      }
    }
  }
  return "unknown";
}

std::string CompilerId() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string UtcTimestamp() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

Json CaptureEnvironment() {
  Json env = Json::Object();
  std::string sha = CommandLine("git rev-parse --short=12 HEAD 2>/dev/null");
  if (sha.empty()) sha = "unknown";
  env.Set("git_sha", Json(sha));
  // `git diff-index` exits nonzero when the tree differs from HEAD.
  const std::string dirty = CommandLine(
      "git diff-index --quiet HEAD -- 2>/dev/null && echo clean || "
      "echo dirty");
  env.Set("git_dirty", Json(dirty == "dirty"));
  env.Set("compiler", Json(CompilerId()));
#ifdef FITREE_CXX_FLAGS
  env.Set("cxx_flags", Json(FITREE_CXX_FLAGS));
#else
  env.Set("cxx_flags", Json(""));
#endif
#ifdef FITREE_BUILD_TYPE
  env.Set("build_type", Json(FITREE_BUILD_TYPE));
#else
  env.Set("build_type", Json(""));
#endif
  env.Set("cpu", Json(CpuModel()));
  env.Set("hw_threads",
          Json(static_cast<uint64_t>(std::thread::hardware_concurrency())));
  env.Set("timestamp_utc", Json(UtcTimestamp()));

  // Every FITREE_* knob that is set (scale, thread caps, paths, ...): the
  // knobs change what a result means, so they travel with the results.
  Json knobs = Json::Object();
  for (char** entry = environ; entry != nullptr && *entry != nullptr;
       ++entry) {
    const char* eq = std::strchr(*entry, '=');
    if (eq == nullptr) continue;
    const std::string name(*entry, static_cast<size_t>(eq - *entry));
    if (name.rfind("FITREE_", 0) == 0) knobs.Set(name, Json(eq + 1));
  }
  env.Set("env_knobs", std::move(knobs));
  return env;
}

Json TelemetryToJson() {
  namespace tm = fitree::telemetry;
  Json telem = Json::Object();
  telem.Set("enabled", Json(tm::kEnabled));
  if (!tm::kEnabled) return telem;
#ifndef FITREE_NO_TELEMETRY
  telem.Set("sample_period", Json(tm::SamplePeriod()));
#endif

  const tm::RegistrySnapshot snap = tm::Registry::Get().Snapshot();

  // Per-(engine, op) traffic: exact call counts, plus the sampled latency
  // distribution when any samples were recorded. Zero-count cells are
  // omitted — the grid is sparse in any one bench configuration.
  Json ops = Json::Array();
  for (size_t e = 0; e < tm::kNumEngines; ++e) {
    for (size_t o = 0; o < tm::kNumOps; ++o) {
      const auto& cell = snap.ops[e][o];
      if (cell.count == 0) continue;
      Json entry = Json::Object();
      entry.Set("engine", Json(tm::EngineName(static_cast<tm::Engine>(e))));
      entry.Set("op", Json(tm::OpName(static_cast<tm::Op>(o))));
      entry.Set("count", Json(cell.count));
      entry.Set("samples", Json(cell.latency.total));
      if (!cell.latency.empty()) {
        entry.Set("p50_ns", Json(cell.latency.PercentileNs(50.0)));
        entry.Set("p99_ns", Json(cell.latency.PercentileNs(99.0)));
        entry.Set("p999_ns", Json(cell.latency.PercentileNs(99.9)));
        entry.Set("max_ns", Json(cell.latency.MaxNs()));
        entry.Set("mean_ns", Json(cell.latency.MeanNs()));
      }
      ops.Push(std::move(entry));
    }
  }
  telem.Set("ops", std::move(ops));

  // Per-(engine, phase) span attribution: counts are SAMPLED span counts
  // (phases only time inside a sampled op — see telemetry/phase.h) and the
  // latencies are self times, children excluded, so the phases of one op
  // sum to roughly its inclusive latency. Sparse like the ops grid.
  Json phases = Json::Array();
  for (size_t e = 0; e < tm::kNumEngines; ++e) {
    for (size_t p = 0; p < tm::kNumPhases; ++p) {
      const auto& cell = snap.phases[e][p];
      if (cell.count == 0) continue;
      Json entry = Json::Object();
      entry.Set("engine", Json(tm::EngineName(static_cast<tm::Engine>(e))));
      entry.Set("phase", Json(tm::PhaseName(static_cast<tm::Phase>(p))));
      entry.Set("samples", Json(cell.count));
      if (!cell.latency.empty()) {
        entry.Set("p50_ns", Json(cell.latency.PercentileNs(50.0)));
        entry.Set("p95_ns", Json(cell.latency.PercentileNs(95.0)));
        entry.Set("p99_ns", Json(cell.latency.PercentileNs(99.0)));
        entry.Set("max_ns", Json(cell.latency.MaxNs()));
        entry.Set("mean_ns", Json(cell.latency.MeanNs()));
      }
      phases.Push(std::move(entry));
    }
  }
  telem.Set("phases", std::move(phases));

  // Monotonic-to-wallclock anchor: trace t_ns and phase timestamps are
  // steady-clock ns; wall time of any t_ns is
  // unix_now_ns - (steady_now_ns - t_ns). Both clocks read back-to-back.
  {
    Json anchor = Json::Object();
    anchor.Set("steady_now_ns", Json(tm::NowNs()));
    anchor.Set("unix_now_ns",
               Json(static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count())));
    anchor.Set("utc", Json(UtcTimestamp()));
    telem.Set("clock_anchor", std::move(anchor));
  }

  // All named counters and gauges, zero or not: a fixed-shape section is
  // what tools/stats_dump.py and diffing scripts key on.
  Json counters = Json::Object();
  for (size_t i = 0; i < tm::kNumCounters; ++i) {
    counters.Set(tm::CounterName(static_cast<tm::CounterId>(i)),
                 Json(snap.counters[i]));
  }
  telem.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (size_t i = 0; i < tm::kNumGauges; ++i) {
    gauges.Set(tm::GaugeName(static_cast<tm::GaugeId>(i)),
               Json(snap.gauges[i]));
  }
  telem.Set("gauges", std::move(gauges));

  // The dump-to-JSON path for the FITREE_TRACE ring buffers: merged,
  // time-ordered binary records rendered as objects. Only materialized
  // when tracing is on (rings are bounded, so this stays small).
  const tm::TraceDump dump = tm::trace::Collect();
  Json trace = Json::Object();
  trace.Set("enabled", Json(dump.enabled));
  if (dump.enabled) {
    trace.Set("threads", Json(static_cast<uint64_t>(dump.threads)));
    trace.Set("emitted", Json(dump.emitted));
    trace.Set("dropped", Json(dump.dropped));
    Json records = Json::Array();
    for (const tm::TraceRecord& r : dump.records) {
      Json rec = Json::Object();
      rec.Set("t_ns", Json(r.t_ns));
      rec.Set("tid", Json(static_cast<uint64_t>(r.tid)));
      rec.Set("engine",
              Json(tm::EngineName(static_cast<tm::Engine>(r.engine))));
      rec.Set("op", Json(tm::OpName(static_cast<tm::Op>(r.op))));
      // phase == 0 marks an op-level record; phase-tagged records carry
      // the span's name (index is 1 + Phase, see TraceRecord).
      if (r.phase != 0) {
        rec.Set("phase",
                Json(tm::PhaseName(static_cast<tm::Phase>(r.phase - 1))));
      }
      rec.Set("arg_ns", Json(r.arg));
      records.Push(std::move(rec));
    }
    trace.Set("records", std::move(records));
  }
  telem.Set("trace", std::move(trace));
  return telem;
}

Json MakeResultsDocument(const Json& environment, int reps,
                         const std::vector<ResultRecord>& records) {
  Json doc = Json::Object();
  doc.Set("schema_version", Json(1));
  doc.Set("environment", environment);
  doc.Set("reps", Json(reps));
  Json results = Json::Array();
  for (const ResultRecord& r : records) results.Push(ResultRecordToJson(r));
  doc.Set("results", std::move(results));
  // Cumulative registry snapshot for the whole run: per-op counts and
  // latency percentiles across every experiment executed by this process,
  // plus the trace dump when FITREE_TRACE was on.
  doc.Set("telemetry", TelemetryToJson());
  return doc;
}

Json MakeBaselineDocument(const Json& environment, int reps,
                          const std::vector<ResultRecord>& records) {
  Json doc = Json::Object();
  doc.Set("schema_version", Json(1));
  doc.Set("environment", environment);
  doc.Set("reps", Json(reps));
  Json results = Json::Array();
  for (const ResultRecord& r : records) {
    Json j = Json::Object();
    j.Set("experiment", Json(r.experiment));
    Json params = Json::Object();
    for (const auto& [k, v] : r.params) params.Set(k, Json(v));
    j.Set("params", std::move(params));
    if (r.ns_per_op.valid()) j.Set("ns_per_op", StatsToJson(r.ns_per_op));
    results.Push(std::move(j));
  }
  doc.Set("results", std::move(results));
  return doc;
}

}  // namespace fitree::bench
