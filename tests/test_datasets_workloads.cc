#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "datasets/datasets.h"
#include "workloads/workloads.h"

namespace {

void CheckSortedUnique(const std::vector<int64_t>& keys, size_t n) {
  ASSERT_EQ(keys.size(), n);
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_GT(keys[i], keys[i - 1]) << "at " << i;
  }
  // Keys stay below 2^53 so double-based models remain exact.
  EXPECT_LT(std::abs(static_cast<double>(keys.back())), 9.0e15);
  EXPECT_LT(std::abs(static_cast<double>(keys.front())), 9.0e15);
}

TEST(Datasets, AllGeneratorsSortedUniqueAndSized) {
  const size_t n = 10000;
  CheckSortedUnique(fitree::datasets::Weblogs(n, 1), n);
  CheckSortedUnique(fitree::datasets::Iot(n, 2), n);
  CheckSortedUnique(fitree::datasets::Maps(n, 3), n);
  CheckSortedUnique(fitree::datasets::OsmLongitude(n, 4), n);
  CheckSortedUnique(fitree::datasets::TaxiPickupTime(n, 5), n);
  CheckSortedUnique(fitree::datasets::TaxiDropLat(n, 6), n);
  CheckSortedUnique(fitree::datasets::TaxiDropLon(n, 7), n);
  CheckSortedUnique(fitree::datasets::Step(n, 100), n);
}

TEST(Datasets, Deterministic) {
  EXPECT_EQ(fitree::datasets::Weblogs(5000, 42),
            fitree::datasets::Weblogs(5000, 42));
  EXPECT_NE(fitree::datasets::Weblogs(5000, 42),
            fitree::datasets::Weblogs(5000, 43));
}

TEST(Datasets, GenerateDispatchAndNames) {
  using fitree::datasets::RealWorld;
  for (const auto which :
       {RealWorld::kWeblogs, RealWorld::kIot, RealWorld::kMaps}) {
    const auto keys = fitree::datasets::Generate(which, 2000, 9);
    CheckSortedUnique(keys, 2000);
    EXPECT_FALSE(fitree::datasets::Name(which).empty());
  }
}

TEST(Datasets, StepShape) {
  const auto keys = fitree::datasets::Step(1000, 100);
  // Runs of 100 consecutive integers...
  EXPECT_EQ(keys[1] - keys[0], 1);
  EXPECT_EQ(keys[99] - keys[0], 99);
  // ...separated by jumps much wider than the run.
  EXPECT_GT(keys[100] - keys[99], 1000);
}

TEST(Datasets, AdversarialConeShape) {
  const auto data = fitree::datasets::AdversarialCone(100.0, 10);
  ASSERT_EQ(data.keys.size(), 10u * 201u);
  for (size_t i = 1; i < data.keys.size(); ++i) {
    ASSERT_GT(data.keys[i], data.keys[i - 1]);
  }
}

TEST(Workloads, ProbesRespectAbsentFraction) {
  const auto keys = fitree::datasets::Weblogs(20000, 1);
  const std::set<int64_t> present(keys.begin(), keys.end());
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 10000, fitree::workloads::Access::kUniform, 0.3, 2);
  ASSERT_EQ(probes.size(), 10000u);
  size_t absent = 0;
  for (const int64_t probe : probes) {
    if (present.count(probe) == 0) ++absent;
    // Probes stay within the key range envelope.
    EXPECT_GE(probe, keys.front());
    EXPECT_LE(probe, keys.back());
  }
  const double fraction = static_cast<double>(absent) / 10000.0;
  EXPECT_NEAR(fraction, 0.3, 0.05);

  const auto all_present = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, 1000, fitree::workloads::Access::kUniform, 0.0, 3);
  for (const int64_t probe : all_present) {
    EXPECT_EQ(present.count(probe), 1u);
  }
}

TEST(Workloads, InsertsAreAbsentFromBase) {
  const auto keys = fitree::datasets::Iot(20000, 4);
  const std::set<int64_t> present(keys.begin(), keys.end());
  const auto inserts = fitree::workloads::MakeInserts<int64_t>(keys, 5000, 5);
  ASSERT_EQ(inserts.size(), 5000u);
  for (const int64_t key : inserts) {
    EXPECT_EQ(present.count(key), 0u) << "insert " << key;
    EXPECT_GT(key, keys.front());
    EXPECT_LT(key, keys.back());
  }
}

TEST(Workloads, AbsentKeyHandlesDegenerateKeySets) {
  std::mt19937_64 rng(1);
  // One key: no gaps exist, and keys.size() - 1 == 0 used to be a modulo
  // by zero; the lone key comes back instead.
  const std::vector<int64_t> one{42};
  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(fitree::workloads::detail::AbsentKey(one, rng), 42);
  }
  EXPECT_EQ(fitree::workloads::detail::AbsentKey<int64_t>({}, rng), 0);
  // Fully dense pair: no room strictly between, falls back to a member.
  const std::vector<int64_t> dense{10, 11};
  for (int t = 0; t < 16; ++t) {
    const int64_t key = fitree::workloads::detail::AbsentKey(dense, rng);
    EXPECT_TRUE(key == 10 || key == 11);
  }
}

TEST(Workloads, SingleKeyProbeAndInsertStreams) {
  const std::vector<int64_t> one{42};
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      one, 100, fitree::workloads::Access::kUniform, /*absent_fraction=*/0.5,
      8);
  ASSERT_EQ(probes.size(), 100u);
  for (const int64_t probe : probes) EXPECT_EQ(probe, 42);
  EXPECT_TRUE(fitree::workloads::MakeInserts<int64_t>(one, 10, 9).empty());
}

TEST(Workloads, ZipfianProbesAreSkewedMembersAndDeterministic) {
  const auto keys = fitree::datasets::Weblogs(1000, 11);
  const std::set<int64_t> present(keys.begin(), keys.end());
  const size_t count = 100000;
  const auto zipf = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, count, fitree::workloads::Access::kZipfian, 0.0, 12);
  ASSERT_EQ(zipf.size(), count);
  std::map<int64_t, size_t> freq;
  for (const int64_t probe : zipf) {
    ASSERT_EQ(present.count(probe), 1u);
    ++freq[probe];
  }
  size_t max_freq = 0;
  for (const auto& [key, f] : freq) max_freq = std::max(max_freq, f);

  const auto uniform = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, count, fitree::workloads::Access::kUniform, 0.0, 12);
  std::map<int64_t, size_t> uniform_freq;
  for (const int64_t probe : uniform) ++uniform_freq[probe];
  size_t uniform_max = 0;
  for (const auto& [key, f] : uniform_freq) {
    uniform_max = std::max(uniform_max, f);
  }

  // Zipf(0.99) over 1000 keys puts ~13% of traffic on the hottest key;
  // uniform's hottest key stays near count / 1000.
  EXPECT_GT(max_freq, count / 20);
  EXPECT_LT(uniform_max, count / 100);
  EXPECT_GT(max_freq, 10 * uniform_max);

  EXPECT_EQ(zipf, fitree::workloads::MakeLookupProbes<int64_t>(
                      keys, count, fitree::workloads::Access::kZipfian, 0.0,
                      12));
}

TEST(Workloads, RangeQueriesHitTargetSelectivity) {
  const auto keys = fitree::datasets::Weblogs(50000, 6);
  const double selectivity = 0.01;
  const auto queries = fitree::workloads::MakeRangeQueries<int64_t>(
      keys, 200, selectivity, 7);
  ASSERT_EQ(queries.size(), 200u);
  for (const auto& q : queries) {
    ASSERT_LE(q.lo, q.hi);
    const auto lo = std::lower_bound(keys.begin(), keys.end(), q.lo);
    const auto hi = std::upper_bound(keys.begin(), keys.end(), q.hi);
    EXPECT_EQ(static_cast<size_t>(hi - lo),
              static_cast<size_t>(selectivity * keys.size()));
  }
}

}  // namespace
