// Fixed-capacity buffer-pool page cache over a PageSource: pin/unpin,
// CLOCK (second-chance) eviction, and hit/miss/read counters. This is the
// knob the disk benches sweep — frames * page_bytes is the fraction of the
// file allowed to stay resident, and IoStats turns that into pages-read/op.
//
// FetchBatch is the async entry point (ISSUE 10): it classifies a whole
// batch of pages first, assigns victim frames to every miss, and hands all
// the misses to PageSource::ReadPagesInto in one call — so with a batched
// source (io_uring / pread threads) the faults overlap instead of
// serializing, while hits are pinned before any I/O starts.
//
// Single-threaded by design (matches the per-thread index instances the
// bench layer uses); no dirty pages because page writes go through the
// append-and-republish path in segment_file.h, never through the pool.
// Frames live in a kDirectIoAlignment-aligned arena so they are legal
// O_DIRECT destinations.

#ifndef FITREE_STORAGE_BUFFER_POOL_H_
#define FITREE_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/io_stats.h"
#include "storage/page.h"
#include "telemetry/phase.h"
#include "telemetry/registry.h"

namespace fitree::storage {

class BufferPool {
 public:
  BufferPool(PageSource* source, size_t page_bytes, size_t frames)
      : source_(source),
        page_bytes_(page_bytes),
        arena_(page_bytes * (frames == 0 ? 1 : frames)),
        frames_(frames == 0 ? 1 : frames) {
    map_.reserve(frames_.size());
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t page_bytes() const { return page_bytes_; }
  size_t frame_count() const { return frames_.size(); }
  size_t CapacityBytes() const { return arena_.size(); }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  // True when `page_id` is currently resident (test/diagnostic hook; does
  // not touch pins, the clock hand, or the counters).
  bool Contains(uint32_t page_id) const {
    return map_.find(page_id) != map_.end();
  }

  // Resident frame data for `page_id` without pinning or counting, or
  // nullptr on a miss. For prefetch hints only: the frame may be evicted
  // at any later point, so callers must not dereference the pointer —
  // issuing a software prefetch for it is always safe.
  const std::byte* Peek(uint32_t page_id) const {
    const auto it = map_.find(page_id);
    if (it == map_.end()) return nullptr;
    return arena_.data() + it->second * page_bytes_;
  }

  // Returns the resident page, pinned (caller must Unpin), or nullptr when
  // the read fails verification or every frame is pinned.
  const std::byte* Fetch(uint32_t page_id) {
    if (const auto it = map_.find(page_id); it != map_.end()) {
      Frame& f = frames_[it->second];
      ++f.pins;
      f.referenced = true;
      ++stats_.cache_hits;
      telemetry::CounterAdd(telemetry::CounterId::kIoCacheHits);
      return FrameData(it->second);
    }
    ++stats_.cache_misses;
    telemetry::CounterAdd(telemetry::CounterId::kIoCacheMisses);
    // Attributed to the disk engine: it is the only BufferPool client, and
    // the phase grid wants page faults separated from the compute phases
    // (window search self time stays pure compute this way).
    telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                 telemetry::Phase::kPageIo);
    const size_t victim = PickVictim();
    if (victim == kNoFrame) return nullptr;
    Frame& f = frames_[victim];
    if (f.valid) {
      map_.erase(f.page_id);
      f.valid = false;
    }
    if (!source_->ReadPageInto(page_id, FrameData(victim))) return nullptr;
    ++stats_.pages_read;
    stats_.bytes_read += page_bytes_;
    telemetry::CounterAdd(telemetry::CounterId::kIoPagesRead);
    telemetry::CounterAdd(telemetry::CounterId::kIoBytesRead, page_bytes_);
    f.page_id = page_id;
    f.pins = 1;
    f.referenced = true;
    f.valid = true;
    map_.emplace(page_id, victim);
    return FrameData(victim);
  }

  // Pins every page of the batch, resolving all misses through ONE
  // PageSource::ReadPagesInto call so a batched source overlaps the reads.
  // out[i] receives the pinned frame (caller must Unpin page_ids[i]) or
  // nullptr when that page could not be staged — read/verify failure, or
  // more distinct misses than evictable frames. Duplicate ids in one batch
  // share a frame and each take their own pin. Returns the number of
  // non-null entries.
  size_t FetchBatch(const uint32_t* page_ids, size_t n,
                    const std::byte** out) {
    if (n == 0) return 0;
    struct Miss {
      uint32_t page_id;
      size_t frame;
    };
    std::vector<Miss> misses;
    std::vector<size_t> frame_of(n, kNoFrame);
    for (size_t i = 0; i < n; ++i) {
      if (const auto it = map_.find(page_ids[i]); it != map_.end()) {
        // Resident — or pre-installed by an earlier duplicate in this very
        // batch (frame pending, read not issued yet): pin either way, the
        // post-pass nulls pins on frames whose read then fails.
        Frame& f = frames_[it->second];
        ++f.pins;
        f.referenced = true;
        ++stats_.cache_hits;
        telemetry::CounterAdd(telemetry::CounterId::kIoCacheHits);
        frame_of[i] = it->second;
        out[i] = FrameData(it->second);
        continue;
      }
      ++stats_.cache_misses;
      telemetry::CounterAdd(telemetry::CounterId::kIoCacheMisses);
      const size_t victim = PickVictim();
      if (victim == kNoFrame) {
        out[i] = nullptr;  // staged part of the batch still proceeds
        continue;
      }
      Frame& f = frames_[victim];
      if (f.valid) map_.erase(f.page_id);
      f.page_id = page_ids[i];
      f.pins = 1;
      f.referenced = true;
      f.valid = false;  // pending until its read lands below
      map_.emplace(page_ids[i], victim);
      frame_of[i] = victim;
      out[i] = FrameData(victim);
      misses.push_back({page_ids[i], victim});
    }

    if (!misses.empty()) {
      telemetry::ScopedPhase phase(telemetry::Engine::kDisk,
                                   telemetry::Phase::kPageIoBatch);
      telemetry::CounterAdd(telemetry::CounterId::kIoBatches);
      telemetry::GaugeAdd(telemetry::GaugeId::kIoInflight,
                          static_cast<int64_t>(misses.size()));
      std::vector<PageReadRequest> reqs(misses.size());
      for (size_t j = 0; j < misses.size(); ++j) {
        reqs[j].page_id = misses[j].page_id;
        reqs[j].out = FrameData(misses[j].frame);
      }
      source_->ReadPagesInto(reqs.data(), reqs.size());
      telemetry::GaugeAdd(telemetry::GaugeId::kIoInflight,
                          -static_cast<int64_t>(misses.size()));
      for (size_t j = 0; j < misses.size(); ++j) {
        Frame& f = frames_[misses[j].frame];
        if (reqs[j].ok) {
          f.valid = true;
          ++stats_.pages_read;
          stats_.bytes_read += page_bytes_;
          telemetry::CounterAdd(telemetry::CounterId::kIoPagesRead);
          telemetry::CounterAdd(telemetry::CounterId::kIoBytesRead,
                                page_bytes_);
        } else {
          // Roll the pre-install back; duplicates that pinned this frame
          // get nulled in the post-pass below.
          map_.erase(f.page_id);
          f.pins = 0;
          f.referenced = false;
          f.valid = false;
        }
      }
    }

    size_t staged = 0;
    for (size_t i = 0; i < n; ++i) {
      if (frame_of[i] != kNoFrame && !frames_[frame_of[i]].valid) {
        out[i] = nullptr;
      }
      if (out[i] != nullptr) ++staged;
    }
    return staged;
  }

  // Drops one pin. Returns false — leaving all pool state untouched — when
  // `page_id` is not resident or has no outstanding pin. Misuse is a hard
  // error in every build type (ISSUE 10 satellite: the old assert-only
  // guards vanished in release builds and let pin underflow corrupt the
  // CLOCK state silently).
  [[nodiscard]] bool Unpin(uint32_t page_id) {
    const auto it = map_.find(page_id);
    if (it == map_.end()) return false;
    Frame& f = frames_[it->second];
    if (f.pins == 0) return false;
    --f.pins;
    return true;
  }

 private:
  struct Frame {
    uint32_t page_id = 0;
    uint32_t pins = 0;
    bool referenced = false;
    bool valid = false;
  };

  static constexpr size_t kNoFrame = static_cast<size_t>(-1);

  std::byte* FrameData(size_t frame) {
    return arena_.data() + frame * page_bytes_;
  }

  // CLOCK sweep: invalid frames are taken immediately, pinned frames are
  // skipped, referenced frames get a second chance. Two full laps clear
  // every reference bit, so only an all-pinned pool returns kNoFrame.
  size_t PickVictim() {
    for (size_t step = 0; step < 2 * frames_.size(); ++step) {
      const size_t i = hand_;
      hand_ = (hand_ + 1) % frames_.size();
      Frame& f = frames_[i];
      if (!f.valid && f.pins == 0) return i;
      if (f.pins > 0) continue;
      if (f.referenced) {
        f.referenced = false;
        continue;
      }
      return i;
    }
    return kNoFrame;
  }

  PageSource* source_;
  size_t page_bytes_;
  AlignedBytes arena_;
  std::vector<Frame> frames_;
  std::unordered_map<uint32_t, size_t> map_;
  size_t hand_ = 0;
  IoStats stats_;
};

// RAII pin: fetches on construction, unpins on destruction. Falsy when the
// fetch failed.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(BufferPool* pool, uint32_t page_id)
      : pool_(pool), page_id_(page_id), data_(pool->Fetch(page_id)) {}
  ~PinnedPage() { Release(); }

  PinnedPage(PinnedPage&& o) noexcept
      : pool_(o.pool_), page_id_(o.page_id_), data_(o.data_) {
    o.data_ = nullptr;
  }
  PinnedPage& operator=(PinnedPage&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      page_id_ = o.page_id_;
      data_ = o.data_;
      o.data_ = nullptr;
    }
    return *this;
  }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  explicit operator bool() const { return data_ != nullptr; }
  const std::byte* data() const { return data_; }

 private:
  void Release() {
    if (data_ != nullptr) (void)pool_->Unpin(page_id_);
    data_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  uint32_t page_id_ = 0;
  const std::byte* data_ = nullptr;
};

}  // namespace fitree::storage

#endif  // FITREE_STORAGE_BUFFER_POOL_H_
