#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/env.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace {

TEST(Env, ParsesAndDefaults) {
  ::setenv("FITREE_TEST_ENV", "42", 1);
  EXPECT_EQ(fitree::GetEnvInt64("FITREE_TEST_ENV", 7), 42);
  EXPECT_EQ(fitree::GetEnvInt("FITREE_TEST_ENV", 7), 42);
  ::setenv("FITREE_TEST_ENV", "-3", 1);
  EXPECT_EQ(fitree::GetEnvInt64("FITREE_TEST_ENV", 7), -3);
  ::setenv("FITREE_TEST_ENV", "notanumber", 1);
  EXPECT_EQ(fitree::GetEnvInt64("FITREE_TEST_ENV", 7), 7);
  ::unsetenv("FITREE_TEST_ENV");
  EXPECT_EQ(fitree::GetEnvInt64("FITREE_TEST_ENV", 9), 9);
}

TEST(Timer, Monotone) {
  fitree::Timer timer;
  const int64_t a = timer.ElapsedNs();
  const int64_t b = timer.ElapsedNs();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(TablePrinter, FormatsAndAligns) {
  EXPECT_EQ(fitree::TablePrinter::Fmt(12.345, 1), "12.3");
  EXPECT_EQ(fitree::TablePrinter::Fmt(12.345, 0), "12");
  EXPECT_EQ(fitree::TablePrinter::Fmt(uint64_t{7}), "7");

  fitree::TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Three lines: header + two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

}  // namespace
