// Optional background merge thread for the concurrent FITing-Tree.
//
// With the worker enabled, an inserting thread that fills a segment's delta
// buffer does not pay for the merge-and-resegment itself: it enqueues the
// segment and keeps going, and the worker performs the merge asynchronously
// (buffers may transiently overshoot their budget — a soft limit, which is
// exactly the paper's tolerance for delayed merges). The queue is
// deliberately generic (void* items + a handler installed at Start) so this
// header has no dependency on the tree type; deduplication is the
// handler's job via the segment's own retired/pending flags.
//
// The disk tree's incremental compactor (storage/disk_fiting_tree.h)
// reuses this enqueue/dedup/bounded-drain shape without the thread: the
// disk engine is single-writer by contract, so a background worker would
// race it. There the queue is a deduplicating set of segment first-keys
// drained one segment per subsequent mutation on the owner thread.

#ifndef FITREE_CONCURRENCY_MERGE_WORKER_H_
#define FITREE_CONCURRENCY_MERGE_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "telemetry/registry.h"

namespace fitree {

class MergeWorker {
 public:
  MergeWorker() = default;
  MergeWorker(const MergeWorker&) = delete;
  MergeWorker& operator=(const MergeWorker&) = delete;

  ~MergeWorker() { Stop(); }

  // Launches the worker thread. `handler` is invoked once per enqueued item,
  // on the worker thread, in FIFO order.
  void Start(std::function<void(void*)> handler) {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    handler_ = std::move(handler);
    stop_ = false;
    running_ = true;
    thread_ = std::thread([this] { Run(); });
  }

  bool running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
  }

  void Enqueue(void* item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(item);
    }
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    // Queue depth is a process-wide gauge: +1 here, -1 when handled, so
    // several workers fold into one backlog level.
    telemetry::CounterAdd(telemetry::CounterId::kMergesEnqueued);
    telemetry::GaugeAdd(telemetry::GaugeId::kMergeQueueDepth, 1);
    cv_.notify_one();
  }

  // Drains every queued item, then joins the worker. Idempotent.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) return;
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }

  // Blocks until every item enqueued so far has been handled (queue empty
  // and no item in flight). Useful for tests and quiesce points.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
      return (queue_.empty() && !in_flight_) || !running_;
    });
  }

  uint64_t enqueued() const {
    return enqueued_.load(std::memory_order_relaxed);
  }
  uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }

 private:
  void Run() {
    for (;;) {
      void* item = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) break;  // stop requested and fully drained
        item = queue_.front();
        queue_.pop_front();
        in_flight_ = true;
      }
      handler_(item);
      processed_.fetch_add(1, std::memory_order_relaxed);
      telemetry::CounterAdd(telemetry::CounterId::kMergesProcessed);
      telemetry::GaugeAdd(telemetry::GaugeId::kMergeQueueDepth, -1);
      {
        std::lock_guard<std::mutex> lock(mu_);
        in_flight_ = false;
      }
      idle_cv_.notify_all();
    }
    idle_cv_.notify_all();
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<void*> queue_;
  std::function<void(void*)> handler_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  bool in_flight_ = false;
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> processed_{0};
};

}  // namespace fitree

#endif  // FITREE_CONCURRENCY_MERGE_WORKER_H_
