// Figure 10: cost-model accuracy on Weblogs.
//
// 10a compares the model's estimated lookup latency against the measured
// latency across error thresholds; the estimate should upper-bound the
// measurement (the model charges a full cache miss per access and ignores
// cache hits). 10b compares estimated vs measured index size; the estimate
// should be pessimistic but close.
//
// The random-access cost `c` is calibrated on this machine with the same
// kind of pointer-chase tool the paper used (it measured c = 50ns).

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/memory_cost.h"
#include "common/table_printer.h"
#include "core/cost_model.h"
#include "core/fiting_tree.h"
#include "datasets/datasets.h"
#include "workloads/workloads.h"

int main() {
  using fitree::CostModelParams;
  using fitree::FitingTree;
  using fitree::FitingTreeConfig;
  using fitree::TablePrinter;
  using fitree::bench::MeasurePerOpNs;

  const size_t n = fitree::bench::ScaledN(2000000);
  const size_t probes_n = fitree::bench::ScaledN(200000);
  const auto keys = fitree::datasets::Weblogs(n, 1);
  const auto probes = fitree::workloads::MakeLookupProbes<int64_t>(
      keys, probes_n, fitree::workloads::Access::kUniform, 0.0, 2);

  CostModelParams params;
  // Calibrate c with a pointer chase over a data-sized working set.
  params.cache_miss_ns =
      fitree::MeasureRandomAccessNs(std::min<uint64_t>(
          keys.size() * sizeof(int64_t), 256ull << 20));
  params.fanout = 16.0;
  params.fill = 0.5;
  params.buffer_size = 0.0;

  fitree::bench::PrintHeader(
      "Figure 10: cost model accuracy on Weblogs (n=" + std::to_string(n) +
      ", calibrated c=" + TablePrinter::Fmt(params.cache_miss_ns, 1) + "ns)");

  TablePrinter table({"error", "est_latency_ns", "meas_latency_ns",
                      "est_size_KB", "meas_size_KB"});
  for (double error : {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    FitingTreeConfig config;
    config.error = error;
    config.buffer_size = 0;
    auto tree = FitingTree<int64_t>::Create(keys, config);
    const double measured_ns = MeasurePerOpNs(probes.size(), [&](size_t i) {
      return tree->Contains(probes[i]) ? 1 : 0;
    });
    const auto se = static_cast<double>(tree->SegmentCount());
    const double est_ns = EstimateLookupLatencyNs(error, se, params);
    const double est_size = EstimateIndexSizeBytes(se, params);
    table.AddRow({TablePrinter::Fmt(error, 0),
                  TablePrinter::Fmt(est_ns, 1),
                  TablePrinter::Fmt(measured_ns, 1),
                  TablePrinter::Fmt(est_size / 1024.0, 2),
                  TablePrinter::Fmt(
                      static_cast<double>(tree->IndexSizeBytes()) / 1024.0,
                      2)});
  }
  table.Print(std::cout);

  // Demonstrate the two DBA-facing selectors (paper Eq. 6.1-2 / 6.2-2).
  const std::vector<double> candidates{16.0, 64.0, 256.0, 1024.0, 4096.0,
                                       16384.0};
  const auto curve = fitree::LearnSegmentCurve<int64_t>(keys, candidates);
  fitree::bench::PrintHeader("Error selection demos");
  if (const auto pick = PickErrorForLatency(curve, params, 1000.0, candidates);
      pick.has_value()) {
    std::cout << "latency SLA 1000ns -> error " << pick->error
              << " (est latency " << pick->est_latency_ns << "ns, est size "
              << pick->est_size_bytes / 1024.0 << "KB)\n";
  }
  if (const auto pick =
          PickErrorForSpace(curve, params, 256.0 * 1024, candidates);
      pick.has_value()) {
    std::cout << "space budget 256KB -> error " << pick->error
              << " (est latency " << pick->est_latency_ns << "ns, est size "
              << pick->est_size_bytes / 1024.0 << "KB)\n";
  }
  return 0;
}
