// Experiment registry for the unified fitree_bench binary.
//
// Each former bench binary registers one or more named experiments at
// static-initialization time via FITREE_REGISTER_EXPERIMENT; main.cc lists,
// filters, and runs them. Registration order across translation units is
// unspecified, so the registry sorts by name — `fitree_bench --list` and a
// full run are therefore stable across link orders.

#ifndef FITREE_BENCH_HARNESS_REGISTRY_H_
#define FITREE_BENCH_HARNESS_REGISTRY_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

namespace fitree::bench {

class Runner;

struct Experiment {
  std::string name;   // stable id, e.g. "fig6_lookup" (used by --filter)
  std::string title;  // one-line description printed as the table header
  void (*fn)(Runner&) = nullptr;
};

class Registry {
 public:
  static Registry& Instance() {
    static Registry registry;
    return registry;
  }

  // Returns true so registration can initialize a namespace-scope bool.
  bool Register(Experiment experiment) {
    experiments_.push_back(std::move(experiment));
    return true;
  }

  // All experiments, sorted by name.
  std::vector<const Experiment*> All() const {
    std::vector<const Experiment*> out;
    out.reserve(experiments_.size());
    for (const auto& e : experiments_) out.push_back(&e);
    std::sort(out.begin(), out.end(),
              [](const Experiment* a, const Experiment* b) {
                return a->name < b->name;
              });
    return out;
  }

  // Experiments whose name contains any comma-separated term of `filter`
  // as a substring (empty filter matches everything), sorted by name.
  std::vector<const Experiment*> Match(std::string_view filter) const {
    std::vector<std::string_view> terms;
    size_t start = 0;
    while (start <= filter.size()) {
      const size_t comma = filter.find(',', start);
      const size_t end = comma == std::string_view::npos ? filter.size() : comma;
      if (end > start) terms.push_back(filter.substr(start, end - start));
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    std::vector<const Experiment*> out;
    for (const Experiment* e : All()) {
      if (terms.empty()) {
        out.push_back(e);
        continue;
      }
      for (const std::string_view term : terms) {
        if (e->name.find(term) != std::string::npos) {
          out.push_back(e);
          break;
        }
      }
    }
    return out;
  }

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace fitree::bench

// Registers `fn` (void(Runner&)) under `name` at static-init time.
#define FITREE_REGISTER_EXPERIMENT(name, title, fn)                       \
  [[maybe_unused]] static const bool fitree_registered_##fn =             \
      ::fitree::bench::Registry::Instance().Register({name, title, &fn})

#endif  // FITREE_BENCH_HARNESS_REGISTRY_H_
