// Figure 8: the non-linearity ratio of each dataset across error scales.
//
// ratio(e) = S_e * (e + 1) / |D|, i.e. the observed segment count relative
// to the worst case at that scale (Theorem 3.1). Expected shape: IoT shows
// one strong bump (daily periodicity), Weblogs several overlapping bumps,
// Maps stays near-linear until very large scales.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/non_linearity.h"
#include "datasets/datasets.h"

int main() {
  using fitree::TablePrinter;
  const size_t n = fitree::bench::ScaledN(2000000);
  fitree::bench::PrintHeader("Figure 8: non-linearity ratio (n=" +
                             std::to_string(n) + ")");

  const auto weblogs = fitree::datasets::Weblogs(n, 1);
  const auto iot = fitree::datasets::Iot(n, 2);
  const auto maps = fitree::datasets::Maps(n, 3);

  TablePrinter table({"error", "Weblogs", "IoT", "Maps"});
  for (double error = 10.0; error <= 1e7; error *= 10.0) {
    table.AddRow(
        {TablePrinter::Fmt(error, 0),
         TablePrinter::Fmt(
             fitree::NonLinearityRatio<int64_t>(weblogs, error), 4),
         TablePrinter::Fmt(fitree::NonLinearityRatio<int64_t>(iot, error),
                           4),
         TablePrinter::Fmt(fitree::NonLinearityRatio<int64_t>(maps, error),
                           4)});
  }
  table.Print(std::cout);
  return 0;
}
