// Fixed-size paging baseline (paper Sec 7.1's "Fixed" method): the sorted
// data is chopped into pages of a constant number of keys and a B+ tree
// indexes each page's first key. Structurally identical to FITing-Tree —
// directory, pages, per-page insert buffers — except that page boundaries
// ignore the data distribution, which is exactly the contrast the paper's
// figures draw.

#ifndef FITREE_BASELINES_PAGED_INDEX_H_
#define FITREE_BASELINES_PAGED_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "btree/btree_map.h"
#include "common/timer.h"

namespace fitree {

struct PagedIndexConfig {
  // Sentinel: size the buffer as max(1, page_size/2), mirroring
  // FITing-Tree's error/2 default so Figure 7 compares like for like.
  static constexpr size_t kAutoBufferSize = static_cast<size_t>(-1);

  size_t page_size = 256;
  // Per-page insert-buffer capacity; 0 merges on every insert.
  size_t buffer_size = kAutoBufferSize;
};

template <typename K>
class PagedIndex {
 public:
  static std::unique_ptr<PagedIndex<K>> Create(const std::vector<K>& keys,
                                               const PagedIndexConfig& config) {
    auto index = std::make_unique<PagedIndex<K>>();
    index->config_ = config;
    if (index->config_.page_size == 0) index->config_.page_size = 1;
    index->effective_buffer_ =
        config.buffer_size == PagedIndexConfig::kAutoBufferSize
            ? std::max<size_t>(1, index->config_.page_size / 2)
            : config.buffer_size;
    index->BulkLoad(std::span<const K>(keys));
    return index;
  }

  size_t size() const { return size_; }
  size_t PageCount() const { return live_pages_; }

  bool Contains(const K& key) const {
    const Page* page = LocatePage(key);
    if (page == nullptr) return false;
    return SearchPage(*page, key);
  }

  bool ContainsWithBreakdown(const K& key, int64_t* tree_ns,
                             int64_t* page_ns) const {
    Timer timer;
    const Page* page = LocatePage(key);
    *tree_ns += timer.ElapsedNs();
    timer.Reset();
    const bool found = page != nullptr && SearchPage(*page, key);
    *page_ns += timer.ElapsedNs();
    return found;
  }

  // Inserts `key` (set semantics). A full page buffer merges and re-chops
  // the page into fixed-size pages.
  void Insert(const K& key) {
    Page* page = LocatePageMutable(key);
    if (page == nullptr) {
      auto fresh = std::make_unique<Page>();
      fresh->first_key = key;
      fresh->keys.push_back(key);
      directory_.Insert(key, fresh.get());
      pages_.push_back(std::move(fresh));
      ++live_pages_;
      ++size_;
      return;
    }
    if (SearchPage(*page, key)) return;
    auto pos = std::lower_bound(page->buffer.begin(), page->buffer.end(), key);
    page->buffer.insert(pos, key);
    ++size_;
    if (page->buffer.size() > effective_buffer_) MergePage(page);
  }

  // Calls fn(key) for every key in [lo, hi] in ascending order.
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn fn) const {
    if (live_pages_ == 0 || hi < lo) return;
    K start_key;
    if (directory_.FindFloor(lo, &start_key) == nullptr) {
      directory_.First(&start_key);
    }
    directory_.ScanFrom(start_key, [&](const K& first_key, Page* page) {
      if (first_key > hi) return false;
      EmitRange(*page, lo, hi, fn);
      return true;
    });
  }

  // Directory plus per-page headers; the pages themselves are data.
  size_t IndexSizeBytes() const {
    return directory_.MemoryBytes() + live_pages_ * kPageMetaBytes;
  }

  int TreeHeight() const { return directory_.Height(); }

 private:
  struct Page {
    K first_key{};
    std::vector<K> keys;    // sorted, at most page_size entries
    std::vector<K> buffer;  // sorted insert buffer
  };

  static constexpr size_t kPageMetaBytes = sizeof(K) + sizeof(void*);

  void BulkLoad(std::span<const K> keys) {
    size_ = keys.size();
    if (keys.empty()) return;
    std::vector<std::pair<K, Page*>> entries;
    for (size_t begin = 0; begin < keys.size();
         begin += config_.page_size) {
      const size_t end = std::min(keys.size(), begin + config_.page_size);
      auto page = std::make_unique<Page>();
      page->first_key = keys[begin];
      page->keys.assign(keys.begin() + begin, keys.begin() + end);
      entries.emplace_back(page->first_key, page.get());
      pages_.push_back(std::move(page));
    }
    live_pages_ = pages_.size();
    directory_.BulkLoad(std::move(entries));
  }

  const Page* LocatePage(const K& key) const {
    Page* const* page = directory_.FindFloor(key);
    if (page == nullptr) page = directory_.First();
    return page == nullptr ? nullptr : *page;
  }

  Page* LocatePageMutable(const K& key) {
    return const_cast<Page*>(LocatePage(key));
  }

  bool SearchPage(const Page& page, const K& key) const {
    return std::binary_search(page.keys.begin(), page.keys.end(), key) ||
           std::binary_search(page.buffer.begin(), page.buffer.end(), key);
  }

  template <typename Fn>
  void EmitRange(const Page& page, const K& lo, const K& hi, Fn& fn) const {
    auto k = std::lower_bound(page.keys.begin(), page.keys.end(), lo);
    auto b = std::lower_bound(page.buffer.begin(), page.buffer.end(), lo);
    while (k != page.keys.end() || b != page.buffer.end()) {
      const bool take_key =
          b == page.buffer.end() || (k != page.keys.end() && *k <= *b);
      const K value = take_key ? *k : *b;
      if (value > hi) return;
      fn(value);
      if (take_key) {
        ++k;
      } else {
        ++b;
      }
    }
  }

  void MergePage(Page* page) {
    std::vector<K> merged(page->keys.size() + page->buffer.size());
    std::merge(page->keys.begin(), page->keys.end(), page->buffer.begin(),
               page->buffer.end(), merged.begin());
    directory_.Erase(page->first_key);
    size_t begin = 0;
    bool reused = false;
    while (begin < merged.size()) {
      const size_t end = std::min(merged.size(), begin + config_.page_size);
      Page* target;
      if (!reused) {
        target = page;
        reused = true;
      } else {
        pages_.push_back(std::make_unique<Page>());
        target = pages_.back().get();
        ++live_pages_;
      }
      target->first_key = merged[begin];
      target->keys.assign(merged.begin() + begin, merged.begin() + end);
      target->buffer.clear();
      target->buffer.shrink_to_fit();
      directory_.Insert(target->first_key, target);
      begin = end;
    }
  }

  PagedIndexConfig config_;
  size_t effective_buffer_ = 0;
  std::vector<std::unique_ptr<Page>> pages_;
  btree::BTreeMap<K, Page*, 64, 64> directory_;
  size_t live_pages_ = 0;
  size_t size_ = 0;
};

}  // namespace fitree

#endif  // FITREE_BASELINES_PAGED_INDEX_H_
