// storage/ unit tests: page seal/verify + checksum rejection, buffer-pool
// hit/miss/eviction/pinning semantics, and segment-file write/reopen
// round-trips down to the raw page level.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "core/static_fiting_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/segment_file.h"

namespace {

using fitree::IoStats;
using fitree::PackedSegment;
using fitree::StaticFitingTree;
using fitree::storage::BufferPool;
using fitree::storage::kPageHeaderBytes;
using fitree::storage::LeafCapacity;
using fitree::storage::LeafEntry;
using fitree::storage::LoadAs;
using fitree::storage::MakeFixedSegments;
using fitree::storage::PageHeader;
using fitree::storage::PageSource;
using fitree::storage::PageType;
using fitree::storage::PinnedPage;
using fitree::storage::SealPage;
using fitree::storage::SegmentFileOptions;
using fitree::storage::SegmentFileReader;
using fitree::storage::SegmentRecord;
using fitree::storage::VerifyPage;

constexpr size_t kPageBytes = 256;  // small pages force multi-page files

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<int64_t> EveryThird(size_t n) {
  std::vector<int64_t> keys;
  for (size_t i = 0; i < n; ++i) keys.push_back(static_cast<int64_t>(3 * i));
  return keys;
}

TEST(Page, SealThenVerifyRoundTrips) {
  std::vector<std::byte> page(kPageBytes, std::byte{0});
  page[kPageHeaderBytes] = std::byte{42};
  SealPage(page.data(), kPageBytes, PageType::kLeaf, 7, 3);
  PageHeader header{};
  ASSERT_TRUE(
      VerifyPage(page.data(), kPageBytes, PageType::kLeaf, 7, &header));
  EXPECT_EQ(header.page_id, 7u);
  EXPECT_EQ(header.count, 3u);
  EXPECT_EQ(header.type, static_cast<uint16_t>(PageType::kLeaf));
}

TEST(Page, AnySingleByteFlipIsDetected) {
  std::vector<std::byte> page(kPageBytes, std::byte{0});
  for (size_t i = 0; i < kPageBytes; i += 17) {
    page[kPageHeaderBytes + (i % (kPageBytes - kPageHeaderBytes))] =
        std::byte{static_cast<unsigned char>(i)};
  }
  SealPage(page.data(), kPageBytes, PageType::kLeaf, 1, 5);
  for (size_t i = 0; i < kPageBytes; ++i) {
    std::vector<std::byte> corrupt = page;
    corrupt[i] ^= std::byte{0x40};
    EXPECT_FALSE(VerifyPage(corrupt.data(), kPageBytes, PageType::kLeaf, 1))
        << "flip at byte " << i << " went undetected";
  }
}

TEST(Page, WrongTypeOrIdIsRejected) {
  std::vector<std::byte> page(kPageBytes, std::byte{0});
  SealPage(page.data(), kPageBytes, PageType::kSegmentTable, 4, 1);
  EXPECT_TRUE(VerifyPage(page.data(), kPageBytes, PageType::kSegmentTable, 4));
  EXPECT_FALSE(VerifyPage(page.data(), kPageBytes, PageType::kLeaf, 4));
  EXPECT_FALSE(VerifyPage(page.data(), kPageBytes, PageType::kSegmentTable, 5));
}

// In-memory page source: page i is a sealed leaf page whose first record
// byte is i. Counts physical reads and can be told to fail specific pages.
class FakeSource : public PageSource {
 public:
  explicit FakeSource(size_t pages) {
    for (size_t i = 0; i < pages; ++i) {
      std::vector<std::byte> page(kPageBytes, std::byte{0});
      page[kPageHeaderBytes] = std::byte{static_cast<unsigned char>(i)};
      SealPage(page.data(), kPageBytes, PageType::kLeaf,
               static_cast<uint32_t>(i), 1);
      pages_.push_back(std::move(page));
    }
  }

  bool ReadPageInto(uint32_t page_id, std::byte* out) override {
    if (page_id >= pages_.size() || failing_.count(page_id) != 0) return false;
    ++reads_;
    std::copy(pages_[page_id].begin(), pages_[page_id].end(), out);
    return true;
  }

  void FailPage(uint32_t page_id) { failing_.insert(page_id); }
  size_t reads() const { return reads_; }

 private:
  std::vector<std::vector<std::byte>> pages_;
  std::set<uint32_t> failing_;
  size_t reads_ = 0;
};

TEST(BufferPool, CountsHitsAndMisses) {
  FakeSource source(4);
  BufferPool pool(&source, kPageBytes, 2);
  for (const uint32_t id : {0u, 1u, 0u, 1u, 0u}) {
    const std::byte* page = pool.Fetch(id);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(LoadAs<unsigned char>(page + kPageHeaderBytes), id);
    EXPECT_TRUE(pool.Unpin(id));
  }
  EXPECT_EQ(pool.stats().cache_misses, 2u);
  EXPECT_EQ(pool.stats().cache_hits, 3u);
  EXPECT_EQ(pool.stats().pages_read, 2u);
  EXPECT_EQ(pool.stats().bytes_read, 2u * kPageBytes);
  EXPECT_DOUBLE_EQ(pool.stats().HitRate(), 3.0 / 5.0);
}

TEST(BufferPool, EvictsWhenCacheSmallerThanFile) {
  FakeSource source(8);
  BufferPool pool(&source, kPageBytes, 2);
  // Two sequential sweeps over 8 pages through 2 frames: nothing survives
  // to the second sweep, so every access is a miss and a physical read.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (uint32_t id = 0; id < 8; ++id) {
      const std::byte* page = pool.Fetch(id);
      ASSERT_NE(page, nullptr);
      EXPECT_EQ(LoadAs<unsigned char>(page + kPageHeaderBytes), id);
      EXPECT_TRUE(pool.Unpin(id));
    }
  }
  EXPECT_EQ(pool.stats().cache_misses, 16u);
  EXPECT_EQ(pool.stats().cache_hits, 0u);
  EXPECT_EQ(source.reads(), 16u);
  // At most `frames` pages are ever resident.
  size_t resident = 0;
  for (uint32_t id = 0; id < 8; ++id) resident += pool.Contains(id) ? 1 : 0;
  EXPECT_EQ(resident, 2u);
}

TEST(BufferPool, ClockGivesReusedPagesASecondChance) {
  FakeSource source(8);
  BufferPool pool(&source, kPageBytes, 3);
  const auto touch = [&](uint32_t id) {
    ASSERT_NE(pool.Fetch(id), nullptr);
    EXPECT_TRUE(pool.Unpin(id));
  };
  // Page 0 is re-referenced between sweeps of {1,2,3}; its reference bit
  // keeps it resident while 1..3 rotate through the other two frames.
  touch(0);
  for (const uint32_t id : {1u, 2u, 0u, 3u, 1u, 0u, 2u, 3u, 0u}) touch(id);
  EXPECT_TRUE(pool.Contains(0));
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 10u);
  // Page 0 was read exactly once; every hit after that was served in-pool.
  EXPECT_GE(stats.cache_hits, 3u);
}

TEST(BufferPool, PinnedPagesAreNeverEvicted) {
  FakeSource source(16);
  BufferPool pool(&source, kPageBytes, 2);
  const std::byte* pinned = pool.Fetch(0);
  ASSERT_NE(pinned, nullptr);
  for (uint32_t id = 1; id < 16; ++id) {
    const std::byte* page = pool.Fetch(id);
    ASSERT_NE(page, nullptr);
    EXPECT_TRUE(pool.Unpin(id));
  }
  EXPECT_TRUE(pool.Contains(0));
  EXPECT_EQ(LoadAs<unsigned char>(pinned + kPageHeaderBytes), 0u);
  EXPECT_TRUE(pool.Unpin(0));
}

TEST(BufferPool, AllFramesPinnedFailsCleanly) {
  FakeSource source(4);
  BufferPool pool(&source, kPageBytes, 2);
  ASSERT_NE(pool.Fetch(0), nullptr);
  ASSERT_NE(pool.Fetch(1), nullptr);
  EXPECT_EQ(pool.Fetch(2), nullptr);  // no evictable frame
  EXPECT_TRUE(pool.Unpin(1));
  EXPECT_NE(pool.Fetch(2), nullptr);  // frame freed, fetch succeeds
  EXPECT_TRUE(pool.Unpin(2));
  EXPECT_TRUE(pool.Unpin(0));
}

TEST(BufferPool, FailedReadReturnsNullAndStaysUncached) {
  FakeSource source(4);
  source.FailPage(2);
  BufferPool pool(&source, kPageBytes, 2);
  EXPECT_EQ(pool.Fetch(2), nullptr);
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_EQ(pool.stats().cache_misses, 1u);
  EXPECT_EQ(pool.stats().pages_read, 0u);
  // The pool still works for healthy pages afterwards.
  ASSERT_NE(pool.Fetch(1), nullptr);
  EXPECT_TRUE(pool.Unpin(1));
}

TEST(BufferPool, UnpinMisuseReturnsFalseWithoutStateDamage) {
  FakeSource source(4);
  BufferPool pool(&source, kPageBytes, 2);
  // Non-resident page: hard error in every build type, state untouched.
  EXPECT_FALSE(pool.Unpin(3));
  ASSERT_NE(pool.Fetch(0), nullptr);
  EXPECT_TRUE(pool.Unpin(0));
  // Pin already at zero: underflow is rejected, not wrapped.
  EXPECT_FALSE(pool.Unpin(0));
  // The frame is still healthy: fetch + unpin cycle works.
  ASSERT_NE(pool.Fetch(0), nullptr);
  EXPECT_TRUE(pool.Unpin(0));
  EXPECT_EQ(pool.stats().pages_read, 1u);
}

TEST(BufferPool, FetchBatchStagesHitsAndMissesInOnePass) {
  FakeSource source(8);
  BufferPool pool(&source, kPageBytes, 4);
  ASSERT_NE(pool.Fetch(1), nullptr);  // pre-resident page -> batch hit
  EXPECT_TRUE(pool.Unpin(1));
  const uint32_t ids[] = {1, 3, 5};
  const std::byte* out[3] = {};
  EXPECT_EQ(pool.FetchBatch(ids, 3, out), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(LoadAs<unsigned char>(out[i] + kPageHeaderBytes), ids[i]);
    EXPECT_TRUE(pool.Unpin(ids[i]));
  }
  EXPECT_EQ(pool.stats().cache_hits, 1u);  // the batch's hit on resident page 1
  EXPECT_EQ(pool.stats().cache_misses, 1u + 2u);
  EXPECT_EQ(source.reads(), 3u);  // each distinct page read exactly once
}

TEST(BufferPool, FetchBatchDuplicatesShareOneFrameAndRead) {
  FakeSource source(8);
  BufferPool pool(&source, kPageBytes, 4);
  const uint32_t ids[] = {2, 2, 2};
  const std::byte* out[3] = {};
  EXPECT_EQ(pool.FetchBatch(ids, 3, out), 3u);
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(out[1], out[2]);
  EXPECT_EQ(source.reads(), 1u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(pool.Unpin(2));
  EXPECT_FALSE(pool.Unpin(2));  // exactly three pins were taken
}

TEST(BufferPool, FetchBatchFailedReadRollsBackItsFrame) {
  FakeSource source(8);
  source.FailPage(5);
  BufferPool pool(&source, kPageBytes, 4);
  const uint32_t ids[] = {4, 5, 5, 6};
  const std::byte* out[4] = {};
  // The healthy pages stage; both requests for the failed page are nulled
  // (including the duplicate that pinned the pending frame).
  EXPECT_EQ(pool.FetchBatch(ids, 4, out), 2u);
  ASSERT_NE(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);
  EXPECT_EQ(out[2], nullptr);
  ASSERT_NE(out[3], nullptr);
  EXPECT_FALSE(pool.Contains(5));
  EXPECT_FALSE(pool.Unpin(5));  // rollback left no pins behind
  EXPECT_TRUE(pool.Unpin(4));
  EXPECT_TRUE(pool.Unpin(6));
  // The failed frame is reusable afterwards.
  ASSERT_NE(pool.Fetch(7), nullptr);
  EXPECT_TRUE(pool.Unpin(7));
}

TEST(BufferPool, FetchBatchMoreMissesThanFramesStagesWhatFits) {
  FakeSource source(8);
  BufferPool pool(&source, kPageBytes, 2);
  const uint32_t ids[] = {0, 1, 2, 3};
  const std::byte* out[4] = {};
  // Two frames, four distinct pages: the first two stage pinned, the rest
  // report failure instead of evicting pinned frames.
  EXPECT_EQ(pool.FetchBatch(ids, 4, out), 2u);
  ASSERT_NE(out[0], nullptr);
  ASSERT_NE(out[1], nullptr);
  EXPECT_EQ(out[2], nullptr);
  EXPECT_EQ(out[3], nullptr);
  EXPECT_TRUE(pool.Unpin(0));
  EXPECT_TRUE(pool.Unpin(1));
}

TEST(SegmentFile, WriteReopenRoundTripsMetaAndSegments) {
  const auto keys = EveryThird(1000);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 8.0);
  const auto exported = tree->ExportSegmentTable();
  const std::string path = TempPath("roundtrip.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));

  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path)) << reader.error_message();
  EXPECT_EQ(reader.meta().key_count, keys.size());
  EXPECT_EQ(reader.meta().segment_count, exported.size());
  EXPECT_EQ(reader.meta().page_bytes, kPageBytes);
  EXPECT_DOUBLE_EQ(reader.meta().error, 8.0);

  std::vector<SegmentRecord<int64_t>> reloaded;
  ASSERT_TRUE(reader.ReadSegmentTable(&reloaded));
  ASSERT_EQ(reloaded.size(), exported.size());
  // Fresh files lay segments out back to back starting at the first leaf
  // page, each segment page-aligned (v2 addressing).
  uint64_t next_page = reader.meta().leaf_first_page;
  const size_t cap = reader.meta().leaf_capacity;
  for (size_t i = 0; i < reloaded.size(); ++i) {
    EXPECT_EQ(reloaded[i].seg, exported[i]);
    EXPECT_EQ(reloaded[i].first_leaf_page, next_page);
    next_page += (exported[i].length + cap - 1) / cap;
  }
  EXPECT_EQ(next_page, reader.meta().total_pages);
  std::remove(path.c_str());
}

TEST(SegmentFile, LeafPagesHoldEveryKeyInRankOrder) {
  const auto keys = EveryThird(500);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 4.0);
  const std::string path = TempPath("leaves.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));
  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path));
  const size_t cap = reader.meta().leaf_capacity;
  EXPECT_EQ(cap, LeafCapacity<int64_t>(kPageBytes));
  ASSERT_GT(reader.meta().leaf_page_count, 1u);  // multi-page file

  std::vector<std::byte> page(kPageBytes);
  size_t rank = 0;
  for (uint64_t leaf = 0; leaf < reader.meta().leaf_page_count; ++leaf) {
    ASSERT_TRUE(reader.ReadPageInto(reader.LeafPageId(leaf), page.data()));
    const PageHeader header = LoadAs<PageHeader>(page.data());
    for (uint32_t slot = 0; slot < header.count; ++slot, ++rank) {
      const auto entry = LoadAs<LeafEntry<int64_t>>(
          page.data() + kPageHeaderBytes + slot * sizeof(LeafEntry<int64_t>));
      EXPECT_EQ(entry.key, keys[rank]);
      EXPECT_EQ(entry.value, rank);  // WriteIndexFile payload is the rank
    }
  }
  EXPECT_EQ(rank, keys.size());
  std::remove(path.c_str());
}

TEST(SegmentFile, CustomPayloadsRoundTrip) {
  const auto keys = EveryThird(300);
  std::vector<uint64_t> values;
  for (const int64_t k : keys) {
    values.push_back(static_cast<uint64_t>(7 * k + 1));
  }
  const auto segments =
      MakeFixedSegments(std::span<const int64_t>(keys), 32);
  const std::string path = TempPath("payloads.fit");
  ASSERT_TRUE(fitree::storage::WriteSegmentFile<int64_t>(
      path, keys, values, segments, /*error=*/32.0,
      SegmentFileOptions{kPageBytes}));
  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path));
  std::vector<std::byte> page(kPageBytes);
  ASSERT_TRUE(reader.ReadPageInto(reader.LeafPageId(0), page.data()));
  const auto entry = LoadAs<LeafEntry<int64_t>>(page.data() + kPageHeaderBytes);
  EXPECT_EQ(entry.key, keys[0]);
  EXPECT_EQ(entry.value, values[0]);
  std::remove(path.c_str());
}

TEST(SegmentFile, CorruptedPageIsRejectedByReaderAndPool) {
  const auto keys = EveryThird(600);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 8.0);
  const std::string path = TempPath("corrupt.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));

  SegmentFileReader<int64_t> reader;
  ASSERT_TRUE(reader.Open(path));
  const uint32_t victim = reader.LeafPageId(1);
  reader.Close();

  // Flip one payload byte in the middle of that leaf page on disk.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const long offset =
      static_cast<long>(victim) * kPageBytes + kPageBytes / 2;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(byte ^ 0x01, f);
  std::fclose(f);

  ASSERT_TRUE(reader.Open(path));  // meta page is intact
  std::vector<std::byte> page(kPageBytes);
  EXPECT_TRUE(reader.ReadPageInto(reader.LeafPageId(0), page.data()));
  EXPECT_FALSE(reader.ReadPageInto(victim, page.data()));

  BufferPool pool(&reader, kPageBytes, 4);
  EXPECT_NE(pool.Fetch(reader.LeafPageId(0)), nullptr);
  EXPECT_TRUE(pool.Unpin(reader.LeafPageId(0)));
  EXPECT_EQ(pool.Fetch(victim), nullptr);
  EXPECT_FALSE(pool.Contains(victim));
  std::remove(path.c_str());
}

TEST(SegmentFile, CorruptedMetaFailsOpenOnlyWhenBothSlotsDie) {
  const auto keys = EveryThird(100);
  const auto tree = StaticFitingTree<int64_t>::Create(keys, 8.0);
  const std::string path = TempPath("badmeta.fit");
  ASSERT_TRUE(fitree::storage::WriteIndexFile(path, *tree,
                                              SegmentFileOptions{kPageBytes}));
  const auto corrupt_slot = [&](uint32_t slot) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(slot) * kPageBytes +
                                kPageHeaderBytes,
                         SEEK_SET),
              0);  // magic field
    std::fputc('X', f);
    std::fclose(f);
  };
  // One torn slot is survivable: the ping-pong twin still opens the file.
  corrupt_slot(0);
  SegmentFileReader<int64_t> reader;
  EXPECT_TRUE(reader.Open(path)) << reader.error_message();
  EXPECT_EQ(reader.meta().key_count, keys.size());
  reader.Close();
  // Both slots torn: nothing left to trust.
  corrupt_slot(1);
  EXPECT_FALSE(reader.Open(path));
  std::remove(path.c_str());
}

TEST(SegmentFile, OpenRejectsMissingAndTruncatedFiles) {
  SegmentFileReader<int64_t> reader;
  EXPECT_FALSE(reader.Open(TempPath("does_not_exist.fit")));

  const std::string path = TempPath("truncated.fit");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("short", f);
  std::fclose(f);
  EXPECT_FALSE(reader.Open(path));
  std::remove(path.c_str());
}

TEST(SegmentFile, WriterRejectsNonPartitioningSegments) {
  const auto keys = EveryThird(100);
  auto segments = MakeFixedSegments(std::span<const int64_t>(keys), 16);
  segments.back().length -= 1;  // no longer covers every key
  EXPECT_FALSE(fitree::storage::WriteSegmentFile<int64_t>(
      TempPath("badsegs.fit"), keys, {}, segments, 16.0,
      SegmentFileOptions{kPageBytes}));
}

TEST(SegmentFile, MakeFixedSegmentsPartitionsKeys) {
  const auto keys = EveryThird(103);  // deliberately not a multiple
  const auto segments = MakeFixedSegments(std::span<const int64_t>(keys), 16);
  ASSERT_EQ(segments.size(), 7u);
  uint64_t covered = 0;
  for (const auto& s : segments) {
    EXPECT_EQ(s.start, covered);
    EXPECT_EQ(s.first_key, keys[covered]);
    EXPECT_DOUBLE_EQ(s.Predict(keys[covered]), static_cast<double>(covered));
    covered += s.length;
  }
  EXPECT_EQ(covered, keys.size());
}

}  // namespace
